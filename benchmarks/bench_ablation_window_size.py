"""Ablation — §III.D: "Wider window size takes longer to search but
increases the chance of having a better substring match.  In our tests
we get the best performance with the window buffer size of 128 bytes."

Sweeps the V2 search window over {32..512} on the C-files dataset:
kernel time grows with the window (exact comparison counts) while the
measured ratio improves — the paper's time/ratio tradeoff, with 128
chosen as the operating point.
"""

import pytest

from benchmarks.conftest import report
from repro.core.params import CompressionParams
from repro.core.v2 import V2Compressor
from repro.model.gpu import scale_to_paper
from repro.datasets import generate

SWEEP = (32, 64, 128, 256, 512)
SIZE = 256 * 1024


def test_window_size_sweep(benchmark, calibration):
    data = generate("cfiles", SIZE)

    def sweep():
        out = {}
        for window in SWEEP:
            params = CompressionParams(version=2, window=window)
            compressor = V2Compressor(params)
            result = compressor.compress(data)
            prof = compressor.profile(result, calibration)
            out[window] = (scale_to_paper(prof.total_seconds, SIZE),
                           result.stats.ratio)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["ABLATION (§III.D): V2 window-size sweep, C files",
             f"{'window':>8}{'modeled time':>14}{'ratio':>10}"]
    for window in SWEEP:
        seconds, ratio = results[window]
        lines.append(f"{window:>8}{seconds:>13.2f}s{ratio * 100:>9.2f}%")
    lines.append("paper: window 128 is the best time; bigger windows "
                 "trade time for ratio")
    report("ablation_window_size", "\n".join(lines))

    # ratio improves monotonically with window …
    ratios = [results[w][1] for w in SWEEP]
    assert all(a >= b - 1e-9 for a, b in zip(ratios, ratios[1:]))
    # … while search time grows with window
    times = [results[w][0] for w in SWEEP]
    assert times[-1] > times[0]
