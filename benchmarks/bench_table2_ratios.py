"""Table II — compression ratios (smaller is better).

Unlike Table I these are *measured*, not modeled: every cell is
``len(compressed)/len(original)`` of actual encoded bytes that
round-trip.  The benchmarked quantity is the V2 encode of the C-files
dataset (the most interesting real compression workload).
"""

import pytest

from benchmarks.conftest import report
from repro.bench.paper import PAPER_DATASET_ORDER, TABLE2_SYSTEMS
from repro.bench.tables import format_table, table2_rows
from repro.core.params import CompressionParams
from repro.core.v2 import V2Compressor
from repro.datasets import generate


def test_table2_render(benchmark, runs):
    rows = benchmark.pedantic(table2_rows, args=(runs,), rounds=1,
                              iterations=1)
    text = format_table(rows, "TABLE II: compression ratios (measured)",
                        percent=True)
    report("table2_compression_ratios", text)
    for name in PAPER_DATASET_ORDER:
        for system in TABLE2_SYSTEMS:
            ours, paper = rows[name][system]
            # measured ratios must stay in the paper's neighbourhood
            assert abs(ours - paper) < 0.30, (name, system)
    # the paper's orderings: V1 ≥ serial everywhere; V2 best on the
    # highly-compressible set
    for name in PAPER_DATASET_ORDER:
        assert rows[name]["culzss_v1"][0] >= rows[name]["serial"][0] - 1e-9
    hc = rows["highly_compressible"]
    assert hc["culzss_v2"][0] < hc["serial"][0]


@pytest.mark.parametrize("dataset", PAPER_DATASET_ORDER)
def test_v2_encode_throughput(benchmark, dataset):
    """Real wall-clock of this library's V2 encoder per dataset."""
    data = generate(dataset, 256 * 1024)
    compressor = V2Compressor(CompressionParams(version=2))
    result = benchmark(compressor.compress, data)
    benchmark.extra_info["ratio"] = round(result.stats.ratio, 4)
