"""§V crossover — "The two versions give us the opportunity to satisfy
any data types, highly compressible or not": V2 wins on data around
50 % compressible or worse; V1 takes over as data gets more
compressible (its serial skip pays off, V2's all-position matching
does not).

Sweeps the repetition dial of the tunable generator, models both
versions, and locates the crossover.
"""

import pytest

from benchmarks.conftest import report
from repro.core.params import CompressionParams
from repro.core.v1 import V1Compressor
from repro.core.v2 import V2Compressor
from repro.datasets.tunable import generate_tunable
from repro.lzss.encoder import encode
from repro.lzss.formats import SERIAL
from repro.model.cpu import sample_match_statistics
from repro.model.gpu import scale_to_paper

REPETITIONS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
SIZE = 192 * 1024


def test_crossover(benchmark, calibration):
    v1, v2 = V1Compressor(), V2Compressor()

    def sweep():
        rows = []
        for rep in REPETITIONS:
            data = generate_tunable(SIZE, rep)
            ratio = encode(data, SERIAL).stats.ratio
            sample = sample_match_statistics(data)
            t1 = scale_to_paper(
                v1.profile(v1.compress(data), calibration, sample
                           ).total_seconds, SIZE)
            t2 = scale_to_paper(
                v2.profile(v2.compress(data), calibration).total_seconds,
                SIZE)
            rows.append((rep, ratio, t1, t2))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["CROSSOVER (§V): which CULZSS version wins vs compressibility",
             f"{'repetition':>11}{'serial ratio':>14}{'V1':>9}{'V2':>9}"
             "   winner"]
    for rep, ratio, t1, t2 in rows:
        winner = "V1" if t1 < t2 else "V2"
        lines.append(f"{rep:>11.1f}{ratio * 100:>13.1f}%{t1:>8.2f}s"
                     f"{t2:>8.2f}s   {winner}")
    lines.append("paper: V2 best at ≳50% ratios; V1 best on highly "
                 "compressible data")
    report("crossover_compressibility", "\n".join(lines))

    # the claim: V2 wins at the incompressible end, V1 at the runny end
    _, _, t1_hard, t2_hard = rows[0]
    _, _, t1_easy, t2_easy = rows[-1]
    assert t2_hard < t1_hard
    assert t1_easy < t2_easy
