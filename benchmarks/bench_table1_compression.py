"""Table I — compression benchmark average running times.

Regenerates the paper's central table: modeled 128 MB compression
seconds for Serial LZSS, Pthread LZSS, BZIP2, CULZSS V1 and V2 on the
five datasets, printed next to the published cells.  The benchmarked
quantity per system is its full model-evaluation path over the
pre-gathered functional artifacts.
"""

import pytest

from benchmarks.conftest import report
from repro.bench.harness import run_dataset
from repro.bench.paper import PAPER_DATASET_ORDER, TABLE1_SYSTEMS
from repro.bench.tables import format_table, table1_rows


@pytest.mark.parametrize("dataset", PAPER_DATASET_ORDER)
def test_table1_dataset_row(benchmark, dataset, artifacts, calibration):
    """One Table I row: model all five systems for one dataset."""
    run = benchmark.pedantic(run_dataset, args=(artifacts[dataset], calibration),
                             rounds=1, iterations=1)
    for system in TABLE1_SYSTEMS:
        benchmark.extra_info[system] = round(run.compress_seconds[system], 3)


def test_table1_render(benchmark, runs):
    """Assemble and record the complete Table I."""
    rows = benchmark.pedantic(table1_rows, args=(runs,), rounds=1,
                              iterations=1)
    text = format_table(rows, "TABLE I: compression times "
                              "(seconds @128 MB, modeled GTX 480 / i7 920)")
    report("table1_compression_times", text)
    # the five anchor cells must sit on the published values
    cf = rows["cfiles"]
    for system in TABLE1_SYSTEMS:
        ours, paper = cf[system]
        assert ours == pytest.approx(paper, rel=0.05), system
