"""Benchmark the multicore engine and the shared-memory frame transport.

Standalone (no pytest) so the CI quick lane and local profiling runs
share one entry point::

    PYTHONPATH=src python benchmarks/bench_engine.py            # full
    PYTHONPATH=src python benchmarks/bench_engine.py --quick    # CI lane

Two measurements, both routed through the statistical harness
(``benchmarks/harness.py``: warmup + repeats, median + IQR, honest
environment fingerprint):

* **engine** — `ParallelEngine.encode_chunked`/`decode_chunked`
  throughput per worker count, per dataset, at the requested buffer
  size; every parallel run is checked byte-identical against the
  serial path before its time is reported.
* **transport** — per-frame overhead of moving frame bytes into and
  out of a one-process pool via pickle (the executor pipe) versus a
  recycled shared-memory slab, isolated with a no-op codec job so the
  numbers measure the transport, not the compressor.

Results append to the ``BENCH_engine.json`` trajectory at the repo
root (schema 2: ``{"schema": 2, "runs": [...]}``, newest run last,
each with its git sha / cpu count / timestamp) and overwrite the
human-readable ``benchmarks/results/bench_engine.txt``.  The
``culzss benchgate`` regression gate compares against the newest
committed run of the same mode.
"""

from __future__ import annotations

import argparse
import os
import sys
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import numpy as np  # noqa: E402

from harness import (  # noqa: E402
    bench_path,
    capture_stages,
    measure,
    publish,
    summarize,
)
from repro.datasets import generate  # noqa: E402
from repro.engine import ParallelEngine, SlabPool  # noqa: E402
from repro.lzss.encoder import encode_chunked  # noqa: E402
from repro.lzss.formats import CUDA_V2  # noqa: E402

RESULTS_DIR = Path(__file__).parent / "results"

CHUNK_SIZE = 4096


# ----------------------------------------------------------- transport

def _pickle_job(data: bytes) -> bytes:
    """No-op codec: the frame crosses the pipe both ways via pickle —
    the input is pickled in, the "result" payload pickled back, exactly
    like the real codec jobs on the fallback path."""
    return data


def _slab_job(name: str, length: int) -> int:
    """No-op codec: the frame stays in the slab; only ints cross."""
    from repro.engine.shm import _attach

    shm = _attach(name)
    data = bytes(shm.buf[:length])  # consume the input
    shm.buf[:length] = data  # write the "result" back in place
    return length


def bench_transport(frame_bytes: int, frames: int,
                    repeats: int) -> dict[str, dict]:
    """A/B the pickle and slab transports through a 1-process pool.

    One sample = one ``frames``-deep loop; per-frame numbers derive
    from the median sample.
    """
    payload = os.urandom(frame_bytes)
    cases: dict[str, dict] = {}
    with ProcessPoolExecutor(max_workers=1) as pool:
        pool.submit(_pickle_job, b"warm").result()  # fork + import cost

        def pickle_loop() -> None:
            for _ in range(frames):
                echoed = pool.submit(_pickle_job, payload).result()
                assert len(echoed) == frame_bytes

        samples = measure(pickle_loop, repeats=repeats, warmup=1)
        cases["transport.pickle"] = _transport_case(
            samples, frame_bytes, frames)

        with SlabPool(slab_bytes=max(frame_bytes, 1 << 16)) as slabs:
            lease = slabs.acquire(frame_bytes)
            assert lease is not None

            def slab_loop() -> None:
                for _ in range(frames):
                    lease.write(payload)
                    n = pool.submit(_slab_job, lease.name,
                                    frame_bytes).result()
                    assert lease.read(n) == payload

            samples = measure(slab_loop, repeats=repeats, warmup=1)
            lease.release()
        cases["transport.shm"] = _transport_case(
            samples, frame_bytes, frames)
    pickle_med = cases["transport.pickle"]["median_seconds"]
    shm_med = cases["transport.shm"]["median_seconds"]
    cases["transport.shm"]["speedup_vs_pickle"] = (
        round(pickle_med / shm_med, 3) if shm_med else None)
    return cases


def _transport_case(samples: list[float], frame_bytes: int,
                    frames: int) -> dict:
    import statistics

    med = statistics.median(samples)
    return summarize(
        samples,
        frame_bytes=frame_bytes,
        frames=frames,
        per_frame_ms=round(1e3 * med / frames, 4),
        mb_s=round(frame_bytes * frames / med / 1e6, 2))


# -------------------------------------------------------------- engine

def bench_engine(datasets: list[str], size_bytes: int,
                 workers_list: list[int],
                 repeats: int) -> tuple[dict[str, dict], bool]:
    """Encode/decode medians per worker count, identity-checked.

    Returns (cases, all_identical); a parallel run whose bytes diverge
    from the serial path invalidates the whole sweep.
    """
    cases: dict[str, dict] = {}
    all_identical = True
    for dataset in datasets:
        data = np.frombuffer(generate(dataset, size_bytes, seed=7),
                             dtype=np.uint8)
        baseline = encode_chunked(data, CUDA_V2, CHUNK_SIZE)
        base_med = None
        for workers in workers_list:
            with ParallelEngine(workers=workers,
                                min_parallel_bytes=0) as engine:
                enc = measure(
                    lambda: engine.encode_chunked(data, CUDA_V2, CHUNK_SIZE),
                    repeats=repeats, warmup=1)
                result = engine.encode_chunked(data, CUDA_V2, CHUNK_SIZE)
                identical = (result.payload == baseline.payload
                             and np.array_equal(result.chunk_sizes,
                                                baseline.chunk_sizes))
                dec = measure(
                    lambda: engine.decode_chunked(
                        result.payload, CUDA_V2, result.chunk_sizes,
                        CHUNK_SIZE, result.input_size),
                    repeats=repeats, warmup=1)
                out = engine.decode_chunked(result.payload, CUDA_V2,
                                            result.chunk_sizes, CHUNK_SIZE,
                                            result.input_size)
                identical = identical and out == data.tobytes()
            all_identical = all_identical and identical
            import statistics

            enc_med, dec_med = (statistics.median(enc),
                                statistics.median(dec))
            if base_med is None:
                base_med = enc_med
            key = f"{dataset}.w{workers}"
            cases[f"{key}.encode"] = summarize(
                enc,
                mb_s=round(size_bytes / enc_med / 1e6, 3),
                speedup_vs_1=round(base_med / enc_med, 3),
                identical=bool(identical))
            cases[f"{key}.decode"] = summarize(
                dec, mb_s=round(size_bytes / dec_med / 1e6, 3))
    return cases, all_identical


# -------------------------------------------------------------- report

def render(run: dict, all_identical: bool) -> str:
    meta, params = run["meta"], run["params"]
    lines = [
        "bench_engine: multicore codec + shm transport",
        f"  mode={run['mode']}  cpu_count={meta['cpu_count']}  "
        f"repeats={params['repeats']}  python={meta['python']}  "
        f"git={meta.get('git_sha') or '?'}",
    ]
    if meta["cpu_count"] < max(params["workers"]):
        lines.append(
            f"  NOTE: only {meta['cpu_count']} core(s) available — "
            "worker sweeps cannot show parallel speedup on this host; "
            "treat speedup_vs_1 as a merge-overhead check.")
    lines.append("")
    lines.append("  engine medians (CUDA_V2 tokens, 4 KiB chunks, "
                 "IQR in brackets):")
    for name, c in sorted(run["cases"].items()):
        if name.startswith("transport."):
            continue
        tag = name.replace(".encode", " enc").replace(".decode", " dec")
        extra = (f"  speedup x{c['speedup_vs_1']:.2f}"
                 f"  identical={c['identical']}"
                 if "speedup_vs_1" in c else "")
        lines.append(
            f"    {tag:<20} {c['median_seconds']*1e3:9.2f} ms "
            f"[{c['iqr_low_seconds']*1e3:.2f}..{c['iqr_high_seconds']*1e3:.2f}]"
            f"  {c['mb_s']:8.3f} MB/s{extra}")
    lines.append("")
    lines.append("  frame transport through a 1-process pool:")
    for name in ("transport.pickle", "transport.shm"):
        c = run["cases"][name]
        extra = (f"  ({c['speedup_vs_pickle']}x vs pickle)"
                 if c.get("speedup_vs_pickle") else "")
        lines.append(
            f"    {name.split('.')[1]:<6} {c['frame_bytes']:>8} B "
            f"x{c['frames']:<4} {c['per_frame_ms']:8.3f} ms/frame  "
            f"{c['mb_s']:8.1f} MB/s{extra}")
    if not all_identical:
        lines.append("")
        lines.append("  FAIL: parallel output diverged from the serial path")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for the CI lane")
    parser.add_argument("--size-mb", type=float, default=None,
                        help="engine buffer size in MiB "
                             "(default 8, quick 0.25)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timed repeats per case (default 5, quick 3)")
    parser.add_argument("--workers", default=None,
                        help="comma-separated worker counts "
                             "(default 1,2,4; quick 1,2)")
    parser.add_argument("--datasets", default=None,
                        help="comma-separated datasets "
                             "(default cfiles,demap; quick cfiles)")
    parser.add_argument("--output", default=None,
                        help="trajectory path (default BENCH_engine.json)")
    parser.add_argument("--trace", nargs="?", const="BENCH_engine.trace.json",
                        default=None, metavar="FILE",
                        help="capture repro.obs spans during the engine "
                             "sweep and write a chrome-trace JSON "
                             "(default FILE: BENCH_engine.trace.json)")
    args = parser.parse_args(argv)

    mode = "quick" if args.quick else "full"
    size_mb = args.size_mb or (0.25 if args.quick else 8.0)
    repeats = args.repeats or (3 if args.quick else 5)
    workers = [int(w) for w in
               (args.workers or ("1,2" if args.quick else "1,2,4")).split(",")]
    datasets = (args.datasets
                or ("cfiles" if args.quick else "cfiles,demap")).split(",")
    size_bytes = int(size_mb * (1 << 20))
    frame_bytes, frames = ((1 << 16, 16) if args.quick else (1 << 20, 32))

    with capture_stages() as cap:
        if args.trace:
            from repro import obs
            from repro.obs import trace as obs_trace

            obs_trace.clear()
            with obs_trace.span("bench.engine_sweep",
                                trace_id=obs.new_trace_id(),
                                quick=args.quick):
                cases, all_identical = bench_engine(datasets, size_bytes,
                                                    workers, repeats)
            trace_path = obs.write_chrome_trace(args.trace,
                                                obs_trace.spans())
            print(f"wrote {trace_path} ({len(obs_trace.spans())} spans)")
        else:
            cases, all_identical = bench_engine(datasets, size_bytes,
                                                workers, repeats)
    cases.update(bench_transport(frame_bytes, frames, repeats))

    out_path = Path(args.output) if args.output else bench_path("engine")
    run = publish("engine", mode, cases,
                  params={"size_bytes": size_bytes, "repeats": repeats,
                          "workers": workers, "datasets": datasets,
                          "chunk_size": CHUNK_SIZE,
                          "frame_bytes": frame_bytes, "frames": frames},
                  path=out_path, stages=cap.stages)
    text = render(run, all_identical)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "bench_engine.txt").write_text(text + "\n")
    print(text)
    print(f"\nappended run to {out_path}")
    if not all_identical:
        print("FAIL: parallel output diverged from the serial path",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
