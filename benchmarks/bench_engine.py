"""Benchmark the multicore engine and the shared-memory frame transport.

Standalone (no pytest) so the CI quick lane and local profiling runs
share one entry point::

    PYTHONPATH=src python benchmarks/bench_engine.py            # full
    PYTHONPATH=src python benchmarks/bench_engine.py --quick    # CI lane

Two measurements:

* **engine** — `ParallelEngine.encode_chunked`/`decode_chunked`
  throughput per worker count, per dataset, at the requested buffer
  size; every parallel run is checked byte-identical against the
  serial path before its time is reported.
* **transport** — per-frame overhead of moving frame bytes into and
  out of a one-process pool via pickle (the executor pipe) versus a
  recycled shared-memory slab, isolated with a no-op codec job so the
  numbers measure the transport, not the compressor.

Results land in ``BENCH_engine.json`` at the repo root
(machine-readable trajectory, one file overwritten per run) and
``benchmarks/results/bench_engine.txt`` (human-readable).  The JSON
records ``cpu_count``: parallel speedups are only observable when the
host actually has the cores — on a single-core runner the worker sweep
degenerates to "no slowdown from sharding", which is still a useful
regression signal for the merge overhead.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from time import perf_counter

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.datasets import generate  # noqa: E402
from repro.engine import ParallelEngine, SlabPool  # noqa: E402
from repro.lzss.encoder import encode_chunked  # noqa: E402
from repro.lzss.formats import CUDA_V2  # noqa: E402

RESULTS_DIR = Path(__file__).parent / "results"
JSON_PATH = REPO_ROOT / "BENCH_engine.json"

CHUNK_SIZE = 4096


# ----------------------------------------------------------- transport

def _pickle_job(data: bytes) -> bytes:
    """No-op codec: the frame crosses the pipe both ways via pickle —
    the input is pickled in, the "result" payload pickled back, exactly
    like the real codec jobs on the fallback path."""
    return data


def _slab_job(name: str, length: int) -> int:
    """No-op codec: the frame stays in the slab; only ints cross."""
    from repro.engine.shm import _attach

    shm = _attach(name)
    data = bytes(shm.buf[:length])  # consume the input
    shm.buf[:length] = data  # write the "result" back in place
    return length


def bench_transport(frame_bytes: int, frames: int) -> list[dict]:
    """A/B the pickle and slab transports through a 1-process pool."""
    payload = os.urandom(frame_bytes)
    out = []
    with ProcessPoolExecutor(max_workers=1) as pool:
        pool.submit(_pickle_job, b"warm").result()  # fork + import cost

        t0 = perf_counter()
        for _ in range(frames):
            echoed = pool.submit(_pickle_job, payload).result()
            assert len(echoed) == frame_bytes
        pickle_s = perf_counter() - t0
        out.append(_transport_row("pickle", frame_bytes, frames, pickle_s))

        with SlabPool(slab_bytes=max(frame_bytes, 1 << 16)) as slabs:
            lease = slabs.acquire(frame_bytes)
            assert lease is not None
            t0 = perf_counter()
            for _ in range(frames):
                lease.write(payload)
                n = pool.submit(_slab_job, lease.name, frame_bytes).result()
                assert lease.read(n) == payload
            shm_s = perf_counter() - t0
            lease.release()
        out.append(_transport_row("shm", frame_bytes, frames, shm_s))
    out[1]["speedup_vs_pickle"] = round(pickle_s / shm_s, 3) if shm_s else None
    return out


def _transport_row(mode: str, frame_bytes: int, frames: int,
                   seconds: float) -> dict:
    return {
        "mode": mode,
        "frame_bytes": frame_bytes,
        "frames": frames,
        "seconds": round(seconds, 6),
        "per_frame_ms": round(1e3 * seconds / frames, 4),
        "mb_s": round(frame_bytes * frames / seconds / 1e6, 2),
    }


# -------------------------------------------------------------- engine

def bench_engine(datasets: list[str], size_bytes: int,
                 workers_list: list[int]) -> list[dict]:
    """Encode/decode throughput per worker count, identity-checked."""
    rows = []
    for dataset in datasets:
        data = np.frombuffer(generate(dataset, size_bytes, seed=7),
                             dtype=np.uint8)
        baseline = encode_chunked(data, CUDA_V2, CHUNK_SIZE)
        base_encode_s = None
        for workers in workers_list:
            with ParallelEngine(workers=workers,
                                min_parallel_bytes=0) as engine:
                t0 = perf_counter()
                result = engine.encode_chunked(data, CUDA_V2, CHUNK_SIZE)
                encode_s = perf_counter() - t0
                identical = (result.payload == baseline.payload
                             and np.array_equal(result.chunk_sizes,
                                                baseline.chunk_sizes))
                t0 = perf_counter()
                out = engine.decode_chunked(result.payload, CUDA_V2,
                                            result.chunk_sizes, CHUNK_SIZE,
                                            result.input_size)
                decode_s = perf_counter() - t0
                identical = identical and out == data.tobytes()
            if base_encode_s is None:
                base_encode_s = encode_s
            rows.append({
                "dataset": dataset,
                "workers": workers,
                "size_bytes": size_bytes,
                "identical": bool(identical),
                "encode_seconds": round(encode_s, 4),
                "encode_mb_s": round(size_bytes / encode_s / 1e6, 3),
                "decode_seconds": round(decode_s, 4),
                "decode_mb_s": round(size_bytes / decode_s / 1e6, 3),
                "speedup_vs_1": round(base_encode_s / encode_s, 3),
            })
    return rows


# -------------------------------------------------------------- report

def render(payload: dict) -> str:
    meta = payload["meta"]
    lines = [
        "bench_engine: multicore codec + shm transport",
        f"  cpu_count={meta['cpu_count']}  quick={meta['quick']}  "
        f"python={meta['python']}",
    ]
    if meta["cpu_count"] < max(meta["workers"]):
        lines.append(
            f"  NOTE: only {meta['cpu_count']} core(s) available — "
            "worker sweeps cannot show parallel speedup on this host; "
            "treat speedup_vs_1 as a merge-overhead check.")
    lines.append("")
    lines.append("  engine throughput (CUDA_V2 tokens, 4 KiB chunks):")
    for r in payload["engine"]:
        lines.append(
            f"    {r['dataset']:<12} workers={r['workers']}  "
            f"encode {r['encode_mb_s']:7.3f} MB/s  "
            f"decode {r['decode_mb_s']:7.2f} MB/s  "
            f"speedup x{r['speedup_vs_1']:.2f}  "
            f"identical={r['identical']}")
    lines.append("")
    lines.append("  frame transport through a 1-process pool:")
    for r in payload["transport"]:
        extra = (f"  ({r['speedup_vs_pickle']}x vs pickle)"
                 if "speedup_vs_pickle" in r else "")
        lines.append(
            f"    {r['mode']:<6} {r['frame_bytes']:>8} B x{r['frames']:<4} "
            f"{r['per_frame_ms']:8.3f} ms/frame  "
            f"{r['mb_s']:8.1f} MB/s{extra}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for the CI lane")
    parser.add_argument("--size-mb", type=float, default=None,
                        help="engine buffer size in MiB "
                             "(default 8, quick 0.25)")
    parser.add_argument("--workers", default=None,
                        help="comma-separated worker counts "
                             "(default 1,2,4; quick 1,2)")
    parser.add_argument("--datasets", default=None,
                        help="comma-separated datasets "
                             "(default cfiles,demap; quick cfiles)")
    parser.add_argument("--output", default=str(JSON_PATH),
                        help="machine-readable output path")
    parser.add_argument("--trace", nargs="?", const="BENCH_engine.trace.json",
                        default=None, metavar="FILE",
                        help="capture repro.obs spans during the engine "
                             "sweep and write a chrome-trace JSON "
                             "(default FILE: BENCH_engine.trace.json)")
    args = parser.parse_args(argv)

    size_mb = args.size_mb or (0.25 if args.quick else 8.0)
    workers = [int(w) for w in
               (args.workers or ("1,2" if args.quick else "1,2,4")).split(",")]
    datasets = (args.datasets
                or ("cfiles" if args.quick else "cfiles,demap")).split(",")
    size_bytes = int(size_mb * (1 << 20))
    frame_bytes, frames = ((1 << 16, 32) if args.quick else (1 << 20, 64))

    payload = {
        "meta": {
            "generated_by": "benchmarks/bench_engine.py",
            "quick": args.quick,
            "cpu_count": os.cpu_count() or 1,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "size_bytes": size_bytes,
            "workers": workers,
            "datasets": datasets,
            "chunk_size": CHUNK_SIZE,
        },
        "engine": None,
        "transport": None,
    }
    if args.trace:
        from repro import obs
        from repro.obs import trace as obs_trace

        obs_trace.clear()
        with obs_trace.span("bench.engine_sweep", trace_id=obs.new_trace_id(),
                            quick=args.quick):
            payload["engine"] = bench_engine(datasets, size_bytes, workers)
        trace_path = obs.write_chrome_trace(args.trace, obs_trace.spans())
        print(f"wrote {trace_path} ({len(obs_trace.spans())} spans)")
    else:
        payload["engine"] = bench_engine(datasets, size_bytes, workers)
    payload["transport"] = bench_transport(frame_bytes, frames)

    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    text = render(payload)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "bench_engine.txt").write_text(text + "\n")
    print(text)
    print(f"\nwrote {args.output}")
    if not all(r["identical"] for r in payload["engine"]):
        print("FAIL: parallel output diverged from the serial path",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
