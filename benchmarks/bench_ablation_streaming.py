"""Ablation — §VII: pipelining/streaming and the heterogeneous split.

Two of the paper's proposed improvements, quantified on the C-files
workload: (a) Fermi copy/compute streaming over a buffer sequence
versus strictly sequential execution; (b) splitting the input between
the GPU and the host cores versus either device alone.
"""

import pytest

from benchmarks.conftest import report
from repro.core import CompressionParams, HeterogeneousCompressor, StreamingPipeline
from repro.datasets import generate

N_BUFFERS = 6
BUFFER_BYTES = 192 * 1024


def test_streaming_pipeline(benchmark, calibration):
    buffers = [generate("cfiles", BUFFER_BYTES, seed=100 + i)
               for i in range(N_BUFFERS)]
    pipe = StreamingPipeline(CompressionParams(version=2), calibration)
    res = benchmark.pedantic(pipe.compress_stream, args=(buffers,),
                             rounds=1, iterations=1)

    lines = ["EXTENSION (§VII): Fermi streaming over "
             f"{N_BUFFERS} x {BUFFER_BYTES >> 10} KiB buffers, V2",
             f"sequential: {res.sequential_seconds * 1e3:8.2f} ms",
             f"pipelined:  {res.pipelined_seconds * 1e3:8.2f} ms "
             f"({res.overlap_speedup:.2f}x)",
             "stage totals: " + ", ".join(
                 f"{k}={v * 1e3:.2f}ms" for k, v in res.stage_seconds.items())]
    report("extension_streaming", "\n".join(lines))

    assert res.overlap_speedup >= 1.0


def test_heterogeneous_split(benchmark, calibration):
    data = generate("cfiles", 512 * 1024)
    het = HeterogeneousCompressor(calibration=calibration)
    plan = benchmark.pedantic(het.plan, args=(data,), rounds=1, iterations=1)

    t_gpu_alone = plan.gpu_seconds / plan.gpu_fraction
    t_cpu_alone = plan.cpu_seconds / (1 - plan.gpu_fraction)
    lines = ["EXTENSION (§VII): heterogeneous CPU+GPU split, C files",
             f"GPU alone:  {t_gpu_alone * 1e3:8.2f} ms",
             f"CPU alone:  {t_cpu_alone * 1e3:8.2f} ms",
             f"combined:   {plan.makespan * 1e3:8.2f} ms "
             f"(GPU takes {plan.gpu_fraction:.0%} of the input)"]
    report("extension_heterogeneous", "\n".join(lines))

    assert plan.makespan < min(t_gpu_alone, t_cpu_alone)
