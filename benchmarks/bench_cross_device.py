"""Cross-device sweep — §VII's forward-looking question.

The paper calls CUDA compression "a future proof application for the
new trend"; this sweep runs the V2 cost model on three generations of
parts (pre-Fermi GTX 280, the testbed GTX 480, the ECC Tesla C2050)
to show how the modeled time tracks SM width, clocks and shared-memory
geometry.
"""

import pytest

from benchmarks.conftest import report
from repro.core.params import CompressionParams
from repro.core.v2 import V2Compressor
from repro.gpusim.spec import FERMI_C2050, FERMI_GTX480, TESLA_GTX280
from repro.model.gpu import scale_to_paper

DEVICES = (TESLA_GTX280, FERMI_GTX480, FERMI_C2050)


def test_cross_device_sweep(benchmark, artifacts, calibration):
    arts = artifacts["cfiles"]

    def sweep():
        out = {}
        for device in DEVICES:
            params = CompressionParams(version=2, device=device)
            prof = V2Compressor(params).profile(arts.v2, calibration)
            out[device.name] = scale_to_paper(prof.total_seconds, arts.size)
        return out

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["EXTENSION (§VII): V2 C-files compression across GPU generations",
             f"{'device':<20}{'SMs x cores':>14}{'clock':>10}{'modeled':>10}"]
    for device in DEVICES:
        lines.append(f"{device.name:<20}"
                     f"{device.sm_count:>7} x {device.cores_per_sm:<4}"
                     f"{device.core_clock_hz / 1e9:>9.2f}G"
                     f"{times[device.name]:>9.2f}s")
    report("extension_cross_device", "\n".join(lines))

    # the testbed Fermi beats the pre-Fermi part (wider SMs, dual issue)
    assert times[FERMI_GTX480.name] < times[TESLA_GTX280.name]
