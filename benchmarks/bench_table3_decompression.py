"""Table III — decompression benchmark average running times.

Modeled in-memory decompression of the CULZSS streams (serial CPU loop
vs the chunk-parallel GPU decoder), printed against the published
cells; plus real wall-clock decode throughput of this library.
"""

import pytest

from benchmarks.conftest import report
from repro.bench.paper import PAPER_DATASET_ORDER
from repro.bench.tables import format_table, table3_rows
from repro.core.params import CompressionParams
from repro.core.v2 import V2Compressor
from repro.datasets import generate
from repro.lzss.decoder import decode_chunked


def test_table3_render(benchmark, runs):
    rows = benchmark.pedantic(table3_rows, args=(runs,), rounds=1,
                              iterations=1)
    text = format_table(rows, "TABLE III: decompression times "
                              "(seconds @128 MB, modeled)")
    report("table3_decompression_times", text)
    # §IV.D: CULZSS decompression beats serial on every dataset, by a
    # smaller factor than compression (memory-bound work).
    for name in PAPER_DATASET_ORDER:
        culzss, _ = rows[name]["culzss"]
        serial, _ = rows[name]["serial"]
        assert culzss < serial
        assert serial / culzss < 10


@pytest.mark.parametrize("dataset", PAPER_DATASET_ORDER)
def test_decode_throughput(benchmark, dataset):
    """Real wall-clock of this library's chunked decoder."""
    data = generate(dataset, 256 * 1024)
    v2 = V2Compressor(CompressionParams(version=2))
    r = v2.compress(data)
    out = benchmark(decode_chunked, r.payload, r.format, r.chunk_sizes,
                    4096, len(data))
    assert out == data
