"""Figure 4 — compression speedup against the serial LZSS implementation.

The paper's bar chart: Pthread/BZIP2/CULZSS-V1/CULZSS-V2 speedups over
the serial coder per dataset.  Rendered as an ASCII chart with the
published bars alongside, plus headline-claim assertions (§I's "up to
18x serial / 3x pthread / 6x bzip2" envelope — our modeled factors must
land in the same regime).
"""

import pytest

from benchmarks.conftest import report
from repro.bench.paper import PAPER_DATASET_ORDER
from repro.bench.tables import format_figure4


def test_figure4_render(benchmark, runs):
    text = benchmark.pedantic(format_figure4, args=(runs,), rounds=1,
                              iterations=1)
    report("figure4_speedups", text)
    _check_claims(runs)


def _check_claims(runs):
    # Best GPU speedup vs serial across datasets lands in the paper's
    # "up to 18x" regime (ours is anchored on V1/V2 C-files cells).
    best_gpu = max(
        max(r.speedup_vs_serial("culzss_v1"), r.speedup_vs_serial("culzss_v2"))
        for r in runs.values())
    assert 5.0 < best_gpu < 40.0
    # Every dataset has a GPU version beating pthread except possibly
    # the two run-heavy ones (§V) — C files and dictionary must.
    for name in ("cfiles", "dictionary"):
        r = runs[name]
        assert (min(r.compress_seconds["culzss_v1"],
                    r.compress_seconds["culzss_v2"])
                < r.compress_seconds["pthread"])


@pytest.mark.parametrize("dataset", PAPER_DATASET_ORDER)
def test_speedup_rows(benchmark, dataset, runs):
    run = runs[dataset]
    speedups = benchmark.pedantic(
        lambda: {s: run.speedup_vs_serial(s)
                 for s in ("pthread", "bzip2", "culzss_v1", "culzss_v2")},
        rounds=1, iterations=1)
    for system, value in speedups.items():
        benchmark.extra_info[system] = round(value, 2)
