"""Shared entry point for the ``benchmarks/bench_*.py`` scripts.

Routes every standalone benchmark through the statistical runner in
:mod:`repro.bench.stats` so each published number carries repeats,
median + IQR, and an environment fingerprint, and every
``BENCH_<name>.json`` at the repo root is an append-only trajectory
(schema 2) instead of a single overwritten run.

Scripts use::

    from harness import measure, summarize, publish

    samples = measure(lambda: work(), repeats=5, warmup=1)
    publish("engine", "full", {"encode": summarize(samples)},
            params={"size_bytes": n})

``publish`` appends to ``BENCH_<name>.json`` and returns the run dict;
the regression gate (``culzss benchgate``) later compares fresh runs
against the newest committed entry of the same mode.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.stats import (  # noqa: E402
    SCHEMA_VERSION,
    append_run,
    capture_stages,
    fingerprint,
    latest_run,
    load_trajectory,
    measure,
    new_run,
    summarize,
)

__all__ = [
    "SCHEMA_VERSION",
    "append_run",
    "bench_path",
    "capture_stages",
    "fingerprint",
    "latest_run",
    "load_trajectory",
    "measure",
    "new_run",
    "publish",
    "summarize",
]


def bench_path(name: str) -> Path:
    """The repo-root trajectory file for benchmark ``name``."""
    return REPO_ROOT / f"BENCH_{name}.json"


def publish(name: str, mode: str, cases: dict, *,
            params: dict | None = None, path: Path | None = None,
            stages: dict | None = None, keep: int = 50) -> dict:
    """Append one statistical run to ``BENCH_<name>.json``; return it.

    ``stages`` — a :class:`capture_stages` breakdown spanning the whole
    benchmark — lands in the run's meta, so the trajectory records
    where the measured time went, not just how much there was.
    """
    run = new_run(name, mode, cases, params=params, repo_root=REPO_ROOT)
    if stages:
        run["meta"]["stages"] = stages
    append_run(path or bench_path(name), run, keep=keep)
    return run
