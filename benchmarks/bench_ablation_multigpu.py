"""Ablation — §VII's negative result: "we could not receive any gains
in our attempt to use multiple GPUs ... we suspect the division of the
GPUs by threads introduced thread overhead."

Splits the C-files V2 run over 1–4 simulated GTX 480s: per-buffer host
thread overhead and the shared PCIe link erase the kernel-division
gains at the paper's dispatch granularity.
"""

import pytest

from benchmarks.conftest import report
from repro.bench.paper import PAPER_INPUT_BYTES
from repro.core.v2 import V2Compressor
from repro.gpusim.multi import simulate_multi_gpu
from repro.gpusim.spec import FERMI_GTX480
from repro.gpusim.timing import transfer_time
from repro.model.gpu import scale_to_paper

DEVICES = (1, 2, 3, 4)


def test_multigpu_no_gain(benchmark, artifacts, calibration):
    arts = artifacts["cfiles"]
    v2 = V2Compressor()
    prof = v2.profile(arts.v2, calibration)
    scale = PAPER_INPUT_BYTES / arts.size
    kernel_s = prof.phase_seconds("kernel_match") * scale
    transfer_s = (prof.phase_seconds("h2d_input")
                  + prof.phase_seconds("d2h_match_records")) * scale
    # The paper's attempt drove the GPUs from host threads at fine
    # granularity ("the division of the GPUs by threads introduced
    # thread overhead") — model a 64 KiB dispatch buffer, the
    # granularity at which pipelined network-gateway buffers arrive.
    dispatches = PAPER_INPUT_BYTES // (64 * 1024)

    results = benchmark.pedantic(
        lambda: {d: simulate_multi_gpu(FERMI_GTX480, kernel_s, transfer_s,
                                       devices=d,
                                       dispatches_per_device=dispatches)
                 for d in DEVICES},
        rounds=1, iterations=1)

    lines = ["ABLATION (§VII): multi-GPU split of the C-files V2 run",
             f"{'devices':>8}{'kernel':>10}{'transfer':>10}"
             f"{'thread ovh':>12}{'total':>10}"]
    for d in DEVICES:
        r = results[d]
        lines.append(f"{d:>8}{r.kernel_seconds:>9.2f}s"
                     f"{r.transfer_seconds:>9.2f}s"
                     f"{r.thread_overhead_seconds:>11.2f}s"
                     f"{r.total_seconds:>9.2f}s")
    lines.append('paper: "could not receive any gains" from multi-GPU')
    report("ablation_multigpu", "\n".join(lines))

    single = results[1].total_seconds
    # no configuration achieves a meaningful gain
    for d in DEVICES[1:]:
        assert results[d].total_seconds > single * 0.9
