"""Gateway service throughput: frames/s and MB/s through a localhost
pair at compression worker counts 1/2/4.

The service's claim to scale is the ingress fan-out: the CPU-bound
LZSS encoder runs in a ``ProcessPoolExecutor`` behind a bounded queue
while frames leave in order (`docs/service.md` §2).  This harness
pushes the same mixed-kind buffer stream through a real
server+client pair over 127.0.0.1 per worker count and reports the
end-to-end rates, in the style of the other `benchmarks/results/`
files.
"""

from __future__ import annotations

import asyncio
import os
from time import perf_counter

import pytest

from benchmarks.conftest import report
from benchmarks.harness import publish, summarize
from repro.datasets import generate
from repro.service import GatewayClient, GatewayServer, Metrics

WORKER_COUNTS = (1, 2, 4)
N_FRAMES = 12
FRAME_BYTES = 32 * 1024
KINDS = ("cfiles", "demap", "kernel_tarball", "dictionary")


def _traffic() -> list[bytes]:
    return [generate(KINDS[i % len(KINDS)], FRAME_BYTES, seed=4000 + i)
            for i in range(N_FRAMES)]


async def _push(buffers: list[bytes], workers: int) -> tuple[float, Metrics]:
    metrics = Metrics()

    async def deliver(sid, seq, data):
        pass

    async with GatewayServer(metrics=metrics, deliver=deliver) as server:
        client = GatewayClient(port=server.port, workers=workers,
                               queue_depth=2 * workers, metrics=metrics)
        async with client:
            # warm the worker pool outside the timed window
            await client.send_stream([buffers[0]], stream_id=0)
            t0 = perf_counter()
            ack = await client.send_stream(buffers, stream_id=1)
            elapsed = perf_counter() - t0
        await server.close()
    assert ack.matches(buffers)
    return elapsed, metrics


@pytest.mark.slow
def test_gateway_throughput(benchmark):
    buffers = _traffic()
    total_mb = sum(len(b) for b in buffers) / 1e6

    def sweep():
        rows = []
        for workers in WORKER_COUNTS:
            elapsed, metrics = asyncio.run(_push(buffers, workers))
            wire = metrics.count("ingress.bytes_out")
            rows.append((workers, elapsed, N_FRAMES / elapsed,
                         total_mb / elapsed, wire))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else os.cpu_count() or 1
    base = rows[0][1]
    lines = ["GATEWAY THROUGHPUT: localhost pair, "
             f"{N_FRAMES} x {FRAME_BYTES // 1024} KiB mixed-kind frames "
             f"({cores} CPU core(s) available)",
             f"{'workers':>8}{'time':>9}{'frames/s':>10}{'MB/s':>8}"
             f"{'speedup':>9}"]
    for workers, elapsed, fps, mbps, wire in rows:
        lines.append(f"{workers:>8}{elapsed:>8.2f}s{fps:>10.1f}{mbps:>8.2f}"
                     f"{base / elapsed:>8.2f}x")
    lines.append(f"wire bytes per run: {rows[0][4]:,} "
                 f"(ratio {rows[0][4] / (total_mb * 1e6):.3f}); "
                 "compression fan-out is the scaling axis — "
                 "the frame protocol and ACK path stay constant")
    if cores < max(WORKER_COUNTS):
        lines.append(f"note: only {cores} core(s) available; worker "
                     "scaling needs as many cores as workers to show")
    report("gateway_throughput", "\n".join(lines))

    # publish the sweep into the BENCH_gateway.json trajectory so runs
    # are comparable across commits (honest single-sample entries: the
    # summary records repeats=1, and the fingerprint says where it ran)
    publish("gateway", "full",
            {f"w{workers}.stream": summarize(
                [elapsed], frames_per_s=round(fps, 1),
                mb_s=round(mbps, 2), wire_bytes=wire)
             for workers, elapsed, fps, mbps, wire in rows},
            params={"frames": N_FRAMES, "frame_bytes": FRAME_BYTES,
                    "kinds": list(KINDS)})

    # more workers must not lose frames or corrupt order (ack checked
    # inside _push); scaling should at least not regress wall time badly
    assert all(r[1] > 0 for r in rows)
