"""Benchmark the pluggable codecs and the content-aware dispatcher.

Standalone (no pytest) so the CI quick lane and local profiling runs
share one entry point::

    PYTHONPATH=src python benchmarks/bench_codecs.py            # full
    PYTHONPATH=src python benchmarks/bench_codecs.py --quick    # CI lane

Measures every registered codec (store, lzss, lz4s, lzss-huffman) plus
the ``auto`` dispatcher through :func:`repro.bench.gate.codec_cases` —
the same measurement the ``culzss benchgate --suite codecs`` gate
re-runs later, so the committed trajectory and the gate's fresh run
are directly comparable.  Every encode case carries its compression
ratio next to its throughput; the rendered report adds the two
headline comparisons this subsystem exists for:

* ``lz4s`` encode throughput vs ``lzss`` (the speed-tuned codec must
  actually be faster);
* ``auto`` ratio vs ``lzss`` (the dispatcher must never lose more
  than noise to the single-codec baseline).

Results append to the ``BENCH_codecs.json`` trajectory at the repo
root (schema 2, newest run last) and overwrite the human-readable
``benchmarks/results/bench_codecs.txt``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from harness import bench_path, publish  # noqa: E402
from repro.bench.gate import CHUNK_SIZE, MODES, codec_cases  # noqa: E402

RESULTS_DIR = Path(__file__).parent / "results"


def render(run: dict) -> str:
    meta, params = run["meta"], run["params"]
    lines = [
        "bench_codecs: per-chunk codecs + auto dispatcher",
        f"  mode={run['mode']}  size={params['size_bytes']} B  "
        f"repeats={params['repeats']}  chunk={params['chunk_size']} B  "
        f"python={meta['python']}  git={meta.get('git_sha') or '?'}",
        "",
        "  medians (cfiles corpus, IQR in brackets):",
    ]
    names = sorted({n.split(".")[1] for n in run["cases"]})
    for name in names:
        enc = run["cases"][f"codec.{name}.encode"]
        dec = run["cases"][f"codec.{name}.decode"]
        lines.append(
            f"    {name:<13} enc {enc['median_seconds']*1e3:9.2f} ms "
            f"[{enc['iqr_low_seconds']*1e3:.2f}.."
            f"{enc['iqr_high_seconds']*1e3:.2f}] {enc['mb_s']:8.3f} MB/s  "
            f"ratio {enc['ratio']:.4f}   dec {dec['median_seconds']*1e3:8.2f}"
            f" ms {dec['mb_s']:8.3f} MB/s")
    lz4s = run["cases"]["codec.lz4s.encode"]
    lzss = run["cases"]["codec.lzss.encode"]
    auto = run["cases"]["codec.auto.encode"]
    speedup = (lzss["median_seconds"] / lz4s["median_seconds"]
               if lz4s["median_seconds"] else float("inf"))
    lines.append("")
    lines.append(f"  lz4s encode speedup vs lzss: x{speedup:.2f} "
                 f"({'OK' if speedup > 1.0 else 'FAIL: not faster'})")
    ratio_ok = auto["ratio"] <= lzss["ratio"] * 1.01
    lines.append(f"  auto ratio {auto['ratio']:.4f} vs lzss "
                 f"{lzss['ratio']:.4f} "
                 f"({'OK' if ratio_ok else 'FAIL: >1% worse'})")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for the CI lane")
    parser.add_argument("--size-bytes", type=int, default=None,
                        help="corpus size in bytes (default: the gate's "
                             "mode workload, so runs stay comparable)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timed repeats per case (default: gate mode)")
    parser.add_argument("--output", default=None,
                        help="trajectory path (default BENCH_codecs.json)")
    args = parser.parse_args(argv)

    mode = "quick" if args.quick else "full"
    mode_size, mode_repeats, warmup = MODES[mode]
    size_bytes = args.size_bytes or mode_size
    repeats = args.repeats or mode_repeats

    cases = codec_cases(size_bytes, repeats=repeats, warmup=warmup)
    out_path = Path(args.output) if args.output else bench_path("codecs")
    run = publish("codecs", mode, cases,
                  params={"size_bytes": size_bytes, "repeats": repeats,
                          "chunk_size": CHUNK_SIZE},
                  path=out_path)
    text = render(run)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "bench_codecs.txt").write_text(text + "\n")
    print(text)
    print(f"\nappended run to {out_path}")
    return 0 if "FAIL" not in text else 1


if __name__ == "__main__":
    sys.exit(main())
