"""Ablation — §III.D: "we moved the buffers to shared memory ...
This allowed us a 30% speed up over the global memory implementation."

Runs the V1 cost model with its search buffers in shared memory versus
L1-cached global memory and reports the speedup per dataset.
"""

import pytest

from benchmarks.conftest import report
from repro.bench.paper import PAPER_DATASET_ORDER, PAPER_DATASET_TITLES
from repro.core.params import CompressionParams
from repro.core.v1 import V1Compressor
from repro.model.gpu import scale_to_paper


def _v1_seconds(arts, cal, buffers_in_shared: bool) -> float:
    params = CompressionParams(version=1, buffers_in_shared=buffers_in_shared)
    compressor = V1Compressor(params)
    prof = compressor.profile(arts.v1, cal, arts.sample)
    return scale_to_paper(prof.total_seconds, arts.size)


def test_shared_memory_ablation(benchmark, artifacts, calibration):
    rows = benchmark.pedantic(
        lambda: {
            name: (_v1_seconds(artifacts[name], calibration, True),
                   _v1_seconds(artifacts[name], calibration, False))
            for name in PAPER_DATASET_ORDER
        },
        rounds=1, iterations=1)

    lines = ["ABLATION (§III.D): V1 buffers in shared vs global memory",
             f"{'dataset':<16}{'shared':>10}{'global':>10}{'speedup':>10}"
             "   (paper reports ~30% — i.e. ~1.3x)"]
    for name, (shared_s, global_s) in rows.items():
        lines.append(f"{PAPER_DATASET_TITLES[name]:<16}{shared_s:>9.2f}s"
                     f"{global_s:>9.2f}s{global_s / shared_s:>9.2f}x")
    report("ablation_shared_memory", "\n".join(lines))

    for name, (shared_s, global_s) in rows.items():
        speedup = global_s / shared_s
        # shared must win, in the vicinity of the paper's 1.3x
        assert 1.05 < speedup < 2.5, (name, speedup)
