"""Ablation — §III.D: "128 threads per block configuration is giving
the best performance."

Sweeps the V2 launch shape over {32..512} threads per block on the
C-files dataset.  The tradeoff the model carries: small blocks multiply
dispatch overhead and starve latency hiding; past 128 the V1-style
shared footprints stop fitting (§V) — 128 is the sweet spot.
"""

import pytest

from benchmarks.conftest import report
from repro.core.params import CompressionParams
from repro.core.v1 import V1Compressor
from repro.core.v2 import V2Compressor
from repro.gpusim.scheduler import occupancy
from repro.gpusim.spec import FERMI_GTX480
from repro.model.gpu import scale_to_paper

SWEEP = (32, 64, 128, 256, 512)


def _v2_seconds(arts, cal, threads: int) -> float:
    params = CompressionParams(version=2, threads_per_block=threads)
    prof = V2Compressor(params).profile(arts.v2, cal)
    return scale_to_paper(prof.total_seconds, arts.size)


def test_threads_per_block_sweep(benchmark, artifacts, calibration):
    arts = artifacts["cfiles"]
    times = benchmark.pedantic(
        lambda: {t: _v2_seconds(arts, calibration, t) for t in SWEEP},
        rounds=1, iterations=1)

    lines = ["ABLATION (§III.D): V2 threads-per-block sweep, C files",
             f"{'threads':>8}{'modeled':>12}   V1 buffers fit?"]
    for threads in SWEEP:
        v1_fit = occupancy(FERMI_GTX480, threads,
                           CompressionParams(
                               version=1,
                               threads_per_block=threads).shared_bytes_per_block
                           ).launchable
        lines.append(f"{threads:>8}{times[threads]:>11.2f}s   "
                     f"{'yes' if v1_fit else 'NO (16 KB exceeded)'}")
    lines.append("paper: 128 threads/block is best")
    report("ablation_threads_per_block", "\n".join(lines))

    best = min(times, key=times.get)
    assert best == 128, times
    # §V's complementary claim: V1's buffers stop fitting past 256.
    assert not occupancy(
        FERMI_GTX480, 512,
        CompressionParams(version=1,
                          threads_per_block=512).shared_bytes_per_block
    ).launchable
