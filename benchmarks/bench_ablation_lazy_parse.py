"""Ablation — §VII: "there are also further improvement opportunities
on the LZSS algorithm, like improved searching with better search
algorithms."

Quantifies two classic refinements on the paper's datasets: one-byte
lazy evaluation of matches (zlib-style) and the bit-optimal DP parse.
Reported as measured ratio deltas for the serial format.
"""

import pytest

from benchmarks.conftest import report
from repro.bench.paper import PAPER_DATASET_ORDER, PAPER_DATASET_TITLES
from repro.datasets import generate
from repro.lzss.encoder import encode
from repro.lzss.formats import SERIAL

SIZE = 256 * 1024


def test_lazy_parse_ratios(benchmark):
    def sweep():
        out = {}
        for name in PAPER_DATASET_ORDER:
            data = generate(name, SIZE)
            out[name] = tuple(
                encode(data, SERIAL, parse=p).stats.ratio
                for p in ("greedy", "lazy", "optimal"))
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["EXTENSION (§VII): parse strategies, serial format "
             "(measured ratios)",
             f"{'dataset':<16}{'greedy':>10}{'lazy':>10}{'optimal':>10}"
             f"{'opt gain':>10}"]
    for name, (greedy, lazy, optimal) in rows.items():
        lines.append(f"{PAPER_DATASET_TITLES[name]:<16}"
                     f"{greedy * 100:>9.2f}%{lazy * 100:>9.2f}%"
                     f"{optimal * 100:>9.2f}%"
                     f"{(greedy - optimal) * 100:>+9.2f}pt")
    report("extension_lazy_parse", "\n".join(lines))

    for name, (greedy, lazy, optimal) in rows.items():
        assert lazy <= greedy + 1e-9, name
        assert optimal <= lazy + 1e-9, name
