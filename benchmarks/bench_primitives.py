"""Real wall-clock microbenchmarks of this library's primitives.

Everything above measures the *modeled* 2011 testbed; these measure the
actual Python/NumPy implementation on the machine running the suite —
the numbers a downstream user of the library cares about.
"""

import numpy as np
import pytest

from repro.bzip2.bwt import bwt_transform
from repro.bzip2.mtf import mtf_encode
from repro.bzip2.pipeline import compress as bz_compress
from repro.datasets import generate
from repro.lzss.decoder import decode
from repro.lzss.encoder import encode
from repro.lzss.formats import CUDA_V2, SERIAL
from repro.lzss.lagmatch import lag_best_matches
from repro.lzss.matcher import hash_chain_best_matches
from repro.util.bitio import pack_tokens
from repro.util.checksum import adler32

SIZE = 256 * 1024


@pytest.fixture(scope="module")
def cfiles():
    return generate("cfiles", SIZE)


def test_serial_encode(benchmark, cfiles):
    r = benchmark(encode, cfiles, SERIAL)
    benchmark.extra_info["MB_per_s_hint"] = "see stats"
    assert r.stats.ratio < 1.0


def test_v2_window_scan(benchmark, cfiles):
    res = benchmark(lag_best_matches, cfiles, 128, 66)
    assert res.compare_count > 0


def test_hash_chain_matcher(benchmark, cfiles):
    blen, _ = benchmark(hash_chain_best_matches, cfiles, 4096, 18)
    assert blen.max() > 0


def test_decode(benchmark, cfiles):
    r = encode(cfiles, SERIAL)
    out = benchmark(decode, r.payload, SERIAL, SIZE)
    assert out == cfiles


def test_bwt(benchmark, cfiles):
    last, _ = benchmark(bwt_transform, cfiles[:131072])
    assert len(last) == 131072


def test_mtf(benchmark, cfiles):
    out = benchmark(mtf_encode, cfiles[:131072])
    assert len(out) == 131072


def test_bzip2_pipeline(benchmark, cfiles):
    r = benchmark(bz_compress, cfiles)
    assert r.ratio < 0.6


def test_pack_tokens(benchmark):
    rng = np.random.default_rng(0)
    values = rng.integers(0, 1 << 16, 200_000)
    nbits = rng.integers(9, 18, 200_000)
    values &= (1 << nbits) - 1
    payload, total = benchmark(pack_tokens, values, nbits)
    assert total == nbits.sum()


def test_adler32(benchmark, cfiles):
    assert benchmark(adler32, cfiles) > 0
