"""Shared benchmark fixtures: one functional run per dataset, reused.

The expensive part of every table is the *functional* compression runs
(real bytes, exact operation counts); they are gathered once per
session at ``REPRO_BENCH_MB`` MiB (default 1) and shared by all
benchmark files.  Rendered tables are collected in ``REPORTS`` and
printed by the ``pytest_terminal_summary`` hook, so
``pytest benchmarks/ --benchmark-only`` shows them without ``-s``;
they are also written to ``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.harness import bench_bytes, gather_artifacts, run_dataset
from repro.bench.paper import PAPER_DATASET_ORDER
from repro.model.fitting import fit_calibration

#: Rendered report blocks, printed at session end and saved to disk.
REPORTS: dict[str, str] = {}

RESULTS_DIR = Path(__file__).parent / "results"


def report(name: str, text: str) -> None:
    REPORTS[name] = text
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def artifacts():
    """Functional runs of all five datasets at benchmark scale."""
    size = bench_bytes()
    return {name: gather_artifacts(name, size)
            for name in PAPER_DATASET_ORDER}


@pytest.fixture(scope="session")
def calibration(artifacts):
    """Anchors re-fitted against this session's C-files artifacts."""
    return fit_calibration(artifacts["cfiles"])


@pytest.fixture(scope="session")
def runs(artifacts, calibration):
    """Modeled paper-scale results for every dataset."""
    return {name: run_dataset(arts, calibration)
            for name, arts in artifacts.items()}


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not REPORTS:
        return
    tr = terminalreporter
    tr.section("CULZSS reproduction — paper tables and figures")
    for name in sorted(REPORTS):
        tr.write_line("")
        tr.write_line(REPORTS[name])
