"""Shim for environments without the `wheel` package (offline installs).

`pip install -e .` needs bdist_wheel; `python setup.py develop` does not.
All metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
