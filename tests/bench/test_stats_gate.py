"""Statistical bench harness + ``culzss benchgate`` regression gate."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.bench import gate, stats


# ------------------------------------------------------------- stats

def test_measure_runs_warmup_then_repeats():
    calls = []
    samples = stats.measure(lambda: calls.append(1), repeats=4, warmup=2)
    assert len(samples) == 4
    assert len(calls) == 6
    assert all(s >= 0 for s in samples)
    with pytest.raises(ValueError):
        stats.measure(lambda: None, repeats=0)


def test_summarize_median_and_iqr():
    s = stats.summarize([0.4, 0.1, 0.2, 0.3], mb_s=12.5)
    assert s["repeats"] == 4
    assert s["median_seconds"] == pytest.approx(0.25)
    assert s["iqr_low_seconds"] <= s["median_seconds"] <= s["iqr_high_seconds"]
    assert s["min_seconds"] == 0.1 and s["max_seconds"] == 0.4
    assert s["mb_s"] == 12.5


def test_summarize_few_samples_degrades_to_min_max():
    s = stats.summarize([0.2, 0.1])
    assert s["iqr_low_seconds"] == 0.1
    assert s["iqr_high_seconds"] == 0.2
    with pytest.raises(ValueError):
        stats.summarize([])


def test_fingerprint_is_honest():
    fp = stats.fingerprint()
    assert fp["cpu_count"] == (os.cpu_count() or 1)
    assert abs(fp["timestamp"] - time.time()) < 60
    assert fp["python"].count(".") == 2
    assert fp["git_sha"]  # tests run inside the repo


def test_trajectory_append_only_and_bounded(tmp_path):
    path = tmp_path / "BENCH_x.json"
    for i in range(5):
        run = stats.new_run("x", "quick", {"case": stats.summarize([0.1])},
                            params={"i": i})
        stats.append_run(path, run, keep=3)
    doc = stats.load_trajectory(path)
    assert doc["schema"] == stats.SCHEMA_VERSION
    assert [r["params"]["i"] for r in doc["runs"]] == [2, 3, 4]
    latest = stats.latest_run(doc, mode="quick", bench="x")
    assert latest["params"]["i"] == 4
    assert stats.latest_run(doc, mode="full") is None


def test_load_trajectory_tolerates_legacy_and_garbage(tmp_path):
    legacy = tmp_path / "old.json"
    legacy.write_text(json.dumps({"meta": {"cpu_count": 1}, "engine": []}))
    assert stats.load_trajectory(legacy)["runs"] == []
    garbage = tmp_path / "bad.json"
    garbage.write_text("{not json")
    assert stats.load_trajectory(garbage)["runs"] == []
    assert stats.load_trajectory(tmp_path / "missing.json")["runs"] == []


# ----------------------------------------------------------- compare

def case(median: float, lo: float, hi: float) -> dict:
    return {"repeats": 5, "median_seconds": median,
            "iqr_low_seconds": lo, "iqr_high_seconds": hi,
            "min_seconds": lo, "max_seconds": hi}


def test_compare_flags_disjoint_regression():
    base = {"cases": {"enc": case(0.100, 0.098, 0.102)}}
    fresh = {"cases": {"enc": case(0.200, 0.195, 0.205)}}
    report = gate.compare_runs(base, fresh, threshold_pct=25.0)
    assert not report["ok"]
    assert report["regressions"] == ["enc"]
    assert report["cases"][0]["change_pct"] == pytest.approx(100.0)


def test_compare_iqr_overlap_is_the_escape_hatch():
    # median +60% but spreads overlap: noisy host, not a regression
    base = {"cases": {"enc": case(0.100, 0.090, 0.180)}}
    fresh = {"cases": {"enc": case(0.160, 0.150, 0.300)}}
    report = gate.compare_runs(base, fresh, threshold_pct=25.0)
    assert report["ok"]
    assert report["cases"][0]["status"] == "noisy"


def test_compare_improvement_and_unmatched_pass():
    base = {"cases": {"enc": case(0.2, 0.19, 0.21),
                      "gone": case(0.1, 0.09, 0.11)}}
    fresh = {"cases": {"enc": case(0.1, 0.09, 0.11),
                       "new": case(0.1, 0.09, 0.11)}}
    report = gate.compare_runs(base, fresh)
    assert report["ok"]
    statuses = {c["name"]: c["status"] for c in report["cases"]}
    assert statuses == {"enc": "ok", "gone": "unmatched",
                       "new": "unmatched"}


# ---------------------------------------------------- gate end-to-end

SIZE, REPEATS = 16_000, 4


def test_gate_passes_on_unchanged_tree(tmp_path):
    path = tmp_path / "BENCH_engine.json"
    assert gate.run_gate(path, mode="quick", update=True,
                         size_bytes=SIZE, repeats=REPEATS,
                         out=lambda *a: None) == 0
    # generous threshold: this asserts the wiring (same tree gates
    # green), not the sensitivity, which sub-ms cases would flake
    assert gate.run_gate(path, mode="quick", size_bytes=SIZE,
                         repeats=REPEATS, threshold_pct=150.0,
                         out=lambda *a: None) == 0


def test_gate_fails_on_injected_encode_slowdown(tmp_path, monkeypatch):
    from repro.lzss import encoder

    path = tmp_path / "BENCH_engine.json"
    assert gate.run_gate(path, mode="quick", update=True,
                         size_bytes=SIZE, repeats=REPEATS,
                         out=lambda *a: None) == 0
    real = encoder.encode_chunked

    def slowed(*args, **kwargs):
        time.sleep(0.2)
        return real(*args, **kwargs)

    monkeypatch.setattr(encoder, "encode_chunked", slowed)
    lines: list[str] = []
    assert gate.run_gate(path, mode="quick", size_bytes=SIZE,
                         repeats=REPEATS, out=lines.append) == 1
    text = "\n".join(lines)
    assert "REGRESSION" in text and "encode_v2" in text


def test_gate_without_baseline_exits_two(tmp_path):
    lines: list[str] = []
    rc = gate.run_gate(tmp_path / "missing.json", mode="quick",
                       size_bytes=SIZE, repeats=REPEATS, out=lines.append)
    assert rc == 2
    assert "--update" in "\n".join(lines)


def test_gate_rejects_unknown_mode(tmp_path):
    with pytest.raises(ValueError):
        gate.run_gate(tmp_path / "x.json", mode="nightly")


@pytest.mark.slow
def test_cli_benchgate_wires_through(tmp_path, capsys):
    """The CLI path at the real quick workload: update then judge."""
    from repro.cli import main

    baseline = tmp_path / "BENCH_engine.json"
    assert main(["benchgate", "--quick", "--update",
                 "--baseline", str(baseline)]) == 0
    rc = main(["benchgate", "--quick", "--baseline", str(baseline)])
    assert rc == 0
    assert "gate: PASS" in capsys.readouterr().out
