"""Statistical bench harness + ``culzss benchgate`` regression gate."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.bench import gate, stats


# ------------------------------------------------------------- stats

def test_measure_runs_warmup_then_repeats():
    calls = []
    samples = stats.measure(lambda: calls.append(1), repeats=4, warmup=2)
    assert len(samples) == 4
    assert len(calls) == 6
    assert all(s >= 0 for s in samples)
    with pytest.raises(ValueError):
        stats.measure(lambda: None, repeats=0)


def test_summarize_median_and_iqr():
    s = stats.summarize([0.4, 0.1, 0.2, 0.3], mb_s=12.5)
    assert s["repeats"] == 4
    assert s["median_seconds"] == pytest.approx(0.25)
    assert s["iqr_low_seconds"] <= s["median_seconds"] <= s["iqr_high_seconds"]
    assert s["min_seconds"] == 0.1 and s["max_seconds"] == 0.4
    assert s["mb_s"] == 12.5


def test_summarize_few_samples_degrades_to_min_max():
    s = stats.summarize([0.2, 0.1])
    assert s["iqr_low_seconds"] == 0.1
    assert s["iqr_high_seconds"] == 0.2
    with pytest.raises(ValueError):
        stats.summarize([])


def test_fingerprint_is_honest():
    fp = stats.fingerprint()
    assert fp["cpu_count"] == (os.cpu_count() or 1)
    assert abs(fp["timestamp"] - time.time()) < 60
    assert fp["python"].count(".") == 2
    assert fp["git_sha"]  # tests run inside the repo


def test_trajectory_append_only_and_bounded(tmp_path):
    path = tmp_path / "BENCH_x.json"
    for i in range(5):
        run = stats.new_run("x", "quick", {"case": stats.summarize([0.1])},
                            params={"i": i})
        stats.append_run(path, run, keep=3)
    doc = stats.load_trajectory(path)
    assert doc["schema"] == stats.SCHEMA_VERSION
    assert [r["params"]["i"] for r in doc["runs"]] == [2, 3, 4]
    latest = stats.latest_run(doc, mode="quick", bench="x")
    assert latest["params"]["i"] == 4
    assert stats.latest_run(doc, mode="full") is None


def test_load_trajectory_tolerates_legacy_and_garbage(tmp_path):
    legacy = tmp_path / "old.json"
    legacy.write_text(json.dumps({"meta": {"cpu_count": 1}, "engine": []}))
    assert stats.load_trajectory(legacy)["runs"] == []
    garbage = tmp_path / "bad.json"
    garbage.write_text("{not json")
    assert stats.load_trajectory(garbage)["runs"] == []
    assert stats.load_trajectory(tmp_path / "missing.json")["runs"] == []


# ----------------------------------------------------------- compare

def case(median: float, lo: float, hi: float) -> dict:
    return {"repeats": 5, "median_seconds": median,
            "iqr_low_seconds": lo, "iqr_high_seconds": hi,
            "min_seconds": lo, "max_seconds": hi}


def test_compare_flags_disjoint_regression():
    base = {"cases": {"enc": case(0.100, 0.098, 0.102)}}
    fresh = {"cases": {"enc": case(0.200, 0.195, 0.205)}}
    report = gate.compare_runs(base, fresh, threshold_pct=25.0)
    assert not report["ok"]
    assert report["regressions"] == ["enc"]
    assert report["cases"][0]["change_pct"] == pytest.approx(100.0)


def test_compare_iqr_overlap_is_the_escape_hatch():
    # median +60% but spreads overlap: noisy host, not a regression
    base = {"cases": {"enc": case(0.100, 0.090, 0.180)}}
    fresh = {"cases": {"enc": case(0.160, 0.150, 0.300)}}
    report = gate.compare_runs(base, fresh, threshold_pct=25.0)
    assert report["ok"]
    assert report["cases"][0]["status"] == "noisy"


def test_compare_improvement_and_unmatched_pass():
    base = {"cases": {"enc": case(0.2, 0.19, 0.21),
                      "gone": case(0.1, 0.09, 0.11)}}
    fresh = {"cases": {"enc": case(0.1, 0.09, 0.11),
                       "new": case(0.1, 0.09, 0.11)}}
    report = gate.compare_runs(base, fresh)
    assert report["ok"]
    statuses = {c["name"]: c["status"] for c in report["cases"]}
    assert statuses == {"enc": "ok", "gone": "unmatched",
                       "new": "unmatched"}


# --------------------------------------------------------- attribution

def test_capture_stages_diffs_the_global_registry():
    from repro import obs

    with stats.capture_stages() as cap:
        with obs.stage("encode.match", bytes=1000):
            time.sleep(0.01)
    assert "encode.match" in cap.stages
    row = cap.stages["encode.match"]
    assert row["bytes"] == 1000 and row["calls"] == 1
    assert row["seconds"] >= 0.009
    assert row["share"] == pytest.approx(1.0, abs=0.01)


def stage_row(share: float, seconds: float) -> dict:
    return {"seconds": seconds, "bytes": 1000, "calls": 1, "share": share}


def test_attribute_case_names_the_share_gainer():
    base = {"stages": {"encode.match": stage_row(0.50, 0.10),
                       "encode.pack": stage_row(0.50, 0.10)}}
    fresh = {"stages": {"encode.match": stage_row(0.80, 0.40),
                        "encode.pack": stage_row(0.20, 0.10)}}
    attr = gate.attribute_case(base, fresh)
    assert attr["suspects"] == ["encode.match"]
    top = attr["rows"][0]
    assert top["stage"] == "encode.match"
    assert top["share_delta"] == pytest.approx(0.30)
    assert top["seconds_ratio"] == pytest.approx(4.0)


def test_attribute_case_uniform_slowdown_names_top_gainer_only():
    # both stages doubled: no share moved past the floor, so the single
    # top gainer is named rather than nothing (never a silent verdict)
    base = {"stages": {"a": stage_row(0.6, 0.6), "b": stage_row(0.4, 0.4)}}
    fresh = {"stages": {"a": stage_row(0.61, 1.22),
                        "b": stage_row(0.39, 0.78)}}
    attr = gate.attribute_case(base, fresh)
    assert attr["suspects"] == ["a"]


def test_attribute_case_without_stage_data_is_none():
    assert gate.attribute_case({}, {"stages": {"a": stage_row(1, 1)}}) is None
    assert gate.attribute_case({"stages": {"a": stage_row(1, 1)}}, {}) is None


# ---------------------------------------------------- gate end-to-end

SIZE, REPEATS = 16_000, 4


def test_gate_passes_on_unchanged_tree(tmp_path):
    path = tmp_path / "BENCH_engine.json"
    assert gate.run_gate(path, mode="quick", update=True,
                         size_bytes=SIZE, repeats=REPEATS,
                         out=lambda *a: None) == 0
    # generous threshold: this asserts the wiring (same tree gates
    # green), not the sensitivity, which sub-ms cases would flake
    assert gate.run_gate(path, mode="quick", size_bytes=SIZE,
                         repeats=REPEATS, threshold_pct=150.0,
                         out=lambda *a: None) == 0


def test_gate_fails_on_injected_encode_slowdown(tmp_path, monkeypatch):
    from repro.lzss import encoder

    path = tmp_path / "BENCH_engine.json"
    assert gate.run_gate(path, mode="quick", update=True,
                         size_bytes=SIZE, repeats=REPEATS,
                         out=lambda *a: None) == 0
    real = encoder.encode_chunked

    def slowed(*args, **kwargs):
        time.sleep(0.2)
        return real(*args, **kwargs)

    monkeypatch.setattr(encoder, "encode_chunked", slowed)
    lines: list[str] = []
    assert gate.run_gate(path, mode="quick", size_bytes=SIZE,
                         repeats=REPEATS, out=lines.append) == 1
    text = "\n".join(lines)
    assert "REGRESSION" in text and "encode_v2" in text


def test_gate_cases_record_stage_breakdowns():
    cases = gate.gate_cases(SIZE, repeats=2, warmup=0)
    assert "encode.match" in cases["encode_v2"]["stages"]
    assert "decode.stream" in cases["decode_v2"]["stages"]
    assert "container.unpack" in cases["container_unpack"]["stages"]
    for summary in cases.values():
        shares = sum(v["share"] for v in summary["stages"].values())
        assert shares == pytest.approx(1.0, abs=0.02)


def test_gate_attribution_names_the_slowed_stage(tmp_path):
    """The acceptance criterion: induce a regression in one known stage
    and ``--attribute`` must name exactly that stage."""
    from repro.lzss import encoder
    from repro.testing import faults

    path = tmp_path / "BENCH_engine.json"
    assert gate.run_gate(path, mode="quick", update=True,
                         size_bytes=SIZE, repeats=REPEATS,
                         out=lambda *a: None) == 0
    lines: list[str] = []
    with faults.slow_call(encoder, "best_matches", 0.05):
        rc = gate.run_gate(path, mode="quick", size_bytes=SIZE,
                           repeats=REPEATS, attribute=True,
                           out=lines.append)
    assert rc == 1
    text = "\n".join(lines)
    assert "REGRESSION" in text and "encode_v2" in text
    # judge the encode_v2 block specifically: a sub-ms case elsewhere
    # can regress on timer noise under load, with its own attribution
    block = text.split("encode_v2", 1)[1]
    suspect = next(line for line in block.splitlines()
                   if "suspect stage(s):" in line)
    assert "encode.match" in suspect, text
    # the grown stage is flagged inline in the share table too
    assert any("encode.match" in line and "<-- suspect" in line
               for line in block.splitlines()), text


def test_gate_attribution_against_pre_stage_baseline_hints_refresh(tmp_path):
    """Baselines recorded before stage capture existed: attribution
    degrades to an actionable hint, never a crash."""
    path = tmp_path / "BENCH_engine.json"
    assert gate.run_gate(path, mode="quick", update=True,
                         size_bytes=SIZE, repeats=REPEATS,
                         out=lambda *a: None) == 0
    # strip the recorded breakdowns, as an old committed baseline would be
    doc = json.loads(path.read_text())
    for run in doc["runs"]:
        for case in run["cases"].values():
            case.pop("stages", None)
    path.write_text(json.dumps(doc))
    from repro.lzss import encoder
    from repro.testing import faults

    lines: list[str] = []
    with faults.slow_call(encoder, "best_matches", 0.05):
        rc = gate.run_gate(path, mode="quick", size_bytes=SIZE,
                           repeats=REPEATS, attribute=True,
                           out=lines.append)
    assert rc == 1
    assert "refresh it with `culzss benchgate --update`" in "\n".join(lines)


def test_gate_profile_writes_speedscope(tmp_path):
    path = tmp_path / "BENCH_engine.json"
    profile = tmp_path / "gate.speedscope.json"
    lines: list[str] = []
    assert gate.run_gate(path, mode="quick", update=True,
                         size_bytes=SIZE, repeats=REPEATS,
                         profile=profile, out=lines.append) == 0
    doc = json.loads(profile.read_text())
    assert doc["$schema"].endswith("file-format-schema.json")
    assert doc["profiles"] and doc["profiles"][0]["samples"]
    assert profile.with_suffix(".collapsed").exists()
    assert any("profile:" in line for line in lines)


def test_gate_without_baseline_exits_two(tmp_path):
    lines: list[str] = []
    rc = gate.run_gate(tmp_path / "missing.json", mode="quick",
                       size_bytes=SIZE, repeats=REPEATS, out=lines.append)
    assert rc == 2
    assert "--update" in "\n".join(lines)


def test_gate_rejects_unknown_mode(tmp_path):
    with pytest.raises(ValueError):
        gate.run_gate(tmp_path / "x.json", mode="nightly")


@pytest.mark.slow
def test_cli_benchgate_wires_through(tmp_path, capsys):
    """The CLI path at the real quick workload: update then judge."""
    from repro.cli import main

    baseline = tmp_path / "BENCH_engine.json"
    assert main(["benchgate", "--quick", "--update",
                 "--baseline", str(baseline)]) == 0
    # generous threshold, same rationale as the library-level test: this
    # asserts the wiring, and the sub-ms quick cases flake under load
    rc = main(["benchgate", "--quick", "--baseline", str(baseline),
               "--threshold", "150"])
    assert rc == 0
    assert "gate: PASS" in capsys.readouterr().out
