"""Benchmark harness and fitting: integration at a tiny scale."""

import pytest

from repro.bench.harness import bench_bytes, gather_artifacts, run_dataset
from repro.bench.paper import (
    PAPER_DATASET_ORDER,
    TABLE1_SECONDS,
    TABLE1_SYSTEMS,
    TABLE3_SECONDS,
)
from repro.bench.tables import (
    format_figure4,
    format_table,
    table1_rows,
    table2_rows,
    table3_rows,
)
from repro.model.fitting import fit_calibration
from repro.model.report import experiments_markdown, table_reports

SIZE = 192 * 1024


@pytest.fixture(scope="module")
def cfiles_artifacts():
    return gather_artifacts("cfiles", SIZE)


@pytest.fixture(scope="module")
def calibration(cfiles_artifacts):
    return fit_calibration(cfiles_artifacts)


@pytest.fixture(scope="module")
def runs(cfiles_artifacts, calibration):
    arts = {"cfiles": cfiles_artifacts,
            "highly_compressible": gather_artifacts("highly_compressible",
                                                    SIZE)}
    return {name: run_dataset(a, calibration) for name, a in arts.items()}


class TestFitting:
    def test_anchors_hit_exactly(self, runs):
        cf = runs["cfiles"]
        t1 = TABLE1_SECONDS["cfiles"]
        # CPU anchors solve exactly at any scale.
        for system in ("serial", "pthread", "bzip2"):
            assert cf.compress_seconds[system] == pytest.approx(
                t1[system], rel=0.02), system
        # GPU anchors carry a block-scheduling tail effect at this tiny
        # test scale (48 blocks over 15 SMs); the real benches run at
        # ≥1 MiB where the fit lands within a percent.
        for system in ("culzss_v1", "culzss_v2"):
            assert cf.compress_seconds[system] == pytest.approx(
                t1[system], rel=0.15), system
        assert cf.decompress_seconds["serial"] == pytest.approx(
            TABLE3_SECONDS["cfiles"]["serial"], rel=0.02)
        # The GPU decompression floor (transfers + per-byte copies +
        # scheduling tail) sits above the target at 192 KiB; the fit
        # clamps at its floor here and converges at bench scale.
        assert cf.decompress_seconds["culzss"] == pytest.approx(
            TABLE3_SECONDS["cfiles"]["culzss"], rel=0.6)

    def test_fit_requires_cfiles(self):
        arts = gather_artifacts("highly_compressible", 32 * 1024)
        with pytest.raises(ValueError):
            fit_calibration(arts)

    def test_fitted_constants_sane(self, calibration):
        assert 0.05 < calibration.cpu_cycles_per_compare < 20
        assert 2 < calibration.pthread_effective_parallelism < 8
        assert calibration.gpu_kernel_efficiency > 0


class TestPredictions:
    def test_headline_claims_hold(self, runs):
        """§I: up to 18x vs serial, 3x vs pthread — and §V's rules."""
        cf = runs["cfiles"]
        hc = runs["highly_compressible"]
        # GPU beats serial everywhere
        assert cf.compress_seconds["culzss_v2"] < cf.compress_seconds["serial"]
        assert hc.compress_seconds["culzss_v1"] < hc.compress_seconds["serial"]
        # V1 wins on highly-compressible, V2 on C files (§V)
        assert (hc.compress_seconds["culzss_v1"]
                < hc.compress_seconds["culzss_v2"])
        assert (cf.compress_seconds["culzss_v2"]
                < cf.compress_seconds["culzss_v1"])
        # BZIP2 collapses on highly-compressible data (160x claim)
        assert (hc.compress_seconds["bzip2"]
                > hc.compress_seconds["culzss_v1"] * 20)

    def test_ratios_are_measured_not_modeled(self, runs, cfiles_artifacts):
        assert (runs["cfiles"].ratios["serial"]
                == cfiles_artifacts.serial.stats.ratio)

    def test_speedup_helper(self, runs):
        cf = runs["cfiles"]
        assert cf.speedup_vs_serial("culzss_v2") == pytest.approx(
            cf.compress_seconds["serial"] / cf.compress_seconds["culzss_v2"])


class TestRendering:
    def test_tables_render(self, runs):
        t1 = format_table(table1_rows(runs), "TABLE I")
        t2 = format_table(table2_rows(runs), "TABLE II", percent=True)
        t3 = format_table(table3_rows(runs), "TABLE III")
        for text, needle in ((t1, "C files"), (t2, "%"), (t3, "CULZSS")):
            assert needle in text

    def test_figure4_renders(self, runs):
        fig = format_figure4(runs)
        assert "speedup" in fig
        assert "#" in fig

    def test_experiments_markdown(self, runs):
        md = experiments_markdown(runs)
        assert "⚓" in md  # anchors marked
        assert "Table I" in md
        reports = table_reports(runs)
        anchors = [c for c in reports if c.is_anchor]
        assert len(anchors) == 7  # five Table I + two Table III cells


class TestEnvKnob:
    def test_bench_bytes_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_MB", "2")
        assert bench_bytes() == 2 << 20
        monkeypatch.delenv("REPRO_BENCH_MB")
        assert bench_bytes() == 1 << 20
