"""End-to-end harness integration: run_all over all five datasets.

A miniature (256 KiB) version of exactly what ``culzss bench`` and the
benchmark suite execute: gather every functional artifact, re-fit the
anchors, model every cell, render every table.
"""

import pytest

from repro.bench import (
    format_figure4,
    format_table,
    run_all,
    table1_rows,
    table2_rows,
    table3_rows,
)
from repro.bench.paper import PAPER_DATASET_ORDER


@pytest.fixture(scope="module")
def runs():
    return run_all(size=256 * 1024)


def test_all_datasets_present(runs):
    assert sorted(runs) == sorted(PAPER_DATASET_ORDER)


def test_all_cells_finite_and_positive(runs):
    for run in runs.values():
        for seconds in run.compress_seconds.values():
            assert 0 < seconds < 1e4
        for seconds in run.decompress_seconds.values():
            assert 0 < seconds < 1e3
        for ratio in run.ratios.values():
            assert 0 < ratio < 1.3


def test_paper_orderings(runs):
    for name, run in runs.items():
        cs = run.compress_seconds
        # serial is the slowest LZSS everywhere (Table I)
        assert cs["serial"] > cs["pthread"]
        assert cs["serial"] > cs["culzss_v1"]
        # V1's ratio never beats serial's (Table II)
        assert run.ratios["culzss_v1"] >= run.ratios["serial"] - 1e-9
    # §V winners
    assert (runs["highly_compressible"].compress_seconds["culzss_v1"]
            < runs["highly_compressible"].compress_seconds["culzss_v2"])
    assert (runs["cfiles"].compress_seconds["culzss_v2"]
            < runs["cfiles"].compress_seconds["culzss_v1"])


def test_tables_render_for_all(runs):
    assert "Highly Compr." in format_table(table1_rows(runs), "t1")
    assert "%" in format_table(table2_rows(runs), "t2", percent=True)
    assert "CULZSS" in format_table(table3_rows(runs), "t3")
    assert "speedup" in format_figure4(runs)
