"""Bit-stream I/O: scalar writer/reader, vectorized pack/gather."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.bitio import (
    BitReader,
    BitWriter,
    gather_fields,
    pack_tokens,
    ragged_arange,
    unpack_bits,
)


class TestBitWriter:
    def test_single_bits_msb_first(self):
        w = BitWriter()
        for bit in (1, 0, 1, 0, 1, 0, 1, 0):
            w.write_bit(bit)
        assert w.getvalue() == bytes([0b10101010])

    def test_partial_byte_zero_padded(self):
        w = BitWriter()
        w.write_bits(0b101, 3)
        assert w.getvalue() == bytes([0b10100000])

    def test_bit_length_tracks_writes(self):
        w = BitWriter()
        w.write_bits(0x1F, 5)
        w.write_bits(0x3, 9)
        assert len(w) == 14

    def test_write_bytes_aligned_fast_path(self):
        w = BitWriter()
        w.write_bytes(b"\xde\xad")
        assert w.getvalue() == b"\xde\xad"

    def test_write_bytes_unaligned(self):
        w = BitWriter()
        w.write_bit(1)
        w.write_bytes(b"\xff")
        # 1 followed by 8 ones = 0b11111111 1 zero-padded
        assert w.getvalue() == bytes([0xFF, 0x80])

    def test_align_pads_to_byte(self):
        w = BitWriter()
        w.write_bit(1)
        w.align()
        assert len(w) == 8
        assert w.getvalue() == bytes([0x80])

    def test_value_too_wide_rejected(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_bits(4, 2)

    def test_zero_width_zero_value_ok(self):
        w = BitWriter()
        w.write_bits(0, 0)
        assert len(w) == 0


class TestBitReader:
    def test_roundtrip_with_writer(self):
        w = BitWriter()
        w.write_bits(0b110, 3)
        w.write_bits(0xABC, 12)
        r = BitReader(w.getvalue())
        assert r.read_bits(3) == 0b110
        assert r.read_bits(12) == 0xABC

    def test_eof_raises(self):
        r = BitReader(b"\x00")
        r.read_bits(8)
        with pytest.raises(EOFError):
            r.read_bit()

    def test_seek(self):
        r = BitReader(bytes([0b01000000]))
        assert r.read_bit() == 0
        r.seek_bit(1)
        assert r.read_bit() == 1
        assert r.bit_position == 2

    def test_bits_remaining(self):
        r = BitReader(b"\x00\x00")
        r.read_bits(5)
        assert r.bits_remaining == 11

    def test_accepts_numpy_input(self):
        r = BitReader(np.array([0xF0], dtype=np.uint8))
        assert r.read_bits(4) == 0xF


class TestRaggedArange:
    def test_basic(self):
        out = ragged_arange(np.array([3, 1, 2]))
        assert out.tolist() == [0, 1, 2, 0, 0, 1]

    def test_zeros_allowed(self):
        assert ragged_arange(np.array([0, 2, 0])).tolist() == [0, 1]

    def test_empty(self):
        assert ragged_arange(np.array([], dtype=np.int64)).size == 0


class TestPackTokens:
    def test_matches_scalar_writer(self):
        values = np.array([1, 0b1010, 0x1FF])
        nbits = np.array([1, 4, 9])
        packed, total = pack_tokens(values, nbits)
        w = BitWriter()
        for v, nb in zip(values, nbits):
            w.write_bits(int(v), int(nb))
        assert packed == w.getvalue()
        assert total == 14

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 30),
                              st.integers(0, (1 << 30) - 1)),
                    min_size=0, max_size=200))
    def test_property_equivalent_to_scalar(self, items):
        items = [(nb, v & ((1 << nb) - 1) if nb else 0) for nb, v in items]
        values = np.array([v for _, v in items], dtype=np.int64)
        nbits = np.array([nb for nb, _ in items], dtype=np.int64)
        packed, total = pack_tokens(values, nbits)
        w = BitWriter()
        for nb, v in items:
            w.write_bits(v, nb)
        assert packed == w.getvalue()
        assert total == len(w)

    def test_oversized_value_rejected(self):
        with pytest.raises(ValueError):
            pack_tokens(np.array([2]), np.array([1]))

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            pack_tokens(np.array([0]), np.array([-1]))

    def test_empty_stream(self):
        packed, total = pack_tokens(np.array([]), np.array([]))
        assert packed == b"" and total == 0


class TestGatherFields:
    def test_extracts_known_fields(self):
        bits = unpack_bits(bytes([0b10110100]))
        vals = gather_fields(bits, np.array([0, 3, 5]), 3)
        assert vals.tolist() == [0b101, 0b101, 0b100]

    def test_past_end_rejected(self):
        bits = unpack_bits(b"\xff")
        with pytest.raises(ValueError):
            gather_fields(bits, np.array([6]), 3)

    def test_zero_width(self):
        bits = unpack_bits(b"\xff")
        assert gather_fields(bits, np.array([0, 1]), 0).tolist() == [0, 0]

    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=4, max_size=64), st.integers(1, 16))
    def test_property_matches_bitreader(self, data, width):
        bits = unpack_bits(data)
        max_start = bits.size - width
        starts = np.arange(0, max_start + 1, max(1, width // 2))
        vals = gather_fields(bits, starts, width)
        r = BitReader(data)
        for s, v in zip(starts, vals):
            r.seek_bit(int(s))
            assert r.read_bits(width) == int(v)


class TestUnpackBits:
    def test_truncation(self):
        assert unpack_bits(b"\xff", 3).tolist() == [1, 1, 1]

    def test_full(self):
        assert unpack_bits(bytes([0b10000001])).tolist() == [1, 0, 0, 0, 0, 0, 0, 1]
