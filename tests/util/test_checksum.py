"""Checksums: from-scratch CRC-32 and vectorized Adler-32."""

import binascii
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.checksum import adler32, crc32, crc32_reference


class TestCrc32:
    def test_known_vector(self):
        # The classic "123456789" check value.
        assert crc32_reference(b"123456789") == 0xCBF43926

    def test_empty(self):
        assert crc32_reference(b"") == 0
        assert crc32(b"") == 0

    @settings(max_examples=50, deadline=None)
    @given(st.binary(max_size=512))
    def test_reference_matches_fast_path(self, data):
        assert crc32_reference(data) == crc32(data)

    @settings(max_examples=20, deadline=None)
    @given(st.binary(max_size=128), st.binary(max_size=128))
    def test_incremental(self, a, b):
        assert crc32_reference(b, crc32_reference(a)) == crc32_reference(a + b)

    def test_numpy_input(self):
        arr = np.frombuffer(b"hello world", dtype=np.uint8)
        assert crc32(arr) == binascii.crc32(b"hello world")

    def test_detects_single_bit_flip(self):
        data = bytearray(b"the quick brown fox")
        before = crc32(bytes(data))
        data[7] ^= 0x10
        assert crc32(bytes(data)) != before


class TestAdler32:
    def test_known_vector(self):
        assert adler32(b"Wikipedia") == 0x11E60398

    def test_empty(self):
        assert adler32(b"") == 1

    @settings(max_examples=50, deadline=None)
    @given(st.binary(max_size=2048))
    def test_matches_zlib(self, data):
        assert adler32(data) == zlib.adler32(data)

    @settings(max_examples=20, deadline=None)
    @given(st.binary(max_size=256), st.binary(max_size=256))
    def test_incremental(self, a, b):
        assert adler32(b, adler32(a)) == zlib.adler32(a + b)

    def test_crosses_chunk_boundary(self):
        data = bytes(np.random.default_rng(3).integers(
            0, 256, (1 << 20) + 17, dtype=np.uint8))
        assert adler32(data) == zlib.adler32(data)


@pytest.mark.parametrize("func", [crc32, adler32])
def test_checksum_accepts_all_buffer_types(func):
    raw = b"buffer type zoo"
    expected = func(raw)
    assert func(bytearray(raw)) == expected
    assert func(memoryview(raw)) == expected
    assert func(np.frombuffer(raw, dtype=np.uint8)) == expected
