"""Buffer conversions for the public API surface."""

import numpy as np
import pytest

from repro.util.buffers import as_bytes, as_u8, concat_u8


class TestAsU8:
    def test_bytes_zero_copy_view(self):
        arr = as_u8(b"abc")
        assert arr.dtype == np.uint8
        assert arr.tolist() == [97, 98, 99]

    def test_bytearray_and_memoryview(self):
        assert as_u8(bytearray(b"xy")).tolist() == [120, 121]
        assert as_u8(memoryview(b"xy")).tolist() == [120, 121]

    def test_ndarray_passthrough(self):
        src = np.array([1, 2, 3], dtype=np.uint8)
        assert as_u8(src) is not None
        assert as_u8(src).tolist() == [1, 2, 3]

    def test_wrong_dtype_rejected(self):
        with pytest.raises(TypeError):
            as_u8(np.array([1, 2], dtype=np.int32))

    def test_wrong_ndim_rejected(self):
        with pytest.raises(ValueError):
            as_u8(np.zeros((2, 2), dtype=np.uint8))

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            as_u8("a string")


class TestAsBytes:
    def test_identity_for_bytes(self):
        b = b"abc"
        assert as_bytes(b) is b

    def test_from_array(self):
        assert as_bytes(np.array([65, 66], dtype=np.uint8)) == b"AB"

    def test_rejects_other(self):
        with pytest.raises(TypeError):
            as_bytes(123)


class TestConcat:
    def test_mixed_parts(self):
        out = concat_u8([b"ab", np.array([99], dtype=np.uint8)])
        assert out.tobytes() == b"abc"

    def test_empty_list(self):
        assert concat_u8([]).size == 0
