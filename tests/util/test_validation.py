"""Argument-checking helpers."""

import pytest

from repro.util.timer import Timer
from repro.util.validation import require, require_range, require_type


def test_require_passes_and_fails():
    require(True, "never raised")
    with pytest.raises(ValueError, match="boom"):
        require(False, "boom")


def test_require_range_bounds_inclusive():
    require_range(0, 0, 10)
    require_range(10, 0, 10)
    with pytest.raises(ValueError, match="knob"):
        require_range(11, 0, 10, "knob")
    with pytest.raises(ValueError):
        require_range(-1, 0, 10)


def test_require_type_single_and_tuple():
    require_type(1, int)
    require_type("x", (int, str))
    with pytest.raises(TypeError, match="must be int"):
        require_type("x", int, "field")


def test_timer_measures_nonnegative_elapsed():
    with Timer() as t:
        sum(range(100))
    assert t.elapsed >= 0.0
