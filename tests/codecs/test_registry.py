"""The codec registry: names, wire ids, and their invariants."""

from __future__ import annotations

import numpy as np
import pytest

import repro.codecs  # noqa: F401 - registers the built-in codecs
from repro.codecs import (
    LZ4S_CODEC_ID,
    LZSS_CODEC_ID,
    LZSS_HUFFMAN_CODEC_ID,
    STORE_CODEC_ID,
    codec_names,
    get_codec,
    known_codec_ids,
    register_codec,
)
from repro.codecs.base import Codec


def test_wire_ids_are_frozen():
    """Ids are wire format (container v3, NEG frames) — never renumber."""
    assert STORE_CODEC_ID == 1
    assert LZSS_CODEC_ID == 2
    assert LZ4S_CODEC_ID == 3
    assert LZSS_HUFFMAN_CODEC_ID == 4
    assert known_codec_ids() == frozenset({1, 2, 3, 4})


def test_zero_is_not_a_codec_id():
    """A zeroed codec column must read as corruption, not as a codec."""
    assert 0 not in known_codec_ids()
    with pytest.raises(KeyError):
        get_codec(0)


def test_names_sorted_by_wire_id():
    assert codec_names() == ("store", "lzss", "lz4s", "lzss-huffman")


@pytest.mark.parametrize("name,cid", [("store", 1), ("lzss", 2),
                                      ("lz4s", 3), ("lzss-huffman", 4)])
def test_lookup_by_name_and_id_agree(name, cid):
    by_name = get_codec(name)
    assert by_name is get_codec(cid)
    assert by_name is get_codec(np.uint8(cid))  # container column dtype
    assert by_name.name == name
    assert by_name.codec_id == cid


def test_unknown_lookup_names_the_registered_codecs():
    with pytest.raises(KeyError, match="lzss"):
        get_codec("snappy")
    with pytest.raises(KeyError):
        get_codec(255)


def test_reregistering_same_codec_class_is_idempotent():
    """Module re-imports must not blow up the process-global registry."""
    before = get_codec("lzss")
    assert register_codec(type(before)()) is not before  # new instance ok
    assert get_codec("lzss").codec_id == LZSS_CODEC_ID
    assert codec_names() == ("store", "lzss", "lz4s", "lzss-huffman")


def test_conflicting_registration_rejected():
    class Imposter(Codec):
        name = "lzss"          # taken by a different class
        codec_id = 99

        def encode_chunk(self, chunk, fmt):  # pragma: no cover
            return b""

        def decode_chunk(self, payload, fmt, output_size, *,
                         chunk_index=0):  # pragma: no cover
            return np.zeros(0, dtype=np.uint8)

    with pytest.raises(ValueError, match="already registered"):
        register_codec(Imposter())

    Imposter.name, Imposter.codec_id = "imposter", LZ4S_CODEC_ID
    with pytest.raises(ValueError, match="already registered"):
        register_codec(Imposter())


@pytest.mark.parametrize("bad_id", [0, -1, 256])
def test_out_of_range_wire_id_rejected(bad_id):
    class OutOfRange(Codec):
        name = "out-of-range"
        codec_id = bad_id

        def encode_chunk(self, chunk, fmt):  # pragma: no cover
            return b""

        def decode_chunk(self, payload, fmt, output_size, *,
                         chunk_index=0):  # pragma: no cover
            return np.zeros(0, dtype=np.uint8)

    with pytest.raises(ValueError, match="codec_id"):
        register_codec(OutOfRange())


def test_capability_flags():
    """The dispatcher and docs rely on these; changing one is a design
    decision, not a refactor."""
    assert get_codec("store").uses_token_format is False
    assert get_codec("store").entropy_coded is False
    assert get_codec("lzss").uses_token_format is True
    assert get_codec("lz4s").uses_token_format is False
    assert get_codec("lzss-huffman").entropy_coded is True
