"""The content-aware dispatcher: choices, knobs, accounting, decode."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.codecs import (
    LZ4S_CODEC_ID,
    LZSS_CODEC_ID,
    LZSS_HUFFMAN_CODEC_ID,
    STORE_CODEC_ID,
)
from repro.codecs.dispatch import (
    MIN_PROBE_CHUNK,
    choose_chunk_codec,
    decode_chunked_multi,
    encode_chunked_auto,
    match_density,
    salvage_decode_chunked_multi,
)
from repro.errors import CorruptChunkError
from repro.lzss.encoder import encode_chunked
from repro.lzss.formats import CUDA_V2
from repro.lzss.matcher import (
    PROBE_BYTE_ENTROPY_BITS,
    PROBE_THRESHOLD_ENV,
    resolve_probe_threshold,
)
from repro.obs import log as obslog

CHUNK = 4096
RNG = np.random.default_rng(0xD15BA7C4)

RANDOM = RNG.integers(0, 256, CHUNK, dtype=np.uint8)
TEXT = np.frombuffer(
    (b"dispatch the codec that fits the content of the chunk. " * 120)
    [:CHUNK], dtype=np.uint8)
ZEROS = np.zeros(CHUNK, dtype=np.uint8)
# High byte entropy (~7.5 bits, below the 7.9 probe ceiling) but almost
# no repeating 4-grams: the lz4s sweet spot.
SPARSE = RNG.integers(0, 181, CHUNK, dtype=np.uint8)


def mixed_corpus() -> bytes:
    """One buffer whose chunks want different codecs."""
    return (TEXT.tobytes() + RANDOM.tobytes() + ZEROS.tobytes()
            + SPARSE.tobytes() + b"short tail")


# ------------------------------------------------------------- choosing

def test_match_density_extremes():
    assert match_density(ZEROS) == pytest.approx(1.0, abs=1e-3)
    assert match_density(RANDOM) < 0.01
    assert match_density(np.zeros(4, dtype=np.uint8)) == 0.0  # too small


def test_choose_routes_by_content():
    assert choose_chunk_codec(RANDOM) == "store"
    assert choose_chunk_codec(SPARSE) == "lz4s"
    assert choose_chunk_codec(ZEROS) == "trial"   # low entropy, match-rich
    assert choose_chunk_codec(TEXT) in ("lzss", "trial")


def test_tiny_chunks_skip_the_statistics():
    tiny = RANDOM[:MIN_PROBE_CHUNK - 1]
    assert choose_chunk_codec(tiny) == "lzss"


def test_probe_threshold_changes_the_store_decision():
    """Raising the ceiling to 8.0 makes random bytes 'compressible'
    (sampled entropy never reaches the true ceiling), so the chooser
    falls through to the density stage and picks lz4s."""
    assert choose_chunk_codec(RANDOM, probe_threshold=None) == "store"
    assert choose_chunk_codec(RANDOM, probe_threshold=8.0) == "lz4s"


# ------------------------------------------------------ threshold knob

def test_resolve_probe_threshold_precedence(monkeypatch):
    monkeypatch.delenv(PROBE_THRESHOLD_ENV, raising=False)
    assert resolve_probe_threshold() == PROBE_BYTE_ENTROPY_BITS
    monkeypatch.setenv(PROBE_THRESHOLD_ENV, "6.25")
    assert resolve_probe_threshold() == 6.25
    assert resolve_probe_threshold(7.5) == 7.5  # explicit override wins


@pytest.mark.parametrize("bad", ["0", "-1", "8.5", "bananas"])
def test_resolve_probe_threshold_rejects_bad_env(monkeypatch, bad):
    monkeypatch.setenv(PROBE_THRESHOLD_ENV, bad)
    with pytest.raises(ValueError):
        resolve_probe_threshold()


@pytest.mark.parametrize("bad", [0.0, -2.0, 9.0])
def test_resolve_probe_threshold_rejects_bad_override(bad):
    with pytest.raises(ValueError, match=r"\(0, 8\]"):
        resolve_probe_threshold(bad)


def test_env_threshold_reaches_the_chooser(monkeypatch):
    monkeypatch.setenv(PROBE_THRESHOLD_ENV, "8.0")
    assert choose_chunk_codec(RANDOM) == "lz4s"


# ------------------------------------------------------------- encoding

def test_lzss_mode_is_byte_identical_to_classic_path():
    data = np.frombuffer(mixed_corpus(), dtype=np.uint8)
    classic = encode_chunked(data, CUDA_V2, CHUNK)
    via_auto = encode_chunked_auto(data, CUDA_V2, CHUNK, codec="lzss")
    assert via_auto.payload == classic.payload
    assert list(via_auto.chunk_sizes) == list(classic.chunk_sizes)
    assert (via_auto.chunk_codecs == LZSS_CODEC_ID).all()


def test_auto_assigns_per_chunk_codecs_and_round_trips():
    raw = mixed_corpus()
    data = np.frombuffer(raw, dtype=np.uint8)
    result = encode_chunked_auto(data, CUDA_V2, CHUNK, codec="auto")
    ids = list(result.chunk_codecs)
    # chunk 1 is pure random → store; chunk 2 zeros → a trial winner;
    # chunk 3 sparse → lz4s; the final short tail stays lzss.
    assert ids[1] == STORE_CODEC_ID
    assert ids[2] in (LZSS_CODEC_ID, LZSS_HUFFMAN_CODEC_ID)
    assert ids[3] == LZ4S_CODEC_ID
    assert ids[4] == LZSS_CODEC_ID
    out, tokens = decode_chunked_multi(result.payload, CUDA_V2,
                                       result.chunk_sizes, CHUNK,
                                       len(raw), result.chunk_codecs)
    assert out == raw
    assert (tokens == 0).all()  # mixed streams have no token accounting


@pytest.mark.parametrize("codec,expected_id", [
    ("store", STORE_CODEC_ID), ("lz4s", LZ4S_CODEC_ID),
    ("lzss-huffman", LZSS_HUFFMAN_CODEC_ID)])
def test_forced_single_codec_mode(codec, expected_id):
    raw = mixed_corpus()
    data = np.frombuffer(raw, dtype=np.uint8)
    result = encode_chunked_auto(data, CUDA_V2, CHUNK, codec=codec)
    assert (result.chunk_codecs == expected_id).all()
    out, _ = decode_chunked_multi(result.payload, CUDA_V2,
                                  result.chunk_sizes, CHUNK, len(raw),
                                  result.chunk_codecs)
    assert out == raw


def test_auto_never_meaningfully_worse_than_lzss():
    """The issue's acceptance bar: ratio(auto) <= ratio(lzss) * 1.01."""
    data = np.frombuffer(mixed_corpus(), dtype=np.uint8)
    auto = encode_chunked_auto(data, CUDA_V2, CHUNK, codec="auto")
    lzss = encode_chunked(data, CUDA_V2, CHUNK)
    assert len(auto.payload) <= len(lzss.payload) * 1.01


def test_empty_and_unknown_inputs():
    empty = encode_chunked_auto(b"", CUDA_V2, CHUNK, codec="auto")
    assert empty.payload == b""
    assert empty.chunk_codecs.size == 0
    out, _ = decode_chunked_multi(b"", CUDA_V2, empty.chunk_sizes, CHUNK,
                                  0, empty.chunk_codecs)
    assert out == b""
    with pytest.raises(KeyError):
        encode_chunked_auto(b"x" * 100, CUDA_V2, CHUNK, codec="snappy")


# ------------------------------------------------------- observability

def test_store_fallback_emits_counter_and_log_line():
    data = np.concatenate([RANDOM, TEXT, RANDOM])
    before = obs.get_registry().snapshot()["counters"].get(
        "codec.store_fallbacks", 0)
    with obslog.capture() as cap:
        encode_chunked_auto(data, CUDA_V2, CHUNK, codec="auto")
    after = obs.get_registry().snapshot()["counters"]["codec.store_fallbacks"]
    assert after - before == 2
    events = [e for e in cap.events() if e["event"] == "store_fallback"]
    assert len(events) == 2
    assert {e["chunk"] for e in events} == {0, 2}
    assert all(e["scope"] == "chunk" for e in events)
    assert all(e["threshold"] == PROBE_BYTE_ENTROPY_BITS for e in events)


def test_per_codec_accounting():
    if not obs.enabled():  # pragma: no cover - REPRO_OBS=0 environments
        pytest.skip("obs disabled")
    data = np.frombuffer(mixed_corpus(), dtype=np.uint8)
    before = obs.get_registry().snapshot()
    result = encode_chunked_auto(data, CUDA_V2, CHUNK, codec="auto")
    after = obs.get_registry().snapshot()
    delta = {k: after["counters"][k] - before["counters"].get(k, 0)
             for k in after["counters"] if k.startswith("codec.chunks_")}
    assert delta["codec.chunks_store"] == 1
    assert delta["codec.chunks_lz4s"] == 1
    assert sum(delta.values()) == result.chunk_codecs.size
    ratios = after["histograms"]["codec.ratio_store"]
    assert ratios["count"] >= 1
    assert ratios["max"] <= 1.01  # store never expands


# ----------------------------------------------------- decode + salvage

def test_unknown_codec_id_is_corruption_strict():
    raw = mixed_corpus()
    data = np.frombuffer(raw, dtype=np.uint8)
    result = encode_chunked_auto(data, CUDA_V2, CHUNK, codec="auto")
    bad = result.chunk_codecs.copy()
    bad[1] = 0xFF
    with pytest.raises(CorruptChunkError) as exc:
        decode_chunked_multi(result.payload, CUDA_V2, result.chunk_sizes,
                             CHUNK, len(raw), bad)
    assert exc.value.chunk_index == 1
    assert "codec id 255" in str(exc.value)


def test_unknown_codec_id_is_reported_by_salvage():
    raw = mixed_corpus()
    data = np.frombuffer(raw, dtype=np.uint8)
    result = encode_chunked_auto(data, CUDA_V2, CHUNK, codec="auto")
    bad = result.chunk_codecs.copy()
    bad[1] = 0xFF
    out, _, report = salvage_decode_chunked_multi(
        result.payload, CUDA_V2, result.chunk_sizes, CHUNK, len(raw), bad,
        fill_byte=0xAB)
    assert report.unknown_codec == [1]
    assert report.lost == [1]
    assert sorted(report.recovered) == [0, 2, 3, 4]
    assert out[:CHUNK] == raw[:CHUNK]
    assert out[CHUNK:2 * CHUNK] == b"\xab" * CHUNK
    assert out[2 * CHUNK:] == raw[2 * CHUNK:]


def test_salvage_catches_decode_failures_per_chunk():
    """A chunk whose payload cannot decode under its recorded codec is
    lost, not fatal — the column survives, the bytes did not."""
    raw = mixed_corpus()
    data = np.frombuffer(raw, dtype=np.uint8)
    result = encode_chunked_auto(data, CUDA_V2, CHUNK, codec="lz4s")
    payload = bytearray(result.payload)
    lo = int(result.chunk_sizes[:2].sum())
    payload[lo:lo + int(result.chunk_sizes[2])] = b"\xff" * int(
        result.chunk_sizes[2])
    out, _, report = salvage_decode_chunked_multi(
        bytes(payload), CUDA_V2, result.chunk_sizes, CHUNK, len(raw),
        result.chunk_codecs)
    assert 2 in report.lost
    assert report.unknown_codec == []
    assert 0 in report.recovered and 1 in report.recovered
    assert out[:CHUNK] == raw[:CHUNK]


def test_decode_validates_column_coverage():
    data = np.frombuffer(mixed_corpus(), dtype=np.uint8)
    result = encode_chunked_auto(data, CUDA_V2, CHUNK, codec="auto")
    with pytest.raises(ValueError, match="codec column"):
        decode_chunked_multi(result.payload, CUDA_V2, result.chunk_sizes,
                             CHUNK, int(data.size),
                             result.chunk_codecs[:-1])
