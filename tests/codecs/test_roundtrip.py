"""Every codec round-trips every chunk shape byte-identically."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codecs import codec_names, get_codec
from repro.codecs.lz4s import LZ4S_MAX_MATCH
from repro.errors import CorruptChunkError
from repro.lzss.formats import CUDA_V2, SERIAL

CHUNK = 4096


def _u8(data: bytes) -> np.ndarray:
    return np.frombuffer(data, dtype=np.uint8)


def chunk_cases() -> list[tuple[str, bytes]]:
    rng = np.random.default_rng(0xC0DEC)
    unique257 = bytes(rng.permutation(256).astype(np.uint8)) + b"\x17"
    return [
        ("one_byte", b"\x42"),
        ("two_bytes", b"ab"),
        ("all_zero", b"\x00" * CHUNK),
        ("long_runs", (b"A" * (LZ4S_MAX_MATCH * 3) + b"B" * 7) * 4),
        # > 128 distinct literals in a row: exercises lz4s control-byte
        # splitting of long literal runs.
        ("long_literal_run", unique257),
        ("text", (b"the quick brown fox jumps over the lazy dog. " * 120)
         [:CHUNK]),
        ("random", rng.integers(0, 256, CHUNK, dtype=np.uint8).tobytes()),
        ("random_short", rng.integers(0, 256, 100, dtype=np.uint8).tobytes()),
        ("periodic", (bytes(range(20)) * 300)[:CHUNK]),
    ]


@pytest.mark.parametrize("codec_name", codec_names())
@pytest.mark.parametrize("case_name,raw",
                         chunk_cases(),
                         ids=[n for n, _ in chunk_cases()])
def test_chunk_round_trip(codec_name, case_name, raw):
    codec = get_codec(codec_name)
    payload = codec.encode_chunk(_u8(raw), CUDA_V2)
    out = codec.decode_chunk(_u8(payload), CUDA_V2, len(raw))
    assert bytes(out) == raw


@pytest.mark.parametrize("codec_name", codec_names())
def test_encode_run_matches_per_chunk_loop(codec_name):
    """The batch hook must be an optimization, not a format change."""
    codec = get_codec(codec_name)
    rng = np.random.default_rng(7)
    pieces = [(b"run run run! " * 400)[:CHUNK],
              rng.integers(0, 256, CHUNK, dtype=np.uint8).tobytes(),
              b"\x00" * CHUNK,
              b"tail chunk, shorter than the rest"]
    data = _u8(b"".join(pieces))
    payload, sizes = codec.encode_run(data, CUDA_V2, CHUNK)
    expected = [codec.encode_chunk(_u8(p), CUDA_V2) for p in pieces]
    assert list(sizes) == [len(p) for p in expected]
    assert payload == b"".join(expected)


@pytest.mark.parametrize("codec_name", ["store", "lz4s"])
def test_format_agnostic_codecs_ignore_token_format(codec_name):
    """``uses_token_format=False`` is a real promise: payloads are
    identical under any format and decode under any format."""
    codec = get_codec(codec_name)
    raw = (b"format agnostic payload " * 100)[:1800]
    a = codec.encode_chunk(_u8(raw), CUDA_V2)
    b = codec.encode_chunk(_u8(raw), SERIAL)
    assert a == b
    assert bytes(codec.decode_chunk(_u8(a), SERIAL, len(raw))) == raw


def test_store_decode_rejects_size_mismatch():
    codec = get_codec("store")
    with pytest.raises(CorruptChunkError):
        codec.decode_chunk(_u8(b"abc"), CUDA_V2, 5, chunk_index=3)


@pytest.mark.parametrize("codec_name", ["lz4s", "lzss-huffman"])
def test_truncated_payload_raises_corrupt_chunk(codec_name):
    """A short payload can never silently produce the declared size."""
    codec = get_codec(codec_name)
    raw = (b"truncate me, i dare you. " * 80)[:1500]
    payload = codec.encode_chunk(_u8(raw), CUDA_V2)
    with pytest.raises(CorruptChunkError) as exc:
        codec.decode_chunk(_u8(payload[: len(payload) // 2]), CUDA_V2,
                           len(raw), chunk_index=9)
    assert exc.value.chunk_index == 9


def test_lz4s_match_lengths_cover_the_cap():
    """Runs longer than the 131-byte match cap must chain matches."""
    codec = get_codec("lz4s")
    raw = b"x" * (LZ4S_MAX_MATCH * 5 + 3)
    payload = codec.encode_chunk(_u8(raw), CUDA_V2)
    assert len(payload) < len(raw) // 4
    assert bytes(codec.decode_chunk(_u8(payload), CUDA_V2, len(raw))) == raw


def test_lzss_huffman_beats_plain_lzss_on_skewed_bytes():
    """The entropy stage must pay for itself where the dispatcher
    expects it to: low-entropy literals that LZSS spends 9 bits each
    on.  (On tiny or highly-matchable chunks the ~141-byte code-table
    header dominates instead — that is why auto trial-encodes rather
    than predicting.)"""
    rng = np.random.default_rng(3)
    p = 0.5 ** np.arange(32)
    raw = rng.choice(np.arange(32, 64), CHUNK,
                     p=p / p.sum()).astype(np.uint8).tobytes()
    as_lzss = get_codec("lzss").encode_chunk(_u8(raw), CUDA_V2)
    as_huff = get_codec("lzss-huffman").encode_chunk(_u8(raw), CUDA_V2)
    assert len(as_huff) < len(as_lzss)
