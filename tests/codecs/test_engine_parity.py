"""Sharded auto-encode/multi-decode must be byte-identical to serial.

Codec choices are chunk-local statistics, so the ParallelEngine can
shard an auto encode without changing a single decision — these tests
are the proof the service layer relies on when it fans mixed-codec
frames across workers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codecs.dispatch import (
    decode_chunked_multi,
    encode_chunked_auto,
    salvage_decode_chunked_multi,
)
from repro.engine import ParallelEngine
from repro.lzss.formats import CUDA_V2

CHUNK = 2048


@pytest.fixture(scope="module")
def corpus() -> bytes:
    rng = np.random.default_rng(0xE9)
    return ((b"engine parity corpus, compressible segment. " * 200)[:3 * CHUNK]
            + rng.integers(0, 256, 3 * CHUNK, dtype=np.uint8).tobytes()
            + b"\x00" * (2 * CHUNK)
            + rng.integers(0, 181, 2 * CHUNK, dtype=np.uint8).tobytes()
            + b"tail")


@pytest.fixture(scope="module")
def engine():
    with ParallelEngine(workers=3) as eng:
        yield eng


@pytest.mark.parametrize("codec", ["auto", "lzss", "lz4s", "store",
                                   "lzss-huffman"])
def test_sharded_encode_is_byte_identical(engine, corpus, codec):
    data = np.frombuffer(corpus, dtype=np.uint8)
    serial = encode_chunked_auto(data, CUDA_V2, CHUNK, codec=codec)
    sharded = engine.encode_chunked_auto(data, CUDA_V2, CHUNK, codec=codec)
    assert sharded.payload == serial.payload
    assert list(sharded.chunk_sizes) == list(serial.chunk_sizes)
    assert list(sharded.chunk_codecs) == list(serial.chunk_codecs)


def test_sharded_multi_decode_round_trips(engine, corpus):
    data = np.frombuffer(corpus, dtype=np.uint8)
    result = encode_chunked_auto(data, CUDA_V2, CHUNK, codec="auto")
    out, _ = engine.decode_chunked_with_stats(
        result.payload, CUDA_V2, result.chunk_sizes, CHUNK, len(corpus),
        chunk_codecs=result.chunk_codecs)
    assert out == corpus


def test_sharded_salvage_merges_unknown_codec_reports(engine, corpus):
    data = np.frombuffer(corpus, dtype=np.uint8)
    result = encode_chunked_auto(data, CUDA_V2, CHUNK, codec="auto")
    bad = result.chunk_codecs.copy()
    victims = [0, int(bad.size) - 1]
    for v in victims:
        bad[v] = 0xEE
    got, _, report = engine.salvage_decode_chunked(
        result.payload, CUDA_V2, result.chunk_sizes, CHUNK, len(corpus),
        chunk_codecs=bad, fill_byte=0x5A)
    _, _, serial_report = salvage_decode_chunked_multi(
        result.payload, CUDA_V2, result.chunk_sizes, CHUNK, len(corpus),
        bad, fill_byte=0x5A)
    assert sorted(report.unknown_codec) == victims
    assert sorted(report.lost) == sorted(serial_report.lost)
    assert sorted(report.recovered) == sorted(serial_report.recovered)
    assert got[CHUNK:2 * CHUNK] == corpus[CHUNK:2 * CHUNK]
    assert got[:CHUNK] == b"\x5a" * CHUNK


def test_probe_threshold_respected_when_sharded(engine, corpus):
    data = np.frombuffer(corpus, dtype=np.uint8)
    serial = encode_chunked_auto(data, CUDA_V2, CHUNK, codec="auto",
                                 probe_threshold=8.0)
    sharded = engine.encode_chunked_auto(data, CUDA_V2, CHUNK, codec="auto",
                                         probe_threshold=8.0)
    assert list(sharded.chunk_codecs) == list(serial.chunk_codecs)
    assert sharded.payload == serial.payload
