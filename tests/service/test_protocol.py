"""The gateway frame protocol: layout, CRCs, async framing."""

from __future__ import annotations

import asyncio
import struct

import pytest

from repro.service.protocol import (
    FLAG_ACK,
    FLAG_END,
    FLAG_RAW,
    FRAME_HEADER_SIZE,
    FRAME_MAGIC,
    Frame,
    FrameError,
    decode_frame,
    encode_frame,
    pack_ack,
    read_frame,
    unpack_ack,
)


@pytest.mark.parametrize("flags", [0, FLAG_RAW, FLAG_END, FLAG_ACK,
                                   FLAG_RAW | FLAG_END])
@pytest.mark.parametrize("payload", [b"", b"x", b"hello frame" * 100])
def test_round_trip(flags, payload):
    frame = Frame(stream_id=7, seq=123456789, flags=flags, payload=payload)
    blob = encode_frame(frame)
    assert blob[:4] == FRAME_MAGIC
    assert len(blob) == FRAME_HEADER_SIZE + len(payload)
    assert frame.wire_size == len(blob)
    decoded, consumed = decode_frame(blob)
    assert decoded == frame
    assert consumed == len(blob)


def test_decode_ignores_trailing_bytes():
    frame = Frame(stream_id=1, seq=2, payload=b"abc")
    blob = encode_frame(frame) + b"NEXTFRAME..."
    decoded, consumed = decode_frame(blob)
    assert decoded == frame
    assert consumed == FRAME_HEADER_SIZE + 3


def test_flag_properties():
    f = Frame(0, 0, flags=FLAG_RAW | FLAG_END)
    assert f.is_raw and f.is_end and not f.is_ack
    assert Frame(0, 0, flags=FLAG_ACK).is_ack


@pytest.mark.parametrize("mutate_at", [0, 5, 10, 20, 30])
def test_header_corruption_detected(mutate_at):
    blob = bytearray(encode_frame(Frame(1, 2, payload=b"payload")))
    blob[mutate_at] ^= 0xFF
    with pytest.raises(FrameError):
        decode_frame(bytes(blob))


def test_payload_corruption_detected():
    blob = bytearray(encode_frame(Frame(1, 2, payload=b"payload")))
    blob[-1] ^= 0x01
    with pytest.raises(FrameError, match="payload checksum"):
        decode_frame(bytes(blob))


def test_truncation_detected():
    blob = encode_frame(Frame(1, 2, payload=b"payload"))
    with pytest.raises(FrameError):
        decode_frame(blob[:FRAME_HEADER_SIZE - 1])
    with pytest.raises(FrameError):
        decode_frame(blob[:-1])


def test_unknown_flags_rejected():
    head = struct.pack("<4sBBHQQII", FRAME_MAGIC, 1, 0x80, 0, 0, 0, 0, 0)
    from repro.util.checksum import crc32

    blob = head + struct.pack("<I", crc32(head))
    with pytest.raises(FrameError, match="flags"):
        decode_frame(blob)


def test_ack_payload_round_trip():
    payload = pack_ack(12, 34567, 0xDEADBEEF)
    assert unpack_ack(payload) == (12, 34567, 0xDEADBEEF)
    with pytest.raises(FrameError):
        unpack_ack(payload + b"x")


def _fed_reader(*blobs: bytes, eof: bool = True) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    for blob in blobs:
        reader.feed_data(blob)
    if eof:
        reader.feed_eof()
    return reader


def test_read_frame_stream():
    frames = [Frame(1, i, payload=bytes([i]) * i) for i in range(5)]

    async def scenario():
        reader = _fed_reader(b"".join(encode_frame(f) for f in frames))
        got = []
        while (f := await read_frame(reader)) is not None:
            got.append(f)
        return got

    assert asyncio.run(scenario()) == frames


def test_read_frame_clean_eof_is_none():
    async def scenario():
        return await read_frame(_fed_reader())

    assert asyncio.run(scenario()) is None


def test_read_frame_mid_frame_eof_raises():
    blob = encode_frame(Frame(1, 2, payload=b"payload"))

    async def scenario(cut: int):
        return await read_frame(_fed_reader(blob[:cut]))

    with pytest.raises(FrameError, match="mid-header"):
        asyncio.run(scenario(10))
    with pytest.raises(FrameError, match="mid-payload"):
        asyncio.run(scenario(FRAME_HEADER_SIZE + 2))


def test_read_frame_timeout():
    async def scenario():
        reader = asyncio.StreamReader()  # never fed
        await read_frame(reader, timeout=0.05)

    with pytest.raises((asyncio.TimeoutError, TimeoutError)):
        asyncio.run(scenario())
