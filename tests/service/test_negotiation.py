"""Codec negotiation: NEG frames and the gateway handshake.

The exchange is advisory — containers self-describe their codecs — but
a well-behaved client only ships codec ids the server echoed back, and
downgrades to the classic lzss pipeline otherwise.  Streams that never
leave lzss skip the exchange entirely, which keeps historical traffic
byte-identical.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.codecs import known_codec_ids
from repro.service import GatewayClient, GatewayServer, Metrics
from repro.service.protocol import (
    FLAG_NEG,
    Frame,
    FrameError,
    pack_neg,
    unpack_neg,
)

# ------------------------------------------------------------ NEG frames


def test_pack_unpack_round_trip():
    assert unpack_neg(pack_neg({3, 1, 2})) == frozenset({1, 2, 3})
    assert unpack_neg(pack_neg([4, 4, 4])) == frozenset({4})
    assert unpack_neg(pack_neg([])) == frozenset()


def test_pack_neg_is_canonical():
    # Sorted and deduplicated: one set, one byte sequence (the frames
    # are comparable across implementations and in logs).
    assert pack_neg({2, 1}) == pack_neg([1, 2, 2, 1]) == b"\x01\x02"


@pytest.mark.parametrize("bad", [{0}, {256}, {-1}])
def test_pack_neg_rejects_non_wire_ids(bad):
    with pytest.raises(FrameError):
        pack_neg(bad)


def test_unpack_neg_rejects_garbage():
    with pytest.raises(FrameError):
        unpack_neg(b"\x00")  # id 0 is never a codec
    with pytest.raises(FrameError):
        unpack_neg(bytes(range(1, 256)) + b"\x01")  # longer than the id space


def test_neg_flag_is_a_known_frame_type():
    frame = Frame(0, 0, flags=FLAG_NEG, payload=pack_neg(known_codec_ids()))
    assert frame.is_neg
    assert not Frame(0, 0, payload=b"x").is_neg


# ------------------------------------------------------- the handshake


def _deliverer(sink: list):
    async def deliver(sid, seq, data):
        sink.append(data)
    return deliver


def _run(coro):
    return asyncio.run(coro)


def _traffic() -> list[bytes]:
    rng = np.random.default_rng(0x4E47)
    return [b"negotiated stream " * 300,
            rng.integers(0, 256, 8192, dtype=np.uint8).tobytes()]


def test_auto_client_offers_everything_and_is_accepted():
    metrics = Metrics()
    got: list[bytes] = []

    async def scenario():
        async with GatewayServer(metrics=metrics,
                                 deliver=_deliverer(got)) as server:
            client = GatewayClient(port=server.port, metrics=metrics,
                                   codec="auto")
            async with client:
                assert client.accepted_codecs == known_codec_ids()
                assert client.codec == "auto"
                await client.send_stream(_traffic(), stream_id=1)
            await server.close()

    _run(scenario())
    assert got == _traffic()
    assert metrics.count("client.neg_exchanges") == 1
    assert metrics.count("server.neg_exchanges") == 1
    assert metrics.count("client.codec_fallbacks") == 0


def test_restricted_server_forces_lzss_fallback():
    metrics = Metrics()
    got: list[bytes] = []

    async def scenario():
        async with GatewayServer(metrics=metrics, deliver=_deliverer(got),
                                 accept_codecs=["lzss"]) as server:
            client = GatewayClient(port=server.port, metrics=metrics,
                                   codec="lz4s")
            async with client:
                # The reply is the intersection with the offer — lz4s
                # was the whole offer, so nothing came back.
                assert client.accepted_codecs == frozenset()
                assert client.codec == "lzss"  # downgraded before traffic
                await client.send_stream(_traffic(), stream_id=1)
            await server.close()

    _run(scenario())
    assert got == _traffic()
    assert metrics.count("client.codec_fallbacks") == 1


def test_lzss_client_skips_the_exchange():
    # The compatibility promise: classic streams carry zero NEG frames.
    metrics = Metrics()
    got: list[bytes] = []

    async def scenario():
        async with GatewayServer(metrics=metrics,
                                 deliver=_deliverer(got)) as server:
            client = GatewayClient(port=server.port, metrics=metrics)
            async with client:
                assert client.accepted_codecs is None
                await client.send_stream(_traffic(), stream_id=1)
            await server.close()

    _run(scenario())
    assert got == _traffic()
    assert metrics.count("client.neg_exchanges") == 0
    assert metrics.count("server.neg_exchanges") == 0


def test_negotiated_codec_delivers_mixed_content():
    # lz4s accepted end-to-end: random payloads (stored/raw frames) and
    # compressible ones arrive byte-identical.
    metrics = Metrics()
    got: list[bytes] = []

    async def scenario():
        async with GatewayServer(metrics=metrics,
                                 deliver=_deliverer(got)) as server:
            client = GatewayClient(port=server.port, metrics=metrics,
                                   codec="lz4s")
            async with client:
                assert client.codec == "lz4s"
                await client.send_stream(_traffic(), stream_id=7)
            await server.close()

    _run(scenario())
    assert got == _traffic()
