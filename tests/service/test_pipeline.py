"""Pipelines: payload codec, ordering, backpressure, reassembly."""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.datasets import REGISTRY, generate
from repro.service.metrics import Metrics
from repro.service.pipeline import (
    EgressPipeline,
    IngressPipeline,
    decode_payload,
    encode_payload,
)
from repro.service.protocol import FLAG_END, FLAG_RAW, FRAME_HEADER_SIZE, Frame


# ---------------------------------------------------------------- payload

@pytest.mark.parametrize("kind", sorted(REGISTRY))
def test_payload_round_trip_every_dataset(kind):
    data = generate(kind, 4096, seed=11)
    flags, payload = encode_payload(data)
    assert decode_payload(flags, payload) == data


@pytest.mark.parametrize("data", [b"", b"x", b"ab" * 5])
def test_payload_round_trip_tiny_buffers(data):
    flags, payload = encode_payload(data)
    # tiny buffers cannot beat the container header: raw passthrough
    assert flags & FLAG_RAW
    assert decode_payload(flags, payload) == data


def test_no_frame_expands_beyond_header():
    """The raw-passthrough guard: worst case is +FRAME_HEADER_SIZE."""
    rng = np.random.default_rng(0xF00D)
    cases = [b"", b"x", rng.integers(0, 256, 512, dtype=np.uint8).tobytes(),
             rng.integers(0, 256, 8192, dtype=np.uint8).tobytes(),
             generate("highly_compressible", 4096)]
    for data in cases:
        for version in (1, 2):
            flags, payload = encode_payload(data, version)
            wire = FRAME_HEADER_SIZE + len(payload)
            assert wire <= len(data) + FRAME_HEADER_SIZE
            assert decode_payload(flags, payload) == data


def test_incompressible_goes_raw_compressible_does_not():
    rnd = np.random.default_rng(1).integers(0, 256, 4096,
                                            dtype=np.uint8).tobytes()
    assert encode_payload(rnd)[0] & FLAG_RAW
    flags, payload = encode_payload(generate("highly_compressible", 4096))
    assert not flags & FLAG_RAW
    assert len(payload) < 4096


# ---------------------------------------------------------------- ingress

def _fake_job(data: bytes, version: int) -> tuple[int, bytes]:
    """Instant stand-in for compression (keeps pipeline tests fast)."""
    return FLAG_RAW, data


def test_ingress_preserves_order_across_workers():
    buffers = [bytes([i]) * (64 + i) for i in range(20)]
    sent: list[Frame] = []

    async def scenario():
        with ThreadPoolExecutor(max_workers=4) as pool:
            pipe = IngressPipeline(workers=4, queue_depth=4,
                                   executor=pool, job=_fake_job)

            async def send(frame):
                sent.append(frame)

            return await pipe.run(9, buffers, send)

    assert asyncio.run(scenario()) == len(buffers)
    assert [f.seq for f in sent] == list(range(20))
    assert [f.payload for f in sent] == buffers
    assert all(f.stream_id == 9 for f in sent)


def test_ingress_real_compression_round_trips():
    buffers = [generate("cfiles", 2048, seed=i) for i in range(4)]
    sent: list[Frame] = []

    async def scenario():
        # workers=0: compress on the loop's default thread pool
        pipe = IngressPipeline(workers=0, queue_depth=2)

        async def send(frame):
            sent.append(frame)

        await pipe.run(0, buffers, send)

    asyncio.run(scenario())
    assert [decode_payload(f.flags, f.payload) for f in sent] == buffers


def test_backpressure_bounds_producer_side_memory():
    """A slow consumer must throttle the read stage via the bounded
    queue: the source may run at most queue_depth + 2 buffers ahead of
    the consumer (the queue, one buffer in the blocked submit stage's
    hand, one being sent), and the queue-depth gauge never exceeds the
    configured bound."""
    depth = 3
    n = 24
    metrics = Metrics()
    pulled = 0
    consumed = 0
    max_lead = 0

    def source():
        nonlocal pulled
        for i in range(n):
            pulled += 1
            yield bytes(16)

    async def scenario():
        nonlocal consumed, max_lead
        with ThreadPoolExecutor(max_workers=4) as pool:
            pipe = IngressPipeline(workers=4, queue_depth=depth,
                                   executor=pool, metrics=metrics,
                                   job=_fake_job)

            async def slow_send(frame):
                nonlocal consumed, max_lead
                max_lead = max(max_lead, pulled - consumed)
                await asyncio.sleep(0.005)
                consumed += 1

            await pipe.run(0, source(), slow_send)

    asyncio.run(scenario())
    assert consumed == n
    assert max_lead <= depth + 2
    assert metrics.gauge_max("ingress.queue_depth") <= depth


# ----------------------------------------------------------------- egress

def _raw_frames(payloads, stream_id=0, start=0):
    return [Frame(stream_id=stream_id, seq=start + i, flags=FLAG_RAW,
                  payload=p) for i, p in enumerate(payloads)]


def _run_egress(frames, **kwargs):
    delivered = []
    ends = []
    metrics = kwargs.pop("metrics", Metrics())

    async def scenario():
        pipe = EgressPipeline(metrics=metrics, **kwargs)

        async def deliver(sid, seq, data):
            delivered.append((sid, seq, data))

        async def on_end(sid, seq):
            ends.append((sid, seq))

        return await pipe.run(frames, deliver, on_end=on_end)

    count = asyncio.run(scenario())
    return count, delivered, ends, metrics


def test_egress_delivers_in_order():
    frames = _raw_frames([b"a", b"b", b"c"])
    count, delivered, _, _ = _run_egress(frames)
    assert count == 3
    assert delivered == [(0, 0, b"a"), (0, 1, b"b"), (0, 2, b"c")]


def test_egress_reassembles_out_of_order_frames():
    f = _raw_frames([b"a", b"b", b"c", b"d"])
    count, delivered, _, _ = _run_egress([f[1], f[0], f[3], f[2]])
    assert count == 4
    assert [d for _, _, d in delivered] == [b"a", b"b", b"c", b"d"]


def test_egress_drops_and_counts_duplicates():
    f = _raw_frames([b"a", b"b"])
    count, delivered, _, metrics = _run_egress([f[0], f[0], f[1], f[1]])
    assert count == 2
    assert [d for _, _, d in delivered] == [b"a", b"b"]
    assert metrics.count("egress.duplicate_frames") == 2


def test_egress_interleaved_streams_each_in_order():
    a = _raw_frames([b"a0", b"a1"], stream_id=1)
    b = _raw_frames([b"b0", b"b1"], stream_id=2)
    _, delivered, _, _ = _run_egress([a[0], b[0], b[1], a[1]])
    assert [x for x in delivered if x[0] == 1] == [(1, 0, b"a0"), (1, 1, b"a1")]
    assert [x for x in delivered if x[0] == 2] == [(2, 0, b"b0"), (2, 1, b"b1")]


def test_egress_end_fires_after_all_prior_frames():
    frames = _raw_frames([b"a", b"b"]) + [Frame(0, 2, flags=FLAG_END)]
    count, delivered, ends, _ = _run_egress(frames)
    assert count == 2
    assert len(delivered) == 2
    assert ends == [(0, 2)]


def test_egress_decodes_real_containers():
    data = generate("dictionary", 4096, seed=3)
    flags, payload = encode_payload(data)
    frames = [Frame(0, 0, flags=flags, payload=payload)]
    _, delivered, _, _ = _run_egress(frames)
    assert delivered == [(0, 0, data)]


def test_stage_failure_cancels_the_sibling_stage():
    """A dying consumer must not leave the submit stage blocked forever
    on the bounded queue (the _run_both cancellation contract)."""

    async def scenario():
        pipe = IngressPipeline(workers=0, queue_depth=1, job=_fake_job)

        async def exploding_send(frame):
            raise RuntimeError("consumer died")

        await pipe.run(0, [b"x"] * 50, exploding_send)

    with pytest.raises(RuntimeError, match="consumer died"):
        asyncio.run(asyncio.wait_for(scenario(), timeout=10))
