"""Shared-memory frame transport, probe fast path, reorder bound."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.datasets import generate
from repro.engine import shm_available
from repro.service.metrics import Metrics
from repro.service.pipeline import EgressPipeline, IngressPipeline
from repro.service.protocol import FLAG_RAW, Frame

needs_shm = pytest.mark.skipif(not shm_available(),
                               reason="no usable POSIX shared memory")


async def _collect_ingress(pipe: IngressPipeline, buffers) -> list[Frame]:
    frames: list[Frame] = []

    async def send(frame: Frame) -> None:
        frames.append(frame)

    await pipe.run(0, buffers, send)
    return frames


async def _collect_egress(pipe: EgressPipeline, frames):
    delivered: list[tuple[int, int, bytes]] = []

    async def deliver(sid, seq, data):
        delivered.append((sid, seq, data))

    n = await pipe.run(frames, deliver)
    return n, delivered


# ------------------------------------------------------- reorder bound

def test_reorder_buffer_is_bounded_and_counts_evictions():
    m = Metrics()
    pipe = EgressPipeline(workers=0, queue_depth=2, metrics=m,
                          job=lambda flags, payload: payload)
    # want=0; seqs 2,3 get held, seq 4 arrives at a full bucket and is
    # dropped; 0 and 1 then release the held pair.
    frames = [Frame(stream_id=1, seq=s, flags=FLAG_RAW,
                    payload=b"frame-%d" % s) for s in (2, 3, 4, 0, 1)]
    n, delivered = asyncio.run(_collect_egress(pipe, frames))
    assert [seq for _, seq, _ in delivered] == [0, 1, 2, 3]
    assert n == 4
    assert m.count("egress.reorder_evictions") == 1
    snap = m.snapshot()["gauges"]["egress.reorder_depth"]
    assert snap["max"] <= 2


def test_reorder_bound_does_not_break_normal_reordering():
    m = Metrics()
    pipe = EgressPipeline(workers=0, queue_depth=8, metrics=m,
                          job=lambda flags, payload: payload)
    order = [3, 1, 0, 2, 5, 4]
    frames = [Frame(stream_id=0, seq=s, flags=FLAG_RAW,
                    payload=bytes([s]) * 4) for s in order]
    n, delivered = asyncio.run(_collect_egress(pipe, frames))
    assert [seq for _, seq, _ in delivered] == [0, 1, 2, 3, 4, 5]
    assert m.count("egress.reorder_evictions") == 0


# ----------------------------------------------------- probe fast path

def test_probe_ships_incompressible_frames_raw_without_a_worker():
    rnd = np.random.default_rng(3).integers(0, 256, 8192,
                                            dtype=np.uint8).tobytes()
    text = generate("highly_compressible", 8192)
    m = Metrics()
    with IngressPipeline(workers=0, metrics=m) as pipe:
        frames = asyncio.run(_collect_ingress(pipe, [rnd, text]))
    assert frames[0].flags & FLAG_RAW and frames[0].payload == rnd
    assert not frames[1].flags & FLAG_RAW
    assert m.count("ingress.probe_raw_frames") == 1
    assert m.count("ingress.raw_frames") == 1


def test_probe_skipped_for_injected_jobs():
    rnd = np.random.default_rng(4).integers(0, 256, 8192,
                                            dtype=np.uint8).tobytes()
    seen = []

    def job(data, version):
        seen.append(data)
        return FLAG_RAW, data

    m = Metrics()
    with IngressPipeline(workers=0, metrics=m, job=job) as pipe:
        asyncio.run(_collect_ingress(pipe, [rnd]))
    assert len(seen) == 1  # the custom job saw the buffer
    assert m.count("ingress.probe_raw_frames") == 0


# ------------------------------------------------------- shm transport

@needs_shm
@pytest.mark.slow
def test_shm_ingress_frames_equal_pickle_frames():
    buffers = [generate("cfiles", 20_000, seed=s) for s in (1, 2, 3)]
    shm_m, pkl_m = Metrics(), Metrics()
    with IngressPipeline(workers=1, metrics=shm_m, use_shm=True) as pipe:
        shm_frames = asyncio.run(_collect_ingress(pipe, buffers))
    with IngressPipeline(workers=1, metrics=pkl_m, use_shm=False) as pipe:
        pkl_frames = asyncio.run(_collect_ingress(pipe, buffers))
    assert [(f.flags, f.payload) for f in shm_frames] == \
        [(f.flags, f.payload) for f in pkl_frames]
    assert shm_m.count("ingress.shm_frames") == len(buffers)
    assert pkl_m.count("ingress.shm_frames") == 0


@needs_shm
@pytest.mark.slow
def test_shm_egress_round_trip():
    from repro.service.pipeline import encode_payload

    buffers = [generate("dictionary", 16_000, seed=s) for s in (5, 6)]
    frames = []
    for seq, data in enumerate(buffers):
        flags, payload = encode_payload(data)
        frames.append(Frame(stream_id=2, seq=seq, flags=flags,
                            payload=payload))
    m = Metrics()
    with EgressPipeline(workers=1, metrics=m, use_shm=True) as pipe:
        n, delivered = asyncio.run(_collect_egress(pipe, frames))
    assert n == len(buffers)
    assert [data for _, _, data in delivered] == buffers
    assert m.count("egress.shm_frames") == len(buffers)


def test_shm_disabled_when_pipeline_borrows_executor():
    pipe = IngressPipeline(workers=2, executor=None, use_shm=None)
    assert pipe.use_shm
    pipe.close()
    pipe = IngressPipeline(workers=0)
    assert not pipe.use_shm
    pipe.close()
    pipe = EgressPipeline(workers=2, job=lambda f, p: p)
    assert not pipe.use_shm  # custom job: worker-side codec is fixed
    pipe.close()
