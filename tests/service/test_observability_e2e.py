"""End-to-end observability: trace propagation, log correlation, SLOs.

The acceptance scenarios for the performance observatory:

* one trace id rides a frame from the client's ingress span, through
  the pool worker's shipped span delta, onto the v2 wire header, and
  into the server-side egress decode span;
* every degraded-mode branch emits exactly one structured JSON log
  line carrying the frame's trace id;
* an induced latency breach shows up on the live sidecar as
  ``/slo.json`` and as ``culzss_slo_*`` gauges in ``/metrics``;
* the sidecar survives concurrent scrapes and ``culzss top`` renders
  a full refresh from it in plain-text mode.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import obs
from repro.obs import log as obslog
from repro.obs import trace
from repro.service import GatewayClient, GatewayServer, Metrics
from repro.service.pipeline import IngressPipeline, decode_payload
from repro.testing import CrashingExecutor


@pytest.fixture(autouse=True)
def clean_obs():
    obs.enable()
    obs.reset()
    obslog.reset_rate_limits()
    yield
    obs.enable()
    obs.reset()
    obslog.reset_rate_limits()


def run_gateway_pair(buffers, *, client_workers=0, metrics=None):
    metrics = metrics or Metrics()
    delivered = []

    async def deliver(sid, seq, data):
        delivered.append(data)

    async def scenario():
        async with GatewayServer(metrics=metrics, deliver=deliver) as server:
            client = GatewayClient(port=server.port, workers=client_workers,
                                   metrics=metrics)
            async with client:
                ack = await client.send_stream(buffers)
            await server.close()
            return ack

    ack = asyncio.run(scenario())
    return ack, delivered


# ------------------------------------------------- trace propagation

@pytest.mark.slow
def test_trace_id_rides_frame_from_client_to_server_decode():
    """client ingress span -> pool worker delta -> v2 wire header ->
    server egress decode span: one 8-byte id end to end."""
    buffers = [b"trace propagation frame %d " % i * 400 for i in range(3)]
    ack, delivered = run_gateway_pair(buffers, client_workers=2)
    assert delivered == buffers and ack.frames == len(buffers)

    spans = [s for s in trace.spans() if s.name == "gateway.frame"]
    encode_tids = {s.trace_id for s in spans if s.attrs.get("op") == "encode"}
    decode_tids = {s.trace_id for s in spans if s.attrs.get("op") == "decode"}
    # every frame got a distinct nonzero id, and the decode (server)
    # side saw exactly the ids the encode (client) side stamped
    assert len(encode_tids) == len(buffers)
    assert all(encode_tids)
    assert decode_tids == encode_tids


# -------------------------------------------------- log correlation

@pytest.mark.slow
def test_worker_crash_log_line_carries_frame_trace_id():
    """The acceptance log test: an injected pool-worker crash produces
    exactly one worker_crash JSON line whose trace_id is the crashed
    frame's wire id."""
    buffers = [b"crash log frame %d " % i * 300 for i in range(3)]
    pipeline = IngressPipeline(workers=2, queue_depth=4,
                               executor=CrashingExecutor(crash_on=1))
    frames = []

    async def send(frame):
        frames.append(frame)

    async def scenario():
        with pipeline:
            await pipeline.run(1, buffers, send)

    with obslog.capture() as cap:
        asyncio.run(scenario())

    assert [decode_payload(f.flags, f.payload) for f in frames] == buffers
    tids = {f.trace_id for f in frames}
    # exactly one log line per counted degraded event (a single pool
    # crash poisons every pending future, so several frames report it)
    crashes = [e for e in cap.events() if e["event"] == "worker_crash"]
    assert len(crashes) == pipeline.metrics.count(
        "ingress.worker_crashes") >= 1
    assert all(e["stage"] == "ingress" for e in crashes)
    assert all(e["trace_id"] in tids and e["trace_id"] != 0
               for e in crashes)
    # the crashed frames then fell back serially: one line each, with
    # the same trace ids
    fallbacks = [e for e in cap.events() if e["event"] == "serial_fallback"]
    assert len(fallbacks) == pipeline.metrics.count(
        "ingress.serial_fallbacks") >= 1
    assert {e["trace_id"] for e in fallbacks} <= {e["trace_id"]
                                                  for e in crashes}
    # and every line in the capture is valid JSON (the lint invariant)
    for line in cap.lines():
        json.loads(line)


def test_salvage_log_line_is_trace_correlated():
    from repro.core import gpu_compress, gpu_decompress
    from repro.testing import corrupt_chunks

    data = bytes(range(256)) * 512
    blob = gpu_compress(data).data
    damaged = corrupt_chunks(blob, [1])
    with obslog.capture() as cap:
        res = gpu_decompress(damaged, errors="salvage")
    assert res.salvage is not None and res.salvage.lost
    events = [e for e in cap.events() if e["event"] == "salvage"]
    assert len(events) == 1
    assert events[0]["lost"] == len(res.salvage.lost)
    assert events[0]["trace_id"] != 0  # joined the api.decompress span


def test_engine_crash_and_fallback_each_log_once():
    from repro.engine import ParallelEngine
    from repro.lzss.formats import CUDA_V2
    from repro.testing import crash_factory

    data = (b"engine crash logging " * 64 + bytes(range(256))) * 96
    with obslog.capture() as cap:
        with ParallelEngine(workers=2, min_parallel_bytes=0,
                            executor_factory=crash_factory(crash_on=1)) \
                as engine:
            engine.encode_chunked(data, CUDA_V2, 4096)
    snap = obs.get_registry().snapshot()
    crashes = [e for e in cap.events() if e["event"] == "worker_crash"]
    fallbacks = [e for e in cap.events() if e["event"] == "serial_fallback"]
    assert len(crashes) == snap["counters"]["engine.worker_crashes"] == 1
    assert len(fallbacks) == snap["counters"]["engine.serial_fallbacks"] >= 1


# ------------------------------------------------- slo live sidecar

async def _http_get(host, port, path):
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"GET {path} HTTP/1.0\r\nHost: {host}\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    return int(head.split()[1]), body


@pytest.mark.slow
def test_induced_p99_breach_shows_on_slo_json_and_gauges():
    metrics = Metrics()

    async def scenario():
        async with GatewayServer(metrics=metrics,
                                 metrics_port=0) as server:
            # induce the breach: flood the latency histogram with
            # observations far above the 250 ms objective
            for _ in range(100):
                metrics.observe("egress.stage_wait_seconds", 2.0)
            slo_status, slo_body = await _http_get(
                server.host, server.metrics_port, "/slo.json")
            prom_status, prom_body = await _http_get(
                server.host, server.metrics_port, "/metrics")
            await server.close()
            return slo_status, slo_body, prom_status, prom_body

    slo_status, slo_body, prom_status, prom_body = asyncio.run(scenario())
    assert slo_status == 200 and prom_status == 200
    report = json.loads(slo_body)
    assert not report["ok"]
    p99 = next(o for o in report["objectives"]
               if o["name"] == "frame_p99_seconds")
    assert not p99["ok"]
    assert p99["value"] >= 2.0
    text = prom_body.decode()
    assert "culzss_slo_frame_p99_seconds_ok_last 0.0" in text
    assert "culzss_slo_ok_last 0.0" in text


@pytest.mark.slow
def test_sidecar_concurrent_scrapes_and_404():
    metrics = Metrics()

    async def scenario():
        async with GatewayServer(metrics=metrics,
                                 metrics_port=0) as server:
            results = await asyncio.gather(*[
                _http_get(server.host, server.metrics_port,
                          ["/metrics", "/metrics.json", "/slo.json",
                           "/nope"][i % 4])
                for i in range(12)])
            await server.close()
            return results

    results = asyncio.run(scenario())
    statuses = [status for status, _ in results]
    assert statuses.count(404) == 3
    assert statuses.count(200) == 9
    for status, body in results:
        if status == 200:
            assert body  # no torn responses under concurrency


@pytest.mark.slow
def test_top_renders_full_refresh_from_live_sidecar():
    """The acceptance dashboard test: one plain-text refresh against a
    live gateway sidecar shows throughput, latency, and SLO state."""
    from repro.obs.top import run_top

    metrics = Metrics()
    out: list[str] = []

    async def scenario():
        async with GatewayServer(metrics=metrics, metrics_port=0) as server:
            client = GatewayClient(port=server.port, workers=0,
                                   metrics=metrics)
            async with client:
                await client.send_stream(
                    [b"dashboard traffic " * 200 for _ in range(3)])
            loop = asyncio.get_running_loop()
            rc = await loop.run_in_executor(
                None, lambda: run_top(server.host, server.metrics_port,
                                      interval=0.0, iterations=1,
                                      plain=True, out=out.append))
            await server.close()
            return rc

    assert asyncio.run(scenario()) == 0
    text = "\n".join(out)
    assert "culzss top" in text
    assert "throughput" in text
    assert "served" in text and "3 frames" in text
    assert "slo" in text
    assert "frame_p99_seconds" in text and "error_rate" in text
    assert "waiting for sidecar" not in text
