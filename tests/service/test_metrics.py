"""Metrics layer: counters, gauges, histograms, snapshot shape."""

from __future__ import annotations

import json

from repro.service.metrics import Histogram, Metrics


def test_counters_accumulate():
    m = Metrics()
    m.inc("frames")
    m.inc("frames", 4)
    assert m.count("frames") == 5
    assert m.count("never_touched") == 0


def test_gauge_tracks_last_and_high_water():
    m = Metrics()
    for depth in (1, 5, 3):
        m.gauge("queue", depth)
    snap = m.snapshot()["gauges"]["queue"]
    assert snap == {"last": 3, "max": 5}
    assert m.gauge_max("queue") == 5
    assert m.gauge_max("missing") == 0.0


def test_histogram_stats():
    h = Histogram()
    for v in (1.0, 2.0, 3.0, 1000.0):
        h.record(v)
    assert h.count == 4
    assert h.min == 1.0 and h.max == 1000.0
    assert h.mean == 1006.0 / 4
    snap = h.snapshot()
    assert sum(snap["buckets"].values()) == 4
    # 1000 lands alone in the (512, 1024] bucket
    assert snap["buckets"]["le_2^10"] == 1


def test_histogram_handles_zero_and_tiny():
    h = Histogram()
    h.record(0.0)
    h.record(1e-30)
    assert h.count == 2
    assert h.min == 0.0
    assert sum(h.snapshot()["buckets"].values()) == 2


def test_snapshot_is_json_dumpable():
    m = Metrics()
    m.inc("a")
    m.gauge("b", 2)
    m.observe("c", 0.5)
    text = json.dumps(m.snapshot())
    assert '"counters"' in text and '"gauges"' in text
    assert '"histograms"' in text


def test_observe_builds_named_histograms():
    m = Metrics()
    for v in (0.1, 0.2, 0.4):
        m.observe("wait", v)
    hist = m.snapshot()["histograms"]["wait"]
    assert hist["count"] == 3
    assert abs(hist["sum"] - 0.7) < 1e-12
