"""Metrics layer: counters, gauges, histograms, snapshot shape."""

from __future__ import annotations

import json

from repro.service.metrics import Histogram, Metrics


def test_counters_accumulate():
    m = Metrics()
    m.inc("frames")
    m.inc("frames", 4)
    assert m.count("frames") == 5
    assert m.count("never_touched") == 0


def test_gauge_tracks_last_and_high_water():
    m = Metrics()
    for depth in (1, 5, 3):
        m.gauge("queue", depth)
    snap = m.snapshot()["gauges"]["queue"]
    assert snap == {"last": 3, "max": 5}
    assert m.gauge_max("queue") == 5
    assert m.gauge_max("missing") == 0.0


def test_histogram_stats():
    h = Histogram()
    for v in (1.0, 2.0, 3.0, 1000.0):
        h.record(v)
    assert h.count == 4
    assert h.min == 1.0 and h.max == 1000.0
    assert h.mean == 1006.0 / 4
    snap = h.snapshot()
    assert sum(snap["buckets"].values()) == 4
    # 1000 lands alone in the (512, 1024] bucket
    assert snap["buckets"]["le_2^10"] == 1


def test_histogram_handles_zero_and_tiny():
    h = Histogram()
    h.record(0.0)
    h.record(1e-30)
    assert h.count == 2
    assert h.min == 0.0
    assert sum(h.snapshot()["buckets"].values()) == 2


def test_snapshot_is_json_dumpable():
    m = Metrics()
    m.inc("a")
    m.gauge("b", 2)
    m.observe("c", 0.5)
    text = json.dumps(m.snapshot())
    assert '"counters"' in text and '"gauges"' in text
    assert '"histograms"' in text


def test_observe_builds_named_histograms():
    m = Metrics()
    for v in (0.1, 0.2, 0.4):
        m.observe("wait", v)
    hist = m.snapshot()["histograms"]["wait"]
    assert hist["count"] == 3
    assert abs(hist["sum"] - 0.7) < 1e-12


# ------------------------------------------------ obs-adapter contract

def test_histogram_is_the_shared_obs_histogram():
    from repro.obs.registry import Histogram as ObsHistogram

    assert Histogram is ObsHistogram


def test_histogram_zero_counts_everywhere():
    """The once-ambiguous edge case, now explicit: a recorded zero
    counts toward count/sum and *is* the minimum."""
    h = Histogram()
    h.record(0.0)
    assert (h.count, h.total, h.min, h.max) == (1, 0.0, 0.0, 0.0)
    h.record(2.0)
    assert h.min == 0.0 and h.max == 2.0
    assert sum(h.snapshot()["buckets"].values()) == 2


def test_metrics_instances_stay_independent():
    a, b = Metrics(), Metrics()
    a.inc("frames")
    assert b.count("frames") == 0


def test_metrics_can_share_an_explicit_registry():
    from repro.obs.registry import MetricRegistry

    reg = MetricRegistry()
    m1, m2 = Metrics(reg), Metrics(reg)
    m1.inc("frames")
    m2.inc("frames")
    assert m1.count("frames") == 2
    assert reg.count("frames") == 2


#: Every metric name the PR-1 gateway stack reported; the obs refactor
#: must keep each one spelled identically in the snapshot.
GATEWAY_METRIC_KEYS = (
    "client.connects", "client.streams_acked",
    "egress.bytes_in", "egress.bytes_out", "egress.duplicate_frames",
    "egress.frames_in", "egress.queue_depth", "egress.reorder_depth",
    "egress.reorder_evictions", "egress.serial_fallbacks",
    "egress.shm_fallbacks", "egress.shm_frames",
    "egress.stage_wait_seconds",
    "ingress.bytes_in", "ingress.bytes_out", "ingress.frame_ratio",
    "ingress.frames_out", "ingress.probe_raw_frames",
    "ingress.queue_depth", "ingress.raw_frames",
    "ingress.send_wait_seconds", "ingress.serial_fallbacks",
    "ingress.shm_fallbacks", "ingress.shm_frames",
    "ingress.stage_wait_seconds",
    "server.bytes_delivered", "server.connection_errors",
    "server.connections", "server.frames_delivered",
    "server.streams_acked",
)


def test_every_preexisting_gateway_key_still_recordable():
    """Snapshot shape back-compat: the historical key spellings land in
    the historical sections with the historical sub-keys."""
    m = Metrics()
    for name in GATEWAY_METRIC_KEYS:
        if name.endswith(("_seconds", "_ratio")):
            m.observe(name, 0.5)
        elif name.endswith("_depth"):
            m.gauge(name, 2)
        else:
            m.inc(name)
    snap = m.snapshot()
    assert set(snap) == {"counters", "gauges", "histograms"}
    for name in GATEWAY_METRIC_KEYS:
        if name.endswith(("_seconds", "_ratio")):
            hist = snap["histograms"][name]
            assert set(hist) == {"count", "sum", "mean", "min", "max",
                                 "buckets"}
            assert hist["count"] == 1
        elif name.endswith("_depth"):
            assert snap["gauges"][name] == {"last": 2, "max": 2}
        else:
            assert snap["counters"][name] == 1


def test_gateway_keys_survive_into_prometheus_scrape():
    from repro.obs.export import prometheus_text

    m = Metrics()
    for name in GATEWAY_METRIC_KEYS:
        if not name.endswith(("_seconds", "_ratio", "_depth")):
            m.inc(name)
    text = prometheus_text(m.snapshot())
    for name in GATEWAY_METRIC_KEYS:
        if not name.endswith(("_seconds", "_ratio", "_depth")):
            assert f"culzss_{name.replace('.', '_')} 1" in text
