"""Chaos suite: the gateway stack under transport and worker faults.

Covers the degradation ladder end to end: a flaky socket feeding the
server garbage, a process-pool worker hard-killed mid-frame (a genuine
``BrokenProcessPool``), the shm-acquire→pickle transport fallback, the
graceful-drain timeout on server close, and the ACK delivery-receipt
mismatch paths.
"""

from __future__ import annotations

import asyncio
from time import perf_counter

import pytest

from repro.errors import WorkerCrashError
from repro.service import (
    FrameError,
    GatewayClient,
    GatewayServer,
    Metrics,
    StreamAck,
)
from repro.service.pipeline import IngressPipeline, decode_payload
from repro.service.protocol import (
    FLAG_END,
    Frame,
    pack_ack,
    read_frame,
    write_frame,
)
from repro.testing import (
    CrashingExecutor,
    FlakyWriter,
    chaos_seed,
    crash_worker_job,
    tag_crash_buffer,
)

SEED = chaos_seed()
BUFFERS = [b"gateway chaos frame %d " % i * 200 for i in range(4)]


def collect_frames():
    frames: list[Frame] = []

    async def send(frame: Frame) -> None:
        frames.append(frame)

    return frames, send


def decoded(frames: list[Frame]) -> list[bytes]:
    return [decode_payload(f.flags, f.payload) for f in frames]


# ------------------------------------------------------- flaky transport

@pytest.mark.slow
def test_server_survives_garbled_stream():
    """A client behind a bit-flipping socket cannot take the server
    down: the poisoned connection is counted and closed, and the next
    clean client gets full service."""
    metrics = Metrics()
    delivered: list[bytes] = []

    async def deliver(sid, seq, data):
        delivered.append(data)

    async def scenario() -> StreamAck:
        async with GatewayServer(metrics=metrics, deliver=deliver,
                                 timeout=5.0) as server:
            flaky = GatewayClient(port=server.port, workers=0,
                                  timeout=1.0, retries=0)
            await flaky.connect()
            flaky._writer = FlakyWriter(flaky._writer, seed=SEED,
                                        garble_every=1)
            with pytest.raises((FrameError, ConnectionError, OSError,
                                asyncio.TimeoutError, TimeoutError)):
                await flaky.send_stream(BUFFERS, stream_id=1)
            assert flaky._writer.garbled >= 1
            await flaky.close()

            clean = GatewayClient(port=server.port, workers=0, timeout=5.0)
            async with clean:
                ack = await clean.send_stream(BUFFERS, stream_id=2)
            await server.close()
            return ack

    ack = asyncio.run(scenario())
    assert metrics.count("server.connection_errors") >= 1
    assert ack.frames == len(BUFFERS)
    assert delivered[-len(BUFFERS):] == BUFFERS


# --------------------------------------------------- worker death (real)

@pytest.mark.slow
def test_process_pool_worker_death_fails_over_serially():
    """A pool worker hard-killed mid-frame (genuine BrokenProcessPool):
    the frame re-runs serially in the parent, the pool rebuilds, and
    every byte still arrives."""
    metrics = Metrics()
    buffers = [tag_crash_buffer(BUFFERS[0])] + BUFFERS[1:]
    pipe = IngressPipeline(workers=1, queue_depth=4, metrics=metrics,
                           job=crash_worker_job)
    frames, send = collect_frames()
    with pipe:
        asyncio.run(pipe.run(7, buffers, send))
        assert decoded(frames) == BUFFERS
        assert metrics.count("ingress.worker_crashes") >= 1
        assert metrics.count("ingress.serial_fallbacks") >= 1

        # The rebuilt pool serves the next stream without incident.
        crashes = metrics.count("ingress.worker_crashes")
        frames2, send2 = collect_frames()
        asyncio.run(pipe.run(8, BUFFERS, send2))
        assert decoded(frames2) == BUFFERS
        assert metrics.count("ingress.worker_crashes") == crashes


def test_injected_executor_crash_degrades_without_rebuild():
    """With a caller-owned executor the pipeline cannot rebuild — every
    frame after the crash degrades to the serial path instead."""
    metrics = Metrics()
    pipe = IngressPipeline(workers=2, queue_depth=4, metrics=metrics,
                           executor=CrashingExecutor(crash_on=2))
    frames, send = collect_frames()
    with pipe:
        asyncio.run(pipe.run(1, BUFFERS, send))
    assert decoded(frames) == BUFFERS
    assert metrics.count("ingress.worker_crashes") >= 1
    assert metrics.count("ingress.serial_fallbacks") >= 1


def test_second_crash_marks_pool_dead():
    """The rebuild happens at most once: after a second crash the stage
    runs permanently serial rather than churning replacement pools."""
    metrics = Metrics()
    pipe = IngressPipeline(workers=1, queue_depth=4, metrics=metrics)
    assert pipe._pool() is not None
    pipe._crashed("ingress")
    assert not pipe._pool_dead
    assert pipe._pool() is not None  # first crash: rebuilt
    pipe._crashed("ingress")
    assert pipe._pool_dead
    assert pipe._pool() is None  # permanently serial
    assert metrics.count("ingress.worker_crashes") == 2
    frames, send = collect_frames()
    with pipe:
        asyncio.run(pipe.run(1, BUFFERS[:2], send))
    assert decoded(frames) == BUFFERS[:2]


# ------------------------------------------------- shm→pickle fallback

class _ExhaustedSlabs:
    """A slab pool with nothing to lease (the exhaustion fallback)."""

    def __init__(self) -> None:
        self.asked = 0

    def acquire(self, size: int):
        self.asked += 1
        return None

    def close(self) -> None:
        pass


def test_shm_exhaustion_falls_back_to_pickle_per_frame():
    from repro.testing import InlineExecutor

    metrics = Metrics()
    pipe = IngressPipeline(workers=1, queue_depth=4, metrics=metrics,
                           executor=InlineExecutor(), use_shm=True)
    slabs = pipe._slab_pool = _ExhaustedSlabs()
    frames, send = collect_frames()
    with pipe:
        asyncio.run(pipe.run(1, BUFFERS, send))
    assert decoded(frames) == BUFFERS
    assert slabs.asked == len(BUFFERS)
    assert metrics.count("ingress.shm_fallbacks") == len(BUFFERS)
    assert metrics.count("ingress.shm_frames") == 0


# ------------------------------------------------- graceful-drain timeout

@pytest.mark.slow
def test_server_close_drain_timeout_cancels_hung_handler():
    """A handler pinned by a never-returning deliver callback cannot
    stall shutdown past ``drain_timeout``."""
    metrics = Metrics()

    async def scenario() -> float:
        started = asyncio.Event()

        async def deliver(sid, seq, data):
            started.set()
            await asyncio.Event().wait()  # never completes

        server = GatewayServer(metrics=metrics, deliver=deliver, timeout=30.0)
        await server.start()
        reader, writer = await asyncio.open_connection(server.host,
                                                       server.port)
        from repro.service.pipeline import encode_payload

        flags, payload = encode_payload(BUFFERS[0])
        await write_frame(writer, Frame(stream_id=1, seq=0, flags=flags,
                                        payload=payload))
        await asyncio.wait_for(started.wait(), 10.0)

        t0 = perf_counter()
        await asyncio.wait_for(server.close(drain_timeout=0.2), 10.0)
        elapsed = perf_counter() - t0
        assert not server._handlers
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        return elapsed

    elapsed = asyncio.run(scenario())
    assert elapsed < 5.0  # bounded by drain_timeout, not the hang


# ----------------------------------------------------- ACK verification

class TestAckMismatch:
    GOOD = [b"alpha", b"bravo!"]

    def _ack_for(self, buffers) -> StreamAck:
        from repro.util.checksum import crc32

        crc = 0
        for b in buffers:
            crc = crc32(b, crc)
        return StreamAck(frames=len(buffers),
                         bytes=sum(len(b) for b in buffers), crc=crc)

    def test_matching_receipt(self):
        assert self._ack_for(self.GOOD).matches(self.GOOD)

    def test_frame_count_mismatch(self):
        assert not self._ack_for(self.GOOD).matches(self.GOOD[:1])

    def test_byte_count_mismatch(self):
        ack = self._ack_for(self.GOOD)
        assert not ack.matches([b"alpha", b"bravo"])

    def test_crc_mismatch_same_sizes(self):
        # Same frame and byte counts, different content: only the CRC
        # catches a delivery that silently mangled bytes.
        ack = self._ack_for(self.GOOD)
        assert not ack.matches([b"alpha", b"bravO!"])

    @pytest.mark.slow
    def test_client_raises_on_bogus_receipt(self):
        """A server acknowledging the wrong bytes fails the stream with
        FrameError — the end-to-end guarantee has teeth."""

        async def scenario():
            async def bogus_handler(reader, writer):
                while True:
                    frame = await read_frame(reader, timeout=5.0)
                    if frame is None:
                        return
                    if frame.flags & FLAG_END:
                        from repro.service.protocol import FLAG_ACK

                        ack = Frame(stream_id=frame.stream_id,
                                    seq=frame.seq, flags=FLAG_ACK,
                                    payload=pack_ack(frame.seq, 999, 12345))
                        await write_frame(writer, ack)
                        writer.close()
                        return

            server = await asyncio.start_server(bogus_handler,
                                                "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = GatewayClient(port=port, workers=0, timeout=5.0)
            try:
                async with client:
                    with pytest.raises(FrameError, match="receipt mismatch"):
                        await client.send_stream(self.GOOD, stream_id=1)
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())
