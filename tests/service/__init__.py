"""Streaming gateway service tests."""
