"""Gateway pair end-to-end over localhost: the §III guarantee."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.datasets import REGISTRY, generate
from repro.service import (
    FrameError,
    GatewayClient,
    GatewayServer,
    Metrics,
    StreamAck,
    retry_with_backoff,
)


def mixed_traffic(size: int = 6144) -> list[bytes]:
    """All five dataset kinds plus the edge cases: empty, 1-byte, and
    incompressible random bytes (exercises raw passthrough)."""
    buffers = [generate(kind, size, seed=50 + i)
               for i, kind in enumerate(sorted(REGISTRY))]
    rng = np.random.default_rng(0xBEEF)
    buffers += [b"", b"\x00",
                rng.integers(0, 256, size, dtype=np.uint8).tobytes()]
    return buffers


@pytest.mark.slow
def test_end_to_end_mixed_traffic_bit_exact_in_order():
    """The acceptance scenario: a localhost gateway pair delivers a
    mixed-kind stream (incl. empty/1-byte/incompressible) bit-exact and
    in order, with compression fanned across >= 2 worker processes and
    nonzero, bounded metrics."""
    buffers = mixed_traffic()
    metrics = Metrics()
    delivered: list[tuple[int, int, bytes]] = []

    async def deliver(sid, seq, data):
        delivered.append((sid, seq, data))

    async def scenario() -> StreamAck:
        async with GatewayServer(metrics=metrics, deliver=deliver) as server:
            client = GatewayClient(port=server.port, workers=2,
                                   queue_depth=4, metrics=metrics)
            async with client:
                ack = await client.send_stream(buffers, stream_id=3)
            await server.close()
            return ack

    ack = asyncio.run(scenario())

    assert [seq for _, seq, _ in delivered] == list(range(len(buffers)))
    assert [data for _, _, data in delivered] == buffers
    assert all(sid == 3 for sid, _, _ in delivered)
    assert ack.frames == len(buffers)
    assert ack.bytes == sum(len(b) for b in buffers)
    assert ack.matches(buffers)

    counters = metrics.snapshot()["counters"]
    assert counters["ingress.frames_out"] == len(buffers)
    assert counters["server.frames_delivered"] == len(buffers)
    assert counters["ingress.bytes_in"] == counters["egress.bytes_out"]
    assert counters["ingress.bytes_in"] > 0
    assert counters["ingress.raw_frames"] >= 3  # empty, 1-byte, random
    assert 0 < metrics.gauge_max("ingress.queue_depth") <= 4
    assert metrics.gauge_max("egress.queue_depth") <= 8


def test_multiple_streams_on_one_connection():
    metrics = Metrics()
    streams = {1: [generate("cfiles", 2048, seed=1), b"one"],
               2: [generate("demap", 2048, seed=2), b"", b"two"]}
    delivered: dict[int, list[bytes]] = {1: [], 2: []}

    async def deliver(sid, seq, data):
        delivered[sid].append(data)

    async def scenario():
        async with GatewayServer(metrics=metrics, deliver=deliver) as server:
            client = GatewayClient(port=server.port, workers=0,
                                   metrics=metrics)
            async with client:
                acks = {sid: await client.send_stream(bufs, stream_id=sid)
                        for sid, bufs in streams.items()}
            await server.close()
            return acks

    acks = asyncio.run(scenario())
    for sid, bufs in streams.items():
        assert delivered[sid] == bufs
        assert acks[sid].matches(bufs)
    assert metrics.count("server.streams_acked") == 2
    assert metrics.count("server.connections") == 1


def test_graceful_drain_on_close():
    """close(drain=True) lets the in-flight stream finish delivering."""
    metrics = Metrics()
    first_delivered = asyncio.Event()
    delivered = []

    async def deliver(sid, seq, data):
        delivered.append(data)
        first_delivered.set()
        await asyncio.sleep(0.01)  # a slow-ish consumer

    buffers = [b"frame-%d" % i for i in range(6)]

    async def scenario():
        server = GatewayServer(metrics=metrics, deliver=deliver)
        await server.start()
        client = GatewayClient(port=server.port, workers=0, metrics=metrics)

        async def close_early():
            await first_delivered.wait()
            await server.close(drain=True)

        async with client:
            ack, _ = await asyncio.gather(
                client.send_stream(buffers), close_early())
        return ack

    ack = asyncio.run(scenario())
    assert delivered == buffers
    assert ack.frames == len(buffers)


def test_client_retries_until_server_appears():
    """Connection refused is transient: the client's bounded
    retry-with-backoff rides out a server that starts late."""
    metrics = Metrics()

    async def scenario():
        probe = await asyncio.start_server(lambda r, w: None, "127.0.0.1", 0)
        port = probe.sockets[0].getsockname()[1]
        probe.close()
        await probe.wait_closed()  # now nothing listens on `port`

        server = GatewayServer(port=port, metrics=metrics)

        async def start_late():
            await asyncio.sleep(0.2)
            await server.start()

        client = GatewayClient(port=port, workers=0, retries=6,
                               backoff=0.05, metrics=metrics)
        _, ack = await asyncio.gather(
            start_late(), client.send_stream([b"late but delivered"]))
        await client.close()
        await server.close()
        return ack

    ack = asyncio.run(scenario())
    assert ack.frames == 1
    assert metrics.count("retry.connect") >= 1


def test_connect_retries_exhaust():
    async def scenario():
        probe = await asyncio.start_server(lambda r, w: None, "127.0.0.1", 0)
        port = probe.sockets[0].getsockname()[1]
        probe.close()
        await probe.wait_closed()
        client = GatewayClient(port=port, workers=0, retries=1,
                               backoff=0.01)
        try:
            await client.connect()
        finally:
            await client.close()

    with pytest.raises(OSError):
        asyncio.run(scenario())


def test_retry_with_backoff_recovers_and_propagates():
    calls = {"n": 0}

    async def flaky():
        calls["n"] += 1
        if calls["n"] < 3:
            raise ConnectionResetError("transient")
        return "ok"

    async def fatal():
        raise ValueError("not transient")

    async def scenario():
        result = await retry_with_backoff(flaky, retries=5, base_delay=0.001)
        assert result == "ok"
        assert calls["n"] == 3
        with pytest.raises(ValueError):
            await retry_with_backoff(fatal, retries=5, base_delay=0.001)

    asyncio.run(scenario())


def test_retry_with_backoff_bounded():
    calls = {"n": 0}

    async def always_down():
        calls["n"] += 1
        raise ConnectionRefusedError("down")

    async def scenario():
        await retry_with_backoff(always_down, retries=3, base_delay=0.001)

    with pytest.raises(ConnectionRefusedError):
        asyncio.run(scenario())
    assert calls["n"] == 4  # initial attempt + 3 retries


def test_server_times_out_silent_connection():
    """A peer that connects and goes silent must not pin the handler:
    the per-connection timeout trips and the connection is dropped."""
    metrics = Metrics()

    async def scenario():
        async with GatewayServer(metrics=metrics, timeout=0.1) as server:
            reader, writer = await asyncio.open_connection("127.0.0.1",
                                                           server.port)
            await asyncio.sleep(0.3)  # send nothing
            at_eof = (await reader.read(1)) == b""  # server hung up
            writer.close()
            await writer.wait_closed()
            await server.close()
            return at_eof

    assert asyncio.run(scenario())
    assert metrics.count("server.connection_errors") == 1


def test_corrupt_frame_drops_connection_not_server():
    metrics = Metrics()

    async def scenario():
        async with GatewayServer(metrics=metrics) as server:
            _, writer = await asyncio.open_connection("127.0.0.1",
                                                      server.port)
            writer.write(b"garbage that is not a frame header at all..")
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            # the server survives and serves the next, well-behaved client
            client = GatewayClient(port=server.port, workers=0,
                                   metrics=metrics)
            async with client:
                ack = await client.send_stream([b"still alive"])
            await server.close()
            return ack

    ack = asyncio.run(scenario())
    assert ack.frames == 1
    assert metrics.count("server.connection_errors") >= 1


# --------------------------------------------------- metrics sidecar

async def _http_get(host: str, port: int, path: str) -> tuple[int, bytes]:
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"GET {path} HTTP/1.0\r\nHost: {host}\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    return int(head.split()[1]), body


@pytest.mark.slow
def test_metrics_sidecar_serves_full_stack_scrape():
    """The acceptance scrape: one /metrics page carries the gateway's
    own keys plus the codec-layer families (encoder stage timings,
    matcher probes, engine shards/crashes, container CRC events)."""
    import json

    from repro import obs

    metrics = Metrics()

    async def scenario() -> tuple[int, bytes, int, bytes, int]:
        async with GatewayServer(metrics=metrics,
                                 metrics_port=0) as server:
            assert server.metrics_port not in (None, 0)
            client = GatewayClient(port=server.port, workers=0,
                                   metrics=metrics)
            async with client:
                await client.send_stream(mixed_traffic(2048))
            prom = await _http_get(server.host, server.metrics_port,
                                   "/metrics")
            js = await _http_get(server.host, server.metrics_port,
                                 "/metrics.json")
            missing = await _http_get(server.host, server.metrics_port,
                                      "/nope")
            await server.close()
            return (*prom, *js, missing[0])

    prom_status, prom, js_status, js, missing_status = asyncio.run(scenario())
    assert prom_status == 200 and js_status == 200
    assert missing_status == 404
    text = prom.decode()
    for key in ("culzss_server_frames_delivered",
                "culzss_ingress_frames_out",
                "culzss_encode_match_seconds_bucket",
                "culzss_matcher_probe_calls",
                "culzss_engine_shards",
                "culzss_engine_worker_crashes",
                "culzss_container_crc_checks",
                "culzss_container_salvage_chunks_lost"):
        assert key in text, key
    assert int(text.split("\nculzss_server_frames_delivered ")[1]
               .split("\n")[0]) > 0
    snap = json.loads(js)
    assert snap["counters"]["server.frames_delivered"] > 0
    # codec work ran in this (workers=0) process: obs counters nonzero
    assert snap["counters"]["matcher.probe_calls"] > 0


def test_metrics_sidecar_defaults_off():
    async def scenario() -> bool:
        async with GatewayServer() as server:
            return (server.metrics_port is None
                    and server._metrics_server is None)

    assert asyncio.run(scenario())


def test_sidecar_healthz_reports_uptime_and_conns():
    import json

    async def scenario() -> tuple[int, bytes, int, bytes]:
        async with GatewayServer(metrics_port=0) as server:
            health = await _http_get(server.host, server.metrics_port,
                                     "/healthz")
            missing = await _http_get(server.host, server.metrics_port,
                                      "/nope")
            await server.close()
            return (*health, *missing)

    status, body, missing_status, hint = asyncio.run(scenario())
    assert status == 200
    doc = json.loads(body)
    assert doc["status"] == "ok"
    assert doc["uptime_seconds"] >= 0
    assert doc["connections"] == 0
    # the 404 hint advertises the new endpoints
    assert missing_status == 404
    assert b"/healthz" in hint and b"/profile" in hint


@pytest.mark.slow
def test_sidecar_profile_endpoint_returns_speedscope_window():
    import json

    async def scenario() -> tuple[int, bytes, int]:
        async with GatewayServer(metrics_port=0) as server:
            # the window must see a running interpreter, which the
            # event loop itself provides; 0.3s at the default hz is
            # plenty to collect the loop's own stacks
            ok = await _http_get(server.host, server.metrics_port,
                                 "/profile?seconds=0.3")
            bad = await _http_get(server.host, server.metrics_port,
                                  "/profile?seconds=banana")
            await server.close()
            return (*ok, bad[0])

    status, body, bad_status = asyncio.run(scenario())
    assert status == 200
    doc = json.loads(body)
    assert doc["$schema"].endswith("file-format-schema.json")
    assert doc["name"].startswith("culzss gateway")
    # a malformed seconds falls back to the default window, not a 500
    assert bad_status == 200
    # the on-demand window owned its profiler: nothing left running
    from repro.obs import prof

    assert not prof.running()
