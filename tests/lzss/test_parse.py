"""Greedy-parse machinery: jump doubling and chunk lock-step."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lzss.parse import (
    greedy_token_starts,
    greedy_token_starts_reference,
    reachable_from,
)


class TestReachableFrom:
    def test_unit_steps_visit_everything(self):
        jump = np.arange(10) + 1
        assert reachable_from(jump, 0).tolist() == list(range(10))

    def test_strides(self):
        jump = np.arange(12) + 3
        assert reachable_from(jump, 0).tolist() == [0, 3, 6, 9]

    def test_start_offset(self):
        jump = np.arange(10) + 2
        assert reachable_from(jump, 1).tolist() == [1, 3, 5, 7, 9]

    def test_start_past_end(self):
        assert reachable_from(np.array([1, 2]), 5).size == 0

    def test_non_forward_rejected(self):
        with pytest.raises(ValueError):
            reachable_from(np.array([0, 2]), 0)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(1, 7), min_size=1, max_size=300))
    def test_property_matches_walk(self, advances):
        adv = np.array(advances, dtype=np.int64)
        jump = np.arange(adv.size) + adv
        got = reachable_from(jump, 0).tolist()
        expect, pos = [], 0
        while pos < adv.size:
            expect.append(pos)
            pos += int(adv[pos])
        assert got == expect


class TestGreedyTokenStarts:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(1, 9), min_size=1, max_size=200),
           st.sampled_from([None, 8, 16, 64]))
    def test_property_matches_reference(self, advances, chunk):
        adv = np.array(advances, dtype=np.int64)
        got = greedy_token_starts(adv, chunk)
        expect = greedy_token_starts_reference(adv, chunk)
        assert got.tolist() == expect.tolist()

    def test_chunked_restarts_at_boundaries(self):
        adv = np.full(32, 5, dtype=np.int64)
        starts = greedy_token_starts(adv, 8)
        # every chunk begins a fresh parse
        assert set(range(0, 32, 8)).issubset(set(starts.tolist()))

    def test_empty(self):
        assert greedy_token_starts(np.array([], dtype=np.int64)).size == 0

    def test_zero_advance_rejected(self):
        with pytest.raises(ValueError):
            greedy_token_starts(np.array([1, 0, 1]))

    def test_advance_past_end_ok(self):
        starts = greedy_token_starts(np.array([100], dtype=np.int64))
        assert starts.tolist() == [0]
