"""Token formats: field packing, limits, registry."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lzss.constants import SERIAL_LOOKAHEAD, V2_MAX_MATCH
from repro.lzss.formats import CUDA_V1, CUDA_V2, SERIAL, TokenFormat


class TestPaperFormats:
    def test_serial_is_dipperstein_layout(self):
        assert SERIAL.offset_bits == 12
        assert SERIAL.length_bits == 4
        assert SERIAL.window == 4096
        assert SERIAL.max_match == SERIAL_LOOKAHEAD == 18
        assert SERIAL.pair_bits == 17
        assert SERIAL.literal_bits == 9

    def test_v1_keeps_serial_token(self):
        assert CUDA_V1.pair_bits == SERIAL.pair_bits
        assert CUDA_V1.max_match == SERIAL.max_match
        assert CUDA_V1.window == SERIAL.window

    def test_v2_is_16bit_extended_offset(self):
        assert CUDA_V2.offset_bits + CUDA_V2.length_bits == 16
        assert CUDA_V2.window == 128
        assert CUDA_V2.max_match == V2_MAX_MATCH == 66

    def test_min_match_is_three_everywhere(self):
        for fmt in (SERIAL, CUDA_V1, CUDA_V2):
            assert fmt.min_match == 3

    def test_two_byte_match_not_profitable(self):
        # §II.A: "encoding of two character match requires the same
        # amount bytes if we directly output the two characters".
        assert not SERIAL.pair_is_profitable(1)
        assert SERIAL.pair_is_profitable(3)


class TestPackUnpack:
    @settings(max_examples=100, deadline=None)
    @given(st.integers(1, 128), st.integers(3, 66))
    def test_v2_pair_roundtrip(self, dist, length):
        value, nbits = CUDA_V2.pack_pair(dist, length)
        assert nbits == CUDA_V2.pair_bits
        assert CUDA_V2.unpack_pair(value) == (dist, length)

    @settings(max_examples=100, deadline=None)
    @given(st.integers(1, 4096), st.integers(3, 18))
    def test_serial_pair_roundtrip(self, dist, length):
        value, _ = SERIAL.pack_pair(dist, length)
        assert SERIAL.unpack_pair(value) == (dist, length)

    def test_literal_packing(self):
        value, nbits = SERIAL.pack_literal(0x41)
        assert nbits == 9
        assert value == 0x141  # flag 1 + 'A'

    def test_out_of_window_distance_rejected(self):
        with pytest.raises(ValueError):
            CUDA_V2.pack_pair(129, 5)

    def test_out_of_range_length_rejected(self):
        with pytest.raises(ValueError):
            SERIAL.pack_pair(1, 19)
        with pytest.raises(ValueError):
            SERIAL.pack_pair(1, 2)

    def test_unpack_rejects_excess_distance(self):
        # dist-1=200 fits 8 bits but exceeds V2's 128-byte window
        bogus = (200 << CUDA_V2.length_bits) | 0
        with pytest.raises(ValueError):
            CUDA_V2.unpack_pair(bogus)


class TestRegistry:
    def test_ids_roundtrip(self):
        for fmt in (SERIAL, CUDA_V1, CUDA_V2):
            assert TokenFormat.from_id(fmt.to_id()).name == fmt.name

    def test_unknown_id_rejected(self):
        with pytest.raises(ValueError):
            TokenFormat.from_id(99)

    def test_custom_format_has_no_id(self):
        custom = TokenFormat(name="sweep", offset_bits=9, length_bits=8,
                             window=512)
        with pytest.raises(ValueError):
            custom.to_id()


class TestValidation:
    def test_window_must_fit_offset_field(self):
        with pytest.raises(ValueError):
            TokenFormat(name="bad", offset_bits=4, length_bits=4, window=17)

    def test_cap_must_fit_field(self):
        with pytest.raises(ValueError):
            TokenFormat(name="bad", offset_bits=8, length_bits=4, window=128,
                        max_match_cap=19)

    def test_cap_below_min_match_rejected(self):
        with pytest.raises(ValueError):
            TokenFormat(name="bad", offset_bits=8, length_bits=8, window=128,
                        max_match_cap=2)
