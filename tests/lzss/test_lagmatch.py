"""The exact all-position matcher (the V2 kernel math)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lzss.formats import CUDA_V2
from repro.lzss.lagmatch import (
    LagMatchResult,
    lag_best_matches,
    lag_run_lengths,
)
from repro.lzss.reference import reference_find_match


def naive_run_length(data: bytes, k: int, lag: int, cap: int) -> int:
    n = len(data)
    length = 0
    while length < cap and k + lag + length < n and \
            data[k + length] == data[k + lag + length]:
        length += 1
    return length


class TestLagRunLengths:
    @settings(max_examples=40, deadline=None)
    @given(st.binary(min_size=4, max_size=120), st.integers(1, 8),
           st.integers(1, 20))
    def test_matches_naive(self, data, lag, cap):
        if lag >= len(data):
            return
        arr = np.frombuffer(data, dtype=np.uint8)
        runs = lag_run_lengths(arr, lag, cap)
        for k in range(runs.size):
            assert runs[k] == naive_run_length(data, k, lag, cap)

    def test_all_equal_input_capped(self):
        arr = np.zeros(50, dtype=np.uint8)
        runs = lag_run_lengths(arr, 1, 10)
        assert runs[0] == 10  # capped
        assert runs[-1] == 1  # k=48: only data[48]==data[49] remains


class TestBestMatches:
    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=0, max_size=250))
    def test_agrees_with_reference(self, data):
        res = lag_best_matches(data, CUDA_V2.window, CUDA_V2.max_match)
        for i in range(len(data)):
            dist, length = reference_find_match(data, i, CUDA_V2)
            if length >= 1:
                assert res.best_len[i] == length, i
                if length > 0:
                    assert res.best_dist[i] == dist, i
            else:
                assert res.best_len[i] == 0

    def test_chunk_isolation(self):
        data = b"ABCDEF" * 4  # period 6, matches everywhere
        res = lag_best_matches(data, 64, 18, chunk_size=6)
        # every chunk restarts: no position may reference a prior chunk
        pos = np.arange(len(data))
        assert (res.best_dist <= pos % 6).all()

    def test_chunk_end_caps_length(self):
        data = b"ab" * 16
        res = lag_best_matches(data, 64, 18, chunk_size=8)
        pos = np.arange(len(data))
        room = 8 - (pos % 8)
        assert (res.best_len <= room).all()

    def test_empty_input(self):
        res = lag_best_matches(b"", 128, 66)
        assert res.best_len.size == 0
        assert res.compare_count == 0

    def test_compare_count_positive_and_bounded(self, text_data):
        data = text_data[:2000]
        res = lag_best_matches(data, 128, 66)
        n = len(data)
        assert 0 < res.compare_count <= n * 128 * 66

    def test_per_position_sum_equals_total(self, text_data):
        data = text_data[:1500]
        res = lag_best_matches(data, 64, 18, collect_per_position=True)
        assert int(res.per_position_compares.sum()) == res.compare_count


class TestWarpCompares:
    def test_warp_bound_between_mean_and_sum(self, text_data):
        data = text_data[:1600]
        res = lag_best_matches(data, 64, 18, collect_per_position=True)
        per_pos = res.per_position_compares
        warps = res.warp_compares
        n_warps = warps.size
        for w in range(n_warps):
            lanes = per_pos[w * 32:(w + 1) * 32]
            # lockstep cost ≥ the busiest single lane, ≤ the lane sum
            assert warps[w] >= lanes.max()
            assert warps[w] <= lanes.sum()

    def test_uniform_lanes_cost_single_lane(self):
        # all-zero input: every lane in a warp does identical work, so
        # lockstep max == any single lane's compare count
        data = bytes(128)
        res = lag_best_matches(data, 16, 18, collect_per_position=True)
        lane_63 = int(res.per_position_compares[63])
        warp_1 = int(res.warp_compares[1])
        # warp 1 covers positions 32..63; the deepest lane dominates
        assert warp_1 <= int(res.per_position_compares[32:64].max()) * 16 + 16
        assert warp_1 >= lane_63


class TestResultDataclass:
    def test_fields(self):
        res = lag_best_matches(b"hello hello", 16, 18)
        assert isinstance(res, LagMatchResult)
        assert res.per_position_compares is None  # not collected
