"""The incompressibility probe and the matcher's shard-invariance.

The probe must be conservative: a false positive silently ships a
compressible buffer raw, so anything with byte- or digram-level
structure has to stay on the compression path.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.lzss import probe_incompressible
from repro.lzss.encoder import encode_chunked
from repro.lzss.formats import SERIAL
from repro.util.buffers import as_u8


def test_random_bytes_probe_incompressible(rng):
    data = rng.integers(0, 256, 64 * 1024, dtype=np.uint8).tobytes()
    assert probe_incompressible(data)


def test_small_random_buffer_is_exempt(rng):
    # Below min_size the probe always compresses — a tiny raw frame
    # saves nothing and the sample is too small to trust.
    data = rng.integers(0, 256, 100, dtype=np.uint8).tobytes()
    assert not probe_incompressible(data)


def test_text_is_not_flagged(text_data):
    assert not probe_incompressible(text_data)


def test_runs_are_not_flagged(runny_data):
    assert not probe_incompressible(runny_data)


def test_repeated_random_block_is_not_flagged(rng):
    # Flat byte histogram (order-0 entropy ≈ 8 bits) but massively
    # compressible — the digram gate must catch it.
    block = rng.integers(0, 256, 1024, dtype=np.uint8).tobytes()
    assert not probe_incompressible(block * 64)


def test_probe_is_deterministic(rng):
    data = rng.integers(0, 256, 32 * 1024, dtype=np.uint8).tobytes()
    assert probe_incompressible(data) == probe_incompressible(data)


# ------------------------------------------------- shard invariance

def test_chunked_encode_is_shard_invariant(text_data):
    """Encoding a chunk-aligned slice equals the slice of the full encode.

    This is the property the parallel engine relies on: the hash
    chain's ``max_chain`` budget must be counted per chunk, not across
    the whole gram-sorted buffer, or per-shard candidate sets would
    differ from the full-buffer ones.
    """
    arr = as_u8(text_data)
    chunk_size = 1024
    # A tight chain budget maximizes the chance that any cross-chunk
    # chain accounting would change which candidates get searched.
    full = encode_chunked(arr, SERIAL, chunk_size, max_chain=2)
    cut = 8 * chunk_size
    left = encode_chunked(arr[:cut], SERIAL, chunk_size, max_chain=2)
    right = encode_chunked(arr[cut:], SERIAL, chunk_size, max_chain=2)
    assert left.payload + right.payload == full.payload
    assert np.array_equal(
        np.concatenate([left.chunk_sizes, right.chunk_sizes]),
        full.chunk_sizes)


@pytest.mark.parametrize("max_chain", [1, 3, 64])
def test_shard_invariance_across_chain_budgets(text_data, max_chain):
    arr = as_u8(text_data)
    full = encode_chunked(arr, SERIAL, 2048, max_chain=max_chain)
    pieces = [encode_chunked(arr[lo:lo + 4096], SERIAL, 2048,
                             max_chain=max_chain)
              for lo in range(0, arr.size, 4096)]
    assert b"".join(p.payload for p in pieces) == full.payload


# ------------------------------------------------ arena thread-safety

def test_concurrent_encodes_share_nothing(text_data):
    """The scratch arena is thread-local: parallel encodes of the same
    buffer must all equal the serial result."""
    arr = as_u8(text_data)
    expect = encode_chunked(arr, SERIAL, 1024).payload
    with ThreadPoolExecutor(max_workers=8) as pool:
        payloads = list(pool.map(
            lambda _: encode_chunked(arr, SERIAL, 1024).payload, range(16)))
    assert all(p == expect for p in payloads)
