"""Lazy matching — the §VII parse refinement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lzss.decoder import decode, decode_chunked
from repro.lzss.encoder import encode, encode_chunked
from repro.lzss.formats import CUDA_V2, SERIAL


class TestLazyRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(st.binary(max_size=1200))
    def test_continuous(self, data):
        for fmt in (SERIAL, CUDA_V2):
            r = encode(data, fmt, parse="lazy")
            assert decode(r.payload, fmt, len(data)) == data

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=1, max_size=1200))
    def test_chunked(self, data):
        r = encode_chunked(data, CUDA_V2, 128, parse="lazy")
        assert decode_chunked(r.payload, CUDA_V2, r.chunk_sizes, 128,
                              len(data)) == data


class TestLazySemantics:
    def test_textbook_case(self):
        # greedy takes "ab" ... lazy defers to grab the longer "bcdef"
        data = b"ab" + b"bcdef" + b"XabcdefY"
        greedy = encode(data, CUDA_V2, parse="greedy", collect_detail=True)
        lazy = encode(data, CUDA_V2, parse="lazy", collect_detail=True)
        assert lazy.stats.total_bits <= greedy.stats.total_bits
        assert decode(lazy.payload, CUDA_V2, len(data)) == data

    @pytest.mark.parametrize("name", ["cfiles", "dictionary",
                                      "highly_compressible"])
    def test_never_worse_on_real_data(self, name):
        from repro.datasets import generate

        data = generate(name, 128 * 1024)
        greedy = encode(data, SERIAL, parse="greedy").stats.ratio
        lazy = encode(data, SERIAL, parse="lazy").stats.ratio
        # lazy evaluation is a strict refinement on match-rich data
        assert lazy <= greedy + 1e-9

    def test_stats_consistent(self, text_data):
        r = encode(text_data, SERIAL, parse="lazy", collect_detail=True)
        s = r.stats
        assert s.n_literals + s.sum_match_length == len(text_data)
        assert s.n_tokens == s.n_literals + s.n_pairs

    def test_unknown_strategy_rejected(self, text_data):
        with pytest.raises(ValueError):
            encode(text_data, SERIAL, parse="psychic")

    def test_cpu_drivers_expose_it(self, text_data):
        from repro.cpu import PthreadLzss, SerialLzss

        s = SerialLzss(parse="lazy")
        r = s.compress(text_data)
        assert s.decompress(r.payload, len(text_data)) == text_data
        p = PthreadLzss(2, parse="lazy")
        assert p.decompress(p.compress(text_data)) == text_data


class TestOptimalParse:
    @settings(max_examples=30, deadline=None)
    @given(st.binary(max_size=800))
    def test_roundtrip(self, data):
        for fmt in (SERIAL, CUDA_V2):
            r = encode(data, fmt, parse="optimal")
            assert decode(r.payload, fmt, len(data)) == data

    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=1, max_size=800))
    def test_chunked_roundtrip(self, data):
        r = encode_chunked(data, CUDA_V2, 128, parse="optimal")
        assert decode_chunked(r.payload, CUDA_V2, r.chunk_sizes, 128,
                              len(data)) == data

    @settings(max_examples=25, deadline=None)
    @given(st.binary(max_size=600))
    def test_never_worse_than_lazy_or_greedy(self, data):
        """The defining property: DP is bit-optimal over the parse DAG."""
        bits = {p: encode(data, SERIAL, parse=p).stats.total_bits
                for p in ("greedy", "lazy", "optimal")}
        assert bits["optimal"] <= bits["lazy"]
        assert bits["optimal"] <= bits["greedy"]

    @pytest.mark.parametrize("name", ["cfiles", "dictionary"])
    def test_strict_gain_on_real_data(self, name):
        from repro.datasets import generate

        data = generate(name, 96 * 1024)
        greedy = encode(data, SERIAL, parse="greedy").stats.total_bits
        optimal = encode(data, SERIAL, parse="optimal").stats.total_bits
        assert optimal < greedy  # parse choice genuinely matters

    def test_shortened_match_uses_valid_prefix(self):
        # the DP may truncate a long match; the emitted (dist, len)
        # prefix must still decode — covered by construction, checked
        # here on a crafted case with competing matches
        data = b"abcdeXabcde" * 6 + b"abcd" + b"Q" * 8
        r = encode(data, CUDA_V2, parse="optimal")
        assert decode(r.payload, CUDA_V2, len(data)) == data
