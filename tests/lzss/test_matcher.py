"""Hash-chain matcher: exactness against the brute-force reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lzss.formats import SERIAL
from repro.lzss.matcher import hash_chain_best_matches
from repro.lzss.reference import reference_find_match


class TestAgainstReference:
    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=0, max_size=300))
    def test_exhaustive_chain_is_exact(self, data):
        blen, bdist = hash_chain_best_matches(data, SERIAL.window,
                                              SERIAL.max_match,
                                              max_chain=10 ** 6)
        for i in range(len(data)):
            dist, length = reference_find_match(data, i, SERIAL)
            if length >= 3:
                assert blen[i] == length, i
                assert bdist[i] == dist, i
            else:
                assert blen[i] == 0, i

    @settings(max_examples=20, deadline=None)
    @given(st.text(alphabet="abc", max_size=400))
    def test_low_entropy_exact(self, text):
        data = text.encode()
        blen, bdist = hash_chain_best_matches(data, SERIAL.window,
                                              SERIAL.max_match,
                                              max_chain=10 ** 6)
        for i in range(0, len(data), 7):
            dist, length = reference_find_match(data, i, SERIAL)
            expect = length if length >= 3 else 0
            assert blen[i] == expect


class TestBoundedChain:
    def test_bounded_never_beats_exhaustive(self, text_data):
        data = text_data[:3000]
        exact_len, _ = hash_chain_best_matches(data, 4096, 18,
                                               max_chain=10 ** 6)
        approx_len, _ = hash_chain_best_matches(data, 4096, 18, max_chain=4)
        assert (approx_len <= exact_len).all()

    def test_reported_matches_are_real(self, text_data):
        data = text_data[:2000]
        arr = np.frombuffer(data, dtype=np.uint8)
        blen, bdist = hash_chain_best_matches(data, 4096, 18, max_chain=8)
        idx = np.nonzero(blen)[0]
        for i in idx[:200]:
            d, ln = int(bdist[i]), int(blen[i])
            for k in range(ln):
                assert arr[i + k] == arr[i - d + k]


class TestConstraints:
    def test_chunk_isolation(self):
        data = b"hello world! " * 40
        blen, bdist = hash_chain_best_matches(data, 4096, 18,
                                              chunk_size=64, max_chain=10 ** 4)
        pos = np.arange(len(data))
        valid = blen > 0
        assert (bdist[valid] <= (pos % 64)[valid]).all()

    def test_slice_caps_length(self):
        data = b"hello world! " * 40
        blen, _ = hash_chain_best_matches(data, 4096, 18, chunk_size=64,
                                          slice_size=16, max_chain=10 ** 4)
        pos = np.arange(len(data))
        room = 16 - (pos % 16)
        assert (blen <= room).all()

    def test_slice_must_divide_chunk(self):
        with pytest.raises(ValueError):
            hash_chain_best_matches(b"x" * 100, 64, 18, chunk_size=30,
                                    slice_size=7)

    def test_tiny_inputs(self):
        for n in range(5):
            blen, bdist = hash_chain_best_matches(b"a" * n, 4096, 18)
            assert blen.size == n
            assert (blen[:1] == 0).all()  # position 0 never matches

    def test_window_limits_distance(self):
        data = b"UNIQ" + bytes(range(200)) + b"UNIQ"
        blen, bdist = hash_chain_best_matches(data, window=64, max_match=18,
                                              max_chain=10 ** 4)
        assert blen[204] == 0  # the only match is 204 bytes back
