"""Figure 1 — the paper's worked LZSS encoding example.

The paper encodes this 102-character text and reports that the coded
form amounts to 56 "characters" (counting each (offset,length) pair as
the two numbers it displays).  We verify the mechanics the figure
illustrates on the real codec: the specific phrase repetitions become
back-references, the stream round-trips, and the compressed size drops
accordingly.
"""

import pytest

from repro.lzss.formats import SERIAL
from repro.lzss.reference import reference_decode, reference_encode, reference_tokenize

#: The example text of Figure 1 (line-joined as a single buffer).
FIGURE1_TEXT = (
    b"I meant what I said and I said what I meant. "
    b"From there to here from here to there. "
    b"I said what I meant"
)


def test_roundtrip():
    payload = reference_encode(FIGURE1_TEXT, SERIAL)
    assert reference_decode(payload, SERIAL, len(FIGURE1_TEXT)) == FIGURE1_TEXT


def test_repeated_phrases_become_pairs():
    tokens = reference_tokenize(FIGURE1_TEXT, SERIAL)
    pairs = [t for t in tokens if t[0] == "pair"]
    # The figure shows the second half of the text collapsing into
    # back-references; the big one is " I said what I meant" at the end.
    assert pairs, "expected encoded pairs in the Figure 1 text"
    assert max(p[2] for p in pairs) >= 15


def test_first_occurrences_stay_literal():
    tokens = reference_tokenize(FIGURE1_TEXT, SERIAL)
    # The first 12 characters ("I meant what") contain no 3-byte repeat.
    prefix = tokens[:12]
    assert all(t[0] == "lit" for t in prefix)


def test_compression_actually_compresses():
    payload = reference_encode(FIGURE1_TEXT, SERIAL)
    assert len(payload) < len(FIGURE1_TEXT)


def test_paper_character_accounting():
    """Reproduce the figure's 102 → ~56 'character' count.

    The figure counts a pair as two printed numbers ≈ 2 characters and
    a literal as 1; our greedy parse with Dipperstein parameters lands
    in the same range (the paper's exact count depends on its window
    state at line boundaries).
    """
    tokens = reference_tokenize(FIGURE1_TEXT, SERIAL)
    figure_units = sum(1 if t[0] == "lit" else 2 for t in tokens)
    assert len(FIGURE1_TEXT) in range(95, 110)
    assert figure_units <= 75  # clearly below the 102 input characters


@pytest.mark.parametrize("phrase", [b"I said", b"what I", b"here to", b"meant"])
def test_phrases_found_within_window(phrase):
    # Every repeated phrase of the example re-occurs within the 4096
    # window, so the serial coder sees all of them.
    first = FIGURE1_TEXT.find(phrase)
    second = FIGURE1_TEXT.find(phrase, first + 1)
    assert second != -1
    assert second - first <= SERIAL.window
