"""Fast encoder: round trips, reference equivalence, chunk/slice semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lzss.decoder import decode, decode_chunked
from repro.lzss.encoder import encode, encode_chunked
from repro.lzss.formats import CUDA_V1, CUDA_V2, SERIAL
from repro.lzss.reference import reference_decode, reference_encode


class TestRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(st.binary(max_size=2000))
    def test_continuous_all_formats(self, data):
        for fmt in (SERIAL, CUDA_V2):
            r = encode(data, fmt)
            assert decode(r.payload, fmt, len(data)) == data

    @settings(max_examples=25, deadline=None)
    @given(st.binary(max_size=2000), st.sampled_from([64, 256, 1000]))
    def test_chunked(self, data, chunk):
        if not data:
            return
        chunk = min(chunk, len(data))
        r = encode_chunked(data, CUDA_V2, chunk)
        out = decode_chunked(r.payload, CUDA_V2, r.chunk_sizes, chunk,
                             len(data))
        assert out == data

    def test_v1_slice_roundtrip(self, text_data):
        data = text_data[:8192]
        r = encode_chunked(data, CUDA_V1, 4096, slice_size=32)
        assert decode_chunked(r.payload, CUDA_V1, r.chunk_sizes, 4096,
                              len(data)) == data

    def test_run_heavy_data(self, runny_data):
        for fmt in (SERIAL, CUDA_V2):
            r = encode(runny_data, fmt)
            assert decode(r.payload, fmt, len(runny_data)) == runny_data

    def test_incompressible_data(self, binary_data):
        r = encode(binary_data, SERIAL)
        assert decode(r.payload, SERIAL, len(binary_data)) == binary_data
        assert r.stats.ratio > 1.0  # flag overhead, no matches

    def test_empty_input(self):
        r = encode(b"", SERIAL)
        assert r.payload == b""
        assert decode(b"", SERIAL, 0) == b""


class TestReferenceEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(st.binary(max_size=400))
    def test_bitstreams_identical_to_spec(self, data):
        for fmt in (SERIAL, CUDA_V2):
            fast = encode(data, fmt, max_chain=10 ** 6)
            assert fast.payload == reference_encode(data, fmt), fmt.name

    def test_fast_stream_decodable_by_reference(self, text_data):
        data = text_data[:1500]
        fast = encode(data, SERIAL)
        assert reference_decode(fast.payload, SERIAL, len(data)) == data


class TestChunkTable:
    def test_sizes_cover_payload(self, text_data):
        r = encode_chunked(text_data, CUDA_V2, 512)
        assert int(r.chunk_sizes.sum()) == len(r.payload)
        assert r.chunk_sizes.size == -(-len(text_data) // 512)

    def test_every_chunk_byte_aligned_and_independent(self, text_data):
        data = text_data[:4096]
        r = encode_chunked(data, CUDA_V2, 512)
        offsets = np.concatenate([[0], np.cumsum(r.chunk_sizes)])
        for c in range(r.chunk_sizes.size):
            piece = r.payload[offsets[c]:offsets[c + 1]]
            lo, hi = c * 512, min((c + 1) * 512, len(data))
            assert decode(piece, CUDA_V2, hi - lo) == data[lo:hi]

    def test_chunk_size_larger_than_input_is_one_chunk(self):
        r = encode_chunked(b"abc", CUDA_V2, 10)
        assert r.chunk_sizes.size == 1
        assert decode_chunked(r.payload, CUDA_V2, r.chunk_sizes, 10, 3) == b"abc"

    def test_empty_input_chunked(self):
        r = encode_chunked(b"", CUDA_V2, 1)
        assert r.payload == b""
        assert r.chunk_sizes.size == 0


class TestStats:
    def test_counts_consistent(self, text_data):
        r = encode(text_data, SERIAL, collect_detail=True)
        s = r.stats
        assert s.n_tokens == s.n_literals + s.n_pairs
        assert s.input_size == len(text_data)
        assert s.output_size == len(r.payload)
        # token output coverage equals input size
        covered = s.n_literals + s.sum_match_length
        assert covered == len(text_data)
        assert s.token_starts.size == s.n_tokens

    def test_total_bits_match_payload(self, text_data):
        r = encode(text_data, SERIAL)
        assert -(-r.stats.total_bits // 8) == len(r.payload)

    def test_ratio_definition(self, text_data):
        r = encode(text_data, SERIAL)
        assert r.stats.ratio == pytest.approx(len(r.payload) / len(text_data))

    def test_detail_off_by_default(self, text_data):
        r = encode(text_data, SERIAL)
        assert r.stats.token_starts is None
        assert r.stats.per_position_compares is None

    def test_lag_path_reports_compares(self, text_data):
        r = encode(text_data[:2000], CUDA_V2, collect_detail=True)
        assert r.stats.compare_count and r.stats.compare_count > 0
        assert r.stats.per_warp_compares is not None

    def test_merged_with(self, text_data):
        a = encode(text_data[:1000], SERIAL).stats
        b = encode(text_data[1000:2000], SERIAL).stats
        m = a.merged_with(b)
        assert m.input_size == 2000
        assert m.n_tokens == a.n_tokens + b.n_tokens


class TestSliceSemantics:
    def test_slice_tokens_never_cross(self, text_data):
        data = text_data[:4096]
        r = encode_chunked(data, CUDA_V1, 4096, slice_size=32,
                           collect_detail=True)
        starts = r.stats.token_starts
        lengths = r.stats.token_lengths
        ends = starts + lengths
        # a token starting in slice k ends within slice k
        assert ((ends - 1) // 32 == starts // 32).all()

    def test_slice_ratio_worse_than_unsliced(self, text_data):
        data = text_data[:8192]
        sliced = encode_chunked(data, CUDA_V1, 4096, slice_size=32)
        unsliced = encode_chunked(data, CUDA_V1, 4096)
        assert sliced.stats.ratio >= unsliced.stats.ratio

    def test_v1_tracks_serial_ratio(self, text_data):
        # Table II: V1 within ~2 points of serial on text
        serial = encode(text_data, SERIAL)
        v1 = encode_chunked(text_data, CUDA_V1, 4096, slice_size=32)
        assert v1.stats.ratio >= serial.stats.ratio
        assert v1.stats.ratio - serial.stats.ratio < 0.15
