"""Fast decoder: reference equivalence and corruption handling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CorruptChunkError
from repro.lzss.decoder import (
    SalvageReport,
    decode,
    decode_chunked,
    decode_chunked_with_stats,
    salvage_decode_chunked,
)
from repro.lzss.encoder import encode, encode_chunked
from repro.lzss.formats import CUDA_V2, SERIAL
from repro.lzss.reference import reference_encode


class TestAgainstReference:
    @settings(max_examples=25, deadline=None)
    @given(st.binary(max_size=600))
    def test_decodes_reference_streams(self, data):
        for fmt in (SERIAL, CUDA_V2):
            payload = reference_encode(data, fmt)
            assert decode(payload, fmt, len(data)) == data

    def test_deep_overlap_chain(self):
        # d=1 run: every output byte's parent chain walks to position 0
        data = b"z" * 5000
        payload = encode(data, SERIAL).payload
        assert decode(payload, SERIAL, len(data)) == data


class TestCorruption:
    def test_truncated_payload_raises(self, text_data):
        r = encode(text_data[:500], SERIAL)
        with pytest.raises(ValueError):
            decode(r.payload[: len(r.payload) // 2], SERIAL, 500)

    def test_wrong_output_size_raises(self, text_data):
        r = encode(text_data[:500], SERIAL)
        with pytest.raises(ValueError):
            decode(r.payload, SERIAL, 501)

    def test_excess_distance_raises(self):
        from repro.util.bitio import BitWriter

        w = BitWriter()
        # V2 pair with distance 200 > window 128 (but fits the field)
        w.write_bit(0)
        w.write_bits((199 << 8) | 0, 16)
        with pytest.raises(ValueError, match="window|distance"):
            decode(w.getvalue(), CUDA_V2, 3)

    def test_backreference_before_start_raises(self):
        from repro.util.bitio import BitWriter

        w = BitWriter()
        w.write_bit(1)
        w.write_bits(65, 8)  # literal 'A'
        w.write_bit(0)
        value, nbits = SERIAL.pack_pair(5, 3)  # distance 5 > 1 byte out
        w.write_bits(value, nbits - 1)
        with pytest.raises(ValueError):
            decode(w.getvalue(), SERIAL, 4)

    def test_empty_stream_nonzero_size_raises(self):
        with pytest.raises(ValueError):
            decode(b"", SERIAL, 4)

    def test_errors_are_typed_and_located(self):
        # Every decode-corruption error is a CorruptChunkError (a
        # ValueError subclass, so older call sites keep working) and
        # names the chunk plus the offending token position.
        from repro.util.bitio import BitWriter

        w = BitWriter()
        w.write_bit(1)
        w.write_bits(65, 8)  # literal 'A'
        w.write_bit(0)
        w.write_bits((199 << 8) | 0, 16)  # distance 200 > window 128
        with pytest.raises(CorruptChunkError) as err:
            decode(w.getvalue(), CUDA_V2, 4)
        exc = err.value
        assert isinstance(exc, ValueError)
        assert exc.chunk_index == 0
        assert exc.token_position == 1  # the pair after the literal
        assert "chunk 0" in str(exc)

    def test_chunked_error_names_failing_chunk(self, text_data):
        data = text_data[:4000]
        r = encode_chunked(data, CUDA_V2, 512)
        # Zero out chunk 4's stream: its token walk cannot land on the
        # declared output size.
        offsets = np.concatenate([[0], np.cumsum(r.chunk_sizes)])
        payload = bytearray(r.payload)
        payload[offsets[4]:offsets[5]] = bytes(int(offsets[5] - offsets[4]))
        with pytest.raises(CorruptChunkError) as err:
            decode_chunked(bytes(payload), CUDA_V2, r.chunk_sizes, 512,
                           len(data))
        assert err.value.chunk_index == 4

    def test_bit_flip_usually_detected_or_wrong(self, text_data):
        # A flipped flag bit either errors out or mis-decodes; it must
        # never crash with a non-ValueError.
        data = text_data[:300]
        payload = bytearray(encode(data, SERIAL).payload)
        payload[3] ^= 0x40
        try:
            out = decode(bytes(payload), SERIAL, len(data))
            assert isinstance(out, bytes)
        except ValueError:
            pass


class TestChunked:
    def test_table_mismatch_raises(self, text_data):
        r = encode_chunked(text_data, CUDA_V2, 512)
        bad = r.chunk_sizes.copy()
        bad[0] += 1
        with pytest.raises(ValueError):
            decode_chunked(r.payload, CUDA_V2, bad, 512, len(text_data))

    def test_wrong_chunk_count_raises(self, text_data):
        r = encode_chunked(text_data, CUDA_V2, 512)
        with pytest.raises(ValueError):
            decode_chunked(r.payload, CUDA_V2, r.chunk_sizes, 1024,
                           len(text_data))

    def test_stats_token_counts(self, text_data):
        data = text_data[:4000]
        r = encode_chunked(data, CUDA_V2, 512, collect_detail=True)
        out, tokens = decode_chunked_with_stats(
            r.payload, CUDA_V2, r.chunk_sizes, 512, len(data))
        assert out == data
        # decoder token counts agree with the encoder's parse
        per_chunk = np.bincount(r.stats.token_starts // 512,
                                minlength=tokens.size)
        assert tokens.tolist() == per_chunk.tolist()

    def test_zero_size(self):
        out, tokens = decode_chunked_with_stats(b"", CUDA_V2,
                                                np.array([], dtype=np.int64),
                                                512, 0)
        assert out == b"" and tokens.size == 0


class TestSalvage:
    def test_decode_failure_detection_without_crcs(self, text_data):
        # v1 containers have no per-chunk CRCs; salvage still catches
        # chunks whose token stream fails to decode.
        data = text_data[:4000]
        r = encode_chunked(data, CUDA_V2, 512)
        offsets = np.concatenate([[0], np.cumsum(r.chunk_sizes)])
        payload = bytearray(r.payload)
        payload[offsets[4]:offsets[5]] = bytes(int(offsets[5] - offsets[4]))
        out, tokens, report = salvage_decode_chunked(
            bytes(payload), CUDA_V2, r.chunk_sizes, 512, len(data))
        assert report.lost == [4]
        assert tokens[4] == 0
        assert out[:4 * 512] == data[:4 * 512]
        assert out[5 * 512:] == data[5 * 512:]
        assert out[4 * 512:5 * 512] == b"\x00" * 512

    def test_report_describe(self):
        clean = SalvageReport(n_chunks=3, recovered=[0, 1, 2])
        assert clean.complete
        assert "all 3 chunks" in clean.describe()
        hurt = SalvageReport(n_chunks=3, recovered=[0, 2], lost=[1],
                             lost_ranges=[(512, 1024)])
        assert not hurt.complete
        assert hurt.lost_bytes == 512
        assert "[1]" in hurt.describe()
