"""The pure-Python specification codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lzss.formats import CUDA_V2, SERIAL
from repro.lzss.reference import (
    reference_decode,
    reference_encode,
    reference_find_match,
    reference_tokenize,
)


class TestFindMatch:
    def test_no_match_in_fresh_stream(self):
        assert reference_find_match(b"abcdef", 0, SERIAL) == (0, 0)

    def test_finds_longest(self):
        #      0123456789
        data = b"abcabcabcX"
        dist, length = reference_find_match(data, 3, SERIAL)
        assert (dist, length) == (3, 6)  # overlapping run a-b-c ×2

    def test_nearest_distance_wins_ties(self):
        data = b"ab__ab__ab"
        dist, length = reference_find_match(data, 8, SERIAL)
        assert length == 2
        assert dist == 4  # two candidates of length 2; nearest wins

    def test_window_limit_respected(self):
        fmt = CUDA_V2  # window 128
        data = b"XYZ" + bytes(130) + b"XYZ"
        dist, length = reference_find_match(data, 133, fmt)
        # the XYZ at offset 0 lies 133 back — outside the 128 window;
        # the zero run before us still matches the zeros… check X only
        assert dist <= fmt.window

    def test_block_start_respected(self):
        data = b"abcabc"
        dist, length = reference_find_match(data, 3, SERIAL, block_start=3)
        assert (dist, length) == (0, 0)

    def test_length_capped_at_max_match(self):
        data = b"a" * 100
        dist, length = reference_find_match(data, 1, SERIAL)
        assert (dist, length) == (1, SERIAL.max_match)

    def test_block_end_caps_length(self):
        data = b"a" * 100
        dist, length = reference_find_match(data, 1, SERIAL, block_end=5)
        assert (dist, length) == (1, 4)


class TestTokenize:
    def test_literal_then_run(self):
        tokens = reference_tokenize(b"aaaaaa", SERIAL)
        assert tokens == [("lit", ord("a")), ("pair", 1, 5)]

    def test_short_matches_stay_literals(self):
        tokens = reference_tokenize(b"ababab"[:4], SERIAL)
        # "abab": third/fourth chars match at distance 2 but length 2 < 3
        assert all(t[0] == "lit" for t in tokens)

    def test_tokens_cover_input_exactly(self, text_data):
        data = text_data[:600]
        tokens = reference_tokenize(data, SERIAL)
        covered = sum(1 if t[0] == "lit" else t[2] for t in tokens)
        assert covered == len(data)


class TestRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(st.binary(max_size=300))
    def test_random_bytes(self, data):
        payload = reference_encode(data, SERIAL)
        assert reference_decode(payload, SERIAL, len(data)) == data

    @settings(max_examples=25, deadline=None)
    @given(st.text(alphabet="ab", max_size=300))
    def test_low_entropy_text(self, text):
        data = text.encode()
        for fmt in (SERIAL, CUDA_V2):
            payload = reference_encode(data, fmt)
            assert reference_decode(payload, fmt, len(data)) == data

    def test_overlapping_run_decodes(self):
        data = b"x" + b"y" * 50
        payload = reference_encode(data, SERIAL)
        assert reference_decode(payload, SERIAL, len(data)) == data

    def test_corrupt_distance_detected(self):
        # A pair pointing before the stream start must raise.
        from repro.util.bitio import BitWriter

        w = BitWriter()
        value, nbits = SERIAL.pack_pair(5, 3)
        w.write_bits(value, nbits)
        with pytest.raises(ValueError, match="distance"):
            reference_decode(w.getvalue(), SERIAL, 3)
