"""PthreadLzss keeps one worker pool alive across calls."""

from __future__ import annotations


from repro.cpu import PthreadLzss


def test_pool_persists_across_calls(text_data):
    p = PthreadLzss(n_threads=2)
    try:
        r1 = p.compress(text_data)
        pool = p._pool
        assert pool is not None
        r2 = p.compress(text_data)
        assert p._pool is pool  # no churn
        assert r1.payload == r2.payload
        assert p.decompress(r2) == text_data
        assert p._pool is pool
    finally:
        p.close()


def test_close_is_idempotent_and_releases(text_data):
    p = PthreadLzss(n_threads=2)
    p.compress(text_data)
    p.close()
    assert p._pool is None
    p.close()


def test_context_manager_closes(text_data):
    with PthreadLzss(n_threads=2) as p:
        result = p.compress(text_data)
        assert p.decompress(result) == text_data
    assert p._pool is None


def test_closed_instance_reopens_on_use(text_data):
    p = PthreadLzss(n_threads=2)
    p.compress(text_data)
    p.close()
    result = p.compress(text_data)  # transparently re-opens
    try:
        assert p.decompress(result) == text_data
    finally:
        p.close()
