"""Serial and Pthread CPU drivers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import PthreadLzss, SerialLzss


class TestSerial:
    @settings(max_examples=15, deadline=None)
    @given(st.binary(max_size=2000))
    def test_roundtrip(self, data):
        s = SerialLzss()
        r = s.compress(data)
        assert s.decompress(r.payload, len(data)) == data

    def test_container_roundtrip(self, text_data):
        s = SerialLzss()
        blob = s.compress_container(text_data)
        assert s.decompress_container(blob) == text_data

    def test_container_rejects_gpu_blob(self, text_data):
        from repro.core import gpu_compress

        blob = gpu_compress(text_data).data
        with pytest.raises(ValueError):
            SerialLzss().decompress_container(blob)

    def test_detail_collection(self, text_data):
        r = SerialLzss(collect_detail=True).compress(text_data)
        assert r.stats.token_starts is not None


class TestPthread:
    def test_roundtrip_result_object(self, text_data):
        p = PthreadLzss(4)
        r = p.compress(text_data)
        assert p.decompress(r) == text_data

    def test_roundtrip_raw_pieces(self, text_data):
        p = PthreadLzss(3)
        r = p.compress(text_data)
        out = p.decompress(r.payload, chunk_sizes=r.chunk_sizes,
                           chunk_size=r.chunk_size,
                           output_size=r.input_size)
        assert out == text_data

    def test_chunk_count_matches_threads(self, text_data):
        r = PthreadLzss(8).compress(text_data)
        assert r.chunk_sizes.size == 8

    def test_fewer_chunks_for_tiny_input(self):
        r = PthreadLzss(8).compress(b"tiny")
        assert r.chunk_sizes.size >= 1
        assert PthreadLzss(8).decompress(r) == b"tiny"

    def test_single_thread_equals_serial_stream(self, text_data):
        serial = SerialLzss().compress(text_data)
        threaded = PthreadLzss(1).compress(text_data)
        assert threaded.payload == serial.payload

    def test_merged_stats(self, text_data):
        r = PthreadLzss(4).compress(text_data)
        assert r.stats.input_size == len(text_data)
        assert r.stats.output_size == len(r.payload)

    def test_thread_count_validated(self):
        with pytest.raises(ValueError):
            PthreadLzss(0)

    def test_empty_input(self):
        r = PthreadLzss(4).compress(b"")
        assert r.payload == b""

    def test_chunking_barely_hurts_ratio(self, text_data):
        # §III.A: chunked threading must not change the ratio much —
        # chunks are huge relative to the 4096-byte window.
        data = text_data * 8  # 160 KB → 40 KB per thread chunk
        serial = SerialLzss().compress(data)
        threaded = PthreadLzss(4).compress(data)
        assert threaded.stats.ratio <= serial.stats.ratio + 0.02

    def test_missing_metadata_rejected(self, text_data):
        p = PthreadLzss(2)
        r = p.compress(text_data)
        with pytest.raises(ValueError):
            p.decompress(r.payload, chunk_sizes=r.chunk_sizes)
