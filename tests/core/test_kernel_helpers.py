"""Shared kernel-cost reduction helpers."""

import numpy as np
import pytest

from repro.core.kernels import per_block_sums, v1_conflict_degree, warp_max_sums


class TestWarpMaxSums:
    def test_single_group(self):
        lanes = np.zeros(64)
        lanes[3] = 10.0   # warp 0
        lanes[40] = 7.0   # warp 1
        out = warp_max_sums(lanes, 64)
        assert out.tolist() == [17.0]

    def test_multiple_groups(self):
        lanes = np.arange(128, dtype=float)
        out = warp_max_sums(lanes, 64)
        # group 0: warps max 31, 63; group 1: 95, 127
        assert out.tolist() == [31.0 + 63.0, 95.0 + 127.0]

    def test_padding(self):
        out = warp_max_sums(np.array([5.0]), 32)
        assert out.tolist() == [5.0]

    def test_group_must_be_warp_multiple(self):
        with pytest.raises(ValueError):
            warp_max_sums(np.ones(10), 48)

    def test_uniform_lanes_equal_single_lane_per_warp(self):
        lanes = np.full(256, 3.0)
        out = warp_max_sums(lanes, 128)
        assert out.tolist() == [12.0, 12.0]  # 4 warps × 3.0 each


class TestPerBlockSums:
    def test_basic(self):
        out = per_block_sums(np.arange(6, dtype=float), 3)
        assert out.tolist() == [3.0, 12.0]

    def test_padding(self):
        out = per_block_sums(np.array([1.0, 2.0]), 4)
        assert out.tolist() == [3.0]


def test_v1_conflict_degree_cached_constant():
    a = v1_conflict_degree()
    assert a == v1_conflict_degree()
    assert 3.0 < a < 4.0
