"""Property tests for the streaming-pipeline scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import STAGES, _schedule

stage_dicts = st.lists(
    st.fixed_dictionaries({s: st.floats(0.0, 10.0, allow_nan=False)
                           for s in STAGES}),
    min_size=0, max_size=12,
)


class TestScheduleProperties:
    @settings(max_examples=80, deadline=None)
    @given(stage_dicts)
    def test_bounded_by_sum_and_bottleneck(self, buffers):
        total = _schedule(buffers)
        sequential = sum(sum(b.values()) for b in buffers)
        assert total <= sequential + 1e-9
        for s in STAGES:
            assert total >= sum(b[s] for b in buffers) - 1e-9

    @settings(max_examples=50, deadline=None)
    @given(stage_dicts, st.fixed_dictionaries(
        {s: st.floats(0.0, 10.0, allow_nan=False) for s in STAGES}))
    def test_monotone_in_buffers(self, buffers, extra):
        assert _schedule(buffers + [extra]) >= _schedule(buffers) - 1e-9

    @settings(max_examples=50, deadline=None)
    @given(stage_dicts)
    def test_includes_first_buffer_fill(self, buffers):
        if not buffers:
            return
        assert _schedule(buffers) >= sum(buffers[0].values()) - 1e-9

    def test_zero_stages(self):
        assert _schedule([{s: 0.0 for s in STAGES}] * 4) == 0.0
