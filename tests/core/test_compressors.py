"""V1/V2 compressors and the GPU decompressor: function + cost model."""

import numpy as np
import pytest

from repro.core.decompress import GpuDecompressor
from repro.core.params import CompressionParams
from repro.core.v1 import V1Compressor
from repro.core.v2 import V2Compressor
from repro.lzss.decoder import decode_chunked
from repro.model.calibration import default_calibration
from repro.model.cpu import sample_match_statistics


@pytest.fixture(scope="module")
def cal():
    return default_calibration()


class TestV1:
    def test_roundtrip(self, text_data):
        v1 = V1Compressor()
        r = v1.compress(text_data)
        out = decode_chunked(r.payload, r.format, r.chunk_sizes,
                             v1.params.chunk_size, len(text_data))
        assert out == text_data

    def test_wrong_version_rejected(self):
        with pytest.raises(ValueError):
            V1Compressor(CompressionParams(version=2))

    def test_profile_phases(self, text_data, cal):
        v1 = V1Compressor()
        r = v1.compress(text_data)
        sample = sample_match_statistics(text_data)
        prof = v1.profile(r, cal, sample)
        names = [p.name for p in prof.phases]
        assert names == ["h2d_input", "kernel_match_encode", "d2h_buckets",
                         "cpu_concat"]
        assert prof.total_seconds > 0

    def test_shared_ablation_slower(self, text_data, cal):
        sample = sample_match_statistics(text_data)
        fast = V1Compressor()
        slow = V1Compressor(CompressionParams(version=1,
                                              buffers_in_shared=False))
        r = fast.compress(text_data)
        t_shared = fast.profile(r, cal, sample).total_seconds
        t_global = slow.profile(r, cal, sample).total_seconds
        # §III.D: moving buffers to shared memory "allowed us a 30 %
        # speed up" — the global variant must be distinctly slower.
        assert t_global > t_shared * 1.1

    def test_skip_advantage_on_runny_data(self, runny_data, text_data, cal):
        # V1 inherits the serial skip: per-byte kernel work on
        # highly-compressible data is far below text (§V).
        v1 = V1Compressor()

        def per_byte(data):
            r = v1.compress(data)
            s = sample_match_statistics(data)
            launch = v1.kernel_launch(r, cal, s)
            return sum(b.compute_cycles for b in launch.blocks) / len(data)

        assert per_byte(runny_data) < per_byte(text_data) * 0.8


class TestV2:
    def test_roundtrip(self, text_data):
        v2 = V2Compressor()
        r = v2.compress(text_data)
        out = decode_chunked(r.payload, r.format, r.chunk_sizes,
                             v2.params.chunk_size, len(text_data))
        assert out == text_data

    def test_wrong_version_rejected(self):
        with pytest.raises(ValueError):
            V2Compressor(CompressionParams(version=1))

    def test_profile_overlap(self, text_data, cal):
        v2 = V2Compressor()
        r = v2.compress(text_data)
        with_overlap = v2.profile(r, cal).total_seconds
        no_overlap = V2Compressor(CompressionParams(
            version=2, overlap_cpu_gpu=False)).profile(r, cal).total_seconds
        assert no_overlap >= with_overlap

    def test_no_skip_work_scales_with_positions(self, runny_data, cal):
        # V2 matches at every position: its kernel work per byte on
        # run-heavy data is NOT lower than on text (§V's explanation
        # for the DE-map/highly-compressible losses).
        v2 = V2Compressor()
        r = v2.compress(runny_data)
        launch = v2.kernel_launch(r, cal)
        per_byte = sum(b.compute_cycles for b in launch.blocks) / len(runny_data)
        assert per_byte > 10.0

    def test_fixup_seconds_positive(self, text_data, cal):
        v2 = V2Compressor()
        r = v2.compress(text_data)
        assert v2.fixup_seconds(r, cal) > 0


class TestVersionContrast:
    def test_v1_beats_v2_on_runny_v2_wins_on_text(self, runny_data, cal):
        """The paper's §V selection rule, reproduced in the model.

        §V: V2 "is suitable and gives best performance gain mainly on
        files that are around 50% compressible data or less" — so the
        text side uses the C-files corpus (~50 % ratio), not an
        over-compressible toy.
        """
        from repro.datasets import generate

        cfiles = generate("cfiles", 256 * 1024)
        v1, v2 = V1Compressor(), V2Compressor()

        def times(data):
            s = sample_match_statistics(data)
            t1 = v1.profile(v1.compress(data), cal, s).total_seconds
            t2 = v2.profile(v2.compress(data), cal).total_seconds
            return t1 / len(data), t2 / len(data)

        t1_text, t2_text = times(cfiles)
        t1_run, t2_run = times(runny_data)
        assert t2_text < t1_text    # V2 wins on ~50 %-compressible text
        assert t1_run < t2_run      # V1 wins on highly-compressible data


class TestGpuDecompressor:
    def test_functional_identity(self, text_data):
        v2 = V2Compressor()
        r = v2.compress(text_data)
        d = GpuDecompressor(v2.params)
        out = d.decompress(r.payload, r.format, r.chunk_sizes,
                           v2.params.chunk_size, len(text_data))
        assert out == text_data

    def test_profile(self, text_data, cal):
        v1 = V1Compressor()
        r = v1.compress(text_data)
        n_chunks = r.chunk_sizes.size
        tokens = np.bincount(r.stats.token_starts // 4096,
                             minlength=n_chunks)
        prof = GpuDecompressor().profile(tokens, len(r.payload),
                                         len(text_data), r.chunk_sizes, cal)
        assert [p.name for p in prof.phases] == ["h2d_payload",
                                                 "kernel_decode",
                                                 "d2h_output"]
        assert prof.total_seconds > 0

    def test_misaligned_arrays_rejected(self, cal):
        with pytest.raises(ValueError):
            GpuDecompressor().kernel_launch(np.ones(3), np.ones(2),
                                            np.ones(3), cal)
