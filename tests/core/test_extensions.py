"""§VII extensions: the streaming pipeline and the heterogeneous split."""

import pytest

from repro.core import (
    CompressionParams,
    HeterogeneousCompressor,
    StreamingPipeline,
    gpu_decompress,
)
from repro.core.pipeline import _schedule
from repro.datasets import generate


class TestPipelineScheduler:
    def test_single_buffer_is_stage_sum(self):
        stages = [{"h2d": 1.0, "kernel": 4.0, "d2h": 1.0, "cpu": 2.0}]
        assert _schedule(stages) == pytest.approx(8.0)

    def test_steady_state_dominated_by_slowest_stage(self):
        one = {"h2d": 1.0, "kernel": 4.0, "d2h": 1.0, "cpu": 2.0}
        many = _schedule([dict(one)] * 10)
        # fill (8) + 9 more kernels (the bottleneck stage)
        assert many == pytest.approx(8.0 + 9 * 4.0)

    def test_never_faster_than_bottleneck(self):
        one = {"h2d": 0.5, "kernel": 3.0, "d2h": 0.5, "cpu": 0.5}
        total = _schedule([dict(one)] * 5)
        assert total >= 5 * 3.0

    def test_empty_stream(self):
        assert _schedule([]) == 0.0


class TestStreamingPipeline:
    @pytest.fixture(scope="class")
    def buffers(self):
        return [generate("cfiles", 128 * 1024, seed=i) for i in range(3)]

    @pytest.mark.parametrize("version", [1, 2])
    def test_functional_roundtrip(self, buffers, version):
        pipe = StreamingPipeline(CompressionParams(version=version))
        res = pipe.compress_stream(buffers)
        assert len(res.containers) == len(buffers)
        for blob, buf in zip(res.containers, buffers):
            assert gpu_decompress(blob).data == buf

    def test_pipelining_helps_never_hurts(self, buffers):
        res = StreamingPipeline().compress_stream(buffers)
        assert res.pipelined_seconds <= res.sequential_seconds + 1e-12
        assert res.overlap_speedup >= 1.0

    def test_stage_accounting(self, buffers):
        res = StreamingPipeline().compress_stream(buffers)
        assert res.sequential_seconds == pytest.approx(
            sum(res.stage_seconds.values()))
        assert res.input_bytes == sum(len(b) for b in buffers)
        assert 0 < res.ratio < 1.2

    def test_empty_buffer_rejected(self):
        with pytest.raises(ValueError):
            StreamingPipeline().compress_stream([b""])


class TestHeterogeneous:
    @pytest.fixture(scope="class")
    def data(self):
        return generate("cfiles", 384 * 1024)

    def test_roundtrip(self, data):
        het = HeterogeneousCompressor()
        blob, _plan = het.compress(data)
        assert het.decompress(blob) == data

    def test_plan_balances_devices(self, data):
        plan = HeterogeneousCompressor().plan(data)
        assert 0.0 < plan.gpu_fraction < 1.0
        # the equal-finish split: both devices end within a whisker
        assert plan.gpu_seconds == pytest.approx(plan.cpu_seconds, rel=0.01)

    def test_combined_beats_either_alone(self, data):
        plan = HeterogeneousCompressor().plan(data)
        n = len(data)
        t_gpu_alone = plan.gpu_seconds / plan.gpu_fraction
        t_cpu_alone = plan.cpu_seconds / (1 - plan.gpu_fraction)
        assert plan.makespan < t_gpu_alone
        assert plan.makespan < t_cpu_alone

    def test_v1_variant(self, data):
        het = HeterogeneousCompressor(CompressionParams(version=1))
        blob, plan = het.compress(data)
        assert het.decompress(blob) == data
        assert 0 < plan.gpu_fraction < 1

    def test_corrupt_frame_rejected(self, data):
        het = HeterogeneousCompressor()
        blob, _ = het.compress(data)
        with pytest.raises(ValueError):
            het.decompress(b"XXXX" + blob[4:])
        with pytest.raises(ValueError):
            het.decompress(blob[:-3])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            HeterogeneousCompressor().plan(b"")
