"""V2's CPU fixup pass: vectorized vs the paper's serial walk."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fixup import fixup_matches, fixup_matches_reference
from repro.lzss.encoder import encode_chunked
from repro.lzss.formats import CUDA_V2
from repro.lzss.lagmatch import lag_best_matches


class TestEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(st.binary(max_size=500), st.sampled_from([None, 64, 128]))
    def test_matches_reference_walk(self, data, chunk):
        res = lag_best_matches(data, CUDA_V2.window, CUDA_V2.max_match,
                               chunk_size=chunk)
        fast = fixup_matches(res.best_len, res.best_dist, CUDA_V2, chunk)
        ref = fixup_matches_reference(res.best_len, res.best_dist,
                                      CUDA_V2, chunk)
        assert fast.starts.tolist() == ref.starts.tolist()
        assert fast.is_pair.tolist() == ref.is_pair.tolist()
        assert fast.lengths.tolist() == ref.lengths.tolist()
        assert fast.distances.tolist() == ref.distances.tolist()


class TestSemantics:
    def test_redundant_matches_eliminated(self, text_data):
        data = text_data[:2000]
        res = lag_best_matches(data, 128, 66)
        fix = fixup_matches(res.best_len, res.best_dist, CUDA_V2)
        # kept tokens tile the input without overlap
        expected_next = 0
        for s, ln in zip(fix.starts, fix.lengths):
            assert s == expected_next
            expected_next = s + ln
        assert expected_next == len(data)
        # far fewer tokens than candidate matches
        assert fix.tokens_emitted < np.count_nonzero(res.best_len) + len(data)

    def test_flags_generated(self, text_data):
        data = text_data[:500]
        res = lag_best_matches(data, 128, 66)
        fix = fixup_matches(res.best_len, res.best_dist, CUDA_V2)
        assert fix.is_pair.dtype == bool
        assert (fix.lengths[~fix.is_pair] == 1).all()
        assert (fix.lengths[fix.is_pair] >= CUDA_V2.min_match).all()

    def test_agrees_with_encoder_tokens(self, text_data):
        # fixup(kernel output) is exactly the V2 encoder's parse
        data = text_data[:4096]
        r = encode_chunked(data, CUDA_V2, 1024, collect_detail=True)
        res = lag_best_matches(data, CUDA_V2.window, CUDA_V2.max_match,
                               chunk_size=1024)
        fix = fixup_matches(res.best_len, res.best_dist, CUDA_V2, 1024)
        assert fix.starts.tolist() == r.stats.token_starts.tolist()

    def test_op_counts(self):
        res = lag_best_matches(b"ababab" * 10, 16, 18)
        fix = fixup_matches(res.best_len, res.best_dist, CUDA_V2)
        assert fix.positions_scanned == 60
        assert fix.tokens_emitted == fix.starts.size
