"""The in-memory gpu_compress/gpu_decompress API (Figure 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import gpu_compress, gpu_decompress
from repro.core.params import CompressionParams


class TestRoundTrip:
    @settings(max_examples=10, deadline=None)
    @given(st.binary(min_size=1, max_size=3000))
    def test_property(self, data):
        for version in (1, 2):
            buf = gpu_compress(data, CompressionParams(version=version))
            assert gpu_decompress(buf.data).data == data

    def test_all_buffer_types_accepted(self, text_data):
        expected = gpu_compress(text_data).data
        assert gpu_compress(bytearray(text_data)).data == expected
        assert gpu_compress(memoryview(text_data)).data == expected
        arr = np.frombuffer(text_data, dtype=np.uint8)
        assert gpu_compress(arr).data == expected

    def test_empty_buffer(self):
        buf = gpu_compress(b"")
        assert gpu_decompress(buf.data).data == b""
        assert buf.modeled_seconds == 0.0


class TestVersionSelection:
    def test_version_changes_format(self, text_data):
        v1 = gpu_compress(text_data, CompressionParams(version=1))
        v2 = gpu_compress(text_data, CompressionParams(version=2))
        assert v1.result.format.name == "cuda_v1"
        assert v2.result.format.name == "cuda_v2"
        assert v1.data != v2.data

    def test_both_decode_identically(self, text_data):
        for version in (1, 2):
            buf = gpu_compress(text_data, CompressionParams(version=version))
            assert gpu_decompress(buf.data).data == text_data

    def test_default_is_v2(self, text_data):
        assert gpu_compress(text_data).result.format.name == "cuda_v2"


class TestMetadata:
    def test_ratio_counts_container(self, text_data):
        buf = gpu_compress(text_data)
        assert buf.ratio == pytest.approx(len(buf.data) / len(text_data))
        assert buf.compressed_size == len(buf.data)

    def test_profiles_attached(self, text_data):
        buf = gpu_compress(text_data)
        assert buf.modeled_seconds > 0
        dec = gpu_decompress(buf.data)
        assert dec.modeled_seconds > 0

    def test_sweep_params_rejected_for_containers(self, text_data):
        with pytest.raises(ValueError, match="window"):
            gpu_compress(text_data, CompressionParams(version=2, window=64))

    def test_corrupt_blob_rejected(self, text_data):
        blob = bytearray(gpu_compress(text_data).data)
        blob[-1] ^= 0xFF
        with pytest.raises(ValueError):
            gpu_decompress(bytes(blob))


class TestGatewayScenario:
    def test_in_equals_out_through_gateway_pair(self, text_data,
                                                 binary_data, runny_data):
        """§III: 'the data looks the same going in as coming out'."""
        for payload in (text_data, binary_data, runny_data):
            wire = gpu_compress(payload).data
            assert gpu_decompress(wire).data == payload
