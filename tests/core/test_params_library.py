"""CompressionParams and library initialization."""

import pytest

from repro.core.library import CulzssLibrary, get_library
from repro.core.params import CompressionParams
from repro.lzss.constants import CUDA_CHUNK_SIZE, CUDA_WINDOW


class TestParams:
    def test_defaults_are_the_papers(self):
        p = CompressionParams()
        assert p.version == 2
        assert p.window == CUDA_WINDOW == 128
        assert p.chunk_size == CUDA_CHUNK_SIZE == 4096
        assert p.threads_per_block == 128
        assert p.device.name == "GeForce GTX 480"

    def test_version_validated(self):
        with pytest.raises(ValueError):
            CompressionParams(version=3)

    def test_window_cannot_exceed_chunk(self):
        with pytest.raises(ValueError):
            CompressionParams(window=256, chunk_size=128)

    def test_v1_format_is_serial_token(self):
        p = CompressionParams(version=1)
        fmt = p.token_format
        assert fmt.name == "cuda_v1"
        assert fmt.pair_bits == 17
        assert fmt.window == 4096

    def test_v2_format(self):
        fmt = CompressionParams(version=2).token_format
        assert fmt.name == "cuda_v2"
        assert fmt.window == 128
        assert fmt.max_match == 66

    def test_custom_window_builds_sweep_format(self):
        p = CompressionParams(version=2, window=256)
        fmt = p.token_format
        assert fmt.window == 256
        assert fmt.offset_bits == 8
        assert not p.is_standard_format

    def test_slice_size(self):
        assert CompressionParams(version=1).slice_size == 32
        assert CompressionParams(version=1,
                                 threads_per_block=64).slice_size == 64

    def test_shared_bytes(self):
        v1 = CompressionParams(version=1)
        assert v1.shared_bytes_per_block == 4096 + 128 * 48
        v2 = CompressionParams(version=2)
        assert v2.shared_bytes_per_block == 128 + 128 + 32

    def test_buffers_in_global_claim_nothing(self):
        p = CompressionParams(version=1, buffers_in_shared=False)
        assert p.shared_bytes_per_block == 0

    def test_with_overrides(self):
        p = CompressionParams().with_overrides(threads_per_block=64)
        assert p.threads_per_block == 64
        assert p.version == 2


class TestLibrary:
    def test_detects_the_testbed_card(self):
        lib = CulzssLibrary()
        assert lib.default_device.name == "GeForce GTX 480"

    def test_capabilities(self):
        caps = CulzssLibrary().capabilities()
        assert caps["cuda_cores"] == 480
        assert caps["versions"] == (1, 2)

    def test_singleton(self):
        assert get_library() is get_library()

    def test_default_params_bound_to_device(self):
        p = get_library().default_params(version=1)
        assert p.version == 1
        assert p.device.name == "GeForce GTX 480"
