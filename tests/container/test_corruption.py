"""Chaos suite: container corruption vs strict and salvage decode.

Every corruption here is seeded (``REPRO_CHAOS_SEED`` selects the
pattern; the CI chaos lane runs three fixed seeds) so a failure pins
the exact damage for local replay.  The headline property: corrupt *k*
of *n* chunks of a v2 container and salvage decode returns the other
``n - k`` byte-identical, reports exactly the ``k`` lost indices, and
strict decode raises :class:`CorruptChunkError` naming the first bad
chunk.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.container import (
    CONTAINER_VERSION_V1,
    HEADER_SIZE,
    pack_container,
    unpack_container,
    verify_chunks,
)
from repro.core import CompressionParams, gpu_compress, gpu_decompress
from repro.errors import (
    ContainerError,
    CorruptChunkError,
    CorruptPayloadError,
    ReproError,
    TruncatedContainerError,
)
from repro.testing import (
    chaos_seed,
    corrupt_chunk_table,
    corrupt_chunks,
    flip_bits,
    truncate,
)

SEED = chaos_seed()
CHUNK = 4096


@pytest.fixture(scope="module")
def payload() -> bytes:
    rng = np.random.default_rng(SEED)
    words = [b"culzss ", b"chunk ", b"stream ", b"robust ", b"salvage "]
    return b"".join(words[i] for i in rng.integers(0, len(words), 5000))


@pytest.fixture(scope="module")
def blob(payload) -> bytes:
    return gpu_compress(payload, CompressionParams(version=2)).data


@pytest.fixture(scope="module")
def n_chunks(blob) -> int:
    return int(unpack_container(blob).chunk_sizes.size)


class TestSalvageRoundTrip:
    def test_k_of_n_chunks_corrupted(self, payload, blob, n_chunks):
        # The acceptance property, for every k from one chunk to all.
        rng = np.random.default_rng(SEED)
        for k in range(1, n_chunks + 1):
            lost = sorted(rng.choice(n_chunks, size=k, replace=False)
                          .tolist())
            bad = corrupt_chunks(blob, lost, seed=int(rng.integers(1 << 30)))

            with pytest.raises(CorruptChunkError) as err:
                gpu_decompress(bad)
            assert err.value.chunk_index == lost[0]

            res = gpu_decompress(bad, errors="salvage")
            report = res.salvage
            assert report.lost == lost
            assert report.recovered == [c for c in range(n_chunks)
                                        if c not in lost]
            for c in range(n_chunks):
                lo, hi = c * CHUNK, min((c + 1) * CHUNK, len(payload))
                if c in lost:
                    assert res.data[lo:hi] == b"\x00" * (hi - lo)
                else:
                    assert res.data[lo:hi] == payload[lo:hi]
            assert report.lost_ranges == [
                (c * CHUNK, min((c + 1) * CHUNK, len(payload)))
                for c in lost]

    def test_parallel_salvage_matches_serial(self, blob, n_chunks):
        bad = corrupt_chunks(blob, [1, n_chunks - 1], seed=SEED)
        serial = gpu_decompress(bad, errors="salvage")
        sharded = gpu_decompress(bad, errors="salvage", workers=4)
        assert sharded.data == serial.data
        assert sharded.salvage.lost == serial.salvage.lost == [1, n_chunks - 1]
        assert sorted(sharded.salvage.recovered) == serial.salvage.recovered

    def test_fill_byte(self, payload, blob):
        bad = corrupt_chunks(blob, [0], seed=SEED)
        res = gpu_decompress(bad, errors="salvage", fill_byte=0xAA)
        assert res.data[:CHUNK] == b"\xaa" * CHUNK
        assert res.data[CHUNK:] == payload[CHUNK:]
        assert res.salvage.fill_byte == 0xAA
        assert "0xaa" in res.salvage.describe()

    def test_clean_blob_salvages_completely(self, payload, blob, n_chunks):
        res = gpu_decompress(blob, errors="salvage")
        assert res.data == payload
        assert res.salvage.complete
        assert res.salvage.recovered == list(range(n_chunks))
        assert res.salvage.lost_bytes == 0


class TestStrictDetection:
    def test_single_bit_flip_never_silent(self, blob):
        # v2's layered checksums: any single flipped bit — header,
        # size table, CRC table, or payload — must raise.
        rng = np.random.default_rng(SEED)
        for _ in range(64):
            pos = int(rng.integers(len(blob)))
            bad = flip_bits(blob, 1, seed=int(rng.integers(1 << 30)),
                            lo=pos, hi=pos + 1)
            with pytest.raises(ReproError):
                unpack_container(bad)

    def test_chunk_error_carries_location(self, blob):
        bad = corrupt_chunks(blob, [3], seed=SEED)
        with pytest.raises(CorruptChunkError) as err:
            unpack_container(bad)
        exc = err.value
        assert exc.chunk_index == 3
        assert exc.offset == int(
            unpack_container(blob).chunk_ranges()[3, 0])
        assert "chunk 3" in str(exc)

    def test_chunk_table_corruption_detected(self, blob):
        for i in range(8):
            bad = corrupt_chunk_table(blob, seed=SEED + i)
            with pytest.raises(ContainerError):
                unpack_container(bad)

    def test_verify_chunks_mask(self, blob, n_chunks):
        bad = corrupt_chunks(blob, [2, 4], seed=SEED)
        mask = verify_chunks(unpack_container(bad, strict=False))
        assert mask.tolist() == [c not in (2, 4) for c in range(n_chunks)]


class TestTruncation:
    def test_short_blob_names_sizes(self):
        with pytest.raises(TruncatedContainerError) as err:
            unpack_container(b"CLZS\x02")
        assert err.value.expected == HEADER_SIZE
        assert err.value.actual == 5
        assert "expected >= 32 bytes, got 5" in str(err.value)

    def test_truncated_table(self, blob):
        with pytest.raises(TruncatedContainerError):
            unpack_container(blob[:HEADER_SIZE + 3])

    def test_truncated_payload_strict(self, blob):
        with pytest.raises(TruncatedContainerError):
            unpack_container(truncate(blob, 10))

    def test_truncated_payload_salvage_recovers_prefix(self, payload, blob,
                                                       n_chunks):
        # Cut the last chunk in half: everything before it survives.
        last_size = int(unpack_container(blob).chunk_sizes[-1])
        res = gpu_decompress(truncate(blob, last_size // 2 + 1),
                             errors="salvage")
        assert res.salvage.lost == [n_chunks - 1]
        assert res.data[:(n_chunks - 1) * CHUNK] == \
            payload[:(n_chunks - 1) * CHUNK]


class TestV1Compat:
    def test_v1_payload_corruption_is_whole_archive(self, blob):
        # v1 has only the whole-payload CRC: same damage, coarser error.
        r_blob = pack_container(
            gpu_compress(b"v1 compat " * 2000,
                         CompressionParams(version=2)).result,
            version=CONTAINER_VERSION_V1)
        info = unpack_container(r_blob)
        assert info.version == CONTAINER_VERSION_V1
        assert info.chunk_crcs is None
        bad = corrupt_chunks(r_blob, [0], seed=SEED)
        with pytest.raises(CorruptPayloadError, match="checksum"):
            unpack_container(bad)

    def test_v1_truncation_salvage(self):
        data = b"v1 salvage " * 2000
        r_blob = pack_container(
            gpu_compress(data, CompressionParams(version=2)).result,
            version=CONTAINER_VERSION_V1)
        sizes = unpack_container(r_blob).chunk_sizes
        res = gpu_decompress(truncate(r_blob, int(sizes[-1]) // 2 + 1),
                             errors="salvage")
        assert res.salvage.lost == [len(sizes) - 1]
        n_ok = (len(sizes) - 1) * CHUNK
        assert res.data[:n_ok] == data[:n_ok]


class TestCodecColumn:
    """Chaos for the container v3 codec column.

    The column has no checksum of its own, but every value it can
    legally take is registry-checked: a byte rotted to an unknown id
    is corruption (strict raises, salvage fills and reports), and a
    byte rotted to a *different known* id sends the payload to the
    wrong decoder, which must fail its own framing checks rather than
    fabricate output.
    """

    @pytest.fixture(scope="class")
    def v3_blob(self, payload) -> bytes:
        return gpu_compress(payload, codec="auto").data

    @staticmethod
    def _column_offset(blob: bytes, c: int) -> int:
        n = int(unpack_container(blob, strict=False).chunk_sizes.size)
        # v3 layout: header, <u4 size table, <u4 CRC table, u8 codecs.
        return HEADER_SIZE + 4 * n + 4 * n + c

    def test_blob_is_v3_and_round_trips(self, payload, v3_blob):
        info = unpack_container(v3_blob)
        assert info.version == 3
        assert info.chunk_codecs is not None
        assert gpu_decompress(v3_blob).data == payload

    def test_unknown_codec_id_strict(self, v3_blob):
        rng = np.random.default_rng(SEED)
        k = int(rng.integers(unpack_container(v3_blob).chunk_sizes.size))
        bad = bytearray(v3_blob)
        bad[self._column_offset(v3_blob, k)] = 0xFF
        with pytest.raises(CorruptChunkError) as err:
            gpu_decompress(bytes(bad))
        assert err.value.chunk_index == k
        assert "codec id 255" in str(err.value)

    def test_unknown_codec_id_salvage(self, payload, v3_blob):
        rng = np.random.default_rng(SEED)
        n = int(unpack_container(v3_blob).chunk_sizes.size)
        k = int(rng.integers(n))
        bad = bytearray(v3_blob)
        bad[self._column_offset(v3_blob, k)] = 0xFF
        res = gpu_decompress(bytes(bad), errors="salvage")
        report = res.salvage
        assert report.unknown_codec == [k]
        assert report.lost == [k]
        assert report.recovered == [c for c in range(n) if c != k]
        lo, hi = k * CHUNK, min((k + 1) * CHUNK, len(payload))
        assert res.data[lo:hi] == b"\x00" * (hi - lo)
        assert res.data[:lo] == payload[:lo]
        assert res.data[hi:] == payload[hi:]
        assert f"unknown codec id on chunks [{k}]" in report.describe()

    def test_wrong_known_codec_id_never_silent(self, payload, v3_blob):
        # Rot a column byte to the *store* id: the compressed slice no
        # longer matches the chunk's raw size, so strict decode must
        # raise rather than hand back the compressed bytes as data.
        info = unpack_container(v3_blob)
        from repro.codecs import STORE_CODEC_ID
        candidates = [c for c in range(int(info.chunk_sizes.size))
                      if int(info.chunk_codecs[c]) != STORE_CODEC_ID
                      and int(info.chunk_sizes[c]) !=
                      min(CHUNK, len(payload) - c * CHUNK)]
        assert candidates, "corpus produced no compressed chunk"
        bad = bytearray(v3_blob)
        bad[self._column_offset(v3_blob, candidates[0])] = STORE_CODEC_ID
        with pytest.raises(ReproError):
            gpu_decompress(bytes(bad))

    def test_codec_column_rot_with_payload_rot_salvages(self, payload,
                                                        v3_blob):
        # Combined damage: one chunk's column byte and another chunk's
        # payload both rotted — salvage reports each for its own reason.
        n = int(unpack_container(v3_blob).chunk_sizes.size)
        assert n >= 4
        bad = corrupt_chunks(v3_blob, [2], seed=SEED)
        bad = bytearray(bad)
        bad[self._column_offset(v3_blob, 0)] = 0xEE
        res = gpu_decompress(bytes(bad), errors="salvage")
        assert res.salvage.unknown_codec == [0]
        assert sorted(res.salvage.lost) == [0, 2]
        lo = 3 * CHUNK
        assert res.data[lo:] == payload[lo:]


def test_invalid_errors_mode(blob):
    with pytest.raises(ValueError, match="strict"):
        gpu_decompress(blob, errors="ignore")
