"""Container format: framing, chunk table, integrity checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.container import (
    CONTAINER_MAGIC,
    HEADER_SIZE,
    pack_container,
    unpack_container,
)
from repro.lzss.encoder import encode, encode_chunked
from repro.lzss.formats import CUDA_V1, CUDA_V2, SERIAL


class TestRoundTrip:
    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=1, max_size=1500))
    def test_chunked(self, data):
        r = encode_chunked(data, CUDA_V2, min(512, len(data)))
        info = unpack_container(pack_container(r))
        assert info.format.name == "cuda_v2"
        assert info.original_size == len(data)
        assert info.payload == r.payload
        assert info.chunk_sizes.tolist() == r.chunk_sizes.tolist()

    def test_unchunked(self, text_data):
        r = encode(text_data, SERIAL)
        info = unpack_container(pack_container(r))
        assert not info.is_chunked
        assert info.chunk_size is None
        assert info.payload == r.payload

    def test_v1_format_id(self, text_data):
        r = encode_chunked(text_data, CUDA_V1, 4096, slice_size=32)
        info = unpack_container(pack_container(r))
        assert info.format.name == "cuda_v1"

    def test_empty_payload(self):
        r = encode(b"", SERIAL)
        info = unpack_container(pack_container(r))
        assert info.original_size == 0
        assert info.payload == b""


class TestLayout:
    def test_magic_and_header_size(self, text_data):
        blob = pack_container(encode(text_data, SERIAL))
        assert blob[:4] == CONTAINER_MAGIC
        assert len(blob) >= HEADER_SIZE

    def test_overhead_accounting(self, text_data):
        r = encode_chunked(text_data, CUDA_V2, 512)
        blob = pack_container(r)
        info = unpack_container(blob)
        assert len(blob) == info.container_overhead + len(info.payload)

    def test_chunk_table_is_small(self, text_data):
        # §III.C: the block-size list "does not hurt the compression
        # ratio" — v2 spends 8 bytes per 4 KiB chunk (size + CRC-32),
        # still ≈ 0.2 % overhead.
        r = encode_chunked(text_data, CUDA_V2, 4096)
        info = unpack_container(pack_container(r))
        assert info.container_overhead <= HEADER_SIZE + 8 * r.chunk_sizes.size
        v1 = unpack_container(pack_container(r, version=1))
        assert v1.container_overhead <= HEADER_SIZE + 4 * r.chunk_sizes.size


class TestCorruption:
    @pytest.fixture()
    def blob(self, text_data):
        return pack_container(encode_chunked(text_data, CUDA_V2, 512))

    def test_bad_magic(self, blob):
        with pytest.raises(ValueError, match="magic"):
            unpack_container(b"XXXX" + blob[4:])

    def test_header_flip_detected(self, blob):
        mutated = bytearray(blob)
        mutated[9] ^= 0x01  # inside original_size
        with pytest.raises(ValueError):
            unpack_container(bytes(mutated))

    def test_payload_flip_detected(self, blob):
        mutated = bytearray(blob)
        mutated[-1] ^= 0x80
        with pytest.raises(ValueError, match="checksum"):
            unpack_container(bytes(mutated))

    def test_truncated_header(self):
        with pytest.raises(ValueError, match="truncated"):
            unpack_container(b"CLZS\x01")

    def test_truncated_payload_detected(self, blob):
        with pytest.raises(ValueError):
            unpack_container(blob[:-5])

    @settings(max_examples=30, deadline=None)
    @given(byte_pos=st.integers(0, 10_000), bit=st.integers(0, 7))
    def test_random_single_bit_flips_never_pass_silently(self, text_data,
                                                         byte_pos, bit):
        blob = bytearray(pack_container(encode_chunked(text_data[:2000],
                                                       CUDA_V2, 512)))
        byte_pos %= len(blob)
        blob[byte_pos] ^= 1 << bit
        try:
            info = unpack_container(bytes(blob))
        except ValueError:
            return  # detected — good
        # Flips that survive must not have touched payload or header
        # content (e.g. they hit the CRC fields themselves and were
        # caught anyway) — so reaching here is a failure.
        pytest.fail(f"bit flip at {byte_pos}:{bit} went unnoticed: {info}")

    def test_unregistered_format_rejected(self, blob):
        mutated = bytearray(blob)
        mutated[5] = 77  # format id
        with pytest.raises(ValueError):
            unpack_container(bytes(mutated))
