"""Golden-stream regression tests — on-disk format stability.

A downstream user's archives must stay decodable across library
versions, so the exact bytes of small containers are frozen here.  If
one of these fails, the wire format changed: either revert, or bump
the container version and add migration handling — never just update
the constant.

Container v2 (per-chunk CRC table) did exactly that: the default write
format moved to version 2, so the v2-era bytes are frozen below and
the v1-era constants stay as what they always really were — the
decode-compatibility promise, plus a regression test that
``pack_container(..., version=1)`` still reproduces them bit-for-bit.
"""

from repro.container import pack_container
from repro.core.api import gpu_compress, gpu_decompress
from repro.core.params import CompressionParams
from repro.cpu import SerialLzss
from repro.lzss.encoder import encode_chunked
from repro.lzss.formats import CUDA_V2

PAYLOAD = b"golden golden golden stream! " * 4

# --- container version 1 (legacy; reader + version-gated writer) -------

SERIAL_GOLDEN_V1 = (
    "434c5a5301010000740000000000000000000000000000007578c389c59844ff"
    "b3dbed964b2dba40006bb9dd2e565b0db642015c00e78073c039e01cf900"
)

V2_GOLDEN_V1 = (
    "434c5a530103010074000000000000004000000002000000d07cff9aabe64dfd"
    "1700000017000000b3dbed964b2dba40060bb9dd2e565b0db642150c0e090090"
    "59edf6cb2596dc0605b9dd2e565b0db642150c0e0600"
)

# --- container version 2 (default write format for single-codec) -------

SERIAL_GOLDEN = (
    "434c5a5302010000740000000000000000000000000000007578c389ed315aa7"
    "b3dbed964b2dba40006bb9dd2e565b0db642015c00e78073c039e01cf900"
)

V2_GOLDEN = (
    "434c5a530203010074000000000000004000000002000000d07cff9a834f53a5"
    "17000000170000004f23423ca20bfb61b3dbed964b2dba40060bb9dd2e565b0d"
    "b642150c0e09009059edf6cb2596dc0605b9dd2e565b0db642150c0e0600"
)


def test_serial_container_bytes_frozen():
    blob = SerialLzss().compress_container(PAYLOAD)
    assert blob.hex() == SERIAL_GOLDEN


def test_v2_container_bytes_frozen():
    blob = pack_container(encode_chunked(PAYLOAD, CUDA_V2, 64))
    assert blob.hex() == V2_GOLDEN


def test_version_gated_writer_reproduces_v1_bytes():
    # The migration promise in the other direction: version-gated
    # writing still emits yesterday's format bit-for-bit.
    blob = pack_container(encode_chunked(PAYLOAD, CUDA_V2, 64), version=1)
    assert blob.hex() == V2_GOLDEN_V1


def test_frozen_blobs_still_decode():
    # Decoding yesterday's archives is the actual promise — both
    # container versions, forever.
    for serial_hex in (SERIAL_GOLDEN_V1, SERIAL_GOLDEN):
        assert SerialLzss().decompress_container(
            bytes.fromhex(serial_hex)) == PAYLOAD
    for v2_hex in (V2_GOLDEN_V1, V2_GOLDEN):
        assert gpu_decompress(bytes.fromhex(v2_hex)).data == PAYLOAD


def test_api_blob_round_trips():
    buf = gpu_compress(PAYLOAD, CompressionParams(version=2))
    assert gpu_decompress(buf.data).data == PAYLOAD


# --- container version 3 (per-chunk codec column) -----------------------

V2_GOLDEN_V3 = (
    "434c5a530303010074000000000000004000000002000000d07cff9aa42a7624"
    "17000000170000004f23423ca20bfb610202b3dbed964b2dba40060bb9dd2e56"
    "5b0db642150c0e09009059edf6cb2596dc0605b9dd2e565b0db642150c0e0600"
)


def test_v3_container_bytes_frozen():
    # Version-gated upgrade of a plain lzss result: v2 bytes plus the
    # version byte, a fresh header CRC, and a uniform codec column.
    blob = pack_container(encode_chunked(PAYLOAD, CUDA_V2, 64), version=3)
    assert blob.hex() == V2_GOLDEN_V3


def test_auto_dispatch_reproduces_v3_bytes():
    # Both 64-byte chunks sit below the dispatcher's probe floor, so
    # auto picks lzss for each — and must emit the exact same blob as
    # the version-gated lzss writer (same payload, same column).
    from repro.codecs.dispatch import encode_chunked_auto

    blob = pack_container(encode_chunked_auto(PAYLOAD, CUDA_V2, 64,
                                              codec="auto"))
    assert blob.hex() == V2_GOLDEN_V3


def test_frozen_v3_blob_still_decodes():
    assert gpu_decompress(bytes.fromhex(V2_GOLDEN_V3)).data == PAYLOAD


def test_single_codec_results_still_write_v2_by_default():
    # The migration rule that keeps V2_GOLDEN valid forever: a result
    # without a codec column defaults to yesterday's format, and the
    # codec column cannot be smuggled into a pre-v3 container.
    import pytest

    from repro.codecs.dispatch import encode_chunked_auto

    assert pack_container(
        encode_chunked(PAYLOAD, CUDA_V2, 64)).hex() == V2_GOLDEN
    with_column = encode_chunked_auto(PAYLOAD, CUDA_V2, 64, codec="auto")
    with pytest.raises(ValueError, match="v2"):
        pack_container(with_column, version=2)
