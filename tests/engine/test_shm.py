"""Slab pool lifecycle and the worker-side frame jobs."""

from __future__ import annotations

import pytest

from repro.engine import (
    SlabPool,
    decode_frame_job,
    encode_frame_job,
    shm_available,
)
from repro.service.protocol import FLAG_RAW

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="no usable POSIX shared memory")


def test_acquire_release_recycles_one_slab():
    with SlabPool(slab_bytes=1 << 12, max_slabs=4) as pool:
        lease = pool.acquire(100)
        assert lease is not None
        name = lease.name
        lease.release()
        lease.release()  # idempotent
        again = pool.acquire(100)
        assert again is not None and again.name == name
        assert pool.slabs_created == 1
        again.release()


def test_oversize_and_exhausted_fall_back_to_none():
    with SlabPool(slab_bytes=1 << 12, max_slabs=1) as pool:
        assert pool.acquire((1 << 12) + 1) is None  # bigger than a slab
        lease = pool.acquire(16)
        assert pool.acquire(16) is None  # pool exhausted
        lease.release()
        assert pool.acquire(16) is not None  # recycled


def test_close_unlinks_and_disables():
    pool = SlabPool(slab_bytes=1 << 12, max_slabs=2)
    lease = pool.acquire(8)
    assert lease is not None
    pool.close()
    pool.close()  # idempotent
    assert pool.acquire(8) is None
    lease.release()  # releasing into a closed pool is a no-op


def test_lease_write_read_round_trip():
    with SlabPool(slab_bytes=1 << 12) as pool:
        lease = pool.acquire(64)
        n = lease.write(b"hello slab")
        assert lease.read(n) == b"hello slab"
        with pytest.raises(ValueError):
            lease.write(b"x" * ((1 << 12) + 1))
        lease.release()


def test_frame_jobs_code_in_place():
    data = b"the quick brown fox jumps over the lazy dog " * 200
    with SlabPool() as pool:
        lease = pool.acquire(len(data))
        n = lease.write(data)
        flags, res = encode_frame_job(lease.name, n, 2)
        assert isinstance(res, int)  # payload stayed in the slab
        payload = lease.read(res)
        assert not (flags & FLAG_RAW) and len(payload) < len(data)

        n = lease.write(payload)
        out_len = decode_frame_job(lease.name, n, flags)
        assert isinstance(out_len, int)
        assert lease.read(out_len) == data
        lease.release()


def test_decode_job_returns_bytes_when_output_exceeds_slab():
    data = b"a" * 20_000  # decompresses far past a tiny slab
    from repro.service.pipeline import encode_payload

    flags, payload = encode_payload(data)
    with SlabPool(slab_bytes=max(len(payload), 64)) as pool:
        lease = pool.acquire(len(payload))
        n = lease.write(payload)
        res = decode_frame_job(lease.name, n, flags)
        assert isinstance(res, bytes) and res == data
        lease.release()
