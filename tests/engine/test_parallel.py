"""Property-style byte-identity tests for the parallel chunked codec.

The engine's whole contract is "sharding is invisible": for any worker
count, chunk size, and token format, the merged container must equal
the serial one byte for byte — payload, chunk table, stats counters,
and the detail arrays the GPU cost models consume.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CompressionParams, gpu_compress, gpu_decompress
from repro.engine import ParallelEngine, get_engine, shard_chunk_runs
from repro.lzss.decoder import decode_chunked_with_stats
from repro.lzss.encoder import encode_chunked
from repro.lzss.formats import CUDA_V2
from repro.util.buffers import as_u8


def assert_results_identical(parallel, serial, collect_detail=False):
    assert parallel.payload == serial.payload
    assert np.array_equal(parallel.chunk_sizes, serial.chunk_sizes)
    assert parallel.input_size == serial.input_size
    assert parallel.chunk_size == serial.chunk_size
    ps, ss = parallel.stats, serial.stats
    assert (ps.n_tokens, ps.n_literals, ps.n_pairs) == \
        (ss.n_tokens, ss.n_literals, ss.n_pairs)
    assert (ps.sum_match_length, ps.total_bits, ps.output_size) == \
        (ss.sum_match_length, ss.total_bits, ss.output_size)
    assert ps.compare_count == ss.compare_count
    if collect_detail:
        for name in ("per_position_compares", "per_warp_compares",
                     "token_starts", "token_lengths"):
            assert np.array_equal(getattr(ps, name), getattr(ss, name)), name


# ------------------------------------------------------------ sharding

@pytest.mark.parametrize("n,chunk_size,shards", [
    (0, 4096, 4), (1, 4096, 4), (4096, 4096, 4), (4097, 4096, 2),
    (100_000, 4096, 3), (100_000, 100, 7), (20_000, 4096, 100),
])
def test_shard_runs_are_chunk_aligned_and_cover(n, chunk_size, shards):
    bounds = shard_chunk_runs(n, chunk_size, shards)
    assert bounds[0][0] == 0 and bounds[-1][1] == n
    for (lo, hi), (lo2, _hi2) in zip(bounds, bounds[1:]):
        assert hi == lo2
    chunk_counts = []
    for lo, hi in bounds:
        assert lo % chunk_size == 0
        assert hi == n or hi % chunk_size == 0
        chunk_counts.append(-(-max(hi - lo, 0) // chunk_size))
    if n > 0:
        assert max(chunk_counts) - min(chunk_counts) <= 1


# ------------------------------------------------------- byte identity

@pytest.mark.parametrize("workers", [2, 3, 8])
@pytest.mark.parametrize("chunk_size", [4096, 1024, 100])
def test_parallel_encode_byte_identical(text_data, fmt, workers, chunk_size):
    arr = as_u8(text_data)
    serial = encode_chunked(arr, fmt, chunk_size)
    with ParallelEngine(workers=workers, min_parallel_bytes=0) as engine:
        parallel = engine.encode_chunked(arr, fmt, chunk_size)
    assert_results_identical(parallel, serial)


@pytest.mark.parametrize("chunk_size", [4096, 256])
def test_parallel_encode_detail_arrays_identical(text_data, chunk_size):
    arr = as_u8(text_data)
    serial = encode_chunked(arr, CUDA_V2, chunk_size, collect_detail=True)
    with ParallelEngine(workers=4, min_parallel_bytes=0) as engine:
        parallel = engine.encode_chunked(arr, CUDA_V2, chunk_size,
                                         collect_detail=True)
    assert_results_identical(parallel, serial, collect_detail=True)


def test_detail_with_unaligned_chunk_size_falls_back_to_serial(text_data):
    # 100 % 32 != 0: per-warp rows would straddle shard seams, so the
    # engine must take the serial path — and still be identical.
    arr = as_u8(text_data)
    serial = encode_chunked(arr, CUDA_V2, 100, collect_detail=True)
    with ParallelEngine(workers=4, min_parallel_bytes=0) as engine:
        parallel = engine.encode_chunked(arr, CUDA_V2, 100,
                                         collect_detail=True)
    assert_results_identical(parallel, serial, collect_detail=True)


@pytest.mark.parametrize("data", [b"", b"x", b"ab" * 3])
def test_edge_buffers_match_serial(data, fmt):
    serial = encode_chunked(as_u8(data), fmt, 4096)
    with ParallelEngine(workers=4, min_parallel_bytes=0) as engine:
        parallel = engine.encode_chunked(as_u8(data), fmt, 4096)
    assert_results_identical(parallel, serial)


def test_incompressible_buffer_matches_serial(binary_data, fmt):
    serial = encode_chunked(as_u8(binary_data), fmt, 1024)
    with ParallelEngine(workers=3, min_parallel_bytes=0) as engine:
        parallel = engine.encode_chunked(as_u8(binary_data), fmt, 1024)
    assert_results_identical(parallel, serial)


def test_parallel_decode_round_trip(text_data, fmt):
    arr = as_u8(text_data)
    result = encode_chunked(arr, fmt, 1024)
    serial_out, serial_tokens = decode_chunked_with_stats(
        result.payload, fmt, result.chunk_sizes, 1024, result.input_size)
    with ParallelEngine(workers=4, min_parallel_bytes=0) as engine:
        out, tokens = engine.decode_chunked_with_stats(
            result.payload, fmt, result.chunk_sizes, 1024, result.input_size)
    assert out == serial_out == text_data
    assert np.array_equal(tokens, serial_tokens)


def test_gpu_compress_workers_container_identical(text_data):
    params = CompressionParams(version=2)
    serial = gpu_compress(text_data, params)
    with ParallelEngine(workers=3, min_parallel_bytes=0) as engine:
        parallel = gpu_compress(text_data, params, engine=engine)
        out = gpu_decompress(parallel.data, engine=engine)
    assert parallel.data == serial.data
    assert out.data == text_data


# ----------------------------------------------------- pool lifecycle

def test_pool_is_created_once_and_reused(text_data):
    engine = ParallelEngine(workers=2, min_parallel_bytes=0)
    try:
        engine.encode_chunked(as_u8(text_data), CUDA_V2, 1024)
        pool = engine._pool
        assert pool is not None
        engine.encode_chunked(as_u8(text_data), CUDA_V2, 1024)
        assert engine._pool is pool
    finally:
        engine.close()
    assert engine._pool is None


def test_closed_engine_refuses_parallel_work(text_data):
    engine = ParallelEngine(workers=2, min_parallel_bytes=0)
    engine.close()
    engine.close()  # idempotent
    with pytest.raises(ValueError):
        engine.encode_chunked(as_u8(text_data), CUDA_V2, 1024)


def test_small_buffers_stay_serial(text_data):
    # Below min_parallel_bytes the engine must not even spin a pool up.
    engine = ParallelEngine(workers=4)
    result = engine.encode_chunked(as_u8(text_data), CUDA_V2, 4096)
    assert engine._pool is None
    assert_results_identical(result, encode_chunked(as_u8(text_data),
                                                    CUDA_V2, 4096))


def test_get_engine_caches_per_worker_count():
    assert get_engine(2) is get_engine(2)
    assert get_engine(2) is not get_engine(3)
