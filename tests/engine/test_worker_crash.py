"""Chaos suite: ParallelEngine survives worker death, output unchanged.

The engine's contract is byte-identity with the serial codec for any
worker count; these tests extend it to *any worker count with workers
dying mid-call*.  Crashes are injected through ``executor_factory``
(the :func:`repro.testing.crash_factory` pool crashes once, then its
replacement behaves), so every scenario is deterministic.
"""

from __future__ import annotations

from concurrent.futures import Future

import numpy as np
import pytest

from repro.engine import ParallelEngine
from repro.errors import WorkerCrashError
from repro.lzss.decoder import decode_chunked_with_stats, salvage_decode_chunked
from repro.lzss.encoder import encode_chunked
from repro.lzss.formats import CUDA_V2
from repro.testing import (
    CrashingExecutor,
    InlineExecutor,
    chaos_seed,
    crash_factory,
)

CHUNK = 4096
SEED = chaos_seed()


@pytest.fixture(scope="module")
def big_data() -> bytes:
    # Must clear MIN_PARALLEL_BYTES so the engine actually shards.
    rng = np.random.default_rng(SEED)
    words = [b"parallel ", b"engine ", b"shard ", b"crash ", b"worker "]
    out = b"".join(words[i] for i in rng.integers(0, len(words), 40_000))
    assert len(out) >= (1 << 17)
    return out


@pytest.fixture(scope="module")
def serial_result(big_data):
    return encode_chunked(big_data, CUDA_V2, CHUNK)


class TestEncodeCrash:
    def test_first_shard_crash_is_byte_identical(self, big_data,
                                                 serial_result):
        # The acceptance criterion: a worker dying mid-encode_chunked
        # changes nothing about the output, only the counters.
        factory = crash_factory(crash_on=1)
        with ParallelEngine(workers=4, executor_factory=factory) as eng:
            result = eng.encode_chunked(big_data, CUDA_V2, CHUNK)
            assert result.payload == serial_result.payload
            assert result.chunk_sizes.tolist() == \
                serial_result.chunk_sizes.tolist()
            assert eng.counters["worker_crashes"] >= 1
            assert eng.counters["serial_fallbacks"] >= 1

    def test_pool_rebuilds_after_crash(self, big_data, serial_result):
        factory = crash_factory(crash_on=1)
        with ParallelEngine(workers=4, executor_factory=factory) as eng:
            eng.encode_chunked(big_data, CUDA_V2, CHUNK)
            crashes = eng.counters["worker_crashes"]
            # Second call runs on the rebuilt (well-behaved) pool: same
            # bytes, no new incidents.
            again = eng.encode_chunked(big_data, CUDA_V2, CHUNK)
            assert again.payload == serial_result.payload
            assert eng.counters["worker_crashes"] == crashes
            assert len(factory.built) == 2
            assert factory.built[0].broken
            assert isinstance(factory.built[1], InlineExecutor)

    def test_late_crash_fails_remaining_shards_over(self, big_data,
                                                    serial_result):
        # Crash on the 3rd submit: shards 1-2 ran, 3 dies, 4 can't
        # submit — both recompute serially, one crash total.
        factory = crash_factory(crash_on=3)
        with ParallelEngine(workers=4, executor_factory=factory) as eng:
            result = eng.encode_chunked(big_data, CUDA_V2, CHUNK)
            assert result.payload == serial_result.payload
            assert eng.counters["worker_crashes"] == 1
            assert eng.counters["serial_fallbacks"] == 2

    def test_submit_time_crash_runs_everything_serially(self, big_data,
                                                        serial_result):
        # Crash on the very first submit: every shard falls back.
        factory = crash_factory(crash_on=1)
        with ParallelEngine(workers=4, executor_factory=factory) as eng:
            result = eng.encode_chunked(big_data, CUDA_V2, CHUNK)
            assert result.payload == serial_result.payload
            assert eng.counters["worker_crashes"] == 1
            assert eng.counters["serial_fallbacks"] == 4

    def test_worker_crash_error_is_survivable(self, big_data, serial_result):
        # The harness's own WorkerCrashError counts as worker death too.
        class _DiesOnce(InlineExecutor):
            def __init__(self) -> None:
                super().__init__()
                self.fired = False

            def submit(self, fn, /, *args, **kwargs):
                if not self.fired:
                    self.fired = True
                    fut: Future = Future()
                    fut.set_exception(WorkerCrashError("injected"))
                    return fut
                return super().submit(fn, *args, **kwargs)

        with ParallelEngine(workers=4, executor_factory=_DiesOnce) as eng:
            result = eng.encode_chunked(big_data, CUDA_V2, CHUNK)
            assert result.payload == serial_result.payload
            assert eng.counters["worker_crashes"] == 1
            assert eng.counters["serial_fallbacks"] == 1

    def test_non_crash_errors_propagate(self, big_data):
        # Only worker death is survivable; a genuine job error is not
        # swallowed into the serial path.
        class _Raises(InlineExecutor):
            def submit(self, fn, /, *args, **kwargs):
                fut: Future = Future()
                fut.set_exception(RuntimeError("job bug"))
                return fut

        with ParallelEngine(workers=4, executor_factory=_Raises) as eng:
            with pytest.raises(RuntimeError, match="job bug"):
                eng.encode_chunked(big_data, CUDA_V2, CHUNK)


class TestDecodeCrash:
    def test_decode_crash_is_byte_identical(self, big_data, serial_result):
        factory = crash_factory(crash_on=2)
        with ParallelEngine(workers=4, executor_factory=factory) as eng:
            out, tokens = eng.decode_chunked_with_stats(
                serial_result.payload, CUDA_V2, serial_result.chunk_sizes,
                CHUNK, len(big_data))
            assert out == big_data
            ref_out, ref_tokens = decode_chunked_with_stats(
                serial_result.payload, CUDA_V2, serial_result.chunk_sizes,
                CHUNK, len(big_data))
            assert tokens.tolist() == ref_tokens.tolist()
            assert eng.counters["worker_crashes"] == 1

    def test_salvage_crash_report_unchanged(self, big_data, serial_result):
        # Crash recovery composes with salvage: corrupt one chunk, kill
        # one worker, and the report still names exactly that chunk.
        payload = bytearray(serial_result.payload)
        sizes = serial_result.chunk_sizes
        lo = int(sizes[:5].sum())
        payload[lo] ^= 0xFF  # corrupt chunk 5's first byte
        crcs = np.zeros(sizes.size, dtype="<u4")
        from repro.util.checksum import crc32
        off = 0
        for c, n in enumerate(sizes.tolist()):
            crcs[c] = crc32(serial_result.payload[off:off + n])
            off += n

        factory = crash_factory(crash_on=1)
        with ParallelEngine(workers=4, executor_factory=factory) as eng:
            out, _tokens, report = eng.salvage_decode_chunked(
                bytes(payload), CUDA_V2, sizes, CHUNK, len(big_data),
                chunk_crcs=crcs)
            assert report.lost == [5]
            assert eng.counters["worker_crashes"] >= 1
        ref_out, _rt, ref_report = salvage_decode_chunked(
            bytes(payload), CUDA_V2, sizes, CHUNK, len(big_data),
            chunk_crcs=crcs)
        assert out == ref_out
        assert ref_report.lost == [5]


def test_crashing_executor_models_broken_pool():
    # The harness itself: Nth submit fails its future, later submits
    # raise synchronously — BrokenProcessPool's observable behavior.
    from concurrent.futures import BrokenExecutor

    pool = CrashingExecutor(crash_on=2)
    assert pool.submit(lambda: 41).result() == 41
    with pytest.raises(BrokenExecutor):
        pool.submit(lambda: 42).result()
    with pytest.raises(BrokenExecutor):
        pool.submit(lambda: 43)
    assert pool.broken
