"""The five synthetic datasets: determinism, structure, ratio envelopes."""

import numpy as np
import pytest

from repro.datasets import available_datasets, generate, get_spec
from repro.lzss.encoder import encode
from repro.lzss.formats import SERIAL

SIZE = 96 * 1024


class TestRegistry:
    def test_paper_order(self):
        assert available_datasets() == ["cfiles", "demap", "dictionary",
                                        "kernel_tarball",
                                        "highly_compressible"]

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            generate("does_not_exist", 100)

    def test_specs_carry_tuning_targets(self):
        assert get_spec("cfiles").paper_serial_ratio == pytest.approx(0.548)


@pytest.mark.parametrize("name", ["cfiles", "demap", "dictionary",
                                  "kernel_tarball", "highly_compressible"])
class TestEveryDataset:
    def test_exact_size(self, name):
        assert len(generate(name, 10_000)) == 10_000

    def test_deterministic(self, name):
        assert generate(name, 20_000) == generate(name, 20_000)

    def test_seed_changes_content(self, name):
        assert generate(name, 20_000, seed=1) != generate(name, 20_000, seed=2)

    def test_serial_ratio_near_paper(self, name):
        """The single declared tuning target: Table II's serial column."""
        data = generate(name, SIZE)
        ratio = encode(data, SERIAL).stats.ratio
        target = get_spec(name).paper_serial_ratio
        assert abs(ratio - target) < 0.12, (ratio, target)


class TestStructure:
    def test_cfiles_looks_like_c(self):
        data = generate("cfiles", 40_000)
        assert b"#include <" in data
        assert b"return" in data
        assert data.count(b";") > 100

    def test_dictionary_lines_sorted_unique(self):
        data = generate("dictionary", 40_000)
        lines = data.split(b"\n")[:-1]  # last line may be cut
        head = lines[: len(lines) - 2]
        assert head == sorted(set(head))

    def test_dictionary_is_lowercase_words(self):
        data = generate("dictionary", 10_000)
        assert set(data) <= set(range(ord("a"), ord("z") + 1)) | {ord("\n")}

    def test_kernel_tarball_headers_valid(self):
        import tarfile
        import io

        data = generate("kernel_tarball", 200_000)
        # pad to a full tar and let the stdlib parse the members we kept
        buf = io.BytesIO(data + b"\x00" * 1024)
        with tarfile.open(fileobj=buf, mode="r|") as tf:
            names = []
            try:
                for member in tf:
                    names.append(member.name)
                    if len(names) >= 5:
                        break
            except (tarfile.TarError, EOFError):
                pass  # truncated tail member is expected
        assert len(names) >= 3
        assert any(n.endswith(".c") for n in names)

    def test_highly_compressible_has_20_byte_patterns(self):
        data = generate("highly_compressible", 4000)
        # "repeating characters in substrings of 20" (§IV.B)
        assert data[:20] == data[20:40]

    def test_demap_has_raster_runs_and_records(self):
        data = generate("demap", 60_000)
        arr = np.frombuffer(data, dtype=np.uint8)
        runs = (arr[1:] == arr[:-1]).mean()
        assert runs > 0.3  # raster run structure
        assert b"CLASS" in data  # DLG records


class TestSeedRobustness:
    """The tuned ratio targets must not be artifacts of one seed."""

    @pytest.mark.parametrize("name", ["cfiles", "highly_compressible"])
    def test_ratio_stable_across_seeds(self, name):
        ratios = []
        for seed in (11, 222, 3333):
            data = generate(name, 64 * 1024, seed=seed)
            ratios.append(encode(data, SERIAL).stats.ratio)
        spread = max(ratios) - min(ratios)
        assert spread < 0.05, ratios

    def test_sizes_scale_consistently(self):
        # ratio at 32 KiB within a few points of ratio at 128 KiB
        small = encode(generate("cfiles", 32 * 1024), SERIAL).stats.ratio
        large = encode(generate("cfiles", 128 * 1024), SERIAL).stats.ratio
        assert abs(small - large) < 0.06
