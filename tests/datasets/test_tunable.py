"""The tunable-compressibility generator (crossover-study input)."""

import pytest

from repro.datasets.tunable import generate_tunable
from repro.lzss.encoder import encode
from repro.lzss.formats import SERIAL


def test_exact_size_and_determinism():
    a = generate_tunable(50_000, 0.5)
    b = generate_tunable(50_000, 0.5)
    assert len(a) == 50_000
    assert a == b


def test_ratio_monotone_in_repetition():
    ratios = []
    for rep in (0.0, 0.25, 0.5, 0.75, 1.0):
        data = generate_tunable(96 * 1024, rep)
        ratios.append(encode(data, SERIAL).stats.ratio)
    assert all(a > b for a, b in zip(ratios, ratios[1:]))


def test_endpoints():
    noise = generate_tunable(64 * 1024, 0.0)
    runs = generate_tunable(64 * 1024, 1.0)
    assert encode(noise, SERIAL).stats.ratio > 1.0
    assert encode(runs, SERIAL).stats.ratio < 0.35


def test_repetition_validated():
    with pytest.raises(ValueError):
        generate_tunable(1000, 1.5)
