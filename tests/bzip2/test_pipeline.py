"""The full BZIP2-style pipeline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bzip2.pipeline import Bzip2Result, compress, decompress


class TestRoundTrip:
    @settings(max_examples=20, deadline=None)
    @given(st.binary(max_size=3000))
    def test_random(self, data):
        assert decompress(compress(data, block_size=1000).blob) == data

    def test_multi_block(self, text_data):
        r = compress(text_data, block_size=3000)
        assert len(r.block_stats) == -(-len(text_data) // 3000)
        assert decompress(r.blob) == text_data

    def test_default_block_size(self, text_data):
        assert decompress(compress(text_data).blob) == text_data

    def test_empty(self):
        r = compress(b"")
        assert decompress(r.blob) == b""
        assert r.block_stats == []

    def test_runny(self, runny_data):
        assert decompress(compress(runny_data).blob) == runny_data


class TestBehaviour:
    def test_compresses_text_well(self, text_data):
        # BZIP2 beats LZSS on text (Table II's consistent pattern)
        from repro.lzss.encoder import encode
        from repro.lzss.formats import SERIAL

        bz = compress(text_data)
        lz = encode(text_data, SERIAL)
        assert bz.ratio < lz.stats.ratio

    def test_random_data_incompressible(self, binary_data):
        r = compress(binary_data)
        assert 0.95 < r.ratio < 1.15

    def test_block_stats_populated(self, text_data):
        r = compress(text_data, block_size=4000)
        for st_ in r.block_stats:
            assert st_.orig_bytes > 0
            assert st_.rle1_bytes > 0
            assert st_.n_symbols > 0
            assert st_.mean_lcp >= 0.0

    def test_periodic_data_reports_big_lcp(self):
        r = compress(b"abcdefghij" * 800)
        assert r.block_stats[0].mean_lcp > 100

    def test_rle1_shrinks_runny_blocks(self):
        r = compress(b"a" * 5000 + b"b" * 5000)
        assert r.block_stats[0].rle1_bytes < 250


class TestCorruption:
    def test_bad_magic(self, text_data):
        blob = bytearray(compress(text_data[:500]).blob)
        blob[0] ^= 0xFF
        with pytest.raises(ValueError, match="magic"):
            decompress(bytes(blob))

    def test_truncated(self, text_data):
        blob = compress(text_data[:500]).blob
        with pytest.raises(Exception):
            decompress(blob[: len(blob) // 2])

    def test_ratio_property(self):
        assert Bzip2Result(blob=b"12345", original_size=0,
                           block_stats=[]).ratio == 1.0
