"""Canonical length-limited Huffman coding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bzip2.huffman import (
    MAX_CODE_LEN,
    HuffmanCode,
    canonical_codes,
    huffman_code_lengths,
    huffman_decode,
    huffman_encode,
)


def kraft_sum(lengths: np.ndarray) -> float:
    return sum(2.0 ** -int(ln) for ln in lengths if ln > 0)


class TestCodeLengths:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 10_000), min_size=2, max_size=64))
    def test_kraft_equality(self, freqs):
        freqs = np.array(freqs)
        if (freqs > 0).sum() < 2:
            return
        lengths = huffman_code_lengths(freqs)
        assert kraft_sum(lengths) == pytest.approx(1.0)

    def test_single_symbol_gets_one_bit(self):
        lengths = huffman_code_lengths(np.array([0, 7, 0]))
        assert lengths.tolist() == [0, 1, 0]

    def test_empty(self):
        assert huffman_code_lengths(np.zeros(5, dtype=int)).sum() == 0

    def test_uniform_frequencies_balanced(self):
        lengths = huffman_code_lengths(np.full(8, 10))
        assert set(lengths.tolist()) == {3}

    def test_skew_respects_depth_limit(self):
        # Fibonacci-ish frequencies normally produce deep trees
        freqs = np.array([1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233,
                          377, 610, 987, 1597, 2584, 4181, 6765, 10946,
                          17711, 28657, 46368, 75025])
        lengths = huffman_code_lengths(freqs)
        assert lengths.max() <= MAX_CODE_LEN
        assert kraft_sum(lengths) <= 1.0 + 1e-9

    def test_more_frequent_never_longer(self):
        freqs = np.array([100, 1, 50, 5])
        lengths = huffman_code_lengths(freqs)
        assert lengths[0] <= lengths[1]
        assert lengths[2] <= lengths[3]


class TestCanonical:
    def test_prefix_free(self):
        freqs = np.array([50, 30, 10, 5, 3, 2])
        code = HuffmanCode.from_frequencies(freqs)
        words = []
        for sym in range(freqs.size):
            ln = int(code.lengths[sym])
            if ln:
                words.append(format(int(code.codes[sym]), f"0{ln}b"))
        for i, a in enumerate(words):
            for j, b in enumerate(words):
                if i != j:
                    assert not b.startswith(a)

    def test_lengths_table_reconstructs_codes(self):
        freqs = np.array([9, 5, 3, 1, 1])
        code = HuffmanCode.from_frequencies(freqs)
        rebuilt = HuffmanCode.from_lengths(code.lengths)
        assert rebuilt.codes.tolist() == code.codes.tolist()

    def test_canonical_ordering(self):
        lengths = np.array([2, 1, 3, 3])
        codes = canonical_codes(lengths)
        # shorter code numerically extends: 0, 10, 110, 111
        assert codes.tolist() == [0b10, 0b0, 0b110, 0b111]


class TestEncodeDecode:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 20), min_size=1, max_size=500))
    def test_roundtrip(self, syms):
        syms = np.array(syms)
        freqs = np.bincount(syms, minlength=21)
        code = HuffmanCode.from_frequencies(freqs)
        payload, nbits = huffman_encode(syms, code)
        out = huffman_decode(payload, nbits, code, syms.size)
        assert out.tolist() == syms.tolist()

    def test_single_symbol_stream(self):
        syms = np.zeros(1000, dtype=np.int64)
        code = HuffmanCode.from_frequencies(np.array([1000]))
        payload, nbits = huffman_encode(syms, code)
        assert nbits == 1000
        assert (huffman_decode(payload, nbits, code, 1000) == 0).all()

    def test_symbol_without_code_rejected(self):
        code = HuffmanCode.from_frequencies(np.array([5, 5, 0]))
        with pytest.raises(ValueError):
            huffman_encode(np.array([2]), code)

    def test_truncated_stream_rejected(self):
        syms = np.arange(10) % 4
        code = HuffmanCode.from_frequencies(np.bincount(syms, minlength=4))
        payload, nbits = huffman_encode(syms, code)
        with pytest.raises(ValueError):
            huffman_decode(payload[:1], 8, code, 10)

    def test_compresses_skewed_stream(self):
        rng = np.random.default_rng(0)
        syms = np.where(rng.random(4000) < 0.9, 0, rng.integers(1, 16, 4000))
        code = HuffmanCode.from_frequencies(np.bincount(syms, minlength=16))
        payload, _ = huffman_encode(syms, code)
        assert len(payload) < 4000 * 0.6
