"""BZIP2 pipeline stages: each transform and its inverse."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bzip2.bwt import adjacent_lcp, bwt_inverse, bwt_transform, rotation_order
from repro.bzip2.mtf import mtf_decode, mtf_encode, mtf_encode_reference
from repro.bzip2.rle1 import rle1_decode, rle1_encode
from repro.bzip2.rle2 import RUNA, RUNB, rle2_decode, rle2_encode


class TestRle1:
    @settings(max_examples=40, deadline=None)
    @given(st.binary(max_size=600))
    def test_roundtrip(self, data):
        assert rle1_decode(rle1_encode(data)) == data

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 600), st.integers(0, 255))
    def test_single_runs(self, n, byte):
        data = bytes([byte]) * n
        assert rle1_decode(rle1_encode(data)) == data

    def test_collapses_long_runs(self):
        data = b"a" * 200
        assert len(rle1_encode(data)) == 5  # aaaa + count(196)

    def test_short_runs_passthrough(self):
        assert rle1_encode(b"aabbcc") == b"aabbcc"

    def test_run_of_exactly_four(self):
        assert rle1_encode(b"aaaa") == b"aaaa\x00"

    def test_max_segment_split(self):
        data = b"x" * 300  # > 259, must split
        enc = rle1_encode(data)
        assert rle1_decode(enc) == data

    def test_count_byte_colliding_with_value(self):
        # run of 4+97 'a's: the count byte is also 'a'
        data = b"a" * 101
        assert rle1_decode(rle1_encode(data)) == data

    def test_empty(self):
        assert rle1_encode(b"") == b""
        assert rle1_decode(b"") == b""

    def test_truncated_run_header_rejected(self):
        with pytest.raises(ValueError):
            rle1_decode(b"aaaa")  # missing count byte


class TestBwt:
    def naive(self, s: bytes):
        n = len(s)
        rots = sorted(range(n), key=lambda i: s[i:] + s[:i])
        return bytes(s[(i - 1) % n] for i in rots), rots.index(0)

    @settings(max_examples=40, deadline=None)
    @given(st.binary(min_size=0, max_size=200))
    def test_roundtrip(self, data):
        last, primary = bwt_transform(data)
        assert bwt_inverse(last, primary) == data

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=1, max_size=80))
    def test_last_column_matches_naive(self, data):
        last, _ = bwt_transform(data)
        naive_last, _ = self.naive(data)
        assert last == naive_last

    @pytest.mark.parametrize("data", [b"banana", b"aaaa", b"abab" * 10,
                                      b"abcabcabc", b"x"])
    def test_periodic_and_degenerate(self, data):
        last, primary = bwt_transform(data)
        assert bwt_inverse(last, primary) == data

    def test_groups_like_characters(self):
        last, _ = bwt_transform(b"this is a test, this is only a test. " * 8)
        # BWT's whole point: the last column clumps; runs must appear
        runs = sum(1 for a, b in zip(last, last[1:]) if a == b)
        assert runs > len(last) * 0.4

    def test_primary_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            bwt_inverse(b"abc", 5)


class TestAdjacentLcp:
    def test_matches_naive_rotation_lcp(self):
        data = b"mississippi"
        arr = np.frombuffer(data, dtype=np.uint8)
        order = rotation_order(arr)
        lcp = adjacent_lcp(arr, order, cap=32)
        n = len(data)
        rots = [data[i:] + data[:i] for i in order]
        for k in range(1, n):
            a, b = rots[k - 1], rots[k]
            expect = 0
            while expect < n and a[expect] == b[expect]:
                expect += 1
            assert lcp[k - 1] == min(expect, 32)

    def test_periodic_data_has_huge_lcp(self):
        data = b"abcde" * 200
        arr = np.frombuffer(data, dtype=np.uint8)
        lcp = adjacent_lcp(arr, rotation_order(arr), cap=64)
        assert lcp.mean() > 50  # the bzip2 blow-up driver

    def test_random_data_has_tiny_lcp(self, binary_data):
        arr = np.frombuffer(binary_data, dtype=np.uint8)
        lcp = adjacent_lcp(arr, rotation_order(arr))
        assert lcp.mean() < 4


class TestMtf:
    @settings(max_examples=40, deadline=None)
    @given(st.binary(max_size=400))
    def test_vectorized_matches_reference(self, data):
        assert mtf_encode(data) == mtf_encode_reference(data)

    @settings(max_examples=40, deadline=None)
    @given(st.binary(max_size=400))
    def test_roundtrip(self, data):
        assert mtf_decode(mtf_encode(data)) == data

    def test_first_occurrence_ranks(self):
        # initial table is 0..255 in order
        assert mtf_encode(bytes([5, 0])) == bytes([5, 1])

    def test_repeat_is_zero(self):
        assert mtf_encode(b"aa")[1] == 0

    def test_clumped_input_yields_zeros(self):
        out = mtf_encode(b"a" * 50 + b"b" * 50)
        assert out.count(0) >= 98


class TestRle2:
    @settings(max_examples=40, deadline=None)
    @given(st.binary(max_size=400))
    def test_roundtrip(self, data):
        assert rle2_decode(rle2_encode(data)) == data

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 1000))
    def test_zero_runs_bijective_base2(self, n):
        syms = rle2_encode(bytes(n))
        assert set(syms.tolist()) <= {RUNA, RUNB}
        assert syms.size <= int(np.log2(n + 1)) + 1
        assert rle2_decode(syms) == bytes(n)

    def test_known_digit_encodings(self):
        assert rle2_encode(b"\x00").tolist() == [RUNA]
        assert rle2_encode(b"\x00\x00").tolist() == [RUNB]
        assert rle2_encode(b"\x00\x00\x00").tolist() == [RUNA, RUNA]

    def test_values_shift_up(self):
        assert rle2_encode(b"\x01\xff").tolist() == [2, 256]

    def test_out_of_range_symbol_rejected(self):
        with pytest.raises(ValueError):
            rle2_decode(np.array([257]))

    def test_empty(self):
        assert rle2_encode(b"").size == 0
        assert rle2_decode(np.array([], dtype=np.int64)) == b""
