"""Differential fuzzing across implementations and formats.

Three oracles, hammered with structured random inputs:

* the fast vectorized encoder must emit byte-identical streams to the
  pure-Python specification encoder (at exhaustive chain depth);
* every stream must round-trip through both the fast and the reference
  decoder;
* random corruption of containers must never pass silently, and random
  corruption of raw streams must never escape as a non-ValueError.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.container import pack_container, unpack_container
from repro.core.api import gpu_compress, gpu_decompress
from repro.lzss.decoder import decode
from repro.lzss.encoder import encode, encode_chunked
from repro.lzss.formats import CUDA_V2, SERIAL, TokenFormat
from repro.lzss.reference import reference_decode, reference_encode

# ---------------------------------------------------------------------------
# structured input generators: byte soups LZSS actually meets
# ---------------------------------------------------------------------------

run_blocks = st.lists(
    st.tuples(st.integers(0, 255), st.integers(1, 60)),
    min_size=0, max_size=30,
).map(lambda runs: b"".join(bytes([v]) * n for v, n in runs))

phrase_soup = st.lists(
    st.sampled_from([b"the", b"cat", b"sat", b" on ", b"mat", b"0x1f",
                     b"\x00\x00", b"zz"]),
    min_size=0, max_size=120,
).map(b"".join)

periodic = st.tuples(st.binary(min_size=1, max_size=25),
                     st.integers(1, 40)).map(lambda t: t[0] * t[1])

structured = st.one_of(st.binary(max_size=800), run_blocks, phrase_soup,
                       periodic)

SWEEP_FORMATS = [
    SERIAL,
    CUDA_V2,
    TokenFormat(name="w64", offset_bits=6, length_bits=8, window=64),
    TokenFormat(name="w256", offset_bits=9, length_bits=5, window=256,
                max_match_cap=20),
]


class TestEncoderOracle:
    @settings(max_examples=60, deadline=None)
    @given(structured)
    def test_fast_equals_spec_all_formats(self, data):
        for fmt in SWEEP_FORMATS:
            fast = encode(data, fmt, max_chain=10 ** 6)
            spec = reference_encode(data, fmt)
            assert fast.payload == spec, fmt.name

    @settings(max_examples=60, deadline=None)
    @given(structured, st.sampled_from([32, 100, 512]))
    def test_chunked_roundtrip_all_formats(self, data, chunk):
        if not data:
            return
        from repro.lzss.decoder import decode_chunked

        for fmt in SWEEP_FORMATS:
            r = encode_chunked(data, fmt, chunk)
            out = decode_chunked(r.payload, fmt, r.chunk_sizes, chunk,
                                 len(data))
            assert out == data, fmt.name


class TestDecoderOracle:
    @settings(max_examples=60, deadline=None)
    @given(structured)
    def test_cross_decode(self, data):
        for fmt in (SERIAL, CUDA_V2):
            payload = encode(data, fmt).payload
            fast = decode(payload, fmt, len(data))
            ref = reference_decode(payload, fmt, len(data))
            assert fast == ref == data

    @settings(max_examples=80, deadline=None)
    @given(structured.filter(lambda d: len(d) > 4),
           st.integers(0, 1 << 30), st.integers(0, 7))
    def test_corrupted_stream_never_crashes(self, data, pos, bit):
        payload = bytearray(encode(data, SERIAL).payload)
        payload[pos % len(payload)] ^= 1 << bit
        try:
            out = decode(bytes(payload), SERIAL, len(data))
            assert isinstance(out, bytes) and len(out) == len(data)
        except ValueError:
            pass  # clean rejection is the other acceptable outcome


class TestContainerOracle:
    @settings(max_examples=60, deadline=None)
    @given(structured.filter(lambda d: len(d) > 0),
           st.integers(0, 1 << 30), st.integers(0, 7))
    def test_container_flip_detected_or_harmless(self, data, pos, bit):
        blob = bytearray(pack_container(
            encode_chunked(data, CUDA_V2, min(256, len(data)))))
        blob[pos % len(blob)] ^= 1 << bit
        with pytest.raises(ValueError):
            unpack_container(bytes(blob))

    @settings(max_examples=25, deadline=None)
    @given(structured.filter(lambda d: len(d) > 0))
    def test_api_end_to_end(self, data):
        buf = gpu_compress(data)
        assert gpu_decompress(buf.data).data == data


class TestCodecOracle:
    """Every registered codec — and the auto dispatcher — must
    round-trip anything, byte-identically, at both the dispatch and the
    public-API layer."""

    ALL_CODECS = ["store", "lzss", "lz4s", "lzss-huffman", "auto"]

    @settings(max_examples=40, deadline=None)
    @given(structured.filter(lambda d: len(d) > 0),
           st.sampled_from(ALL_CODECS), st.sampled_from([64, 256, 1024]))
    def test_dispatch_roundtrip(self, data, codec, chunk):
        from repro.codecs.dispatch import (
            decode_chunked_multi,
            encode_chunked_auto,
        )

        r = encode_chunked_auto(data, CUDA_V2, chunk, codec=codec)
        out, _ = decode_chunked_multi(r.payload, CUDA_V2, r.chunk_sizes,
                                      chunk, len(data), r.chunk_codecs)
        assert out == data

    @settings(max_examples=20, deadline=None)
    @given(structured, st.sampled_from(ALL_CODECS))
    def test_api_end_to_end_every_codec(self, data, codec):
        buf = gpu_compress(data, codec=codec)
        assert gpu_decompress(buf.data).data == data

    @pytest.mark.parametrize("codec", ALL_CODECS)
    @pytest.mark.parametrize("kind,seed", [("random", 11), ("text", 22),
                                           ("runs", 33)])
    def test_seeded_corpora_every_codec(self, codec, kind, seed):
        """The issue's sweep: random / text-like / incompressible
        inputs, each codec, full compress-decompress API."""
        rng = np.random.default_rng(seed)
        if kind == "random":
            data = rng.integers(0, 256, 48 * 1024, dtype=np.uint8).tobytes()
        elif kind == "runs":
            data = bytes(rng.integers(0, 4, 192, dtype=np.uint8)) * 256
        else:
            words = [bytes(rng.integers(97, 123, 6, dtype=np.uint8))
                     for _ in range(40)]
            data = b" ".join(words[i] for i in
                             rng.integers(0, 40, 8000))[:48 * 1024]
        buf = gpu_compress(data, codec=codec)
        got = gpu_decompress(buf.data)
        assert got.data == data
        info = unpack_container(buf.data)
        if codec == "lzss":
            assert info.chunk_codecs is None  # classic v2, golden bytes
        else:
            assert info.version == 3
            assert info.chunk_codecs is not None


class TestDatasetIntegration:
    @pytest.mark.parametrize("name", ["cfiles", "demap", "dictionary",
                                      "kernel_tarball",
                                      "highly_compressible"])
    @pytest.mark.parametrize("version", [1, 2])
    def test_every_dataset_through_full_api(self, name, version):
        from repro.core.params import CompressionParams
        from repro.datasets import generate

        data = generate(name, 64 * 1024)
        buf = gpu_compress(data, CompressionParams(version=version))
        assert gpu_decompress(buf.data).data == data
        assert 0.01 < buf.ratio < 1.3

    @pytest.mark.parametrize("name", ["cfiles", "kernel_tarball"])
    def test_auto_dispatch_never_worse_than_lzss(self, name):
        from repro.datasets import generate

        data = generate(name, 64 * 1024)
        auto = gpu_compress(data, codec="auto")
        lzss = gpu_compress(data)
        assert gpu_decompress(auto.data).data == data
        assert len(auto.data) <= len(lzss.data) * 1.01
