"""Shared fixtures: deterministic sample buffers and format parametrization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lzss.formats import CUDA_V1, CUDA_V2, SERIAL


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(0xA11CE)


@pytest.fixture(scope="session")
def text_data(rng) -> bytes:
    """Compressible text-like bytes (~20 KiB) with local repetition."""
    words = [bytes(rng.integers(97, 123, int(rng.integers(3, 9)),
                                dtype=np.uint8)) for _ in range(50)]
    weights = 1.0 / np.arange(1, 51)
    weights /= weights.sum()
    picks = rng.choice(50, 4000, p=weights)
    return b" ".join(words[i] for i in picks)[:20_000]


@pytest.fixture(scope="session")
def binary_data(rng) -> bytes:
    """Poorly compressible bytes (~8 KiB)."""
    return rng.integers(0, 256, 8192, dtype=np.uint8).tobytes()


@pytest.fixture(scope="session")
def runny_data() -> bytes:
    """Run-heavy bytes: repeating 20-byte patterns (the paper's custom set)."""
    return (b"abcdefghijklmnopqrst" * 300 + b"0123456789!@#$%^&*()" * 200)[:9000]


@pytest.fixture(params=[SERIAL, CUDA_V1, CUDA_V2],
                ids=["serial", "cuda_v1", "cuda_v2"])
def fmt(request):
    """Parametrize over the three paper token formats."""
    return request.param
