"""The overhead guard: instrumentation must stay effectively free.

Encodes the same buffer with observability enabled and disabled,
best-of-three each way, interleaved so the runs see the same machine.
The instrumented stack records per *call*, never per loop round, so
the true overhead is a handful of dict operations per chunk batch —
the 10% ceiling is generous headroom for timer noise, not a budget.
"""

from __future__ import annotations

import os
from time import perf_counter

import pytest

from repro import obs
from repro.core import CompressionParams, gpu_compress
from repro.datasets import generate

SIZE_BYTES = int(float(os.environ.get("REPRO_OBS_GUARD_MB", "1")) * (1 << 20))
OVERHEAD_CEILING = 1.10
REPS = 3


def _encode_once() -> tuple[bytes, float]:
    data = generate("cfiles", SIZE_BYTES, seed=11)
    t0 = perf_counter()
    blob = gpu_compress(data, CompressionParams(version=2)).data
    return blob, perf_counter() - t0


@pytest.mark.slow
def test_enabled_overhead_under_ceiling_and_output_identical():
    times: dict[bool, list[float]] = {True: [], False: []}
    blobs: dict[bool, bytes] = {}
    try:
        for _ in range(REPS):
            for enabled in (True, False):
                (obs.enable if enabled else obs.disable)()
                blob, dt = _encode_once()
                times[enabled].append(dt)
                assert blobs.setdefault(enabled, blob) == blob
    finally:
        obs.enable()

    assert blobs[True] == blobs[False], \
        "instrumentation changed the output bytes"
    on, off = min(times[True]), min(times[False])
    assert on <= off * OVERHEAD_CEILING, (
        f"obs-enabled encode took {on:.3f}s vs {off:.3f}s disabled "
        f"({on / off:.2%} — ceiling {OVERHEAD_CEILING:.0%})")


def test_disabled_leaves_registry_and_ring_untouched():
    obs.disable()
    try:
        data = generate("cfiles", 64 * 1024, seed=12)
        gpu_compress(data, CompressionParams(version=2))
    finally:
        obs.enable()
    snap = obs.get_registry().snapshot()
    assert all(v == 0 for v in snap["counters"].values())
    assert all(h["count"] == 0 for h in snap["histograms"].values())
    from repro.obs import trace

    assert trace.spans() == []
