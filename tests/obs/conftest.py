"""Observability tests share one process-global registry and span ring;
reset both around every test so ordering never matters."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs():
    obs.enable()
    obs.prof.stop()
    obs.prof.clear()
    obs.reset()
    yield
    obs.enable()
    obs.prof.stop()
    obs.prof.clear()
    obs.reset()
