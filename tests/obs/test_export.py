"""Exporters: Prometheus text, JSON, chrome-trace, snapshot merging."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs import trace
from repro.obs.export import (
    chrome_trace,
    format_ledger,
    format_pretty,
    json_text,
    ledger,
    merge_snapshots,
    prometheus_text,
    stage_breakdown,
    write_chrome_trace,
)
from repro.obs.registry import MetricRegistry


def _sample_registry() -> MetricRegistry:
    reg = MetricRegistry()
    reg.inc("ingress.frames_out", 3)
    reg.gauge("ingress.queue_depth", 5)
    reg.gauge("ingress.queue_depth", 2)
    reg.observe("encode.match_seconds", 0.5)
    reg.observe("encode.match_seconds", 3.0)
    return reg


# ----------------------------------------------------------- prometheus

def test_prometheus_names_sanitize_under_prefix():
    text = prometheus_text(_sample_registry().snapshot())
    assert "culzss_ingress_frames_out 3" in text
    assert "# TYPE culzss_ingress_frames_out counter" in text
    # the dotted spelling survives in HELP for greppability
    assert "# HELP culzss_ingress_frames_out counter ingress.frames_out" \
        in text


def test_prometheus_gauges_export_last_and_max():
    text = prometheus_text(_sample_registry().snapshot())
    assert "culzss_ingress_queue_depth_last 2" in text
    assert "culzss_ingress_queue_depth_max 5" in text


def test_prometheus_histogram_buckets_cumulative():
    text = prometheus_text(_sample_registry().snapshot())
    # 0.5 -> le 0.5 bucket; 3.0 -> le 4; cumulative counts end at +Inf
    assert 'culzss_encode_match_seconds_bucket{le="0.5"} 1' in text
    assert 'culzss_encode_match_seconds_bucket{le="4"} 2' in text
    assert 'culzss_encode_match_seconds_bucket{le="+Inf"} 2' in text
    assert "culzss_encode_match_seconds_count 2" in text
    assert "culzss_encode_match_seconds_sum 3.5" in text
    # le values must be nondecreasing in document order
    counts = [int(line.rsplit(" ", 1)[1]) for line in text.splitlines()
              if line.startswith("culzss_encode_match_seconds_bucket")]
    assert counts == sorted(counts)


def test_prometheus_preregistered_schema_always_scrapeable():
    """A scrape taken before any traffic still carries every counter
    and histogram family the stack reports into, at zero."""
    text = prometheus_text(obs.get_registry().snapshot())
    for key in obs.COUNTER_KEYS:
        assert f"{'culzss_' + key.replace('.', '_')} 0" in text
    for key in obs.HISTOGRAM_KEYS:
        assert f"culzss_{key.replace('.', '_')}_count 0" in text


def test_prometheus_help_escapes_backslash_and_newline():
    """A hostile metric name must not tear the exposition: v0.0.4 says
    HELP text escapes backslash and line feed."""
    reg = MetricRegistry()
    reg.inc("weird.name\nwith\\newline", 1)
    text = prometheus_text(reg.snapshot())
    for line in text.splitlines():
        if line.startswith("# HELP") and "weird" in line:
            assert "\\n" in line and "\\\\" in line
            break
    else:  # pragma: no cover - the metric must appear
        raise AssertionError("weird metric missing from exposition")
    # every line still parses as exactly one exposition line
    for line in text.splitlines():
        assert line.startswith(("#", "culzss_", "_"))


def test_prometheus_empty_histogram_still_emits_sum_count_inf():
    reg = MetricRegistry(preregister_histograms=("quiet.hist_seconds",))
    text = prometheus_text(reg.snapshot())
    assert 'culzss_quiet_hist_seconds_bucket{le="+Inf"} 0' in text
    assert "culzss_quiet_hist_seconds_sum 0" in text
    assert "culzss_quiet_hist_seconds_count 0" in text


def test_json_round_trips():
    snap = _sample_registry().snapshot()
    assert json.loads(json_text(snap)) == json.loads(json_text(snap))
    assert json.loads(json_text(snap))["counters"]["ingress.frames_out"] == 3


def test_format_pretty_handles_empty_and_full():
    assert format_pretty({}) == "(no metrics recorded)"
    text = format_pretty(_sample_registry().snapshot())
    assert "ingress.frames_out" in text and "encode.match_seconds" in text


# -------------------------------------------------------------- merging

def test_merge_snapshots_counters_add_gauges_high_water():
    a = _sample_registry().snapshot()
    b = _sample_registry().snapshot()
    merged = merge_snapshots(a, b)
    assert merged["counters"]["ingress.frames_out"] == 6
    assert merged["gauges"]["ingress.queue_depth"]["max"] == 5
    h = merged["histograms"]["encode.match_seconds"]
    assert h["count"] == 4
    assert abs(h["sum"] - 7.0) < 1e-12
    assert abs(h["mean"] - 1.75) < 1e-12
    assert h["min"] == 0.5 and h["max"] == 3.0


def test_merge_snapshots_disjoint_keys_union():
    a = MetricRegistry()
    a.inc("only.a")
    b = MetricRegistry()
    b.observe("only.b", 1.0)
    merged = merge_snapshots(a.snapshot(), b.snapshot())
    assert merged["counters"]["only.a"] == 1
    assert merged["histograms"]["only.b"]["count"] == 1


# ----------------------------------------------------- throughput ledger

def _ledger_registry() -> MetricRegistry:
    reg = MetricRegistry()
    # two ledger stages: bytes counter + populated seconds histogram
    reg.inc("encode.match_bytes", 1_000_000)
    reg.observe("encode.match_seconds", 2.0)
    reg.inc("decode.stream_bytes", 500_000)
    reg.observe("decode.stream_seconds", 0.5)
    reg.observe("decode.stream_seconds", 0.5)
    # a bytes counter with no timing histogram: not a ledger stage
    reg.inc("ingress.bytes_in", 999)
    # a timed stage with no bytes dimension: not a ledger stage either
    reg.observe("engine.queue_wait_seconds", 1.0)
    return reg


def test_ledger_rows_rates_and_shares():
    rows = ledger(_ledger_registry().snapshot())
    assert [r["stage"] for r in rows] == ["encode.match", "decode.stream"]
    match, stream = rows
    assert match["bytes"] == 1_000_000
    assert match["seconds"] == 2.0
    assert match["calls"] == 1
    assert match["mb_s"] == 0.5
    assert match["share"] == 2.0 / 3.0
    assert stream["calls"] == 2
    assert stream["mb_s"] == 0.5
    assert stream["share"] == 1.0 / 3.0


def test_ledger_empty_snapshot_and_format():
    assert ledger(MetricRegistry().snapshot()) == []
    assert "no per-stage byte accounting" in format_ledger([])
    text = format_ledger(ledger(_ledger_registry().snapshot()))
    lines = text.splitlines()
    assert lines[0].split() == ["stage", "share", "seconds", "MB/s",
                                "bytes", "calls"]
    assert lines[1].startswith("encode.match")  # hottest first
    assert "66.7%" in lines[1]


def test_stage_breakdown_diffs_two_snapshots():
    reg = _ledger_registry()
    before = reg.snapshot()
    reg.inc("encode.match_bytes", 2_000_000)
    reg.observe("encode.match_seconds", 6.0)
    after = reg.snapshot()
    diff = stage_breakdown(before, after)
    # only the stage that moved appears; decode.stream had no new calls
    assert set(diff) == {"encode.match"}
    assert diff["encode.match"]["seconds"] == pytest.approx(6.0)
    assert diff["encode.match"]["bytes"] == 2_000_000
    assert diff["encode.match"]["calls"] == 1
    assert diff["encode.match"]["share"] == pytest.approx(1.0)


def test_stage_breakdown_from_empty_before():
    after = _ledger_registry().snapshot()
    diff = stage_breakdown(MetricRegistry().snapshot(), after)
    assert set(diff) == {"encode.match", "decode.stream"}
    shares = sum(v["share"] for v in diff.values())
    assert shares == pytest.approx(1.0)


# --------------------------------------------------------- chrome trace

def test_chrome_trace_shape_and_nesting_args(tmp_path):
    with trace.span("outer", op="encode"):
        with trace.span("inner"):
            pass
    doc = chrome_trace(trace.spans())
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    assert [e["name"] for e in events] == ["outer", "inner"]  # ts order
    for e in events:
        assert e["ph"] == "X"
        assert e["dur"] >= 0
    outer = next(e for e in events if e["name"] == "outer")
    inner = next(e for e in events if e["name"] == "inner")
    assert inner["args"]["parent_id"] == outer["args"]["span_id"]
    assert inner["args"]["trace_id"] == outer["args"]["trace_id"]
    assert outer["args"]["op"] == "encode"
    # inner's interval sits inside outer's (what makes nesting render)
    assert outer["ts"] <= inner["ts"]
    assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-3

    path = write_chrome_trace(tmp_path / "t.json", trace.spans())
    assert json.loads(path.read_text())["traceEvents"]
