"""SLO monitor: objectives, quantiles, burn-rate windows, gauges."""

from __future__ import annotations

import math

import pytest

from repro.obs.export import prometheus_text
from repro.obs.registry import Histogram
from repro.obs.slo import (
    DEFAULT_WINDOWS,
    Objective,
    SloMonitor,
    default_objectives,
    quantile_from_hist,
)
from repro.service.metrics import Metrics


def hist_snapshot(values: list[float]) -> dict:
    h = Histogram()
    for v in values:
        h.record(v)
    return h.snapshot()


def snap(counters: dict | None = None,
         histograms: dict | None = None) -> dict:
    return {"counters": counters or {}, "gauges": {},
            "histograms": histograms or {}}


class FakeClock:
    def __init__(self, t: float = 1000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


# ---------------------------------------------------------- quantiles

def test_quantile_empty_hist_is_none():
    assert quantile_from_hist({"count": 0, "buckets": {}}, 0.99) is None
    assert quantile_from_hist({}, 0.5) is None


def test_quantile_upper_edge_semantics():
    # 99 fast observations, 1 slow: p50 lands in the fast bucket's
    # upper edge, p999 in the slow one's
    h = hist_snapshot([0.001] * 99 + [1.5])
    p50 = quantile_from_hist(h, 0.50)
    assert p50 is not None and 0.001 <= p50 <= 0.002
    p999 = quantile_from_hist(h, 0.999)
    assert p999 is not None and p999 >= 1.5


# --------------------------------------------------------- objectives

def test_objective_validation():
    with pytest.raises(ValueError):
        Objective(name="x", kind="nope")
    with pytest.raises(ValueError):
        Objective(name="x", kind="latency", quantile=1.5)


def test_latency_objective_error_budget_is_one_minus_quantile():
    obj = Objective(name="x", kind="latency", histogram="h",
                    quantile=0.99, threshold=0.25)
    assert obj.error_budget == pytest.approx(0.01)


def test_default_objectives_cover_the_advertised_three():
    names = {o.name for o in default_objectives()}
    assert names == {"frame_p99_seconds", "error_rate", "salvage_rate"}


# --------------------------------------------------------- evaluation

def test_ratio_objective_breach_and_ok():
    obj = Objective(name="err", kind="ratio",
                    bad=("server.connection_errors",),
                    total=("server.connections",), budget=0.01)
    mon = SloMonitor([obj], clock=FakeClock())
    bad = mon.evaluate(snap({"server.connections": 100,
                             "server.connection_errors": 5}))
    assert not bad["ok"]
    assert bad["objectives"][0]["bad_fraction"] == pytest.approx(0.05)
    good = mon.evaluate(snap({"server.connections": 1000,
                              "server.connection_errors": 1}))
    assert good["ok"]


def test_latency_objective_breach_reports_value_and_thresholds():
    obj = Objective(name="p99", kind="latency", histogram="lat",
                    quantile=0.9, threshold=0.1)
    mon = SloMonitor([obj], clock=FakeClock())
    # 50% of observations above threshold: far past the 10% budget
    report = mon.evaluate(
        snap(histograms={"lat": hist_snapshot([0.01] * 5 + [1.0] * 5)}))
    entry = report["objectives"][0]
    assert not entry["ok"]
    assert entry["value"] >= 1.0
    assert entry["threshold"] == 0.1
    # bucketed threshold rounds up to a power of two edge
    assert entry["effective_threshold"] >= 0.1
    assert math.log2(entry["effective_threshold"]).is_integer()


def test_empty_histogram_is_healthy():
    mon = SloMonitor([Objective(name="p99", kind="latency",
                                histogram="lat", threshold=0.1)],
                     clock=FakeClock())
    assert mon.evaluate(snap())["ok"]


# ------------------------------------------------------- burn windows

def test_burn_rate_uses_window_deltas():
    clock = FakeClock(1000.0)
    obj = Objective(name="err", kind="ratio",
                    bad=("bad",), total=("total",), budget=0.01)
    mon = SloMonitor([obj], windows=(60.0,), clock=clock)
    # old history: 1000 requests, 0 errors
    mon.observe(snap({"total": 1000, "bad": 0}))
    clock.t += 61.0
    # inside the window: 100 more requests, 10 errors -> 10% bad,
    # 10x the 1% budget
    report = mon.evaluate(snap({"total": 1100, "bad": 10}))
    win = report["objectives"][0]["windows"]["60s"]
    assert win["bad"] == 10 and win["total"] == 100
    assert win["burn"] == pytest.approx(10.0)


def test_alerting_requires_every_window_burning():
    clock = FakeClock(1000.0)
    obj = Objective(name="err", kind="ratio", bad=("bad",),
                    total=("total",), budget=0.01, alert_burn=2.0)
    mon = SloMonitor([obj], windows=(60.0, 600.0), clock=clock)
    mon.observe(snap({"total": 0, "bad": 0}))
    clock.t += 30.0
    mon.observe(snap({"total": 0, "bad": 0}))
    clock.t += 601.0
    # burst entirely inside both windows
    report = mon.evaluate(snap({"total": 100, "bad": 50}))
    entry = report["objectives"][0]
    assert entry["alerting"]
    assert not report["ok"]


def test_young_monitor_falls_back_to_oldest_sample():
    clock = FakeClock(1000.0)
    obj = Objective(name="err", kind="ratio", bad=("bad",),
                    total=("total",), budget=0.5)
    mon = SloMonitor([obj], windows=(3600.0,), clock=clock)
    mon.observe(snap({"total": 10, "bad": 0}))
    clock.t += 5.0  # far younger than the hour window
    report = mon.evaluate(snap({"total": 20, "bad": 10}))
    win = report["objectives"][0]["windows"]["3600s"]
    assert win["total"] == 10 and win["bad"] == 10
    assert win["covers_seconds"] == pytest.approx(5.0)


def test_no_samples_yields_null_burn():
    mon = SloMonitor([Objective(name="err", kind="ratio", bad=("bad",),
                                total=("total",), budget=0.01)],
                     clock=FakeClock())
    report = mon.evaluate(snap({"total": 10, "bad": 0}))
    win = report["objectives"][0]["windows"]
    assert all(w["burn"] is None for w in win.values())
    assert not report["objectives"][0]["alerting"]


def test_default_windows_sorted_and_positive():
    assert DEFAULT_WINDOWS == tuple(sorted(DEFAULT_WINDOWS))
    with pytest.raises(ValueError):
        SloMonitor(windows=(0.0,))


# ------------------------------------------------------------- gauges

def test_record_gauges_surface_as_culzss_slo_metrics():
    clock = FakeClock()
    mon = SloMonitor(clock=clock)
    metrics = Metrics()
    bad = snap({"server.connections": 100, "server.connection_errors": 50})
    mon.observe(bad)
    clock.t += 61.0
    report = mon.record_gauges(metrics, snapshot=bad)
    assert not report["ok"]
    gauges = metrics.snapshot()["gauges"]
    assert gauges["slo.error_rate.ok"]["last"] == 0.0
    assert gauges["slo.ok"]["last"] == 0.0
    text = prometheus_text(metrics.snapshot())
    assert "culzss_slo_error_rate_ok_last 0.0" in text
    assert "culzss_slo_ok_last 0.0" in text
