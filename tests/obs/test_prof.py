"""The sampling profiler: collection, cross-process merge, exports, overhead.

The contract under test is the forensics loop end to end: a sampler
collects collapsed stacks from running threads, its drain payload is
picklable and rides home inside ``obs.delta()``, the parent ingests it
keyed by pid, and one speedscope/collapsed export covers the parent
*and* its pool workers.  The overhead guard mirrors the obs one: an
encode under the default-rate profiler must stay within 10% of the
unprofiled time.
"""

from __future__ import annotations

import asyncio
import json
import os
import pickle
from time import perf_counter

import pytest

from repro import obs
from repro.obs import prof
from repro.obs.export import collapsed_stacks, speedscope_doc


def _burn(seconds: float) -> int:
    """Busy-spin so the sampler has something to catch."""
    end = perf_counter() + seconds
    x = 0
    while perf_counter() < end:
        x += sum(range(64))
    return x


# ----------------------------------------------------------- collection

def test_sampler_collects_named_stacks():
    p = prof.SamplingProfiler(hz=500)
    p.start()
    try:
        _burn(0.25)
    finally:
        p.stop()
    counts = p.counts()
    assert counts, "no samples after 0.25s of busy work at 500 Hz"
    assert any("_burn" in stack for stack in counts), sorted(counts)[:3]
    # collapsed keys are root-first: the leaf burning CPU is at the end
    burn_keys = [k for k in counts if "_burn" in k]
    assert any("test_prof.py" in k.split(";")[-1] or "_burn" in k.split(";")[-1]
               for k in burn_keys)


def test_sampler_rejects_bad_hz_and_start_is_idempotent():
    with pytest.raises(ValueError):
        prof.SamplingProfiler(hz=0)
    p = prof.SamplingProfiler(hz=50)
    p.start()
    thread_a = p._thread
    p.start()  # second start: same thread, no respawn
    assert p._thread is thread_a
    p.stop()
    assert not p.running


def test_drain_resets_and_reports_wall_seconds():
    p = prof.SamplingProfiler(hz=500)
    p.start()
    _burn(0.15)
    p.stop()
    payload = p.drain()
    assert payload is not None
    assert payload["pid"] == os.getpid()
    assert payload["hz"] == 500
    assert payload["wall_seconds"] == pytest.approx(0.15, abs=0.1)
    assert sum(payload["samples"].values()) >= 1
    assert p.drain() is None  # drained clean


# ----------------------------------------------- module API + transport

def test_module_start_stop_and_env_hz(monkeypatch):
    monkeypatch.setenv(prof.ENV_HZ, "250")
    assert prof.maybe_start_from_env()
    try:
        assert prof.running()
        assert prof._local().hz == 250
    finally:
        prof.stop()
    assert not prof.running()


def test_maybe_start_without_env_is_noop(monkeypatch):
    monkeypatch.delenv(prof.ENV_HZ, raising=False)
    assert not prof.maybe_start_from_env()
    assert not prof.running()


def test_drain_ingest_pickle_roundtrip():
    prof.start(hz=500)
    _burn(0.15)
    prof.stop()
    payload = prof.drain()
    assert payload is not None
    wire = pickle.loads(pickle.dumps(payload))  # the pool pipe, honestly
    prof.ingest(wire)
    profiles = prof.profiles()
    assert os.getpid() in profiles
    assert profiles[os.getpid()]["samples"] == payload["samples"]
    # flattened view agrees
    assert prof.samples() == payload["samples"]


def test_ingest_merges_per_pid():
    prof.ingest({"pid": 111, "hz": 97.0, "wall_seconds": 1.0,
                 "samples": {"a;b": 3}})
    prof.ingest({"pid": 111, "hz": 97.0, "wall_seconds": 0.5,
                 "samples": {"a;b": 2, "a;c": 1}})
    prof.ingest({"pid": 222, "hz": 50.0, "wall_seconds": 2.0,
                 "samples": {"x": 7}})
    profiles = prof.profiles()
    assert profiles[111]["samples"] == {"a;b": 5, "a;c": 1}
    assert profiles[111]["wall_seconds"] == pytest.approx(1.5)
    assert profiles[222]["samples"] == {"x": 7}


def test_delta_carries_profile_and_merge_restores():
    prof.start(hz=500)
    _burn(0.15)
    prof.stop()
    payload = obs.delta()
    assert payload["profile"], "obs.delta() did not pick up the samples"
    assert not prof.profiles(), "drain left samples behind"
    obs.merge_delta(payload)
    assert os.getpid() in prof.profiles()


def test_diff_profiles_windows_a_running_accumulation():
    before = {10: {"hz": 97.0, "wall_seconds": 1.0,
                   "samples": {"a": 5, "b": 2}}}
    after = {10: {"hz": 97.0, "wall_seconds": 3.0,
                  "samples": {"a": 9, "b": 2, "c": 4}},
             20: {"hz": 97.0, "wall_seconds": 1.0, "samples": {"z": 1}}}
    window = prof.diff_profiles(before, after)
    assert window[10]["samples"] == {"a": 4, "c": 4}
    assert window[10]["wall_seconds"] == pytest.approx(2.0)
    assert window[20]["samples"] == {"z": 1}


def test_clear_drops_everything():
    prof.ingest({"pid": 1, "hz": 97.0, "wall_seconds": 1.0,
                 "samples": {"a": 1}})
    prof.clear()
    assert prof.profiles() == {}


# -------------------------------------------------------------- exports

def _two_pid_profiles() -> dict[int, dict]:
    return {
        100: {"hz": 100.0, "wall_seconds": 1.0,
              "samples": {"main;work": 80, "main;idle": 20}},
        200: {"hz": 50.0, "wall_seconds": 2.0,
              "samples": {"main;work": 30}},
    }


def test_speedscope_doc_one_profile_per_pid():
    doc = speedscope_doc(_two_pid_profiles(), name="t")
    assert doc["$schema"] == "https://www.speedscope.app/file-format-schema.json"
    assert [p["name"] for p in doc["profiles"]] == ["pid 100", "pid 200"]
    frames = [f["name"] for f in doc["shared"]["frames"]]
    assert set(frames) == {"main", "work", "idle"}
    p100 = doc["profiles"][0]
    assert p100["type"] == "sampled"
    assert p100["unit"] == "seconds"
    # weights are count/hz seconds; endValue sums them
    assert p100["endValue"] == pytest.approx(1.0)  # (80+20)/100
    assert doc["profiles"][1]["endValue"] == pytest.approx(0.6)  # 30/50


def test_collapsed_stacks_sums_across_pids():
    text = collapsed_stacks(_two_pid_profiles())
    lines = dict(line.rsplit(" ", 1) for line in text.strip().splitlines())
    assert lines == {"main;work": "110", "main;idle": "20"}


def test_export_writes_both_files(tmp_path):
    prof.ingest({"pid": 5, "hz": 97.0, "wall_seconds": 1.0,
                 "samples": {"a;b": 3}})
    printed: list[str] = []
    out = tmp_path / "run.speedscope.json"
    prof.export(out, out=printed.append)
    doc = json.loads(out.read_text())
    assert doc["profiles"]
    collapsed = tmp_path / "run.speedscope.collapsed"
    assert collapsed.read_text() == "a;b 3\n"
    assert printed and "3 samples across 1 process(es)" in printed[0]


# --------------------------------------------- worker merge (e2e, slow)

@pytest.mark.slow
def test_pool_worker_profiles_merge_with_parent(monkeypatch):
    """The acceptance path: REPRO_PROFILE_HZ set, a real process pool
    runs frames, and one speedscope export covers parent + worker."""
    from repro.service.pipeline import IngressPipeline

    monkeypatch.setenv(prof.ENV_HZ, "997")
    prof.start()
    buffers = [(b"profile me across the pool %d " % i * 6000)
               for i in range(2)]  # ~180 KiB each: real encode time

    async def scenario() -> None:
        async def send(frame) -> None:
            pass

        with IngressPipeline(workers=1, queue_depth=4) as pipeline:
            await pipeline.run(1, buffers, send)

    try:
        asyncio.run(scenario())
    finally:
        prof.stop()
    profiles = prof.profiles()
    foreign = [pid for pid in profiles if pid != os.getpid()]
    assert foreign, "no worker profile merged into the parent"
    assert os.getpid() in profiles, "parent's own samples missing"
    doc = speedscope_doc(profiles)
    assert len(doc["profiles"]) >= 2
    worker_stacks = "\n".join(profiles[foreign[0]]["samples"])
    assert "encode" in worker_stacks or "match" in worker_stacks


# ------------------------------------------------------ overhead (slow)

OVERHEAD_CEILING = 1.10
REPS = 3


@pytest.mark.slow
def test_default_rate_profiler_overhead_under_ceiling():
    from repro.core import CompressionParams, gpu_compress
    from repro.datasets import generate

    data = generate("cfiles", 1 << 20, seed=13)

    def encode_once() -> float:
        t0 = perf_counter()
        gpu_compress(data, CompressionParams(version=2))
        return perf_counter() - t0

    times: dict[bool, list[float]] = {True: [], False: []}
    try:
        for _ in range(REPS):
            for profiled in (True, False):
                if profiled:
                    prof.start(hz=prof.DEFAULT_HZ)
                times[profiled].append(encode_once())
                if profiled:
                    prof.stop()
    finally:
        prof.stop()
    on, off = min(times[True]), min(times[False])
    assert on <= off * OVERHEAD_CEILING, (
        f"profiled encode took {on:.3f}s vs {off:.3f}s bare "
        f"({on / off:.2%} — ceiling {OVERHEAD_CEILING:.0%})")
