"""MetricRegistry: recording, explicit zero semantics, delta merge."""

from __future__ import annotations

import os
import pickle

from repro import obs
from repro.obs.registry import Histogram, MetricRegistry


# ---------------------------------------------------------- histograms

def test_histogram_zero_is_explicit():
    """A recorded zero counts everywhere: count, sum, min, max, and the
    underflow bucket — the edge case the service-layer histogram used
    to leave ambiguous."""
    h = Histogram()
    h.record(0.0)
    assert h.count == 1
    assert h.total == 0.0
    assert h.min == 0.0 and h.max == 0.0
    snap = h.snapshot()
    assert snap["buckets"] == {f"le_2^{Histogram._LO}": 1}
    # zero stays the minimum even after larger samples arrive
    h.record(5.0)
    assert h.min == 0.0 and h.max == 5.0


def test_histogram_negative_and_tiny_land_in_underflow():
    h = Histogram()
    h.record(-1.0)
    h.record(1e-30)
    assert h.bucket_of(-1.0) == Histogram._LO
    assert h.bucket_of(1e-30) == Histogram._LO
    assert sum(h.snapshot()["buckets"].values()) == 2


def test_histogram_bucket_edges_inclusive_upper():
    # (2^k, 2^(k+1)] — a power of two lands in its own-exponent bucket
    assert Histogram.bucket_of(1.0) == 0
    assert Histogram.bucket_of(1.5) == 1
    assert Histogram.bucket_of(2.0) == 1
    assert Histogram.bucket_of(2.1) == 2
    assert Histogram.bucket_of(2.0**50) == Histogram._HI


# ------------------------------------------------------------ registry

def test_preregistered_names_exist_at_zero():
    reg = MetricRegistry(preregister=("a.b",), preregister_histograms=("c.d",))
    snap = reg.snapshot()
    assert snap["counters"]["a.b"] == 0
    assert snap["histograms"]["c.d"]["count"] == 0


def test_delta_snapshot_is_differential_and_picklable():
    reg = MetricRegistry()
    reg.inc("x", 3)
    reg.observe("h", 1.0)
    d1 = pickle.loads(pickle.dumps(reg.delta_snapshot()))
    assert d1["counters"] == {"x": 3}
    assert d1["histograms"]["h"]["count"] == 1
    # nothing new since -> empty diff sections
    d2 = reg.delta_snapshot()
    assert d2["counters"] == {} and d2["histograms"] == {}
    reg.inc("x")
    assert reg.delta_snapshot()["counters"] == {"x": 1}


def test_merge_skips_own_pid():
    reg = MetricRegistry()
    reg.inc("x", 5)
    delta = reg.delta_snapshot()
    assert delta["pid"] == os.getpid()
    reg.merge(delta)  # inline-executor case: must not double count
    assert reg.count("x") == 5
    reg.merge(None)   # and a missing delta is harmless
    assert reg.count("x") == 5


def test_merge_folds_foreign_delta():
    worker = MetricRegistry()
    worker.inc("x", 2)
    worker.gauge("depth", 7)
    worker.observe("h", 0.5)
    worker.observe("h", 2.0)
    delta = worker.delta_snapshot()
    delta["pid"] += 1  # forge a foreign process

    parent = MetricRegistry()
    parent.inc("x", 1)
    parent.observe("h", 4.0)
    parent.merge(delta)
    snap = parent.snapshot()
    assert snap["counters"]["x"] == 3
    assert snap["gauges"]["depth"] == {"last": 7, "max": 7}
    h = snap["histograms"]["h"]
    assert h["count"] == 3
    assert h["min"] == 0.5 and h["max"] == 4.0
    assert abs(h["sum"] - 6.5) < 1e-12


def test_merge_minmax_idempotent():
    """min/max travel as cumulative values: merging the same worker's
    successive deltas never skews the extremes."""
    worker = MetricRegistry()
    worker.observe("h", 10.0)
    d1 = worker.delta_snapshot()
    d1["pid"] += 1
    worker.observe("h", 1.0)
    d2 = worker.delta_snapshot()
    d2["pid"] += 1

    parent = MetricRegistry()
    parent.merge(d1)
    parent.merge(d2)
    h = parent.snapshot()["histograms"]["h"]
    assert h["count"] == 2
    assert h["min"] == 1.0 and h["max"] == 10.0


# ----------------------------------------------- module-level helpers

def test_module_helpers_respect_enable_switch():
    obs.inc("t.counter")
    assert obs.get_registry().count("t.counter") == 1
    obs.disable()
    try:
        obs.inc("t.counter")
        obs.observe("t.hist", 1.0)
        with obs.stage("t.stage"):
            pass
    finally:
        obs.enable()
    snap = obs.get_registry().snapshot()
    assert snap["counters"]["t.counter"] == 1
    assert "t.hist" not in snap["histograms"]
    assert "t.stage_seconds" not in snap["histograms"]


def test_stage_records_span_and_histogram():
    from repro.obs import trace

    with obs.stage("t.work", chunk=3):
        pass
    snap = obs.get_registry().snapshot()
    assert snap["histograms"]["t.work_seconds"]["count"] == 1
    recorded = trace.spans()
    assert recorded[-1].name == "t.work"
    assert recorded[-1].attrs == {"chunk": 3}
