"""Span nesting, cross-thread attach, the ring, drain/ingest."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro import obs
from repro.obs import trace


def _by_name():
    return {s.name: s for s in trace.spans()}


def test_spans_nest_in_one_context():
    with trace.span("outer"):
        with trace.span("mid"):
            with trace.span("inner"):
                pass
    spans = _by_name()
    assert spans["inner"].parent_id == spans["mid"].span_id
    assert spans["mid"].parent_id == spans["outer"].span_id
    assert spans["outer"].parent_id == 0
    assert len({s.trace_id for s in spans.values()}) == 1
    # children close first, so they land in the ring first
    assert [s.name for s in trace.spans()] == ["inner", "mid", "outer"]


def test_siblings_share_parent():
    with trace.span("parent"):
        with trace.span("a"):
            pass
        with trace.span("b"):
            pass
    spans = _by_name()
    assert spans["a"].parent_id == spans["b"].parent_id \
        == spans["parent"].span_id


def test_forced_trace_id_detaches_foreign_parent():
    """An id from the wire starts its own tree — an enclosing span from
    an unrelated trace must not become the parent."""
    wire_id = trace.new_trace_id()
    with trace.span("unrelated"):
        with trace.span("frame", trace_id=wire_id):
            pass
    spans = _by_name()
    assert spans["frame"].trace_id == wire_id
    assert spans["frame"].parent_id == 0
    assert spans["unrelated"].trace_id != wire_id


def test_forced_trace_id_keeps_matching_parent():
    wire_id = trace.new_trace_id()
    with trace.span("frame", trace_id=wire_id):
        with trace.span("stage", trace_id=wire_id):
            pass
    spans = _by_name()
    assert spans["stage"].parent_id == spans["frame"].span_id


def test_attach_carries_context_across_threads():
    """The ParallelEngine handoff: contextvars do not cross pool
    threads, so the submitter captures current() and the worker
    attaches it."""
    with ThreadPoolExecutor(max_workers=1) as pool:
        with trace.span("submitter"):
            ctx = trace.current()

            def work():
                with trace.attach(ctx):
                    with trace.span("shard"):
                        pass

            pool.submit(work).result()

            def naked():
                with trace.span("orphan"):
                    pass

            pool.submit(naked).result()
    spans = _by_name()
    assert spans["shard"].parent_id == spans["submitter"].span_id
    assert spans["orphan"].parent_id == 0


def test_ring_bounds_memory():
    trace.set_capacity(4)
    try:
        for i in range(10):
            with trace.span(f"s{i}"):
                pass
        names = [s.name for s in trace.spans()]
        assert names == ["s6", "s7", "s8", "s9"]
    finally:
        trace.set_capacity(trace.DEFAULT_RING_CAPACITY)


def test_drain_then_ingest_restores():
    with trace.span("kept"):
        pass
    shipped = trace.drain()
    assert trace.spans() == []
    trace.ingest(shipped)
    assert [s.name for s in trace.spans()] == ["kept"]
    trace.ingest(None)  # harmless
    trace.ingest([])
    assert len(trace.spans()) == 1


def test_disabled_records_nothing():
    obs.disable()
    try:
        with trace.span("invisible") as handle:
            assert handle is None
    finally:
        obs.enable()
    assert trace.spans() == []


def test_span_ids_unique_and_pid_stamped():
    import os

    with trace.span("a"):
        pass
    with trace.span("b"):
        pass
    a, b = trace.spans()
    assert a.span_id != b.span_id
    assert a.pid == os.getpid()
    assert (a.span_id >> 40) == (os.getpid() & 0xFFFFFF)
