"""``culzss top`` dashboard: layout, rates, degraded sidecar handling."""

from __future__ import annotations

from repro.obs.registry import Histogram
from repro.obs.top import fetch_json, render, run_top


def snapshot(counters=None, gauges=None, histograms=None) -> dict:
    return {"counters": counters or {},
            "gauges": {k: {"last": v, "max": v}
                       for k, v in (gauges or {}).items()},
            "histograms": histograms or {}}


def test_render_without_sidecar_shows_waiting_banner():
    text = render(None, None)
    assert "waiting for sidecar" in text
    assert "culzss top" in text


def test_render_full_frame_sections():
    h = Histogram()
    for v in [0.002] * 99 + [0.6]:
        h.record(v)
    snap = snapshot(
        counters={"ingress.bytes_in": 4_000_000, "ingress.bytes_out": 1_000,
                  "ingress.frames_out": 40, "server.connections": 3,
                  "server.frames_delivered": 40,
                  "server.bytes_delivered": 4_000_000,
                  "ingress.worker_crashes": 2, "egress.serial_fallbacks": 1,
                  "server.connection_errors": 4,
                  "container.salvage_chunks_lost": 5},
        gauges={"ingress.queue_depth": 6},
        histograms={"egress.stage_wait_seconds": h.snapshot()})
    slo_report = {"objectives": [
        {"name": "frame_p99_seconds", "ok": False, "alerting": True,
         "bad_fraction": 0.01,
         "windows": {"60s": {"burn": 5.2}, "600s": {"burn": 3.1}}},
        {"name": "error_rate", "ok": True, "alerting": False,
         "bad_fraction": 0.0, "windows": {"60s": {"burn": None}}},
    ]}
    text = render(snap, slo_report)
    assert "throughput" in text
    assert "ingress" in text and "egress" in text
    assert "depth   6" in text
    assert "p99" in text and "p50" in text
    assert "crashes     2" in text
    assert "serial-fallbacks     1" in text
    assert "conn-errors     4" in text
    assert "salvage-lost     5" in text
    assert "frame_p99_seconds" in text and "ALERT" in text
    assert "error_rate" in text and "ok" in text
    assert "60s:5.2" in text


def test_render_codecs_pane_counts_ratios_and_rates():
    h = Histogram()
    for v in (0.4, 0.5, 0.6):
        h.record(v)
    prev = snapshot(counters={"codec.chunks_lzss": 10})
    cur = snapshot(
        counters={"codec.chunks_lzss": 30, "codec.chunks_store": 4,
                  "codec.store_fallbacks": 4},
        histograms={"codec.ratio_lzss": h.snapshot()})
    text = render(cur, None, prev=prev, dt=2.0)
    assert "codecs" in text
    pane = text.split("codecs")[1].split("slo")[0]
    assert "lzss" in pane and "store" in pane and "lzss_huffman" in pane
    lzss_line = next(line for line in pane.splitlines()
                     if line.strip().startswith("lzss "))
    assert "30 chunks" in lzss_line
    assert "10.0/s" in lzss_line  # (30-10)/2s
    assert "ratio p50" in lzss_line and "-" not in lzss_line.split("p50")[1]
    assert "store-fallbacks     4" in pane


def test_render_codecs_pane_collapses_when_no_dispatch():
    text = render(snapshot(), None)
    assert "(no codec dispatch recorded)" in text


def test_render_rates_diff_against_previous_poll():
    prev = snapshot(counters={"ingress.bytes_in": 1_000_000})
    cur = snapshot(counters={"ingress.bytes_in": 3_000_000})
    text = render(cur, None, prev=prev, dt=2.0)
    # (3e6 - 1e6) / 2s = 1 MB/s
    assert "in  1000.0 KB/s" in text or "in     1.0 MB/s" in text


def test_render_counter_reset_clamps_rate_to_zero():
    prev = snapshot(counters={"ingress.bytes_in": 9_000_000})
    cur = snapshot(counters={"ingress.bytes_in": 100})  # gateway restarted
    text = render(cur, None, prev=prev, dt=2.0)
    assert "-" not in text.split("throughput")[1].split("served")[0] \
        .replace("frames/s", "").replace("/s", "")


def test_fetch_json_unreachable_port_is_none():
    assert fetch_json("127.0.0.1", 1, "/metrics.json", timeout=0.2) is None


def test_run_top_plain_survives_missing_sidecar():
    out: list[str] = []
    rc = run_top("127.0.0.1", 1, interval=0.0, iterations=2, plain=True,
                 out=out.append)
    assert rc == 0
    text = "\n".join(out)
    assert text.count("waiting for sidecar") == 2
