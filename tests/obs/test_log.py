"""Structured JSON logging: formatting, trace correlation, rate limits."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.obs import log as obslog
from repro.obs import trace


@pytest.fixture(autouse=True)
def clean_rate_limits():
    obslog.reset_rate_limits()
    yield
    obslog.reset_rate_limits()


def test_event_emits_one_parseable_json_line():
    with obslog.capture() as cap:
        obslog.event("service", "worker_crash", stage="ingress",
                     trace_id=7, pool_rebuilt_before=False)
    assert len(cap.lines()) == 1
    doc = json.loads(cap.lines()[0])
    assert doc["event"] == "worker_crash"
    assert doc["logger"] == "repro.service"
    assert doc["level"] == "warning"
    assert doc["stage"] == "ingress"
    assert doc["trace_id"] == 7
    assert doc["pool_rebuilt_before"] is False
    assert isinstance(doc["ts"], float) and doc["ts"] > 0
    assert doc["pid"] > 0


def test_trace_id_injected_from_active_span():
    tid = trace.new_trace_id()
    with obslog.capture() as cap:
        with trace.span("frame", trace_id=tid):
            obslog.event("container", "salvage", lost=1)
    (doc,) = cap.events()
    assert doc["trace_id"] == tid
    assert doc["span_id"] != 0
    assert doc["lost"] == 1


def test_explicit_trace_id_wins_over_context():
    with obslog.capture() as cap:
        with trace.span("frame"):
            obslog.event("service", "worker_crash", trace_id=1234)
    (doc,) = cap.events()
    assert doc["trace_id"] == 1234


def test_no_span_no_explicit_id_gives_zero():
    with obslog.capture() as cap:
        obslog.event("engine", "worker_crash")
    (doc,) = cap.events()
    assert doc["trace_id"] == 0


def test_embedded_newlines_stay_one_line():
    with obslog.capture() as cap:
        obslog.event("service", "connection_error",
                     exc="line one\nline two")
    assert len(cap.lines()) == 1
    assert json.loads(cap.lines()[0])["exc"] == "line one\nline two"


def test_warn_limited_suppresses_repeats_and_counts_them():
    with obslog.capture() as cap:
        assert obslog.warn_limited("service", "shm_fallback", size=1)
        for _ in range(5):
            assert not obslog.warn_limited("service", "shm_fallback", size=1)
    assert len(cap.events()) == 1

    obslog.reset_rate_limits()
    # pre-seed a window with drops, then emit after it expires
    obslog.warn_limited("service", "shm_fallback", interval=0.0)
    with obslog.capture() as cap:
        # interval 0: the previous window is already over; the dropped
        # count (zero drops happened) is not attached
        assert obslog.warn_limited("service", "shm_fallback", interval=0.0)
    (doc,) = cap.events()
    assert "suppressed" not in doc


def test_warn_limited_reports_suppressed_count_on_next_emit():
    obslog.warn_limited("service", "retry", op="connect")  # opens window
    for _ in range(3):
        obslog.warn_limited("service", "retry", op="connect")  # dropped
    # force the window open again without waiting out the interval
    with obslog._RATE_LOCK:
        start, dropped = obslog._RATE_STATE["service.retry"]
        obslog._RATE_STATE["service.retry"] = (start - 10.0, dropped)
    with obslog.capture() as cap:
        assert obslog.warn_limited("service", "retry", op="connect")
    (doc,) = cap.events()
    assert doc["suppressed"] == 3


def test_distinct_keys_rate_limit_independently():
    with obslog.capture() as cap:
        assert obslog.warn_limited("service", "shm_fallback")
        assert obslog.warn_limited("service", "retry")
    assert len(cap.events()) == 2


def test_configure_is_idempotent_and_writes_json():
    stream = io.StringIO()
    h1 = obslog.configure(stream)
    h2 = obslog.configure(stream)
    try:
        root = logging.getLogger(obslog.ROOT)
        json_handlers = [h for h in root.handlers
                         if isinstance(getattr(h, "formatter", None),
                                       obslog.JsonFormatter)]
        assert json_handlers == [h2] and h1 is not h2
        obslog.event("service", "worker_crash", stage="egress")
        doc = json.loads(stream.getvalue().splitlines()[0])
        assert doc["event"] == "worker_crash"
    finally:
        logging.getLogger(obslog.ROOT).removeHandler(h2)
        obslog._configured_handler = None


def test_exception_info_is_structured():
    logger = obslog.get_logger("service")
    with obslog.capture() as cap:
        try:
            raise ValueError("boom")
        except ValueError:
            logger.warning("connection_error", exc_info=True)
    (doc,) = cap.events()
    assert doc["exc_type"] == "ValueError"
    assert doc["exc"] == "boom"


def test_unconfigured_process_emits_nothing(capsys):
    # NullHandler etiquette: no handler installed -> no stderr noise
    obslog.event("service", "worker_crash", stage="ingress")
    captured = capsys.readouterr()
    assert "worker_crash" not in captured.err
    assert "worker_crash" not in captured.out


def test_get_logger_namespaces_under_repro():
    assert obslog.get_logger("engine").name == "repro.engine"
    assert obslog.get_logger("repro.engine").name == "repro.engine"
    assert obslog.get_logger("repro").name == "repro"
