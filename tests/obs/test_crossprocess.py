"""Worker-side metrics surface in the parent: engine and pool paths.

Two transports to cover: the :class:`ParallelEngine` (worker threads
write straight into the process-global registry) and the service
pipelines' process pool (workers ship an :func:`repro.obs.delta` home
with each job result, folded in at drain).  Both must keep reporting
through injected worker crashes — the crash itself becomes a counter.
"""

from __future__ import annotations

import asyncio
import os

import pytest

from repro import obs
from repro.engine import ParallelEngine
from repro.lzss.encoder import encode_chunked
from repro.lzss.formats import CUDA_V2
from repro.obs import trace
from repro.service.pipeline import IngressPipeline, decode_payload
from repro.service.protocol import Frame
from repro.testing import crash_factory

CHUNK = 4096
DATA = (b"observability crosses process boundaries " * 64
        + bytes(range(256))) * 96  # ~270 KiB, compressible


# -------------------------------------------------------------- engine

def test_engine_shard_counters_and_spans_in_parent():
    with ParallelEngine(workers=2, min_parallel_bytes=0) as engine:
        with trace.span("caller"):
            engine.encode_chunked(DATA, CUDA_V2, CHUNK)
    snap = obs.get_registry().snapshot()
    assert snap["counters"]["engine.shards"] >= 2
    assert snap["counters"]["matcher.lag_calls"] >= 2
    assert snap["histograms"]["engine.shard_seconds"]["count"] >= 2
    assert snap["histograms"]["engine.queue_wait_seconds"]["count"] >= 2
    # shard spans parent to the caller's span across the pool threads
    by_name = {}
    for s in trace.spans():
        by_name.setdefault(s.name, []).append(s)
    caller = by_name["caller"][0]
    assert all(s.parent_id == caller.span_id
               for s in by_name["engine.shard"])


def test_engine_crash_still_reports_and_output_identical():
    serial = encode_chunked(DATA, CUDA_V2, CHUNK)
    with ParallelEngine(workers=2, min_parallel_bytes=0,
                        executor_factory=crash_factory(crash_on=1)) as engine:
        result = engine.encode_chunked(DATA, CUDA_V2, CHUNK)
    assert result.payload == serial.payload
    snap = obs.get_registry().snapshot()
    assert snap["counters"]["engine.worker_crashes"] >= 1
    assert snap["counters"]["engine.serial_fallbacks"] >= 1
    # the fallback reruns still produced shard spans and match work
    assert snap["counters"]["matcher.lag_calls"] >= 2
    fallbacks = [s for s in trace.spans()
                 if s.name == "engine.shard" and s.attrs.get("fallback")]
    assert fallbacks


# ---------------------------------------------------- pipeline (pool)

def _run_ingress(pipeline: IngressPipeline,
                 buffers: list[bytes]) -> list[Frame]:
    frames: list[Frame] = []

    async def send(frame: Frame) -> None:
        frames.append(frame)

    async def scenario() -> None:
        with pipeline:
            await pipeline.run(7, buffers, send)

    asyncio.run(scenario())
    return frames


@pytest.mark.slow
def test_pool_worker_deltas_merge_into_parent_registry():
    buffers = [b"pipeline obs frame %d " % i * 400 for i in range(3)]
    frames = _run_ingress(IngressPipeline(workers=2, queue_depth=4), buffers)

    assert [decode_payload(f.flags, f.payload) for f in frames] == buffers
    # every frame got its own trace id, carried on the v2 wire header
    tids = [f.trace_id for f in frames]
    assert all(tids) and len(set(tids)) == len(tids)

    # worker-side codec counters landed here via the shipped deltas
    snap = obs.get_registry().snapshot()
    assert snap["counters"]["matcher.lag_calls"] >= len(buffers)
    assert snap["histograms"]["encode.match_seconds"]["count"] \
        >= len(buffers)

    # worker spans were ingested: foreign pids, grouped by frame trace
    shipped = [s for s in trace.spans() if s.pid != os.getpid()]
    assert shipped
    assert {s.trace_id for s in shipped
            if s.name == "gateway.frame"} == set(tids)


@pytest.mark.slow
def test_pool_crash_keeps_reporting():
    """A worker crash degrades the frame to an inline rerun; the rerun
    writes the parent registry directly and the stream still reports."""
    from repro.testing import CrashingExecutor

    buffers = [b"crash survivor frame %d " % i * 300 for i in range(3)]
    pipeline = IngressPipeline(workers=2, queue_depth=4,
                               executor=CrashingExecutor(crash_on=1))
    frames = _run_ingress(pipeline, buffers)

    assert [decode_payload(f.flags, f.payload) for f in frames] == buffers
    assert pipeline.metrics.count("ingress.worker_crashes") >= 1
    snap = obs.get_registry().snapshot()
    # inline executor + serial fallback both run in-process: their
    # counters are already here, and the same-pid delta merge must not
    # have double-counted the stage timings against the frame count
    assert snap["counters"]["matcher.lag_calls"] >= len(buffers)
    assert snap["histograms"]["encode.match_seconds"]["count"] \
        == len(buffers)
