"""Every shipped example must run clean and say what it promises."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "GeForce GTX 480" in out
    assert "CULZSS Version 1" in out and "CULZSS Version 2" in out
    assert "decompressed OK" in out


def test_network_gateway():
    out = run_example("network_gateway.py")
    assert "gateway pair" in out
    assert "bytes on the wire" in out
    assert "delivery receipt" in out and "CRC verified" in out
    assert "net effect" in out


def test_checkpoint_compression():
    out = run_example("checkpoint_compression.py")
    assert "checkpoint 0" in out
    assert "totals" in out


def test_tuning_sweep():
    out = run_example("tuning_sweep.py", "highly_compressible")
    assert "window sweep" in out
    assert "threads-per-block sweep" in out


def test_tuning_sweep_rejects_unknown_dataset():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "tuning_sweep.py"), "nope"],
        capture_output=True, text=True)
    assert proc.returncode != 0


@pytest.mark.slow
def test_observability():
    out = run_example("observability.py")
    assert "round trip" in out
    assert "matcher.lag_calls" in out
    assert "Prometheus exposition" in out
    assert "chrome trace" in out
    assert "span ring restored" in out


def test_figure1_walkthrough():
    out = run_example("figure1_walkthrough.py")
    assert "I meant what I said" in out
    assert "figure-style character count" in out
