"""Pipeline profiles (overlap math) and the multi-GPU negative result."""

import pytest

from repro.gpusim.multi import simulate_multi_gpu
from repro.gpusim.profiler import GpuProfile
from repro.gpusim.spec import FERMI_GTX480


class TestProfile:
    def test_sequential_phases_sum(self):
        p = GpuProfile()
        p.add("a", 1.0)
        p.add("b", 2.0)
        assert p.total_seconds == 3.0

    def test_overlapped_phase_hidden(self):
        p = GpuProfile()
        p.add("kernel", 5.0)
        p.add("cpu", 3.0, overlap_with="kernel")
        assert p.total_seconds == 5.0

    def test_overlap_excess_exposed(self):
        p = GpuProfile()
        p.add("kernel", 2.0)
        p.add("cpu", 5.0, overlap_with="kernel")
        assert p.total_seconds == 5.0

    def test_phase_seconds_accumulates(self):
        p = GpuProfile()
        p.add("kernel", 1.0)
        p.add("kernel", 2.0)
        assert p.phase_seconds("kernel") == 3.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            GpuProfile().add("x", -1.0)

    def test_report_lists_phases(self):
        p = GpuProfile()
        p.add("h2d", 0.5)
        p.add("fixup", 0.1, overlap_with="h2d")
        report = p.report()
        assert "h2d" in report and "TOTAL" in report and "hidden" in report


class TestMultiGpu:
    def test_single_device_has_no_overhead(self):
        run = simulate_multi_gpu(FERMI_GTX480, 4.0, 1.0, devices=1)
        assert run.total_seconds == pytest.approx(5.0)

    def test_kernel_divides_transfers_do_not(self):
        run = simulate_multi_gpu(FERMI_GTX480, 4.0, 1.0, devices=2)
        assert run.kernel_seconds == 2.0
        assert run.transfer_seconds == 1.0
        assert run.thread_overhead_seconds > 0

    def test_paper_negative_result_no_gain_for_small_kernels(self):
        # §VII: multi-GPU "could not receive any gains" — when the
        # kernel share is small, thread overhead and the serialized
        # PCIe wipe out the division.
        single = simulate_multi_gpu(FERMI_GTX480, 0.05, 0.05,
                                    devices=1, dispatches_per_device=32)
        dual = simulate_multi_gpu(FERMI_GTX480, 0.05, 0.05,
                                  devices=2, dispatches_per_device=32)
        assert dual.total_seconds >= single.total_seconds

    def test_big_kernels_do_gain(self):
        # The model is not rigged: genuinely kernel-dominated runs win.
        single = simulate_multi_gpu(FERMI_GTX480, 100.0, 0.1, devices=4)
        assert single.total_seconds < 100.0

    def test_device_count_validated(self):
        with pytest.raises(ValueError):
            simulate_multi_gpu(FERMI_GTX480, 1.0, 1.0, devices=0)
