"""Occupancy, scheduling, and kernel-launch timing."""

import numpy as np
import pytest

from repro.gpusim.kernel import (
    BlockCost,
    KernelLaunch,
    launch_kernel,
    warp_lockstep_cycles,
)
from repro.gpusim.scheduler import latency_hiding_factor, occupancy
from repro.gpusim.spec import FERMI_GTX480, DeviceSpec
from repro.gpusim.timing import transfer_time


class TestOccupancy:
    def test_shared_memory_limits_v1_blocks(self):
        # V1's ~10 KB per block ⇒ one resident block on a 16 KB SM.
        occ = occupancy(FERMI_GTX480, 128, 10240)
        assert occ.resident_blocks == 1
        assert "shared" in occ.limiter

    def test_small_footprint_hits_block_cap(self):
        occ = occupancy(FERMI_GTX480, 128, 288)
        assert occ.resident_blocks == 8
        assert occ.resident_warps == 32

    def test_threads_limit(self):
        occ = occupancy(FERMI_GTX480, 512, 0)
        assert occ.resident_blocks == 3  # 1536 // 512

    def test_oversized_block_unlaunchable(self):
        occ = occupancy(FERMI_GTX480, 128, 20_000)
        assert not occ.launchable

    def test_paper_claim_hi_thread_counts_squeeze_v1_buffers(self):
        # §V: "256 to 512 threads ... limits us to put the whole
        # buffers into the shared memory".  V1's per-block footprint
        # (chunk + threads·48) exactly exhausts the 16 KB SM at 256
        # threads and stops fitting at 512.
        at_256 = occupancy(FERMI_GTX480, 256, 4096 + 256 * 48)
        assert at_256.resident_blocks == 1
        assert not occupancy(FERMI_GTX480, 512, 4096 + 512 * 48).launchable


class TestLatencyHiding:
    def test_more_warps_hide_more(self):
        lo = occupancy(FERMI_GTX480, 128, 10240)   # 4 warps
        hi = occupancy(FERMI_GTX480, 128, 288)     # 32 warps
        assert (latency_hiding_factor(FERMI_GTX480, hi)
                < latency_hiding_factor(FERMI_GTX480, lo))

    def test_bounds(self):
        for shared in (288, 2048, 10240):
            occ = occupancy(FERMI_GTX480, 128, shared)
            f = latency_hiding_factor(FERMI_GTX480, occ)
            assert 0.05 <= f <= 1.0


class TestWarpLockstep:
    def test_max_over_lanes(self):
        lanes = np.zeros(64)
        lanes[5] = 100.0
        lanes[40] = 7.0
        assert warp_lockstep_cycles(lanes, 32) == 107.0

    def test_uniform_lanes(self):
        assert warp_lockstep_cycles(np.full(32, 3.0), 32) == 3.0

    def test_padding(self):
        assert warp_lockstep_cycles(np.array([5.0]), 32) == 5.0

    def test_empty(self):
        assert warp_lockstep_cycles(np.array([]), 32) == 0.0


class TestLaunchKernel:
    def _launch(self, blocks, shared=288):
        return KernelLaunch(name="k", threads_per_block=128,
                            shared_mem_per_block=shared, blocks=blocks)

    def test_single_block(self):
        t = launch_kernel(FERMI_GTX480, self._launch(
            [BlockCost(compute_cycles=1.4e6)]))
        assert t.seconds > 0
        assert t.breakdown["resident_blocks"] == 8

    def test_time_scales_with_blocks(self):
        one = launch_kernel(FERMI_GTX480, self._launch(
            [BlockCost(compute_cycles=1e6)]))
        many = launch_kernel(FERMI_GTX480, self._launch(
            [BlockCost(compute_cycles=1e6)] * 150))
        assert many.cycles > one.cycles * 5  # 10 blocks per SM

    def test_straggler_sm_dominates(self):
        # 16 blocks over 15 SMs: one SM gets two blocks.
        blocks = [BlockCost(compute_cycles=1e6)] * 16
        t = launch_kernel(FERMI_GTX480, self._launch(blocks))
        assert t.breakdown["sm_cycles"] >= 2 * (1e6 / 2)

    def test_bank_conflicts_serialize_shared(self):
        clean = launch_kernel(FERMI_GTX480, self._launch(
            [BlockCost(compute_cycles=0.0, shared_accesses=1e6,
                       bank_conflict_degree=1.0)]))
        conflicted = launch_kernel(FERMI_GTX480, self._launch(
            [BlockCost(compute_cycles=0.0, shared_accesses=1e6,
                       bank_conflict_degree=4.0)]))
        assert conflicted.cycles == pytest.approx(clean.cycles * 4, rel=0.2)

    def test_bandwidth_floor(self):
        # A kernel moving far more bytes than its cycles justify is
        # bandwidth-bound.
        t = launch_kernel(FERMI_GTX480, self._launch(
            [BlockCost(compute_cycles=1.0, global_bytes=1e9,
                       global_transactions=1e9 / 128)]))
        assert t.breakdown["bandwidth_cycles"] > 0
        assert t.cycles >= t.breakdown["bandwidth_cycles"]

    def test_unlaunchable_config_raises(self):
        with pytest.raises(ValueError):
            launch_kernel(FERMI_GTX480, self._launch(
                [BlockCost(compute_cycles=1.0)], shared=20_000))

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            launch_kernel(FERMI_GTX480, self._launch([]))

    def test_scaled_timing(self):
        t = launch_kernel(FERMI_GTX480, self._launch(
            [BlockCost(compute_cycles=1e6)]))
        assert t.scaled(2.0).seconds == pytest.approx(t.seconds * 2)


class TestTransfers:
    def test_latency_plus_bandwidth(self):
        spec = FERMI_GTX480
        t = transfer_time(spec, 1 << 20)
        assert t == pytest.approx(spec.pcie_latency_s
                                  + (1 << 20) / spec.pcie_bandwidth_bps)

    def test_zero_bytes_free(self):
        assert transfer_time(FERMI_GTX480, 0) == 0.0


class TestDeviceSpec:
    def test_gtx480_shape(self):
        assert FERMI_GTX480.total_cores == 480
        assert FERMI_GTX480.sm_count == 15
        assert FERMI_GTX480.shared_mem_per_sm == 16 * 1024

    def test_with_shared_mem(self):
        alt = FERMI_GTX480.with_shared_mem(48 * 1024)
        assert alt.shared_mem_per_sm == 48 * 1024
        assert alt.sm_count == FERMI_GTX480.sm_count

    def test_detect_devices(self):
        from repro.gpusim.spec import detect_devices

        devices = detect_devices()
        assert devices and devices[0].name == "GeForce GTX 480"

    def test_device_by_name(self):
        from repro.gpusim.spec import device_by_name

        assert device_by_name("Tesla C2050").sm_count == 14
        with pytest.raises(ValueError):
            device_by_name("RTX 9090")
