"""Property tests on the GPU simulator's monotonicity and bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.kernel import BlockCost, KernelLaunch, launch_kernel, warp_lockstep_cycles
from repro.gpusim.memory import bank_conflict_degree, coalesced_transactions
from repro.gpusim.scheduler import latency_hiding_factor, occupancy
from repro.gpusim.spec import FERMI_GTX480


class TestOccupancyProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(1, 1024), st.integers(0, 16384))
    def test_resident_warps_bounded(self, threads, shared):
        occ = occupancy(FERMI_GTX480, threads, shared)
        assert 0 <= occ.resident_warps <= FERMI_GTX480.max_warps_per_sm + 7

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 1024), st.integers(0, 8192), st.integers(1, 8192))
    def test_more_shared_never_more_blocks(self, threads, shared, extra):
        a = occupancy(FERMI_GTX480, threads, shared)
        b = occupancy(FERMI_GTX480, threads, shared + extra)
        assert b.resident_blocks <= a.resident_blocks

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 16384))
    def test_hiding_factor_in_range(self, shared):
        occ = occupancy(FERMI_GTX480, 128, shared)
        if occ.launchable:
            assert 0.05 <= latency_hiding_factor(FERMI_GTX480, occ) <= 1.0


class TestMemoryProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=32))
    def test_transactions_bounded_by_lanes(self, addrs):
        txn = coalesced_transactions(np.array(addrs))
        assert 1 <= txn <= len(addrs)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=32))
    def test_conflict_degree_bounded(self, addrs):
        deg = bank_conflict_degree(np.array(addrs))
        assert 1 <= deg <= len(addrs)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=32))
    def test_duplicating_addresses_never_increases_degree(self, addrs):
        base = bank_conflict_degree(np.array(addrs))
        doubled = bank_conflict_degree(np.array(addrs + addrs))
        assert doubled == base  # same distinct words


class TestKernelProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(0.0, 1e6, allow_nan=False),
                    min_size=1, max_size=128))
    def test_lockstep_between_max_and_sum(self, lanes):
        arr = np.array(lanes)
        cost = warp_lockstep_cycles(arr, 32)
        assert cost >= arr.max() - 1e-6
        assert cost <= arr.sum() + 1e-6

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(1.0, 1e7, allow_nan=False),
                    min_size=1, max_size=40))
    def test_kernel_time_monotone_in_block_work(self, works):
        def t(scale):
            blocks = [BlockCost(compute_cycles=w * scale) for w in works]
            return launch_kernel(FERMI_GTX480, KernelLaunch(
                name="k", threads_per_block=128, shared_mem_per_block=0,
                blocks=blocks)).cycles

        assert t(2.0) >= t(1.0) - 1e-6
