"""Coalescing and bank-conflict analysis (§III.D's two memory effects)."""

import numpy as np
import pytest

from repro.gpusim.memory import (
    bank_conflict_degree,
    coalesced_transactions,
    expected_random_conflict_degree,
    strided_transactions,
)


class TestCoalescing:
    def test_contiguous_warp_is_one_transaction(self):
        # "Coalesced accesses that fit into a block can be done by just
        # one memory transaction" (§III.D).
        addrs = np.arange(128)
        assert coalesced_transactions(addrs) == 1

    def test_contiguous_but_misaligned_is_two(self):
        assert coalesced_transactions(np.arange(64, 192)) == 2

    def test_full_scatter_is_one_per_lane(self):
        addrs = np.arange(32) * 4096
        assert coalesced_transactions(addrs) == 32

    def test_same_address_broadcast(self):
        assert coalesced_transactions(np.zeros(32, dtype=np.int64)) == 1

    def test_empty(self):
        assert coalesced_transactions(np.array([], dtype=np.int64)) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            coalesced_transactions(np.array([-1]))

    @pytest.mark.parametrize("stride,expect", [(1, 1), (4, 1), (8, 2),
                                               (128, 32), (4096, 32)])
    def test_strided(self, stride, expect):
        assert strided_transactions(0, stride, 32) == expect


class TestBankConflicts:
    def test_sequential_words_conflict_free(self):
        addrs = np.arange(32) * 4
        assert bank_conflict_degree(addrs) == 1

    def test_v2_stagger_is_conflict_free(self):
        # §III.B.2: "setting each thread with an offset of 4 characters
        # (32 bytes) distance" — stride 33 words is conflict-free.
        addrs = np.arange(32) * 33 * 4
        assert bank_conflict_degree(addrs) == 1

    def test_stride_32_words_fully_serializes(self):
        addrs = np.arange(32) * 32 * 4
        assert bank_conflict_degree(addrs) == 32

    def test_v1_per_thread_buffer_stride_serializes(self):
        # V1's 128-byte-per-thread layout: lane l at base + 128·l all
        # map to the same bank.
        addrs = np.arange(32) * 128
        assert bank_conflict_degree(addrs) == 32

    def test_broadcast_does_not_conflict(self):
        assert bank_conflict_degree(np.full(32, 64)) == 1

    def test_two_way(self):
        addrs = np.concatenate([np.arange(16) * 4, np.arange(16) * 4 + 128])
        assert bank_conflict_degree(addrs) == 2


class TestRandomConflictDegree:
    def test_value_near_balls_in_bins_expectation(self):
        deg = expected_random_conflict_degree()
        assert 3.0 < deg < 4.0  # E[max load], 32 balls in 32 bins

    def test_deterministic(self):
        assert (expected_random_conflict_degree()
                == expected_random_conflict_degree())
