"""The culzss command-line program (the paper's I/O version)."""

import pytest

from repro.cli import build_parser, main
from repro.datasets import generate


@pytest.fixture(scope="module")
def sample_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "input.bin"
    path.write_bytes(generate("cfiles", 60_000))
    return path


@pytest.mark.parametrize("system", ["culzss-v1", "culzss-v2", "serial",
                                    "pthread", "bzip2"])
def test_compress_decompress_every_system(system, sample_file, tmp_path,
                                          capsys):
    comp = tmp_path / "out.cz"
    restored = tmp_path / "restored.bin"
    assert main(["compress", str(sample_file), str(comp),
                 "--system", system]) == 0
    assert comp.stat().st_size > 0
    assert main(["decompress", str(comp), str(restored)]) == 0
    assert restored.read_bytes() == sample_file.read_bytes()
    out = capsys.readouterr().out
    assert "->" in out


def test_version_flag_selects_culzss(sample_file, tmp_path, capsys):
    comp = tmp_path / "v1.cz"
    assert main(["compress", str(sample_file), str(comp),
                 "--version", "1"]) == 0
    assert "culzss-v1" in capsys.readouterr().out


def test_info_reports_container(sample_file, tmp_path, capsys):
    comp = tmp_path / "x.cz"
    main(["compress", str(sample_file), str(comp)])
    assert main(["info", str(comp)]) == 0
    out = capsys.readouterr().out
    assert "cuda_v2" in out
    assert "chunks" in out


def test_decompress_rejects_garbage(tmp_path, capsys):
    bad = tmp_path / "junk.bin"
    bad.write_bytes(b"not a container at all")
    assert main(["decompress", str(bad), str(tmp_path / "o")]) == 2


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_report_subcommand_writes_markdown(tmp_path, capsys):
    # miniature end-to-end of `culzss report`: all five datasets, fit,
    # markdown emission
    import os

    out_file = tmp_path / "experiments.md"
    try:
        assert main(["report", "--size-mb", "0.125",
                     "--output", str(out_file)]) == 0
    finally:
        os.environ.pop("REPRO_BENCH_MB", None)  # the CLI sets it
    text = out_file.read_text()
    assert "Table I" in text and "⚓" in text
    assert "Highly Compr." in text
