"""The culzss command-line program (the paper's I/O version)."""

import pytest

from repro.cli import build_parser, main
from repro.datasets import generate


@pytest.fixture(scope="module")
def sample_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "input.bin"
    path.write_bytes(generate("cfiles", 60_000))
    return path


@pytest.mark.parametrize("system", ["culzss-v1", "culzss-v2", "serial",
                                    "pthread", "bzip2"])
def test_compress_decompress_every_system(system, sample_file, tmp_path,
                                          capsys):
    comp = tmp_path / "out.cz"
    restored = tmp_path / "restored.bin"
    assert main(["compress", str(sample_file), str(comp),
                 "--system", system]) == 0
    assert comp.stat().st_size > 0
    assert main(["decompress", str(comp), str(restored)]) == 0
    assert restored.read_bytes() == sample_file.read_bytes()
    out = capsys.readouterr().out
    assert "->" in out


def test_version_flag_selects_culzss(sample_file, tmp_path, capsys):
    comp = tmp_path / "v1.cz"
    assert main(["compress", str(sample_file), str(comp),
                 "--version", "1"]) == 0
    assert "culzss-v1" in capsys.readouterr().out


def test_info_reports_container(sample_file, tmp_path, capsys):
    comp = tmp_path / "x.cz"
    main(["compress", str(sample_file), str(comp)])
    assert main(["info", str(comp)]) == 0
    out = capsys.readouterr().out
    assert "cuda_v2" in out
    assert "chunks" in out


def test_decompress_rejects_garbage(tmp_path, capsys):
    bad = tmp_path / "junk.bin"
    bad.write_bytes(b"not a container at all")
    assert main(["decompress", str(bad), str(tmp_path / "o")]) == 2


def test_info_reports_container_version(sample_file, tmp_path, capsys):
    comp = tmp_path / "x.cz"
    main(["compress", str(sample_file), str(comp)])
    assert main(["info", str(comp)]) == 0
    out = capsys.readouterr().out
    assert "container version: 2" in out
    assert "per-chunk CRCs: yes" in out


def test_decompress_strict_fails_on_corruption_with_hint(sample_file,
                                                         tmp_path, capsys):
    from repro.testing import corrupt_chunks

    comp = tmp_path / "x.cz"
    main(["compress", str(sample_file), str(comp)])
    comp.write_bytes(corrupt_chunks(comp.read_bytes(), [1], seed=11))
    assert main(["decompress", str(comp), str(tmp_path / "o")]) == 2
    err = capsys.readouterr().err
    assert "chunk 1" in err
    assert "--salvage" in err


def test_decompress_salvage_recovers_partial(sample_file, tmp_path, capsys):
    from repro.testing import corrupt_chunks

    original = sample_file.read_bytes()
    comp = tmp_path / "x.cz"
    restored = tmp_path / "restored.bin"
    main(["compress", str(sample_file), str(comp)])
    comp.write_bytes(corrupt_chunks(comp.read_bytes(), [1], seed=11))
    # partial loss is exit 1 — recovered bytes written, damage reported
    assert main(["decompress", str(comp), str(restored),
                 "--salvage", "--fill-byte", "170"]) == 1
    out = capsys.readouterr().out
    assert "lost chunks [1]" in out
    data = restored.read_bytes()
    assert len(data) == len(original)
    assert data[:4096] == original[:4096]
    assert data[4096:8192] == b"\xaa" * 4096
    assert data[8192:] == original[8192:]


def test_decompress_salvage_clean_blob_is_exit_zero(sample_file, tmp_path,
                                                    capsys):
    comp = tmp_path / "x.cz"
    restored = tmp_path / "restored.bin"
    main(["compress", str(sample_file), str(comp)])
    assert main(["decompress", str(comp), str(restored), "--salvage"]) == 0
    assert restored.read_bytes() == sample_file.read_bytes()
    assert "recovered" in capsys.readouterr().out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_serve_and_send_in_help():
    parser = build_parser()
    help_text = parser.format_help()
    assert "serve" in help_text and "send" in help_text


def test_send_help_documents_gateway_knobs(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["send", "--help"])
    out = capsys.readouterr().out
    for flag in ("--port", "--workers", "--queue-depth", "--retries",
                 "--timeout", "--metrics"):
        assert flag in out


def test_send_to_dead_port_fails_cleanly(capsys):
    # nothing listens on the probe port; bounded retries then exit 2
    import socket

    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        port = s.getsockname()[1]
    rc = main(["send", "--port", str(port), "--count", "1",
               "--buffer-size", "64", "--workers", "0", "--retries", "0"])
    assert rc == 2
    assert "send failed" in capsys.readouterr().err


@pytest.mark.slow
def test_serve_send_gateway_pair(tmp_path, capsys):
    """serve in a subprocess, send in-process; the delivered stream file
    must be bit-exact and the server must dump metrics on exit."""
    import re
    import subprocess
    import sys

    out_dir = tmp_path / "delivered"
    srv = subprocess.Popen(
        [sys.executable, "-c",
         "from repro.cli import main; "
         f"main(['serve', '--max-conns', '1', "
         f"'--output-dir', {str(out_dir)!r}])"],
        stdout=subprocess.PIPE, text=True)
    try:
        port = re.search(r":(\d+)", srv.stdout.readline()).group(1)
        rc = main(["send", "--port", port, "--count", "3",
                   "--buffer-size", "4096", "--workers", "2",
                   "--stream-id", "5", "--metrics"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "egress delivered 3 frames" in out
        assert "metrics snapshot" in out
        server_out, _ = srv.communicate(timeout=60)
    finally:
        if srv.poll() is None:
            srv.kill()
            srv.communicate()
    assert srv.returncode == 0
    assert '"server.frames_delivered": 3' in server_out

    want = b"".join(generate("cfiles", 4096, seed=1000 + i)
                    for i in range(3))
    assert (out_dir / "stream-5.bin").read_bytes() == want


def test_report_subcommand_writes_markdown(tmp_path, capsys):
    # miniature end-to-end of `culzss report`: all five datasets, fit,
    # markdown emission
    import os

    out_file = tmp_path / "experiments.md"
    try:
        assert main(["report", "--size-mb", "0.125",
                     "--output", str(out_file)]) == 0
    finally:
        os.environ.pop("REPRO_BENCH_MB", None)  # the CLI sets it
    text = out_file.read_text()
    assert "Table I" in text and "⚓" in text
    assert "Highly Compr." in text


# --------------------------------------------------- stats and trace

def test_stats_formats(sample_file, capsys):
    from repro import obs

    obs.reset()
    assert main(["stats", str(sample_file), "--format", "pretty"]) == 0
    out = capsys.readouterr().out
    assert "matcher.lag_calls" in out and "encode.match_seconds" in out

    assert main(["stats", str(sample_file), "--format", "prom"]) == 0
    out = capsys.readouterr().out
    assert "culzss_matcher_lag_calls" in out
    assert "culzss_encode_match_seconds_count" in out

    import json

    assert main(["stats", str(sample_file), "--format", "json"]) == 0
    snap = json.loads(capsys.readouterr().out)
    assert snap["counters"]["container.crc_checks"] > 0
    obs.reset()


def test_stats_generates_dataset_when_no_input(capsys):
    from repro import obs

    obs.reset()
    assert main(["stats", "--format", "json", "--size", "65536",
                 "--dataset", "demap"]) == 0
    import json

    snap = json.loads(capsys.readouterr().out)
    assert snap["counters"]["container.crc_checks"] > 0
    obs.reset()


def test_stats_refuses_when_disabled(sample_file, capsys):
    from repro import obs

    obs.disable()
    try:
        assert main(["stats", str(sample_file)]) == 2
    finally:
        obs.enable()
    assert "REPRO_OBS" in capsys.readouterr().err


@pytest.mark.slow
def test_trace_writes_nested_chrome_trace(tmp_path, capsys):
    """The acceptance trace: >= 3 layers — gateway frame over engine
    shard over encoder stage — correctly parented in one trace id."""
    import json

    from repro import obs

    big = tmp_path / "big.bin"
    big.write_bytes(generate("cfiles", 640_000, seed=3))
    out_file = tmp_path / "trace.json"
    obs.reset()
    try:
        assert main(["trace", str(big), "--output", str(out_file),
                     "--workers", "2"]) == 0
    finally:
        obs.reset()
    stdout = capsys.readouterr().out
    assert "spans over trace" in stdout

    events = json.loads(out_file.read_text())["traceEvents"]
    assert len({e["args"]["trace_id"] for e in events}) == 1
    by_id = {e["args"]["span_id"]: e for e in events}

    def ancestry(e):
        names = []
        while e is not None:
            names.append(e["name"])
            e = by_id.get(e["args"]["parent_id"])
        return names

    chains = [ancestry(e) for e in events if e["name"] == "encode.match"]
    assert chains
    for chain in chains:
        assert "engine.shard" in chain and "gateway.frame" in chain
        assert len(chain) >= 4


def test_trace_small_file_notes_serial_path(sample_file, tmp_path, capsys):
    from repro import obs

    out_file = tmp_path / "small.trace.json"
    obs.reset()
    try:
        assert main(["trace", str(sample_file), "--output", str(out_file),
                     "--no-decode"]) == 0
    finally:
        obs.reset()
    captured = capsys.readouterr()
    assert "parallel threshold" in captured.err
    assert out_file.exists()


def test_serve_help_documents_metrics_port(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["serve", "--help"])
    assert "--metrics-port" in capsys.readouterr().out


# ------------------------------------------------------ codec dispatch

def test_compress_codec_auto_round_trips(sample_file, tmp_path, capsys):
    comp = tmp_path / "auto.cz"
    restored = tmp_path / "restored.bin"
    assert main(["compress", str(sample_file), str(comp),
                 "--codec", "auto"]) == 0
    out = capsys.readouterr().out
    assert "culzss-v2[auto]:" in out
    from repro.container import unpack_container

    info = unpack_container(comp.read_bytes())
    assert info.version == 3
    assert info.chunk_codecs is not None
    assert main(["decompress", str(comp), str(restored)]) == 0
    assert restored.read_bytes() == sample_file.read_bytes()


@pytest.mark.parametrize("codec", ["store", "lz4s", "lzss-huffman"])
def test_compress_every_codec_round_trips(codec, sample_file, tmp_path):
    comp = tmp_path / "c.cz"
    restored = tmp_path / "r.bin"
    assert main(["compress", str(sample_file), str(comp),
                 "--codec", codec]) == 0
    assert main(["decompress", str(comp), str(restored)]) == 0
    assert restored.read_bytes() == sample_file.read_bytes()


def test_compress_default_codec_still_writes_v2(sample_file, tmp_path):
    comp = tmp_path / "classic.cz"
    assert main(["compress", str(sample_file), str(comp)]) == 0
    from repro.container import unpack_container

    info = unpack_container(comp.read_bytes())
    assert info.version == 2
    assert info.chunk_codecs is None


def test_compress_codec_rejected_for_other_systems(sample_file, tmp_path,
                                                   capsys):
    rc = main(["compress", str(sample_file), str(tmp_path / "x"),
               "--system", "bzip2", "--codec", "auto"])
    assert rc == 2
    assert "--codec" in capsys.readouterr().err


def test_compress_probe_threshold_validated(sample_file, tmp_path, capsys):
    rc = main(["compress", str(sample_file), str(tmp_path / "x"),
               "--codec", "auto", "--probe-threshold", "9.5"])
    assert rc == 2
    assert "probe threshold" in capsys.readouterr().err


def test_info_lists_per_chunk_codecs(sample_file, tmp_path, capsys):
    comp = tmp_path / "auto.cz"
    main(["compress", str(sample_file), str(comp), "--codec", "auto"])
    capsys.readouterr()
    assert main(["info", str(comp)]) == 0
    out = capsys.readouterr().out
    assert "container version: 3" in out
    assert "per-chunk codecs:" in out
    assert "chunk 0: codec" in out
    assert "ratio" in out


@pytest.mark.slow
def test_benchgate_suite_codecs_uses_committed_baseline(capsys):
    # The committed BENCH_codecs.json is the default baseline; the gate
    # must find it and compare every codec.<name>.<op> case.
    rc = main(["benchgate", "--suite", "codecs", "--quick"])
    out = capsys.readouterr().out
    assert "codec.auto.encode" in out
    assert "codec.lz4s.decode" in out
    assert rc in (0, 1)  # a noisy host may regress; it must still compare


def test_compress_profile_writes_speedscope_and_collapsed(sample_file,
                                                          tmp_path, capsys):
    import json
    import os

    comp = tmp_path / "out.cz"
    prof_path = tmp_path / "compress.speedscope.json"
    assert main(["compress", str(sample_file), str(comp),
                 "--profile", str(prof_path), "--profile-hz", "500"]) == 0
    out = capsys.readouterr().out
    assert "profile:" in out and "process(es)" in out
    doc = json.loads(prof_path.read_text())
    assert doc["$schema"].endswith("file-format-schema.json")
    assert doc["profiles"] and doc["profiles"][0]["samples"]
    assert prof_path.with_suffix(".collapsed").exists()
    # the profiler and its env contract were torn down on exit
    from repro.obs import prof

    assert not prof.running()
    assert prof.ENV_HZ not in os.environ


def test_stats_pretty_includes_ledger(sample_file, capsys):
    from repro import obs

    obs.reset()
    assert main(["stats", str(sample_file), "--format", "pretty"]) == 0
    out = capsys.readouterr().out
    assert "per-stage throughput ledger:" in out
    ledger_block = out.split("per-stage throughput ledger:")[1]
    assert "encode.match" in ledger_block
    assert "MB/s" in ledger_block
    obs.reset()


def test_benchgate_attribute_and_profile_flags_in_help(capsys):
    with pytest.raises(SystemExit):
        main(["benchgate", "--help"])
    out = capsys.readouterr().out
    assert "--attribute" in out and "--profile" in out
