"""Timing models: measurement, estimation, scaling, monotonicity."""

import numpy as np
import pytest

from repro.bzip2.pipeline import compress as bz_compress
from repro.lzss.encoder import encode
from repro.lzss.formats import SERIAL
from repro.model.bzip2 import LCP_CAP, Bzip2Model, sort_compares
from repro.model.calibration import CPU_CLOCK_HZ, default_calibration
from repro.model.cpu import (
    EXTENSION_COMPARE_WEIGHT,
    MatchSampleStats,
    PthreadModel,
    SerialCpuModel,
    effective_candidate_cost,
    estimate_serial_compares,
    expected_scan_length,
    sample_match_statistics,
)
from repro.model.gpu import scale_to_paper


@pytest.fixture(scope="module")
def cal():
    return default_calibration()


class TestSampleStatistics:
    def test_kappa_bounds(self, text_data, binary_data, runny_data):
        for data in (text_data, binary_data, runny_data):
            s = sample_match_statistics(data)
            assert 1.0 <= s.kappa <= 18.0
            assert 0.0 <= s.p_cap <= 1.0

    def test_random_data_kappa_near_one(self, binary_data):
        s = sample_match_statistics(binary_data)
        assert s.kappa < 1.1
        assert s.p_cap < 1e-3

    def test_runny_data_kappa_higher(self, runny_data, binary_data):
        assert (sample_match_statistics(runny_data).kappa
                > sample_match_statistics(binary_data).kappa)

    def test_deterministic(self, text_data):
        a = sample_match_statistics(text_data)
        b = sample_match_statistics(text_data)
        assert a == b

    def test_tiny_input_degenerates(self):
        s = sample_match_statistics(b"ab")
        assert s.kappa == 1.0


class TestScanMath:
    def test_expected_scan_limits(self):
        # p→0: scan the whole window; p large: scan ~1/p
        assert expected_scan_length(4096.0, 1e-9) == pytest.approx(4096, rel=1e-3)
        assert expected_scan_length(4096.0, 0.5) == pytest.approx(2.0, rel=0.01)

    def test_effective_candidate_cost(self):
        assert effective_candidate_cost(1.0) == 1.0
        assert effective_candidate_cost(5.0) == 1.0 + 4 * EXTENSION_COMPARE_WEIGHT


class TestSerialModel:
    def test_compares_require_detail(self, text_data):
        stats = encode(text_data, SERIAL).stats  # no detail
        sample = sample_match_statistics(text_data)
        with pytest.raises(ValueError):
            estimate_serial_compares(stats, sample)

    def test_compares_grow_with_window(self, text_data):
        stats = encode(text_data, SERIAL, collect_detail=True).stats
        sample = sample_match_statistics(text_data)
        small = estimate_serial_compares(stats, sample, window=256)
        large = estimate_serial_compares(stats, sample, window=4096)
        assert large > small

    def test_seconds_positive_and_linear_in_cycles(self, text_data, cal):
        stats = encode(text_data, SERIAL, collect_detail=True).stats
        sample = sample_match_statistics(text_data)
        model = SerialCpuModel(cal)
        t = model.compress_seconds(stats, sample)
        assert t > 0
        compares = estimate_serial_compares(stats, sample)
        assert t == pytest.approx(compares * cal.cpu_cycles_per_compare
                                  / CPU_CLOCK_HZ)

    def test_decompress_seconds(self, cal):
        t = SerialCpuModel(cal).decompress_seconds(10 ** 6, 10 ** 5)
        assert t > 0


class TestPthreadModel:
    def test_speedup_near_effective_parallelism(self, cal):
        t = PthreadModel(cal).compress_seconds(10.0, 0)
        assert t == pytest.approx(10.0 / cal.pthread_effective_parallelism)

    def test_merge_term_additive(self, cal):
        base = PthreadModel(cal).compress_seconds(10.0, 0)
        with_merge = PthreadModel(cal).compress_seconds(10.0, 10 ** 9)
        assert with_merge > base


class TestBzip2Model:
    def test_sort_compares_monotone_in_lcp(self):
        assert sort_compares(1000, 50.0) > sort_compares(1000, 2.0)

    def test_lcp_capped(self):
        assert sort_compares(1000, LCP_CAP) == sort_compares(1000, LCP_CAP * 10)

    def test_periodic_data_costs_more(self, cal, binary_data):
        # the Table I blow-up: long-LCP data pays the sort-depth budget
        model = Bzip2Model(cal)
        random_ = bz_compress(binary_data)
        periodic = bz_compress(b"abcdefghijklmnopqrst" * 900)
        t_rand = model.compress_seconds(random_) / random_.original_size
        t_per = model.compress_seconds(periodic) / periodic.original_size
        assert t_per > t_rand * 3


class TestScaling:
    def test_scale_to_paper(self):
        assert scale_to_paper(1.0, 1 << 20) == pytest.approx(128.0)

    def test_zero_bytes_rejected(self):
        with pytest.raises(ValueError):
            scale_to_paper(1.0, 0)
