"""Unit tests of the anchor-fitting machinery."""

import pytest

from repro.model.fitting import _affine_solve


class TestAffineSolve:
    def test_exact_affine(self):
        x = _affine_solve(lambda v: 3 * v + 1, target=10.0, x1=0.0, x2=1.0,
                          floor=0.0)
        assert x == pytest.approx(3.0)

    def test_floor_clamps(self):
        x = _affine_solve(lambda v: v, target=-5.0, x1=0.0, x2=1.0, floor=0.1)
        assert x == 0.1

    def test_piecewise_branch_switch(self):
        # f has a max() kink at x=2 — a single secant step from (0, 10)
        # lands on the wrong branch; the refinement must converge.
        f = lambda v: max(4.0, 2 * v)
        x = _affine_solve(f, target=8.0, x1=0.0, x2=10.0, floor=0.0)
        assert f(x) == pytest.approx(8.0, rel=1e-3)

    def test_insensitive_function_rejected(self):
        with pytest.raises(ValueError):
            _affine_solve(lambda v: 7.0, target=3.0, x1=0.0, x2=1.0, floor=0.0)
