"""Typed error taxonomy for the whole reproduction.

Every failure the system can diagnose raises a :class:`ReproError`
subclass instead of a bare ``ValueError``/``struct.error``, so callers
can tell *what* went wrong (and often *where*) without parsing
messages:

- :class:`CorruptHeaderError` — a container or frame header failed its
  self-check; nothing after it can be trusted, so there is nothing to
  salvage.
- :class:`TruncatedContainerError` — the blob ends before the format
  says it should; carries the expected and actual byte counts.
- :class:`CorruptChunkError` — one chunk of a chunked container failed
  its CRC or produced an impossible token stream; carries the chunk
  index (and payload offset / token position when known), which is what
  makes per-chunk salvage possible.
- :class:`CorruptPayloadError` — a whole-payload checksum mismatch on
  a container without per-chunk CRCs (v1): corruption is certain but
  cannot be localized.
- :class:`WorkerCrashError` — a pool worker died mid-job; the work
  item is intact and can be re-run serially.
- :class:`FrameError` — a malformed, corrupted, or truncated gateway
  protocol frame (re-parented here from ``repro.service.protocol``).

:class:`ReproError` deliberately subclasses :class:`ValueError`: the
pre-taxonomy API raised ``ValueError`` everywhere, so existing
``except ValueError`` call sites keep working unchanged.
"""

from __future__ import annotations

__all__ = [
    "ContainerError",
    "CorruptChunkError",
    "CorruptHeaderError",
    "CorruptPayloadError",
    "FrameError",
    "ReproError",
    "TruncatedContainerError",
    "WorkerCrashError",
]


class ReproError(ValueError):
    """Root of the taxonomy (a ``ValueError`` for backwards compat)."""


class ContainerError(ReproError):
    """Any defect detected while parsing or decoding a container."""


class CorruptHeaderError(ContainerError):
    """The fixed header failed validation (magic, version, CRC, or
    internally inconsistent fields); the blob cannot be salvaged."""


class TruncatedContainerError(ContainerError):
    """The blob is shorter than its format declares.

    ``expected``/``actual`` are byte counts when known (``None``
    otherwise); the message always spells them out.
    """

    def __init__(self, message: str, *, expected: int | None = None,
                 actual: int | None = None) -> None:
        if expected is not None and actual is not None:
            message = f"{message} (expected >= {expected} bytes, got {actual})"
        super().__init__(message)
        self.expected = expected
        self.actual = actual


class CorruptChunkError(ContainerError):
    """One chunk of a chunked container is bad.

    ``chunk_index`` names the chunk; ``offset`` is the chunk's byte
    offset within the compressed payload and ``token_position`` the
    failing token index within the chunk's stream, when known.
    """

    def __init__(self, message: str, *, chunk_index: int,
                 offset: int | None = None,
                 token_position: int | None = None) -> None:
        super().__init__(f"chunk {chunk_index}: {message}")
        self.chunk_index = chunk_index
        self.offset = offset
        self.token_position = token_position


class CorruptPayloadError(ContainerError):
    """Whole-payload checksum mismatch (no per-chunk CRCs to localize)."""


class WorkerCrashError(ReproError):
    """A pool worker died (or was killed) while holding a job."""


class FrameError(ReproError):
    """A malformed, corrupted, or truncated gateway protocol frame."""
