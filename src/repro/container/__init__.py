"""Compressed-stream container: header + chunk-size table + payload.

The paper's decompressor needs "a list of block compression sizes that
are recorded during compression" (§III.C) to decode chunks in parallel;
this package defines the byte format that carries it, plus integrity
checksums.  Used identically by the in-memory API and the file I/O
program.  Version 2 adds a CRC-32 per chunk so corruption condemns one
chunk, not the archive — see :mod:`repro.container.format` and
``docs/robustness.md``.
"""

from repro.container.format import (
    CONTAINER_MAGIC,
    CONTAINER_VERSION_V1,
    CONTAINER_VERSION_V2,
    CONTAINER_VERSION_V3,
    ContainerInfo,
    HEADER_SIZE,
    pack_container,
    unpack_container,
    verify_chunks,
)

__all__ = [
    "CONTAINER_MAGIC",
    "CONTAINER_VERSION_V1",
    "CONTAINER_VERSION_V2",
    "CONTAINER_VERSION_V3",
    "ContainerInfo",
    "HEADER_SIZE",
    "pack_container",
    "unpack_container",
    "verify_chunks",
]
