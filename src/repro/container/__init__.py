"""Compressed-stream container: header + chunk-size table + payload.

The paper's decompressor needs "a list of block compression sizes that
are recorded during compression" (§III.C) to decode chunks in parallel;
this package defines the byte format that carries it, plus integrity
checksums.  Used identically by the in-memory API and the file I/O
program.
"""

from repro.container.format import (
    CONTAINER_MAGIC,
    ContainerInfo,
    HEADER_SIZE,
    pack_container,
    unpack_container,
)

__all__ = [
    "CONTAINER_MAGIC",
    "ContainerInfo",
    "HEADER_SIZE",
    "pack_container",
    "unpack_container",
]
