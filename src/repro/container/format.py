"""Binary layout of the CULZSS container.

All integers little-endian::

    offset  size  field
    0       4     magic  b"CLZS"
    4       1     container version (1)
    5       1     token-format id (TokenFormat.to_id)
    6       1     flags (bit 0: chunked)
    7       1     reserved (0)
    8       8     original (uncompressed) size
    16      4     uncompressed chunk size (0 when unchunked)
    20      4     number of chunks
    24      4     CRC-32 of the payload
    28      4     CRC-32 of bytes [0, 28) — header self-check
    32      4*n   per-chunk compressed sizes (chunked only)
    …             payload

The chunk table *is* the paper's "list of block compression sizes";
§III.C observes it is tiny next to the payload and that is easy to
confirm here: 4 bytes per 4 KiB chunk ≈ 0.1 %.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.lzss.encoder import EncodeResult
from repro.lzss.formats import TokenFormat
from repro.util.checksum import crc32
from repro.util.validation import require

__all__ = [
    "CONTAINER_MAGIC",
    "ContainerInfo",
    "HEADER_SIZE",
    "pack_container",
    "unpack_container",
]

CONTAINER_MAGIC = b"CLZS"
CONTAINER_VERSION = 1
HEADER_SIZE = 32
_HEADER_FMT = "<4sBBBBQIIII"
_FLAG_CHUNKED = 1


@dataclass
class ContainerInfo:
    """Decoded container header plus a zero-copy view of the payload."""

    format: TokenFormat
    original_size: int
    chunk_size: int | None
    chunk_sizes: np.ndarray | None
    payload: bytes

    @property
    def is_chunked(self) -> bool:
        return self.chunk_sizes is not None

    @property
    def container_overhead(self) -> int:
        """Header + chunk-table bytes (everything that is not payload)."""
        table = 4 * self.chunk_sizes.size if self.chunk_sizes is not None else 0
        return HEADER_SIZE + table


def pack_container(result: EncodeResult) -> bytes:
    """Serialize an :class:`EncodeResult` into a self-describing blob."""
    chunked = result.chunk_sizes is not None
    n_chunks = int(result.chunk_sizes.size) if chunked else 0
    chunk_size = int(result.chunk_size) if chunked else 0
    flags = _FLAG_CHUNKED if chunked else 0
    payload_crc = crc32(result.payload)

    head = struct.pack("<4sBBBBQIII", CONTAINER_MAGIC, CONTAINER_VERSION,
                       result.format.to_id(), flags, 0,
                       result.input_size, chunk_size, n_chunks, payload_crc)
    head += struct.pack("<I", crc32(head))
    parts = [head]
    if chunked:
        table = np.asarray(result.chunk_sizes, dtype="<u4")
        require(bool((np.asarray(result.chunk_sizes) == table).all()),
                "chunk sizes exceed 32-bit table entries")
        parts.append(table.tobytes())
    parts.append(result.payload)
    return b"".join(parts)


def unpack_container(blob: bytes) -> ContainerInfo:
    """Parse and integrity-check a container blob."""
    require(len(blob) >= HEADER_SIZE, "container truncated before header")
    (magic, version, fmt_id, flags, _reserved, original_size, chunk_size,
     n_chunks, payload_crc, header_crc) = struct.unpack_from(_HEADER_FMT, blob)
    require(magic == CONTAINER_MAGIC, "bad container magic")
    require(version == CONTAINER_VERSION,
            f"unsupported container version {version}")
    require(crc32(blob[:HEADER_SIZE - 4]) == header_crc,
            "container header checksum mismatch")
    fmt = TokenFormat.from_id(fmt_id)

    offset = HEADER_SIZE
    chunk_sizes: np.ndarray | None = None
    if flags & _FLAG_CHUNKED:
        table_bytes = 4 * n_chunks
        require(len(blob) >= offset + table_bytes,
                "container truncated inside chunk table")
        chunk_sizes = np.frombuffer(
            blob, dtype="<u4", count=n_chunks, offset=offset).astype(np.int64)
        offset += table_bytes
        expected = ((original_size + chunk_size - 1) // chunk_size
                    if original_size else 0)
        require(n_chunks == expected, "chunk count inconsistent with sizes")
    else:
        require(n_chunks == 0 and chunk_size == 0,
                "unchunked container carries chunk fields")

    payload = blob[offset:]
    if chunk_sizes is not None:
        require(int(chunk_sizes.sum()) == len(payload),
                "chunk table does not cover payload")
    require(crc32(payload) == payload_crc, "payload checksum mismatch")
    return ContainerInfo(format=fmt, original_size=original_size,
                         chunk_size=chunk_size if chunk_sizes is not None else None,
                         chunk_sizes=chunk_sizes, payload=payload)
