"""Binary layout of the CULZSS container.

All integers little-endian::

    offset  size  field
    0       4     magic  b"CLZS"
    4       1     container version (1, 2 or 3)
    5       1     token-format id (TokenFormat.to_id)
    6       1     flags (bit 0: chunked)
    7       1     reserved (0)
    8       8     original (uncompressed) size
    16      4     uncompressed chunk size (0 when unchunked)
    20      4     number of chunks
    24      4     CRC-32 of the payload
    28      4     CRC-32 of bytes [0, 28) — header self-check
    32      4*n   per-chunk compressed sizes (chunked only)
    …       4*n   per-chunk CRC-32s (version 2+, chunked only)
    …       1*n   per-chunk codec ids (version 3, chunked only)
    …             payload

The chunk table *is* the paper's "list of block compression sizes";
§III.C observes it is tiny next to the payload and that is easy to
confirm here: 4 bytes per 4 KiB chunk ≈ 0.1 %.

Version 2 appends a CRC-32 per chunk right after the size table
(8 bytes per 4 KiB chunk ≈ 0.2 % total), which buys per-chunk
integrity: a flipped bit condemns one 4 KiB chunk instead of the whole
archive, and salvage decode (:func:`repro.lzss.decoder.
salvage_decode_chunked`) recovers every other chunk byte-identically.

Version 3 appends one codec id per chunk after the CRC table
(:mod:`repro.codecs` wire ids), which is what lets the content-aware
dispatcher mix ``store``/``lzss``/``lz4s``/``lzss-huffman`` within one
archive.  Strict readers reject unknown ids; salvage decode treats
them as per-chunk loss.  v1 and v2 blobs remain fully readable;
writing older layouts is version-gated via
``pack_container(..., version=...)``, and the default write version
stays 2 unless the encode result actually carries a codec column.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import (
    CorruptChunkError,
    CorruptHeaderError,
    CorruptPayloadError,
    TruncatedContainerError,
)
from repro.lzss.encoder import EncodeResult
from repro.lzss.formats import TokenFormat
from repro.util.checksum import crc32
from repro.util.validation import require

__all__ = [
    "CONTAINER_MAGIC",
    "CONTAINER_VERSION_V1",
    "CONTAINER_VERSION_V2",
    "CONTAINER_VERSION_V3",
    "ContainerInfo",
    "HEADER_SIZE",
    "pack_container",
    "unpack_container",
    "verify_chunks",
]

CONTAINER_MAGIC = b"CLZS"
CONTAINER_VERSION_V1 = 1
CONTAINER_VERSION_V2 = 2
CONTAINER_VERSION_V3 = 3
#: Default *write* version for single-codec results.  Readers accept
#: all versions; results carrying a codec column write v3.
CONTAINER_VERSION = CONTAINER_VERSION_V2
HEADER_SIZE = 32
_HEADER_FMT = "<4sBBBBQIIII"
_FLAG_CHUNKED = 1


@dataclass
class ContainerInfo:
    """Decoded container header plus a zero-copy view of the payload."""

    format: TokenFormat
    original_size: int
    chunk_size: int | None
    chunk_sizes: np.ndarray | None
    payload: bytes
    chunk_crcs: np.ndarray | None = None
    version: int = CONTAINER_VERSION_V1
    chunk_codecs: np.ndarray | None = None

    @property
    def is_chunked(self) -> bool:
        return self.chunk_sizes is not None

    @property
    def container_overhead(self) -> int:
        """Header + chunk-table bytes (everything that is not payload)."""
        if self.chunk_sizes is None:
            return HEADER_SIZE
        per_chunk = 8 if self.chunk_crcs is not None else 4
        if self.chunk_codecs is not None:
            per_chunk += 1
        return HEADER_SIZE + per_chunk * self.chunk_sizes.size

    @property
    def payload_offset(self) -> int:
        """Byte offset of the payload within the original blob."""
        return self.container_overhead

    def chunk_ranges(self) -> np.ndarray:
        """Per-chunk ``[lo, hi)`` byte ranges within the payload.

        Shape ``(n_chunks, 2)``; add :attr:`payload_offset` for
        blob-absolute ranges (what the fault injectors target).
        """
        require(self.chunk_sizes is not None, "container is not chunked")
        ends = np.cumsum(self.chunk_sizes)
        return np.stack([ends - self.chunk_sizes, ends], axis=1)


def _chunk_crc_table(payload: bytes, chunk_sizes: np.ndarray) -> np.ndarray:
    """CRC-32 of each chunk's compressed byte slice, as ``<u4``."""
    ends = np.cumsum(np.asarray(chunk_sizes, dtype=np.int64))
    crcs = np.empty(ends.size, dtype="<u4")
    lo = 0
    for c, hi in enumerate(ends):
        crcs[c] = crc32(payload[lo:int(hi)])
        lo = int(hi)
    return crcs


def pack_container(result: EncodeResult, *,
                   version: int | None = None) -> bytes:
    """Serialize an :class:`EncodeResult` into a self-describing blob.

    ``version`` gates the wire format: 3 adds the per-chunk codec-id
    column, 2 the per-chunk CRC table, 1 reproduces the legacy layout
    byte-for-byte.  When omitted, single-codec results write version 2
    (the historical default bytes, golden-tested) and results carrying
    a ``chunk_codecs`` column write version 3.
    """
    with obs.stage("container.pack", bytes=len(result.payload)):
        return _pack_container(result, version=version)


def _pack_container(result: EncodeResult, *,
                    version: int | None = None) -> bytes:
    codecs_col = getattr(result, "chunk_codecs", None)
    if version is None:
        version = (CONTAINER_VERSION_V3 if codecs_col is not None
                   else CONTAINER_VERSION)
    require(version in (CONTAINER_VERSION_V1, CONTAINER_VERSION_V2,
                        CONTAINER_VERSION_V3),
            f"unsupported container version {version}")
    chunked = result.chunk_sizes is not None
    n_chunks = int(result.chunk_sizes.size) if chunked else 0
    chunk_size = int(result.chunk_size) if chunked else 0
    flags = _FLAG_CHUNKED if chunked else 0
    payload_crc = crc32(result.payload)
    if version >= CONTAINER_VERSION_V3:
        require(chunked, "container v3 requires a chunked result")
        if codecs_col is None:
            # Version-gated upgrade of a plain lzss result: synthesize
            # the uniform column.
            from repro.codecs import LZSS_CODEC_ID
            codecs_col = np.full(n_chunks, LZSS_CODEC_ID, dtype=np.uint8)
        codecs_col = np.asarray(codecs_col, dtype=np.uint8)
        require(codecs_col.size == n_chunks,
                "codec column does not cover the chunks")
    else:
        require(codecs_col is None,
                f"result carries a codec column; container v{version} "
                "cannot record it (write v3)")

    head = struct.pack("<4sBBBBQIII", CONTAINER_MAGIC, version,
                       result.format.to_id(), flags, 0,
                       result.input_size, chunk_size, n_chunks, payload_crc)
    head += struct.pack("<I", crc32(head))
    parts = [head]
    if chunked:
        table = np.asarray(result.chunk_sizes, dtype="<u4")
        require(bool((np.asarray(result.chunk_sizes) == table).all()),
                "chunk sizes exceed 32-bit table entries")
        parts.append(table.tobytes())
        if version >= CONTAINER_VERSION_V2:
            parts.append(_chunk_crc_table(result.payload,
                                          result.chunk_sizes).tobytes())
        if version >= CONTAINER_VERSION_V3:
            parts.append(codecs_col.tobytes())
    parts.append(result.payload)
    return b"".join(parts)


def verify_chunks(info: ContainerInfo) -> np.ndarray:
    """Boolean mask of chunks whose payload slice passes its CRC.

    A chunk is good iff its byte range lies fully inside the (possibly
    truncated) payload *and* its CRC-32 matches the table.  Containers
    without per-chunk CRCs (v1) cannot be checked; every fully-present
    chunk reads as good there, and corruption only surfaces at decode.
    """
    require(info.chunk_sizes is not None, "container is not chunked")
    ranges = info.chunk_ranges()
    ok = ranges[:, 1] <= len(info.payload)
    if info.chunk_crcs is None:
        return ok
    checks = failures = 0
    for c in np.nonzero(ok)[0]:
        lo, hi = int(ranges[c, 0]), int(ranges[c, 1])
        checks += 1
        if crc32(info.payload[lo:hi]) != int(info.chunk_crcs[c]):
            ok[c] = False
            failures += 1
    if checks:
        obs.inc("container.crc_checks", checks)
    if failures:
        obs.inc("container.crc_failures", failures)
    return ok


def unpack_container(blob: bytes, *, strict: bool = True) -> ContainerInfo:
    """Parse and integrity-check a container blob.

    With ``strict`` (default) every checksum must pass: a bad chunk
    raises :class:`~repro.errors.CorruptChunkError` naming the first
    failing chunk (v2), a whole-payload mismatch raises
    :class:`~repro.errors.CorruptPayloadError` (v1/unchunked), and a
    short blob raises :class:`~repro.errors.TruncatedContainerError`.
    ``strict=False`` validates only the header and chunk table framing —
    the salvage path, which tolerates corrupt or truncated payloads and
    lets the decoder sort good chunks from bad.
    """
    with obs.stage("container.unpack", bytes=len(blob), strict=strict):
        return _unpack_container(blob, strict=strict)


def _unpack_container(blob: bytes, *, strict: bool = True) -> ContainerInfo:
    if len(blob) < HEADER_SIZE:
        raise TruncatedContainerError("container truncated before header",
                                      expected=HEADER_SIZE, actual=len(blob))
    (magic, version, fmt_id, flags, _reserved, original_size, chunk_size,
     n_chunks, payload_crc, header_crc) = struct.unpack_from(_HEADER_FMT, blob)
    if magic != CONTAINER_MAGIC:
        raise CorruptHeaderError("bad container magic")
    if crc32(blob[:HEADER_SIZE - 4]) != header_crc:
        raise CorruptHeaderError("container header checksum mismatch")
    if version not in (CONTAINER_VERSION_V1, CONTAINER_VERSION_V2,
                       CONTAINER_VERSION_V3):
        raise CorruptHeaderError(f"unsupported container version {version}")
    try:
        fmt = TokenFormat.from_id(fmt_id)
    except ValueError as exc:
        raise CorruptHeaderError(str(exc)) from exc

    offset = HEADER_SIZE
    chunk_sizes: np.ndarray | None = None
    chunk_crcs: np.ndarray | None = None
    chunk_codecs: np.ndarray | None = None
    if flags & _FLAG_CHUNKED:
        per_chunk = 8 if version >= CONTAINER_VERSION_V2 else 4
        if version >= CONTAINER_VERSION_V3:
            per_chunk += 1
        table_bytes = per_chunk * n_chunks
        if len(blob) < offset + table_bytes:
            raise TruncatedContainerError(
                "container truncated inside chunk table",
                expected=offset + table_bytes, actual=len(blob))
        chunk_sizes = np.frombuffer(
            blob, dtype="<u4", count=n_chunks, offset=offset).astype(np.int64)
        offset += 4 * n_chunks
        if version >= CONTAINER_VERSION_V2:
            chunk_crcs = np.frombuffer(
                blob, dtype="<u4", count=n_chunks, offset=offset).copy()
            offset += 4 * n_chunks
        if version >= CONTAINER_VERSION_V3:
            chunk_codecs = np.frombuffer(
                blob, dtype=np.uint8, count=n_chunks, offset=offset).copy()
            offset += n_chunks
        expected = ((original_size + chunk_size - 1) // chunk_size
                    if original_size else 0)
        if n_chunks != expected:
            raise CorruptHeaderError(
                f"chunk count inconsistent with sizes: header says "
                f"{n_chunks} chunks, {original_size} bytes at {chunk_size} "
                f"per chunk imply {expected}")
    else:
        if n_chunks != 0 or chunk_size != 0:
            raise CorruptHeaderError(
                "unchunked container carries chunk fields")

    payload = blob[offset:]
    info = ContainerInfo(format=fmt, original_size=original_size,
                         chunk_size=chunk_size if chunk_sizes is not None
                         else None,
                         chunk_sizes=chunk_sizes, payload=payload,
                         chunk_crcs=chunk_crcs, version=version,
                         chunk_codecs=chunk_codecs)
    if not strict:
        return info

    if chunk_codecs is not None:
        from repro.codecs import known_codec_ids
        known = known_codec_ids()
        bad_ids = np.nonzero(
            ~np.isin(chunk_codecs, np.fromiter(known, dtype=np.uint8)))[0]
        if bad_ids.size:
            first = int(bad_ids[0])
            raise CorruptChunkError(
                f"unknown codec id {int(chunk_codecs[first])}",
                chunk_index=first)

    if chunk_sizes is not None:
        declared = int(chunk_sizes.sum())
        if declared > len(payload):
            raise TruncatedContainerError(
                "container truncated inside payload",
                expected=offset + declared, actual=len(blob))
        if declared < len(payload):
            raise CorruptPayloadError("chunk table does not cover payload")
    if chunk_crcs is not None:
        ok = verify_chunks(info)
        bad = np.nonzero(~ok)[0]
        if bad.size:
            first = int(bad[0])
            raise CorruptChunkError(
                "chunk checksum mismatch",
                chunk_index=first,
                offset=int(info.chunk_ranges()[first, 0]))
    elif crc32(payload) != payload_crc:
        obs.inc("container.crc_checks")
        obs.inc("container.crc_failures")
        raise CorruptPayloadError("payload checksum mismatch")
    else:
        obs.inc("container.crc_checks")
    return info
