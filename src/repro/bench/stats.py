"""Statistical benchmark runner: repeats, medians, honest trajectories.

Every ``benchmarks/bench_*.py`` script measures through this module so
the numbers it publishes mean the same thing everywhere:

* :func:`measure` — warmup runs (discarded) followed by ``repeats``
  timed calls; returns the raw samples, not an average, because a
  single number hides the variance the regression gate needs.
* :func:`summarize` — median + interquartile range.  The median
  resists the one-off GC pause that wrecks a mean; the IQR is the
  gate's noise model (two runs whose IQRs overlap are not "different"
  at this sample size, whatever their medians say).
* :func:`fingerprint` — the environment the numbers were taken in:
  cpu count, python/numpy versions, git sha, wall-clock timestamp.
  A trajectory entry without its fingerprint is a rumor.
* :func:`append_run` / :func:`load_trajectory` — append-only
  ``BENCH_<name>.json`` files: ``{"schema": 2, "runs": [...]}`` where
  each run carries its fingerprint and per-case summaries.  Runs are
  never overwritten; the newest comparable run is the gate baseline.

The regression gate itself lives in :mod:`repro.bench.gate`.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import subprocess
from pathlib import Path
from time import perf_counter, time as wall_time

__all__ = [
    "SCHEMA_VERSION",
    "append_run",
    "capture_stages",
    "fingerprint",
    "load_trajectory",
    "measure",
    "new_run",
    "summarize",
]

SCHEMA_VERSION = 2


# ------------------------------------------------------------ measuring

def measure(fn, *, repeats: int = 5, warmup: int = 1) -> list[float]:
    """Time ``fn()`` ``repeats`` times after ``warmup`` discarded calls.

    Returns the raw per-call seconds.  ``fn`` should do one unit of the
    work being measured and nothing else (build inputs outside it).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(max(0, warmup)):
        fn()
    samples = []
    for _ in range(repeats):
        t0 = perf_counter()
        fn()
        samples.append(perf_counter() - t0)
    return samples


class capture_stages:
    """Record the per-stage ledger breakdown of a measured region.

    Snapshots the process-global :mod:`repro.obs` registry on entry and
    exit and exposes the diff as ``.stages`` — ``{stage: {seconds,
    bytes, calls, share}}`` for every ledger stage (those reporting the
    ``bytes=`` dimension) active inside the ``with``.  Pass the result
    into :func:`summarize` as ``stages=`` so the breakdown rides the
    trajectory entry, which is what ``culzss benchgate --attribute``
    diffs to name the stage a regression lives in.

    Warmup calls inside the region inflate every stage by the same
    factor, so the *shares* the attribution compares are unaffected.
    """

    def __init__(self) -> None:
        self.stages: dict = {}
        self._before: dict | None = None

    def __enter__(self) -> "capture_stages":
        from repro import obs

        self._before = obs.get_registry().snapshot()
        return self

    def __exit__(self, *exc) -> bool:
        from repro import obs

        raw = obs.stage_breakdown(self._before,
                                  obs.get_registry().snapshot())
        self.stages = {
            stage: {"seconds": round(v["seconds"], 6),
                    "bytes": v["bytes"], "calls": v["calls"],
                    "share": round(v["share"], 4)}
            for stage, v in raw.items()}
        return False


def summarize(samples: list[float], **extra) -> dict:
    """Median + IQR summary of raw samples, plus caller ``extra`` keys.

    ``iqr_low``/``iqr_high`` are the 25th/75th percentiles; with fewer
    than 4 samples they degrade to min/max (the honest thing: the
    quartiles of 2 points are the points).
    """
    if not samples:
        raise ValueError("no samples")
    ordered = sorted(samples)
    if len(ordered) >= 4:
        q = statistics.quantiles(ordered, n=4, method="inclusive")
        low, high = q[0], q[2]
    else:
        low, high = ordered[0], ordered[-1]
    doc = {
        "repeats": len(ordered),
        "median_seconds": round(statistics.median(ordered), 6),
        "iqr_low_seconds": round(low, 6),
        "iqr_high_seconds": round(high, 6),
        "min_seconds": round(ordered[0], 6),
        "max_seconds": round(ordered[-1], 6),
    }
    doc.update(extra)
    return doc


# ---------------------------------------------------------- fingerprint

def _git_sha(repo_root: Path | None = None) -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo_root, capture_output=True, text=True, timeout=5)
        return out.stdout.strip() or None if out.returncode == 0 else None
    except OSError:
        return None


def fingerprint(repo_root: Path | None = None) -> dict:
    """Where and when these numbers were taken."""
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dep today
        numpy_version = None
    return {
        "timestamp": round(wall_time(), 3),
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "numpy": numpy_version,
        "platform": platform.platform(),
        "git_sha": _git_sha(repo_root),
    }


# ----------------------------------------------------------- trajectory

def new_run(name: str, mode: str, cases: dict, *,
            params: dict | None = None,
            repo_root: Path | None = None) -> dict:
    """Assemble one trajectory entry: fingerprint + workload + cases.

    ``mode`` names the workload tier (``"quick"`` / ``"full"``); the
    gate only compares runs of the same mode.  ``cases`` maps case name
    to a :func:`summarize` dict.
    """
    return {
        "bench": name,
        "mode": mode,
        "meta": fingerprint(repo_root),
        "params": dict(params or {}),
        "cases": dict(cases),
    }


def load_trajectory(path) -> dict:
    """Read a ``BENCH_*.json`` trajectory; empty shell when missing.

    Pre-schema-2 files (the old single-run overwrite format) are
    treated as having no comparable runs rather than erroring, so the
    first harness run after an upgrade simply starts the trajectory.
    """
    path = Path(path)
    if not path.exists():
        return {"schema": SCHEMA_VERSION, "runs": []}
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return {"schema": SCHEMA_VERSION, "runs": []}
    if not isinstance(doc, dict) or doc.get("schema") != SCHEMA_VERSION:
        return {"schema": SCHEMA_VERSION, "runs": []}
    doc.setdefault("runs", [])
    return doc


def append_run(path, run: dict, *, keep: int = 50) -> dict:
    """Append ``run`` to the trajectory at ``path`` (append-only).

    ``keep`` bounds the file: only the newest ``keep`` runs are
    retained, oldest dropped first — a trajectory, not a landfill.
    Returns the written document.
    """
    path = Path(path)
    doc = load_trajectory(path)
    doc["runs"].append(run)
    doc["runs"] = doc["runs"][-keep:]
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return doc


def latest_run(doc: dict, *, mode: str | None = None,
               bench: str | None = None) -> dict | None:
    """Newest run in a trajectory matching ``mode``/``bench`` filters."""
    for run in reversed(doc.get("runs", [])):
        if mode is not None and run.get("mode") != mode:
            continue
        if bench is not None and run.get("bench") != bench:
            continue
        return run
    return None
