"""Benchmark harness: one dataset → all five systems → modeled tables.

Two stages:

* :func:`gather_artifacts` runs every *functional* compression on the
  dataset at benchmark scale (real bytes, real ratios, exact operation
  counts) — the expensive part, shared by calibration fitting and
  table generation;
* :func:`run_dataset` feeds those artifacts through the timing models
  and returns a :class:`DatasetRun` holding the modeled paper-scale
  (128 MB) seconds and the measured ratios for every system.

Benchmark scale defaults to ``REPRO_BENCH_MB`` MiB (default 1); times
scale linearly to the paper's 128 MB (every modeled term is linear in
input size).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.bench.paper import PAPER_DATASET_ORDER, PAPER_INPUT_BYTES
from repro.bzip2.pipeline import Bzip2Result
from repro.bzip2.pipeline import compress as bzip2_compress
from repro.core.params import CompressionParams
from repro.datasets import generate
from repro.lzss.encoder import EncodeResult, encode
from repro.lzss.formats import SERIAL
from repro.model.bzip2 import Bzip2Model
from repro.model.calibration import Calibration
from repro.model.cpu import (
    MatchSampleStats,
    PthreadModel,
    SerialCpuModel,
    sample_match_statistics,
)

__all__ = ["Artifacts", "DatasetRun", "bench_bytes", "gather_artifacts",
           "run_all", "run_dataset"]


def bench_bytes() -> int:
    """Benchmark input size: ``REPRO_BENCH_MB`` MiB (default 1)."""
    return int(float(os.environ.get("REPRO_BENCH_MB", "1")) * (1 << 20))


@dataclass
class Artifacts:
    """Functional outputs of every system on one dataset."""

    name: str
    size: int
    sample: MatchSampleStats
    serial: EncodeResult
    v1: EncodeResult
    v2: EncodeResult
    bzip2: Bzip2Result


@dataclass
class DatasetRun:
    """Modeled paper-scale seconds + measured ratios for one dataset."""

    name: str
    size: int
    compress_seconds: dict[str, float] = field(default_factory=dict)
    ratios: dict[str, float] = field(default_factory=dict)
    decompress_seconds: dict[str, float] = field(default_factory=dict)

    def speedup_vs_serial(self, system: str) -> float:
        return self.compress_seconds["serial"] / self.compress_seconds[system]


def gather_artifacts(name: str, size: int | None = None,
                     seed: int | None = None) -> Artifacts:
    """Run all functional compressions on the named dataset."""
    size = size or bench_bytes()
    data = generate(name, size, seed)
    sample = sample_match_statistics(data)
    serial = encode(data, SERIAL, collect_detail=True)
    from repro.core.v1 import V1Compressor
    from repro.core.v2 import V2Compressor

    v1_result = V1Compressor(CompressionParams(version=1)).compress(data)
    v2_result = V2Compressor(CompressionParams(version=2)).compress(data)
    bz = bzip2_compress(data)
    return Artifacts(name=name, size=size, sample=sample, serial=serial,
                     v1=v1_result, v2=v2_result, bzip2=bz)


def run_dataset(arts: Artifacts, cal: Calibration) -> DatasetRun:
    """Feed one dataset's artifacts through all timing models."""
    # Imported here: repro.model.gpu wraps repro.core, which imports
    # repro.model.calibration — a module-level import would cycle.
    from repro.model.gpu import GpuCompressModel, GpuDecompressModel

    run = DatasetRun(name=arts.name, size=arts.size)
    scale = PAPER_INPUT_BYTES / arts.size

    serial_model = SerialCpuModel(cal)
    serial_s = serial_model.compress_seconds(arts.serial.stats,
                                             arts.sample) * scale
    run.compress_seconds["serial"] = serial_s
    run.compress_seconds["pthread"] = PthreadModel(cal).compress_seconds(
        serial_s, int(arts.serial.stats.output_size * scale))
    run.compress_seconds["bzip2"] = Bzip2Model(cal).compress_seconds(
        arts.bzip2) * scale
    v1_model = GpuCompressModel(1, cal)
    v2_model = GpuCompressModel(2, cal)
    run.compress_seconds["culzss_v1"] = v1_model.paper_seconds(
        arts.v1, arts.sample)
    run.compress_seconds["culzss_v2"] = v2_model.paper_seconds(arts.v2)

    run.ratios = {
        "serial": arts.serial.stats.ratio,
        "pthread": arts.serial.stats.ratio,  # same format, huge chunks
        "bzip2": arts.bzip2.ratio,
        "culzss_v1": arts.v1.stats.ratio,
        "culzss_v2": arts.v2.stats.ratio,
    }

    # Table III: decompression.  The CULZSS column decodes the V1
    # stream (both versions share the decompressor, §III.C).
    run.decompress_seconds["serial"] = serial_model.decompress_seconds(
        int(arts.size * scale), int(arts.serial.stats.n_tokens * scale))
    run.decompress_seconds["culzss"] = GpuDecompressModel(cal).paper_seconds(
        arts.v1)
    return run


def run_all(size: int | None = None,
            calibration: Calibration | None = None,
            datasets: list[str] | None = None,
            refit: bool = True) -> dict[str, DatasetRun]:
    """Gather artifacts for every dataset, fit anchors, model all cells.

    With ``refit`` (default) the calibration anchors are re-derived
    from the C-files artifacts at this run's scale, making the whole
    table generation self-contained and reproducible.
    """
    from repro.model.fitting import fit_calibration

    names = datasets or PAPER_DATASET_ORDER
    artifacts = {name: gather_artifacts(name, size) for name in names}
    if calibration is None:
        if refit and "cfiles" in artifacts:
            calibration = fit_calibration(artifacts["cfiles"])
        else:
            from repro.model.calibration import default_calibration

            calibration = default_calibration()
    return {name: run_dataset(artifacts[name], calibration)
            for name in names}
