"""Benchmark harness: runs every system on every dataset and emits the
paper's tables and figures (Tables I–III, Figure 4) plus the ablation
claims of §III.D and §V.
"""

from repro.bench.harness import DatasetRun, run_dataset, run_all
from repro.bench.paper import (
    PAPER_DATASET_ORDER,
    PAPER_INPUT_BYTES,
    TABLE1_SECONDS,
    TABLE2_RATIOS,
    TABLE3_SECONDS,
)
from repro.bench.tables import (
    format_figure4,
    format_table,
    table1_rows,
    table2_rows,
    table3_rows,
)

__all__ = [
    "DatasetRun",
    "PAPER_DATASET_ORDER",
    "PAPER_INPUT_BYTES",
    "TABLE1_SECONDS",
    "TABLE2_RATIOS",
    "TABLE3_SECONDS",
    "format_figure4",
    "format_table",
    "run_all",
    "run_dataset",
    "table1_rows",
    "table2_rows",
    "table3_rows",
]
