"""``culzss benchgate`` — the benchmark regression gate.

Measures the codec hot paths with the statistical harness
(:mod:`repro.bench.stats`), compares the fresh medians against the
newest comparable run in the committed ``BENCH_engine.json``
trajectory, and fails (exit 1) on a regression.

A *regression* needs two things at once:

1. the fresh median exceeds the baseline median by more than
   ``threshold_pct`` percent, **and**
2. the two runs' interquartile ranges do not overlap.

The second clause is the escape hatch for noisy hosts: when the IQRs
overlap, the medians are within each other's observed spread at this
sample size and the difference is indistinguishable from noise — a
gate that fires there trains people to ignore it.

The measured functions are looked up *dynamically* through their
modules (``encoder.encode_chunked``, not a from-import), so the gate
measures whatever is installed at call time — which is also what makes
the gate testable: monkeypatch the module attribute with a slowed
wrapper and the gate must fail.
"""

from __future__ import annotations

import numpy as np

from repro.bench.stats import (
    append_run,
    capture_stages,
    latest_run,
    load_trajectory,
    measure,
    new_run,
    summarize,
)

__all__ = ["CODEC_BENCH", "GATE_BENCH", "attribute_case",
           "attribute_regressions", "codec_cases", "compare_runs",
           "gate_cases", "run_gate"]

#: trajectory runs are tagged with this bench name so gate baselines
#: and the bench_engine sweep coexist in one BENCH_engine.json without
#: cross-matching each other's cases
GATE_BENCH = "gate"
#: the codecs suite shares its bench name — and therefore its baseline
#: runs — with ``benchmarks/bench_codecs.py``, so the committed
#: ``BENCH_codecs.json`` doubles as the gate baseline
CODEC_BENCH = "codecs"
CHUNK_SIZE = 4096

#: per-mode workload: (buffer bytes, repeats, warmup).  Five repeats
#: minimum: below four samples the IQR degrades to min/max and the
#: overlap escape hatch loses its noise model.
MODES = {
    "quick": (128 << 10, 5, 1),
    "full": (1 << 20, 5, 1),
}


# ----------------------------------------------------------- measuring

def gate_cases(size_bytes: int, *, repeats: int, warmup: int = 1,
               dataset: str = "cfiles") -> dict:
    """Measure the gate's codec cases; returns name → summary dict.

    Lookups go through the modules on every call so monkeypatched
    implementations (tests) and reloaded code are what gets timed.
    """
    from repro.datasets import generate
    from repro.lzss import decoder, encoder
    from repro.lzss.formats import CUDA_V2

    data = np.frombuffer(generate(dataset, size_bytes, seed=7),
                         dtype=np.uint8)
    cases: dict[str, dict] = {}

    with capture_stages() as cap:
        enc = measure(
            lambda: encoder.encode_chunked(data, CUDA_V2, CHUNK_SIZE),
            repeats=repeats, warmup=warmup)
    result = encoder.encode_chunked(data, CUDA_V2, CHUNK_SIZE)
    cases["encode_v2"] = summarize(
        enc, mb_s=round(size_bytes / max(min(enc), 1e-9) / 1e6, 3),
        stages=cap.stages)

    with capture_stages() as cap:
        dec = measure(
            lambda: decoder.decode_chunked_with_stats(
                result.payload, CUDA_V2, result.chunk_sizes, CHUNK_SIZE,
                result.input_size),
            repeats=repeats, warmup=warmup)
    cases["decode_v2"] = summarize(
        dec, mb_s=round(size_bytes / max(min(dec), 1e-9) / 1e6, 3),
        stages=cap.stages)

    from repro import container

    blob = container.pack_container(result)
    with capture_stages() as cap:
        pack = measure(lambda: container.unpack_container(blob),
                       repeats=repeats, warmup=warmup)
    cases["container_unpack"] = summarize(pack, stages=cap.stages)
    return cases


def codec_cases(size_bytes: int, *, repeats: int, warmup: int = 1,
                dataset: str = "cfiles") -> dict:
    """Measure every registered codec (plus ``auto``) on one corpus.

    Case names are ``codec.<name>.encode`` / ``codec.<name>.decode``;
    encode cases additionally carry the achieved compression ratio so
    the trajectory records the speed *and* ratio trade-off the
    dispatcher navigates.  Shared with ``benchmarks/bench_codecs.py``
    so the committed ``BENCH_codecs.json`` and the gate's fresh runs
    measure identical work.
    """
    from repro.codecs import codec_names
    from repro.codecs.dispatch import decode_chunked_multi, encode_chunked_auto
    from repro.datasets import generate
    from repro.lzss.formats import CUDA_V2

    data = np.frombuffer(generate(dataset, size_bytes, seed=7),
                         dtype=np.uint8)
    cases: dict[str, dict] = {}
    for name in [*codec_names(), "auto"]:
        with capture_stages() as cap:
            enc = measure(
                lambda: encode_chunked_auto(data, CUDA_V2, CHUNK_SIZE,
                                            codec=name),
                repeats=repeats, warmup=warmup)
        result = encode_chunked_auto(data, CUDA_V2, CHUNK_SIZE, codec=name)
        cases[f"codec.{name}.encode"] = summarize(
            enc,
            mb_s=round(size_bytes / max(min(enc), 1e-9) / 1e6, 3),
            ratio=round(len(result.payload) / size_bytes, 4),
            stages=cap.stages)
        with capture_stages() as cap:
            dec = measure(
                lambda: decode_chunked_multi(
                    result.payload, CUDA_V2, result.chunk_sizes, CHUNK_SIZE,
                    result.input_size, result.chunk_codecs),
                repeats=repeats, warmup=warmup)
        out, _ = decode_chunked_multi(
            result.payload, CUDA_V2, result.chunk_sizes, CHUNK_SIZE,
            result.input_size, result.chunk_codecs)
        if out != data.tobytes():  # pragma: no cover - codec invariant
            raise AssertionError(f"codec {name} failed its round trip")
        cases[f"codec.{name}.decode"] = summarize(
            dec, mb_s=round(size_bytes / max(min(dec), 1e-9) / 1e6, 3),
            stages=cap.stages)
    return cases


# ----------------------------------------------------------- comparing

def _iqr_overlap(a: dict, b: dict) -> bool:
    return (a["iqr_low_seconds"] <= b["iqr_high_seconds"]
            and b["iqr_low_seconds"] <= a["iqr_high_seconds"])


def compare_runs(baseline: dict, fresh: dict, *,
                 threshold_pct: float = 25.0) -> dict:
    """Judge ``fresh`` against ``baseline``; returns the gate report.

    Cases present on only one side are reported but never fail the
    gate (renames should not brick CI); a regression needs both the
    median excursion and disjoint IQRs, per the module docstring.
    """
    report: dict = {"threshold_pct": threshold_pct, "cases": [],
                    "regressions": [], "ok": True}
    base_cases = baseline.get("cases", {})
    fresh_cases = fresh.get("cases", {})
    for name in sorted(set(base_cases) | set(fresh_cases)):
        if name not in base_cases or name not in fresh_cases:
            report["cases"].append({"name": name, "status": "unmatched"})
            continue
        b, f = base_cases[name], fresh_cases[name]
        base_med, fresh_med = b["median_seconds"], f["median_seconds"]
        change_pct = (100.0 * (fresh_med - base_med) / base_med
                      if base_med else 0.0)
        overlap = _iqr_overlap(b, f)
        regressed = change_pct > threshold_pct and not overlap
        entry = {
            "name": name,
            "status": "regression" if regressed else (
                "noisy" if change_pct > threshold_pct else "ok"),
            "baseline_median_seconds": base_med,
            "fresh_median_seconds": fresh_med,
            "change_pct": round(change_pct, 1),
            "iqr_overlap": overlap,
        }
        report["cases"].append(entry)
        if regressed:
            report["regressions"].append(name)
    report["ok"] = not report["regressions"]
    return report


def attribute_case(base: dict, fresh: dict, *,
                   share_floor: float = 0.05) -> dict | None:
    """Name the stage(s) a regressed case's extra time lives in.

    Diffs the per-stage time *shares* recorded in the two summaries'
    ``stages`` breakdowns.  Shares rather than raw seconds: a uniformly
    slower host inflates every stage and moves no share, while a real
    code regression concentrates in the stage that changed.  A stage is
    a *suspect* when its share grew by at least ``share_floor`` (5
    points by default); if none clears the floor the top share-gainer
    is named alone.  Returns ``None`` when either side lacks stage data
    (pre-attribution baselines).
    """
    b, f = base.get("stages"), fresh.get("stages")
    if not b or not f:
        return None
    rows = []
    for stage in sorted(set(b) | set(f)):
        bs = b.get(stage, {})
        fs = f.get(stage, {})
        b_share = float(bs.get("share", 0.0))
        f_share = float(fs.get("share", 0.0))
        b_secs = float(bs.get("seconds", 0.0))
        f_secs = float(fs.get("seconds", 0.0))
        rows.append({
            "stage": stage,
            "baseline_share": round(b_share, 4),
            "fresh_share": round(f_share, 4),
            "share_delta": round(f_share - b_share, 4),
            "baseline_seconds": round(b_secs, 6),
            "fresh_seconds": round(f_secs, 6),
            "seconds_ratio": (round(f_secs / b_secs, 2)
                              if b_secs > 0 else None),
        })
    rows.sort(key=lambda r: (-r["share_delta"], r["stage"]))
    suspects = [r["stage"] for r in rows if r["share_delta"] >= share_floor]
    if not suspects and rows:
        suspects = [rows[0]["stage"]]
    return {"rows": rows, "suspects": suspects}


def attribute_regressions(baseline: dict, fresh: dict,
                          report: dict) -> None:
    """Attach stage attribution to every regressed case in ``report``.

    Mutates the report in place: each regression entry gains either an
    ``attribution`` dict (see :func:`attribute_case`) or
    ``attribution: None`` when the baseline predates stage recording.
    """
    base_cases = baseline.get("cases", {})
    fresh_cases = fresh.get("cases", {})
    for entry in report["cases"]:
        if entry.get("status") != "regression":
            continue
        name = entry["name"]
        entry["attribution"] = attribute_case(
            base_cases.get(name, {}), fresh_cases.get(name, {}))


def format_report(report: dict, baseline_meta: dict | None = None) -> str:
    lines = ["benchgate: fresh run vs committed baseline "
             f"(threshold {report['threshold_pct']:.0f}% median, "
             "IQR-overlap escape hatch)"]
    if baseline_meta:
        lines.append(
            f"  baseline: git {baseline_meta.get('git_sha') or '?'}  "
            f"cpus={baseline_meta.get('cpu_count')}  "
            f"python={baseline_meta.get('python')}")
    for c in report["cases"]:
        if c["status"] == "unmatched":
            lines.append(f"  {c['name']:<18} (unmatched case; skipped)")
            continue
        mark = {"ok": "ok", "noisy": "ok (IQR overlap)",
                "regression": "REGRESSION"}[c["status"]]
        lines.append(
            f"  {c['name']:<18} {c['baseline_median_seconds']*1e3:9.3f} ms"
            f" -> {c['fresh_median_seconds']*1e3:9.3f} ms  "
            f"({c['change_pct']:+6.1f}%)  {mark}")
        if "attribution" not in c:
            continue
        attribution = c["attribution"]
        if attribution is None:
            lines.append(
                "    attribution: no stage breakdown in the baseline run "
                "— refresh it with `culzss benchgate --update`")
            continue
        suspects = set(attribution["suspects"])
        lines.append("    stage time shares (baseline -> fresh):")
        for r in attribution["rows"]:
            ratio = (f"time x{r['seconds_ratio']:.2f}"
                     if r["seconds_ratio"] is not None else "new stage")
            flag = "  <-- suspect" if r["stage"] in suspects else ""
            lines.append(
                f"      {r['stage']:<24} {r['baseline_share']*100:5.1f}% ->"
                f" {r['fresh_share']*100:5.1f}%  ({ratio}){flag}")
        lines.append(
            "    suspect stage(s): " + ", ".join(attribution["suspects"]))
    lines.append("gate: " + ("PASS" if report["ok"] else
                             f"FAIL ({', '.join(report['regressions'])})"))
    return "\n".join(lines)


# ------------------------------------------------------------- driving

def run_gate(baseline_path, *, mode: str = "quick", update: bool = False,
             threshold_pct: float = 25.0, size_bytes: int | None = None,
             repeats: int | None = None, suite: str = "engine",
             attribute: bool = False, profile=None,
             out=print) -> int:
    """The ``culzss benchgate`` entry point; returns the exit code.

    ``update`` appends the fresh run to the trajectory instead of
    judging it (how baselines are [re]generated).  Without a comparable
    baseline the gate exits 2 with a hint — a missing baseline is a
    setup problem, not a performance regression.

    ``suite`` picks the measured cases: ``"engine"`` is the classic
    codec hot-path gate against ``BENCH_engine.json``; ``"codecs"``
    measures every registered codec (see :func:`codec_cases`) against
    the committed ``BENCH_codecs.json`` trajectory.

    ``attribute`` turns on regression forensics: each regressed case's
    report names the stage(s) whose share of the measured time grew
    against the baseline's recorded breakdown (see
    :func:`attribute_case`).  ``profile`` — a path — runs the sampling
    profiler over the whole measurement and writes a speedscope
    document there (plus a ``.collapsed`` sibling).
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {sorted(MODES)}")
    if suite not in ("engine", "codecs"):
        raise ValueError(f"suite must be 'engine' or 'codecs', not {suite!r}")
    mode_size, mode_repeats, warmup = MODES[mode]
    size_bytes = size_bytes or mode_size
    repeats = repeats or mode_repeats

    if profile:
        from repro.obs import prof

        prof.start()
    try:
        if suite == "codecs":
            bench_name = CODEC_BENCH
            cases = codec_cases(size_bytes, repeats=repeats, warmup=warmup)
        else:
            bench_name = GATE_BENCH
            cases = gate_cases(size_bytes, repeats=repeats, warmup=warmup)
    finally:
        if profile:
            prof.stop()
            prof.export(profile, out=out)
    fresh = new_run(bench_name, mode, cases,
                    params={"size_bytes": size_bytes, "repeats": repeats,
                            "chunk_size": CHUNK_SIZE})
    if update:
        append_run(baseline_path, fresh)
        out(f"benchgate: appended {mode} baseline "
            f"({len(cases)} cases) to {baseline_path}")
        return 0

    doc = load_trajectory(baseline_path)
    baseline = latest_run(doc, mode=mode, bench=bench_name)
    if baseline is None:
        out(f"benchgate: no {mode!r} baseline in {baseline_path}; "
            f"run `culzss benchgate --suite {suite} --update` on a "
            "known-good tree first")
        return 2
    report = compare_runs(baseline, fresh, threshold_pct=threshold_pct)
    if attribute:
        attribute_regressions(baseline, fresh, report)
    out(format_report(report, baseline.get("meta")))
    return 0 if report["ok"] else 1
