"""The paper's published numbers, transcribed.

Single source of truth for every figure the evaluation section reports:
Table I (compression seconds), Table II (compression ratios), Table III
(decompression seconds).  The calibration anchors (C-files column) and
the EXPERIMENTS.md paper-vs-measured comparison both read from here.

Datasets are keyed by the registry names in :mod:`repro.datasets`.
"""

from __future__ import annotations

__all__ = [
    "PAPER_DATASET_ORDER",
    "PAPER_DATASET_TITLES",
    "PAPER_INPUT_BYTES",
    "TABLE1_SECONDS",
    "TABLE1_SYSTEMS",
    "TABLE2_RATIOS",
    "TABLE2_SYSTEMS",
    "TABLE3_SECONDS",
    "TABLE3_SYSTEMS",
]

#: Every dataset is "128 MB in size" (§IV.B).
PAPER_INPUT_BYTES = 128 * 1024 * 1024

PAPER_DATASET_ORDER = [
    "cfiles",
    "demap",
    "dictionary",
    "kernel_tarball",
    "highly_compressible",
]

PAPER_DATASET_TITLES = {
    "cfiles": "C files",
    "demap": "DE Map",
    "dictionary": "Dictionary",
    "kernel_tarball": "Kernel tarball",
    "highly_compressible": "Highly Compr.",
}

TABLE1_SYSTEMS = ["serial", "pthread", "bzip2", "culzss_v1", "culzss_v2"]

#: Table I — compression benchmark average running times (seconds).
TABLE1_SECONDS = {
    "cfiles": {"serial": 50.58, "pthread": 9.12, "bzip2": 20.97,
               "culzss_v1": 7.28, "culzss_v2": 4.26},
    "demap": {"serial": 30.75, "pthread": 6.25, "bzip2": 9.14,
              "culzss_v1": 4.69, "culzss_v2": 15.00},
    "dictionary": {"serial": 56.91, "pthread": 9.35, "bzip2": 20.18,
                   "culzss_v1": 7.13, "culzss_v2": 3.22},
    "kernel_tarball": {"serial": 50.49, "pthread": 9.16, "bzip2": 20.45,
                       "culzss_v1": 7.08, "culzss_v2": 4.79},
    "highly_compressible": {"serial": 4.23, "pthread": 1.2, "bzip2": 77.82,
                            "culzss_v1": 0.49, "culzss_v2": 3.40},
}

TABLE2_SYSTEMS = ["serial", "bzip2", "culzss_v1", "culzss_v2"]

#: Table II — compression ratios, compressed/original (smaller is better).
TABLE2_RATIOS = {
    "cfiles": {"serial": 0.5480, "bzip2": 0.1560,
               "culzss_v1": 0.5570, "culzss_v2": 0.6349},
    "demap": {"serial": 0.3390, "bzip2": 0.1180,
              "culzss_v1": 0.3420, "culzss_v2": 0.3335},
    "dictionary": {"serial": 0.6140, "bzip2": 0.3450,
                   "culzss_v1": 0.6180, "culzss_v2": 0.6509},
    "kernel_tarball": {"serial": 0.5510, "bzip2": 0.1690,
                       "culzss_v1": 0.5650, "culzss_v2": 0.6259},
    "highly_compressible": {"serial": 0.1350, "bzip2": 0.0040,
                            "culzss_v1": 0.1390, "culzss_v2": 0.0634},
}

TABLE3_SYSTEMS = ["serial", "culzss"]

#: Table III — decompression benchmark average running times (seconds).
TABLE3_SECONDS = {
    "cfiles": {"serial": 1.79, "culzss": 0.53},
    "demap": {"serial": 1.21, "culzss": 0.49},
    "dictionary": {"serial": 2.02, "culzss": 0.55},
    "kernel_tarball": {"serial": 1.77, "culzss": 0.56},
    "highly_compressible": {"serial": 0.71, "culzss": 0.27},
}
