"""Table emitters: render modeled results next to the published cells.

Each ``tableN_rows`` returns structured rows (dataset → system →
(modeled, paper)); :func:`format_table` renders them as the aligned
text tables the benchmark scripts print.
"""

from __future__ import annotations

from repro.bench.harness import DatasetRun
from repro.bench.paper import (
    PAPER_DATASET_ORDER,
    PAPER_DATASET_TITLES,
    TABLE1_SECONDS,
    TABLE1_SYSTEMS,
    TABLE2_RATIOS,
    TABLE2_SYSTEMS,
    TABLE3_SECONDS,
    TABLE3_SYSTEMS,
)

__all__ = ["format_figure4", "format_table", "table1_rows", "table2_rows",
           "table3_rows"]

_SYSTEM_TITLES = {
    "serial": "Serial LZSS",
    "pthread": "Pthread LZSS",
    "bzip2": "BZIP2",
    "culzss_v1": "CULZSS V1",
    "culzss_v2": "CULZSS V2",
    "culzss": "CULZSS",
}

Cell = tuple[float, float]  # (ours, paper)
Rows = dict[str, dict[str, Cell]]


def _rows(runs: dict[str, DatasetRun], systems: list[str],
          ours, paper) -> Rows:
    out: Rows = {}
    for name in PAPER_DATASET_ORDER:
        if name not in runs:
            continue
        out[name] = {s: (ours(runs[name], s), paper[name][s])
                     for s in systems}
    return out


def table1_rows(runs: dict[str, DatasetRun]) -> Rows:
    """Table I — compression times (modeled seconds @128 MB vs paper)."""
    return _rows(runs, TABLE1_SYSTEMS,
                 lambda r, s: r.compress_seconds[s], TABLE1_SECONDS)


def table2_rows(runs: dict[str, DatasetRun]) -> Rows:
    """Table II — compression ratios (measured vs paper)."""
    return _rows(runs, TABLE2_SYSTEMS,
                 lambda r, s: r.ratios[s], TABLE2_RATIOS)


def table3_rows(runs: dict[str, DatasetRun]) -> Rows:
    """Table III — decompression times (modeled seconds vs paper)."""
    return _rows(runs, TABLE3_SYSTEMS,
                 lambda r, s: r.decompress_seconds[s], TABLE3_SECONDS)


def format_table(rows: Rows, title: str, unit: str = "s",
                 percent: bool = False) -> str:
    """Render a rows structure as an aligned ``ours (paper)`` table."""
    systems = list(next(iter(rows.values())).keys())
    col_w = 22
    lines = [title,
             f"{'dataset':<16}" + "".join(
                 f"{_SYSTEM_TITLES.get(s, s):>{col_w}}" for s in systems)]
    for name, cells in rows.items():
        row = [f"{PAPER_DATASET_TITLES.get(name, name):<16}"]
        for s in systems:
            ours, paper = cells[s]
            if percent:
                row.append(f"{ours * 100:8.2f}% ({paper * 100:6.2f}%)".rjust(col_w))
            else:
                row.append(f"{ours:9.2f}{unit} ({paper:7.2f}{unit})".rjust(col_w))
        lines.append("".join(row))
    lines.append("    (each cell: this reproduction, paper value in parens)")
    return "\n".join(lines)


def format_figure4(runs: dict[str, DatasetRun], width: int = 40) -> str:
    """Figure 4 — speedup over serial LZSS, as an ASCII bar chart."""
    systems = ["pthread", "bzip2", "culzss_v1", "culzss_v2"]
    lines = ["Figure 4: compression speedup vs. serial LZSS "
             "(this reproduction; paper in parens)"]
    paper = TABLE1_SECONDS
    for name in PAPER_DATASET_ORDER:
        if name not in runs:
            continue
        run = runs[name]
        lines.append(f"{PAPER_DATASET_TITLES[name]}:")
        peak = max(run.speedup_vs_serial(s) for s in systems)
        for s in systems:
            ours = run.speedup_vs_serial(s)
            ref = paper[name]["serial"] / paper[name][s]
            bar = "#" * max(1, int(round(ours / max(peak, 1e-9) * width)))
            lines.append(f"  {_SYSTEM_TITLES[s]:<13} {bar:<{width + 1}} "
                         f"{ours:6.2f}x ({ref:5.2f}x)")
    return "\n".join(lines)
