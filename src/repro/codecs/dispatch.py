"""Content-aware per-chunk codec dispatch, and multi-codec decode.

The single-codec pipeline already probes whole buffers for
incompressibility (:func:`repro.lzss.matcher.probe_incompressible`);
this module grows that probe into a per-chunk *chooser*.  For every
chunk it measures two cheap statistics —

* order-0 byte entropy ``h1`` (plus the probe's digram confirmation),
* match density ``m``: the fraction of sampled 4-grams that repeat
  within the chunk (an upper-bound proxy for how much of the chunk
  LZSS matches can cover) —

and routes the chunk:

===========================  =======================================
``h1`` at the probe ceiling  ``store`` (compression would expand it)
``m`` low, ``h1`` high       ``lz4s`` (few matches: byte-aligned
                             literal runs at 8.07 bits/byte beat
                             LZSS's 9-bit literals, at higher speed)
``h1`` low, ``m`` high       trial-encode ``lzss`` *and*
                             ``lzss-huffman``, keep the smaller
everything else              ``lzss`` (the paper's format)
===========================  =======================================

The trial branch is what makes ``auto`` never meaningfully worse than
plain ``lzss``: on exactly the chunks where the entropy stage could
plausibly win, the decision is made by measuring, not predicting.

Decisions are recorded in the container v3 codec column; the decode
side of this module (:func:`decode_chunked_multi`,
:func:`salvage_decode_chunked_multi`) dispatches each chunk to its
recorded codec, with unknown codec ids treated as corruption — strict
decode raises, salvage fills and reports.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro import obs
from repro.codecs.base import get_codec, known_codec_ids
from repro.codecs.lzss import LZSS_CODEC_ID
from repro.errors import CorruptChunkError, TruncatedContainerError
from repro.lzss.decoder import SalvageReport
from repro.lzss.encoder import EncodeResult, encode_chunked
from repro.lzss.formats import TokenFormat
from repro.lzss.matcher import probe_incompressible, resolve_probe_threshold
from repro.lzss.stats import EncodeStats
from repro.obs import log as obslog
from repro.util.buffers import as_u8
from repro.util.checksum import crc32
from repro.util.validation import require, require_range

__all__ = [
    "choose_chunk_codec",
    "decode_chunked_multi",
    "encode_chunked_auto",
    "match_density",
    "salvage_decode_chunked_multi",
]

#: Auto-mode policy constants (bits/byte and 4-gram duplicate fractions).
LZ4S_MIN_ENTROPY = 6.5   # only prefer lz4s when literals dominate cost
LZ4S_MAX_DENSITY = 0.10  # ... and matches are genuinely scarce
TRIAL_MAX_ENTROPY = 6.0  # low literal entropy: Huffman stage may win
TRIAL_MIN_DENSITY = 0.30
#: Chunks smaller than this skip the statistics — framing overheads
#: dominate and plain lzss is the safe default.
MIN_PROBE_CHUNK = 256

_DENSITY_SAMPLE = 4096


def _metric_key(name: str) -> str:
    return name.replace("-", "_")


def match_density(chunk: np.ndarray, sample: int = _DENSITY_SAMPLE) -> float:
    """Fraction of sampled 4-grams that duplicate another in the chunk.

    A stride-sampled ``np.unique`` pass — the cheap stand-in for "how
    often would a match search succeed here".
    """
    arr = as_u8(chunk)
    n = arr.size
    if n < 8:
        return 0.0
    pos = np.arange(n - 3, dtype=np.int64)
    if pos.size > sample:
        pos = pos[:: pos.size // sample][:sample]
    grams = ((arr[pos].astype(np.uint32) << 24)
             | (arr[pos + 1].astype(np.uint32) << 16)
             | (arr[pos + 2].astype(np.uint32) << 8)
             | arr[pos + 3])
    return 1.0 - np.unique(grams).size / grams.size


def choose_chunk_codec(chunk: np.ndarray, *,
                       probe_threshold: float | None = None) -> str:
    """Pick a codec name (or ``"trial"``) for one chunk's content."""
    arr = as_u8(chunk)
    n = arr.size
    if n < MIN_PROBE_CHUNK:
        return "lzss"
    if probe_incompressible(arr, min_size=MIN_PROBE_CHUNK,
                            byte_entropy_bits=probe_threshold):
        return "store"
    counts = np.bincount(arr, minlength=256)
    p = counts[counts > 0] / n
    h1 = float(-(p * np.log2(p)).sum())
    m = match_density(arr)
    if m <= LZ4S_MAX_DENSITY and h1 >= LZ4S_MIN_ENTROPY:
        return "lz4s"
    if h1 <= TRIAL_MAX_ENTROPY and m >= TRIAL_MIN_DENSITY:
        return "trial"
    return "lzss"


def _empty_stats(input_size: int, output_size: int) -> EncodeStats:
    # Mixed-codec streams have no single token accounting; report the
    # sizes (what ratio needs) and zeros for the lzss-specific counts.
    return EncodeStats(input_size=input_size, output_size=output_size,
                       n_tokens=0, n_literals=0, n_pairs=0,
                       sum_match_length=0, total_bits=8 * output_size)


def encode_chunked_auto(data, fmt: TokenFormat, chunk_size: int, *,
                        codec: str = "auto", max_chain: int = 64,
                        probe_threshold: float | None = None
                        ) -> EncodeResult:
    """Chunked encode with a per-chunk codec column.

    ``codec`` is either a registered codec name (every chunk uses it)
    or ``"auto"`` (the content-aware chooser above).  The returned
    :class:`EncodeResult` carries ``chunk_codecs`` — the uint8 wire-id
    column the container v3 writer records.
    """
    arr = as_u8(data)
    n = arr.size
    require_range(chunk_size, 1, 1 << 40, "chunk_size")
    threshold = resolve_probe_threshold(probe_threshold)
    n_chunks = (n + chunk_size - 1) // chunk_size if n else 0

    if codec == "lzss":
        # Byte-identical to the classic path, plus the codec column.
        t0 = perf_counter()
        result = encode_chunked(arr, fmt, chunk_size, max_chain=max_chain)
        obs.observe("codec.encode_lzss_seconds", perf_counter() - t0)
        obs.inc("codec.encode_lzss_bytes", n)
        result.chunk_codecs = np.full(n_chunks, LZSS_CODEC_ID,
                                      dtype=np.uint8)
        _account(result.chunk_codecs, result.chunk_sizes, arr.size,
                 chunk_size)
        return result
    if codec != "auto":
        get_codec(codec)  # raises KeyError on unknown names

    if n_chunks == 0:
        return EncodeResult(payload=b"", format=fmt, input_size=0,
                            chunk_sizes=np.zeros(0, dtype=np.int64),
                            chunk_size=chunk_size,
                            stats=_empty_stats(0, 0),
                            chunk_codecs=np.zeros(0, dtype=np.uint8))

    if codec == "auto":
        names = []
        for c in range(n_chunks):
            chunk = arr[c * chunk_size:(c + 1) * chunk_size]
            name = choose_chunk_codec(chunk, probe_threshold=threshold)
            if name == "store":
                obs.inc("codec.store_fallbacks")
                obslog.event("codec", "store_fallback", scope="chunk",
                             chunk=c, size=int(chunk.size),
                             threshold=threshold)
            names.append(name)
    else:
        names = [codec] * n_chunks

    parts: list[bytes] = [b""] * n_chunks
    ids = np.zeros(n_chunks, dtype=np.uint8)
    lzss_codec = get_codec("lzss")
    huff_codec = get_codec("lzss-huffman")
    i = 0
    while i < n_chunks:
        j = i
        while j < n_chunks and names[j] == names[i]:
            j += 1
        lo, hi = i * chunk_size, min(j * chunk_size, n)
        if names[i] == "trial":
            # Measure, don't predict: smaller of lzss and lzss-huffman.
            # Per-codec ledger time goes to whichever codec won the
            # chunk — the loser's work is the price of the trial.
            for c in range(i, j):
                chunk = arr[c * chunk_size:min((c + 1) * chunk_size, n)]
                t0 = perf_counter()
                as_lzss = lzss_codec.encode_chunk(chunk, fmt)
                as_huff = huff_codec.encode_chunk(chunk, fmt)
                elapsed = perf_counter() - t0
                if len(as_huff) < len(as_lzss):
                    parts[c], ids[c] = as_huff, huff_codec.codec_id
                    winner = huff_codec.name
                else:
                    parts[c], ids[c] = as_lzss, lzss_codec.codec_id
                    winner = lzss_codec.name
                key = _metric_key(winner)
                obs.observe(f"codec.encode_{key}_seconds", elapsed)
                obs.inc(f"codec.encode_{key}_bytes", int(chunk.size))
        else:
            run_codec = get_codec(names[i])
            t0 = perf_counter()
            payload, sizes = run_codec.encode_run(arr[lo:hi], fmt,
                                                  chunk_size,
                                                  max_chain=max_chain)
            key = _metric_key(run_codec.name)
            obs.observe(f"codec.encode_{key}_seconds", perf_counter() - t0)
            obs.inc(f"codec.encode_{key}_bytes", hi - lo)
            offs = np.concatenate([[0], np.cumsum(sizes)])
            for k, c in enumerate(range(i, j)):
                parts[c] = payload[int(offs[k]):int(offs[k + 1])]
                ids[c] = run_codec.codec_id
        i = j

    payload = b"".join(parts)
    chunk_sizes = np.asarray([len(p) for p in parts], dtype=np.int64)
    _account(ids, chunk_sizes, n, chunk_size)
    return EncodeResult(payload=payload, format=fmt, input_size=n,
                        chunk_sizes=chunk_sizes, chunk_size=chunk_size,
                        stats=_empty_stats(n, len(payload)),
                        chunk_codecs=ids)


def _account(ids: np.ndarray, chunk_sizes: np.ndarray, input_size: int,
             chunk_size: int) -> None:
    """Per-codec obs counters and compressed-ratio histograms."""
    if not obs.enabled():
        return
    n = ids.size
    for c in range(n):
        key = _metric_key(get_codec(int(ids[c])).name)
        obs.inc(f"codec.chunks_{key}")
        raw = min(chunk_size, input_size - c * chunk_size)
        if raw > 0:
            obs.observe(f"codec.ratio_{key}",
                        float(chunk_sizes[c]) / raw)


# ---------------------------------------------------------------- decode

def decode_chunked_multi(payload, fmt: TokenFormat, chunk_sizes: np.ndarray,
                         chunk_size: int, output_size: int,
                         chunk_codecs: np.ndarray, *,
                         chunk_crcs: np.ndarray | None = None,
                         first_chunk: int = 0) -> tuple[bytes, np.ndarray]:
    """Strict decode of a mixed-codec chunk stream (container v3).

    The per-chunk codec column routes every chunk to its recorded
    codec; an unknown codec id raises :class:`CorruptChunkError` naming
    the chunk, exactly like a CRC mismatch would.
    """
    arr = as_u8(payload)
    chunk_sizes = np.asarray(chunk_sizes, dtype=np.int64)
    chunk_codecs = np.asarray(chunk_codecs, dtype=np.uint8)
    require(int(chunk_sizes.sum()) == arr.size,
            "chunk size table does not cover the payload")
    n_chunks = chunk_sizes.size
    expected = (output_size + chunk_size - 1) // chunk_size if output_size else 0
    require(n_chunks == expected,
            f"expected {expected} chunks for {output_size} bytes, got {n_chunks}")
    require(chunk_codecs.size == n_chunks,
            "codec column does not cover the chunks")

    known = known_codec_ids()
    out = np.zeros(output_size, dtype=np.uint8)
    tokens = np.zeros(n_chunks, dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(chunk_sizes)])
    checks = failures = 0
    # Per-codec decode ledger: accumulate locally per codec id and
    # record once after the loop, never per chunk.
    per_codec: dict[int, list] = {}
    try:
        with obs.stage("decode.stream", bytes=output_size, chunks=n_chunks,
                       multi=True):
            for c in range(n_chunks):
                lo = c * chunk_size
                hi = min(lo + chunk_size, output_size)
                cid = int(chunk_codecs[c])
                if cid not in known:
                    raise CorruptChunkError(
                        f"unknown codec id {cid}",
                        chunk_index=first_chunk + c,
                        offset=int(offsets[c]))
                piece = arr[offsets[c]:offsets[c + 1]]
                if chunk_crcs is not None:
                    checks += 1
                    if crc32(piece) != int(chunk_crcs[c]):
                        failures += 1
                        raise CorruptChunkError(
                            "chunk checksum mismatch",
                            chunk_index=first_chunk + c,
                            offset=int(offsets[c]))
                t0 = perf_counter()
                out[lo:hi] = get_codec(cid).decode_chunk(
                    piece, fmt, hi - lo, chunk_index=first_chunk + c)
                acc = per_codec.setdefault(cid, [0.0, 0])
                acc[0] += perf_counter() - t0
                acc[1] += hi - lo
        for cid, (secs, nbytes) in per_codec.items():
            key = _metric_key(get_codec(cid).name)
            obs.observe(f"codec.decode_{key}_seconds", secs)
            obs.inc(f"codec.decode_{key}_bytes", nbytes)
    finally:
        if checks:
            obs.inc("container.crc_checks", checks)
        if failures:
            obs.inc("container.crc_failures", failures)
    return out.tobytes(), tokens


def salvage_decode_chunked_multi(
        payload, fmt: TokenFormat, chunk_sizes: np.ndarray,
        chunk_size: int, output_size: int, chunk_codecs: np.ndarray, *,
        chunk_crcs: np.ndarray | None = None, fill_byte: int = 0,
        first_chunk: int = 0) -> tuple[bytes, np.ndarray, SalvageReport]:
    """Best-effort decode of a mixed-codec chunk stream.

    Extends classic salvage with the codec column: a chunk whose codec
    id is unknown (bit rot in the column itself, or an archive from a
    newer library) is *lost* — filled with ``fill_byte``, reported in
    the :class:`SalvageReport` both in ``lost`` and in the dedicated
    ``unknown_codec`` list — instead of aborting the whole archive.
    """
    require(0 <= fill_byte <= 255, "fill_byte must be one byte")
    arr = as_u8(payload)
    chunk_sizes = np.asarray(chunk_sizes, dtype=np.int64)
    chunk_codecs = np.asarray(chunk_codecs, dtype=np.uint8)
    n_chunks = chunk_sizes.size
    expected = (output_size + chunk_size - 1) // chunk_size if output_size else 0
    require(n_chunks == expected,
            f"expected {expected} chunks for {output_size} bytes, got {n_chunks}")
    require(chunk_codecs.size == n_chunks,
            "codec column does not cover the chunks")

    known = known_codec_ids()
    out = np.full(output_size, fill_byte, dtype=np.uint8)
    tokens = np.zeros(n_chunks, dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(chunk_sizes)])
    report = SalvageReport(n_chunks=n_chunks, fill_byte=fill_byte)
    checks = failures = 0
    with obs.stage("decode.stream", bytes=output_size, chunks=n_chunks,
                   salvage=True, multi=True):
        for c in range(n_chunks):
            lo = c * chunk_size
            hi = min(lo + chunk_size, output_size)
            p_lo, p_hi = int(offsets[c]), int(offsets[c + 1])
            cid = int(chunk_codecs[c])
            good = p_hi <= arr.size
            if cid not in known:
                report.unknown_codec.append(first_chunk + c)
                good = False
            if good and chunk_crcs is not None:
                checks += 1
                good = crc32(arr[p_lo:p_hi]) == int(chunk_crcs[c])
                failures += not good
            if good:
                try:
                    out[lo:hi] = get_codec(cid).decode_chunk(
                        arr[p_lo:p_hi], fmt, hi - lo,
                        chunk_index=first_chunk + c)
                except (CorruptChunkError, TruncatedContainerError):
                    out[lo:hi] = fill_byte
                    good = False
            if good:
                report.recovered.append(first_chunk + c)
            else:
                report.lost.append(first_chunk + c)
                report.lost_ranges.append((lo, hi))
    if checks:
        obs.inc("container.crc_checks", checks)
    if failures:
        obs.inc("container.crc_failures", failures)
    obs.inc("container.salvage_chunks_recovered", len(report.recovered))
    obs.inc("container.salvage_chunks_lost", len(report.lost))
    return out.tobytes(), tokens, report
