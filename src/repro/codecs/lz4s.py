"""The ``lz4s`` codec: a byte-aligned literal-run/match format for speed.

LZSS spends one flag bit per token and packs fields at arbitrary bit
offsets — great for ratio, but both ends pay for the bit twiddling.
This codec trades ratio for throughput the way LZ4 does (cf. the
GPU-LZ4 line of work, arXiv:2409.12433): everything is byte-aligned,
literals travel in *runs* under one control byte, and the matcher runs
at a shallow chain depth.

Wire format (per chunk, self-contained):

* control byte ``c < 0x80`` — literal run: the next ``c + 1`` bytes
  (1..128) are verbatim literals.  Longer runs split into consecutive
  full blocks.
* control byte ``c >= 0x80`` — match: length ``(c & 0x7F) + 4``
  (4..131), followed by a 2-byte little-endian distance (1..65535).

Matches never cross chunk boundaries, distances are chunk-local, and
a chunk's stream must consume its payload exactly and produce exactly
the declared output size — violations raise
:class:`~repro.errors.CorruptChunkError` like every other codec.

Both directions are single-pass NumPy: encode scatters control and
literal bytes with :func:`~repro.util.bitio.ragged_arange`, decode
walks a byte-level jump chain (:func:`~repro.lzss.parse.reachable_from`)
and resolves matches with the decoder's pointer-jumping trick.
"""

from __future__ import annotations

import numpy as np

from repro.codecs.base import Codec, register_codec
from repro.errors import CorruptChunkError
from repro.lzss.formats import TokenFormat
from repro.lzss.matcher import hash_chain_best_matches
from repro.lzss.parse import greedy_token_starts, reachable_from
from repro.util.bitio import ragged_arange
from repro.util.buffers import as_u8
from repro.util.validation import require_range

__all__ = [
    "LZ4S_CODEC_ID",
    "LZ4S_MAX_DIST",
    "LZ4S_MAX_MATCH",
    "LZ4S_MIN_MATCH",
    "Lz4sCodec",
    "lz4s_decode_chunk",
    "lz4s_encode_chunked",
]

LZ4S_CODEC_ID = 3
LZ4S_MIN_MATCH = 4
LZ4S_MAX_MATCH = 0x7F + LZ4S_MIN_MATCH  # 131
LZ4S_MAX_RUN = 128
LZ4S_MAX_DIST = 0xFFFF

#: Shallow chain depth — the speed knob.  Eight probes catches the
#: bulk of 4+ byte matches at a fraction of the default depth of 64.
LZ4S_MAX_CHAIN = 8


def lz4s_encode_chunked(data, chunk_size: int, *,
                        max_chain: int = LZ4S_MAX_CHAIN
                        ) -> tuple[bytes, np.ndarray]:
    """Encode consecutive chunks; returns (payload, per-chunk sizes)."""
    arr = as_u8(data)
    n = arr.size
    require_range(chunk_size, 1, 1 << 40, "chunk_size")
    n_chunks = (n + chunk_size - 1) // chunk_size if n else 0
    if n_chunks == 0:
        return b"", np.zeros(0, dtype=np.int64)

    window = min(chunk_size, LZ4S_MAX_DIST)
    blen, bdist = hash_chain_best_matches(arr, window, LZ4S_MAX_MATCH,
                                          max_chain=max_chain,
                                          chunk_size=chunk_size)
    matchable = blen >= LZ4S_MIN_MATCH
    advance = np.where(matchable, blen, 1).astype(np.int64)
    starts = greedy_token_starts(advance, chunk_size)

    is_match = matchable[starts]
    chunk_id = starts // chunk_size

    # Coalesce consecutive literal tokens into run *elements*; every
    # match token is its own element.  A new element begins at a match,
    # right after a match, or at a chunk boundary.
    n_tok = starts.size
    head = np.ones(n_tok, dtype=bool)
    head[1:] = (is_match[1:] | is_match[:-1]
                | (chunk_id[1:] != chunk_id[:-1]))
    elem_id = np.cumsum(head) - 1
    head_pos = np.nonzero(head)[0]
    n_elem = head_pos.size

    elem_is_match = is_match[head_pos]
    elem_start = starts[head_pos]
    elem_chunk = chunk_id[head_pos]
    # Literal tokens all advance by 1, so a run's literal count is its
    # token count; matches contribute zero literals.
    run_len = np.bincount(elem_id[~is_match], minlength=n_elem)

    n_ctrl = -(-run_len // LZ4S_MAX_RUN)  # ceil; 0 for match elements
    elem_size = np.where(elem_is_match, 3, n_ctrl + run_len)
    elem_off = np.concatenate(([0], np.cumsum(elem_size)[:-1]))
    chunk_sizes = np.bincount(elem_chunk, weights=elem_size,
                              minlength=n_chunks).astype(np.int64)

    out = np.empty(int(elem_size.sum()), dtype=np.uint8)

    lit_elems = np.nonzero(~elem_is_match)[0]
    if lit_elems.size:
        # Control byte per 128-literal block: value = block size - 1.
        blocks = n_ctrl[lit_elems]
        rep = np.repeat(lit_elems, blocks)
        j = ragged_arange(blocks)
        block_size = np.minimum(LZ4S_MAX_RUN,
                                run_len[rep] - LZ4S_MAX_RUN * j)
        out[elem_off[rep] + j * (LZ4S_MAX_RUN + 1)] = \
            (block_size - 1).astype(np.uint8)
        # Literal bytes, skipping one control slot per block.
        lens = run_len[lit_elems]
        rep2 = np.repeat(lit_elems, lens)
        k = ragged_arange(lens)
        dest = (elem_off[rep2] + (k // LZ4S_MAX_RUN) * (LZ4S_MAX_RUN + 1)
                + 1 + k % LZ4S_MAX_RUN)
        out[dest] = arr[elem_start[rep2] + k]

    m_elems = np.nonzero(elem_is_match)[0]
    if m_elems.size:
        m_off = elem_off[m_elems]
        m_len = advance[elem_start[m_elems]]
        m_dist = bdist[elem_start[m_elems]].astype(np.int64)
        out[m_off] = (0x80 | (m_len - LZ4S_MIN_MATCH)).astype(np.uint8)
        out[m_off + 1] = (m_dist & 0xFF).astype(np.uint8)
        out[m_off + 2] = (m_dist >> 8).astype(np.uint8)

    return out.tobytes(), chunk_sizes


def lz4s_decode_chunk(payload: np.ndarray, output_size: int,
                      chunk_index: int = 0) -> np.ndarray:
    """Decode one chunk payload to exactly ``output_size`` bytes."""
    def corrupt(message: str, token: int | None = None) -> CorruptChunkError:
        return CorruptChunkError(message, chunk_index=chunk_index,
                                 token_position=token)

    p = np.asarray(payload, dtype=np.uint8)
    nb = p.size
    if output_size == 0:
        if nb:
            raise corrupt("lz4s: nonempty payload for empty chunk")
        return np.zeros(0, dtype=np.uint8)
    if nb == 0:
        raise corrupt("lz4s: empty payload for nonempty chunk")

    # Byte-level token scan: every control byte names its token size.
    ctrl = p.astype(np.int64)
    step = np.where(ctrl >= 0x80, 3, ctrl + 2)
    jump = np.arange(nb, dtype=np.int64) + step
    starts = reachable_from(jump, 0)
    ends = starts + step[starts]
    if int(ends[-1]) != nb:
        raise corrupt("lz4s: token stream does not consume payload exactly",
                      token=int(starts.size) - 1)

    c = ctrl[starts]
    t_is_match = c >= 0x80
    out_len = np.where(t_is_match, (c & 0x7F) + LZ4S_MIN_MATCH, c + 1)
    out_ends = np.cumsum(out_len)
    if int(out_ends[-1]) != output_size:
        raise corrupt("lz4s: token output does not land on declared size",
                      token=int(starts.size) - 1)
    out_start = out_ends - out_len

    parent = np.arange(output_size, dtype=np.int64)
    values8 = np.zeros(output_size, dtype=np.uint8)

    lit_idx = np.nonzero(~t_is_match)[0]
    if lit_idx.size:
        lens = out_len[lit_idx]
        rep = np.repeat(lit_idx, lens)
        k = ragged_arange(lens)
        values8[out_start[rep] + k] = p[starts[rep] + 1 + k]

    m_idx = np.nonzero(t_is_match)[0]
    if m_idx.size:
        m_start = starts[m_idx]
        dist = ctrl[m_start + 1] | (ctrl[m_start + 2] << 8)
        if int(dist.min()) == 0:
            raise corrupt("lz4s: zero match distance",
                          token=int(m_idx[np.nonzero(dist == 0)[0][0]]))
        m_len = out_len[m_idx]
        flat = np.repeat(out_start[m_idx], m_len) + ragged_arange(m_len)
        parent[flat] = flat - np.repeat(dist, m_len)
        if int(parent.min()) < 0:
            bad = int(np.nonzero(parent < 0)[0][0])
            raise corrupt("lz4s: back-reference before chunk start",
                          token=int(np.searchsorted(out_start, bad,
                                                    side="right")) - 1)

    for _ in range(64):
        grand = parent[parent]
        if np.array_equal(grand, parent):
            break
        parent = grand
    else:  # pragma: no cover - 2**64 chain depth is impossible
        raise corrupt("lz4s: unresolvable reference chain")

    return values8[parent]


class Lz4sCodec(Codec):
    name = "lz4s"
    codec_id = LZ4S_CODEC_ID
    entropy_coded = False
    uses_token_format = False

    def encode_chunk(self, chunk: np.ndarray, fmt: TokenFormat) -> bytes:
        if chunk.size == 0:
            return b""
        payload, _sizes = lz4s_encode_chunked(chunk, int(chunk.size))
        return payload

    def decode_chunk(self, payload: np.ndarray, fmt: TokenFormat,
                     output_size: int, *, chunk_index: int = 0) -> np.ndarray:
        return lz4s_decode_chunk(payload, output_size, chunk_index)

    def encode_run(self, data: np.ndarray, fmt: TokenFormat,
                   chunk_size: int, *,
                   max_chain: int = 64) -> tuple[bytes, np.ndarray]:
        # The shallow-chain default is the codec's identity; the
        # engine-wide max_chain (tuned for lzss ratio) is ignored.
        return lz4s_encode_chunked(data, chunk_size)


register_codec(Lz4sCodec())
