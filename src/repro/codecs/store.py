"""The ``store`` codec: raw passthrough for incompressible chunks.

Compression schemes pay a framing tax on data they cannot shrink —
LZSS spends 9 bits per literal, so a chunk of high-entropy bytes
*expands* by ~12.5%.  The store codec is the dispatcher's escape
hatch: the chunk's bytes are the payload, verbatim.  Decoding is a
length check and a copy; the per-chunk CRC (container v2+) still
guards integrity.
"""

from __future__ import annotations

import numpy as np

from repro.codecs.base import Codec, register_codec
from repro.errors import CorruptChunkError
from repro.lzss.formats import TokenFormat

__all__ = ["STORE_CODEC_ID", "StoreCodec"]

STORE_CODEC_ID = 1


class StoreCodec(Codec):
    name = "store"
    codec_id = STORE_CODEC_ID
    entropy_coded = False
    uses_token_format = False

    def encode_chunk(self, chunk: np.ndarray, fmt: TokenFormat) -> bytes:
        return chunk.tobytes()

    def decode_chunk(self, payload: np.ndarray, fmt: TokenFormat,
                     output_size: int, *, chunk_index: int = 0) -> np.ndarray:
        if payload.size != output_size:
            raise CorruptChunkError(
                f"store payload is {payload.size} bytes, "
                f"declared output is {output_size}",
                chunk_index=chunk_index)
        return np.asarray(payload, dtype=np.uint8)

    def encode_run(self, data: np.ndarray, fmt: TokenFormat,
                   chunk_size: int, *,
                   max_chain: int = 64) -> tuple[bytes, np.ndarray]:
        n = int(data.size)
        n_chunks = -(-n // chunk_size) if n else 0
        sizes = np.full(n_chunks, chunk_size, dtype=np.int64)
        if n_chunks:
            sizes[-1] = n - (n_chunks - 1) * chunk_size
        return data.tobytes(), sizes


register_codec(StoreCodec())
