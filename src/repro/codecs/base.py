"""Codec interface and registry — the per-chunk pluggability contract.

The paper's container (§III.C) already records a compressed size per
chunk, which makes the *codec* a per-chunk decision too: any coder
that can turn one chunk of bytes into a self-contained payload and
back can slot into the same container, engine sharding, salvage and
service layers.  This module pins that contract down:

* :class:`Codec` — the ABC every concrete coder implements:
  ``encode_chunk``/``decode_chunk`` plus a stable wire ``codec_id``
  (one byte in the container v3 codec column) and capability flags
  the dispatcher and tooling can inspect.
* a process-global registry mapping both names (CLI, service
  negotiation) and wire ids (container column) to codec instances.

Codec ids are wire format: they appear verbatim in container v3 blobs
and in gateway negotiation frames, so they are assigned once and never
reused.  Id ``0`` is deliberately invalid — a zeroed codec column
reads as corruption, not as ``store``.
"""

from __future__ import annotations

import abc
from typing import ClassVar

import numpy as np

from repro.lzss.formats import TokenFormat
from repro.util.validation import require

__all__ = [
    "Codec",
    "codec_names",
    "get_codec",
    "known_codec_ids",
    "register_codec",
]


class Codec(abc.ABC):
    """One chunk-granular compression scheme.

    A codec maps one chunk of raw bytes to one self-contained payload
    and back.  Payloads never reference anything outside their chunk,
    which is what keeps container chunks independently decodable (and
    salvageable) regardless of which codec produced each one.

    Class attributes
    ----------------
    name:
        Registry / CLI / negotiation identifier (kebab-case).
    codec_id:
        Stable one-byte wire id recorded in the container v3 codec
        column.  Never reused across codecs.
    entropy_coded:
        Whether the payload has an entropy-coding stage (affects what
        the dispatcher expects a second pass to gain).
    uses_token_format:
        Whether :class:`TokenFormat` parameters (window, field widths)
        shape the payload.  ``False`` means ``fmt`` is ignored and a
        payload decodes under any format argument.
    """

    name: ClassVar[str]
    codec_id: ClassVar[int]
    entropy_coded: ClassVar[bool] = False
    uses_token_format: ClassVar[bool] = True

    @abc.abstractmethod
    def encode_chunk(self, chunk: np.ndarray, fmt: TokenFormat) -> bytes:
        """Compress one chunk (uint8 array) to a self-contained payload."""

    @abc.abstractmethod
    def decode_chunk(self, payload: np.ndarray, fmt: TokenFormat,
                     output_size: int, *, chunk_index: int = 0) -> np.ndarray:
        """Recover exactly ``output_size`` bytes from one chunk payload.

        Raises :class:`repro.errors.CorruptChunkError` (carrying
        ``chunk_index``) when the payload cannot produce a stream of
        the declared size — the hook per-chunk salvage relies on.
        """

    # -- batch hook --------------------------------------------------
    def encode_run(self, data: np.ndarray, fmt: TokenFormat,
                   chunk_size: int, *,
                   max_chain: int = 64) -> tuple[bytes, np.ndarray]:
        """Encode a run of consecutive chunks; returns (payload, sizes).

        The default is a per-chunk loop over :meth:`encode_chunk`;
        vectorized codecs override it to process the whole run in one
        NumPy pass (the dispatcher groups same-codec chunk runs and
        calls this, so auto mode keeps batch throughput).
        """
        n = int(data.size)
        parts: list[bytes] = []
        sizes: list[int] = []
        for lo in range(0, n, chunk_size):
            part = self.encode_chunk(data[lo:lo + chunk_size], fmt)
            parts.append(part)
            sizes.append(len(part))
        return b"".join(parts), np.asarray(sizes, dtype=np.int64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Codec {self.name} id={self.codec_id}>"


_BY_NAME: dict[str, Codec] = {}
_BY_ID: dict[int, Codec] = {}


def register_codec(codec: Codec) -> Codec:
    """Add a codec to the global registry (name and wire id unique)."""
    require(1 <= codec.codec_id <= 255,
            f"codec_id must be in [1, 255], got {codec.codec_id}")
    prev = _BY_NAME.get(codec.name)
    if prev is not None and type(prev) is not type(codec):
        raise ValueError(f"codec name {codec.name!r} already registered")
    prev_id = _BY_ID.get(codec.codec_id)
    if prev_id is not None and type(prev_id) is not type(codec):
        raise ValueError(f"codec id {codec.codec_id} already registered")
    _BY_NAME[codec.name] = codec
    _BY_ID[codec.codec_id] = codec
    return codec


def get_codec(key: str | int) -> Codec:
    """Look a codec up by registry name or wire id."""
    table: dict = _BY_ID if isinstance(key, (int, np.integer)) else _BY_NAME
    codec = table.get(int(key) if isinstance(key, np.integer) else key)
    if codec is None:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown codec {key!r} (registered: {known})")
    return codec


def codec_names() -> tuple[str, ...]:
    """Registered codec names, sorted by wire id (stable CLI order)."""
    return tuple(c.name for _, c in sorted(_BY_ID.items()))


def known_codec_ids() -> frozenset[int]:
    """The set of wire ids a container codec column may legally carry."""
    return frozenset(_BY_ID)
