"""The ``lzss`` codec: the paper's token format behind the Codec ABC.

A thin adapter — per-chunk encode/decode delegate to the existing
vectorized encoder and decoder, and the batch hook is exactly
:func:`repro.lzss.encoder.encode_chunked`, so a run of lzss chunks
under the dispatcher is byte-identical to (and as fast as) the classic
single-codec path.
"""

from __future__ import annotations

import numpy as np

from repro.codecs.base import Codec, register_codec
from repro.lzss.decoder import _decode_stream
from repro.lzss.encoder import encode_chunked
from repro.lzss.formats import TokenFormat

__all__ = ["LZSS_CODEC_ID", "LzssCodec"]

LZSS_CODEC_ID = 2


class LzssCodec(Codec):
    name = "lzss"
    codec_id = LZSS_CODEC_ID
    entropy_coded = False
    uses_token_format = True

    def encode_chunk(self, chunk: np.ndarray, fmt: TokenFormat) -> bytes:
        if chunk.size == 0:
            return b""
        # chunk_size == len(chunk) keeps matches chunk-confined and pads
        # to a byte boundary — identical bytes to this chunk's slice of
        # a full encode_chunked stream.
        return encode_chunked(chunk, fmt, int(chunk.size)).payload

    def decode_chunk(self, payload: np.ndarray, fmt: TokenFormat,
                     output_size: int, *, chunk_index: int = 0) -> np.ndarray:
        out, _tokens = _decode_stream(payload, fmt, output_size,
                                      chunk_index=chunk_index)
        return out

    def encode_run(self, data: np.ndarray, fmt: TokenFormat,
                   chunk_size: int, *,
                   max_chain: int = 64) -> tuple[bytes, np.ndarray]:
        result = encode_chunked(data, fmt, chunk_size, max_chain=max_chain)
        return result.payload, np.asarray(result.chunk_sizes, dtype=np.int64)


register_codec(LzssCodec())
