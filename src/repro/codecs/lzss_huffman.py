"""The ``lzss-huffman`` codec: LZSS tokens under an entropy stage.

LZSS spends a flat 9 bits per literal; on text (~4.5 bits of actual
entropy per byte) that is the dominant waste.  Following the classic
LZSS+Huffman pairing (cf. arXiv:1107.1525), this codec tokenizes a
chunk exactly like ``lzss`` and then entropy-codes the token stream
with the canonical length-limited Huffman coder from
:mod:`repro.bzip2.huffman`:

* a 257-symbol alphabet — byte values 0..255 for literals plus a
  ``MATCH`` marker (256) — carries the token *sequence*;
* match fields ride in a separate raw bit stream, ``length_bits``
  of (length − min_match) then ``offset_bits`` of (distance − 1)
  per match, in token order.

Wire format (per chunk, self-contained, all lengths byte-aligned)::

    u32 n_tokens   u32 n_matches   u32 sym_bits      (little-endian)
    129 bytes      nibble-packed code lengths, symbols 0..256
                   (symbol i -> byte i//2, even i low nibble)
    ceil(sym_bits/8) bytes        Huffman-coded symbol stream
    ceil(n_matches*(offset_bits+length_bits)/8) bytes  match fields

Code lengths are limited to 15 so every length fits one nibble and
the decode LUT stays 32K entries.  The ~141-byte header tax is why
the dispatcher only picks this codec when literal entropy is low
enough for the symbol stream to win it back.
"""

from __future__ import annotations

import struct
from time import perf_counter

import numpy as np

from repro import obs
from repro.bzip2.huffman import HuffmanCode, huffman_decode, huffman_encode
from repro.codecs.base import Codec, register_codec
from repro.errors import CorruptChunkError
from repro.lzss.encoder import best_matches
from repro.lzss.formats import TokenFormat
from repro.lzss.parse import greedy_token_starts
from repro.util.bitio import gather_fields, pack_tokens, ragged_arange, unpack_bits

__all__ = ["LZSS_HUFFMAN_CODEC_ID", "MATCH_SYMBOL", "LzssHuffmanCodec"]

LZSS_HUFFMAN_CODEC_ID = 4

#: The 257th symbol: "a match token follows in the field stream".
MATCH_SYMBOL = 256
_N_SYMBOLS = 257
_TABLE_BYTES = (_N_SYMBOLS + 1) // 2  # 129 nibble-packed lengths
_HEADER = struct.Struct("<III")
#: Nibble-packed lengths cap the code depth (and the decode LUT) at 15.
_MAX_CODE_LEN = 15


class LzssHuffmanCodec(Codec):
    name = "lzss-huffman"
    codec_id = LZSS_HUFFMAN_CODEC_ID
    entropy_coded = True
    uses_token_format = True

    def encode_chunk(self, chunk: np.ndarray, fmt: TokenFormat,
                     *, max_chain: int = 64) -> bytes:
        if chunk.size == 0:
            return b""
        blen, bdist, _c, _p, _w = best_matches(chunk, fmt, None, max_chain)
        matchable = blen >= fmt.min_match
        advance = np.where(matchable, blen, 1).astype(np.int64)
        starts = greedy_token_starts(advance)
        is_match = matchable[starts]

        symbols = np.where(is_match, MATCH_SYMBOL,
                           chunk[starts].astype(np.int64))
        # Ledger: the entropy stage alone (tree build + symbol coding),
        # recorded raw rather than as a span — this runs per chunk.
        t0 = perf_counter()
        code = HuffmanCode.from_frequencies(
            np.bincount(symbols, minlength=_N_SYMBOLS), _MAX_CODE_LEN)
        sym_payload, sym_bits = huffman_encode(symbols, code)
        obs.observe("codec.huffman_seconds", perf_counter() - t0)
        obs.inc("codec.huffman_bytes", int(chunk.size))

        m_starts = starts[is_match]
        m_len = advance[m_starts]
        m_dist = bdist[m_starts].astype(np.int64)
        fw = fmt.offset_bits + fmt.length_bits
        fields = ((m_dist - 1) << fmt.length_bits) | (m_len - fmt.min_match)
        match_payload, _bits = pack_tokens(
            fields, np.full(fields.size, fw, dtype=np.int64))

        nib = np.zeros(_TABLE_BYTES * 2, dtype=np.uint8)
        nib[:_N_SYMBOLS] = code.lengths.astype(np.uint8)
        table = (nib[0::2] | (nib[1::2] << 4)).tobytes()

        header = _HEADER.pack(int(starts.size), int(m_starts.size),
                              int(sym_bits))
        return header + table + sym_payload + match_payload

    def decode_chunk(self, payload: np.ndarray, fmt: TokenFormat,
                     output_size: int, *, chunk_index: int = 0) -> np.ndarray:
        def corrupt(message: str) -> CorruptChunkError:
            return CorruptChunkError(f"lzss-huffman: {message}",
                                     chunk_index=chunk_index)

        p = np.asarray(payload, dtype=np.uint8)
        if output_size == 0:
            if p.size:
                raise corrupt("nonempty payload for empty chunk")
            return np.zeros(0, dtype=np.uint8)
        if p.size < _HEADER.size + _TABLE_BYTES:
            raise corrupt("payload too short for header and code table")
        n_tokens, n_matches, sym_bits = _HEADER.unpack_from(p.tobytes(), 0)
        if not (1 <= n_tokens <= output_size and n_matches <= n_tokens):
            raise corrupt("inconsistent token counts")

        packed = p[_HEADER.size:_HEADER.size + _TABLE_BYTES]
        lengths = np.empty(_TABLE_BYTES * 2, dtype=np.int64)
        lengths[0::2] = packed & 0x0F
        lengths[1::2] = packed >> 4
        lengths = lengths[:_N_SYMBOLS]

        sym_off = _HEADER.size + _TABLE_BYTES
        sym_nbytes = (sym_bits + 7) // 8
        fw = fmt.offset_bits + fmt.length_bits
        match_nbytes = (n_matches * fw + 7) // 8
        if p.size != sym_off + sym_nbytes + match_nbytes:
            raise corrupt(
                f"payload is {p.size} bytes, layout declares "
                f"{sym_off + sym_nbytes + match_nbytes}")

        try:
            code = HuffmanCode.from_lengths(lengths)
            symbols = huffman_decode(
                p[sym_off:sym_off + sym_nbytes].tobytes(), sym_bits, code,
                n_tokens)
        except ValueError as exc:
            raise corrupt(str(exc)) from exc
        is_match = symbols == MATCH_SYMBOL
        if int(is_match.sum()) != n_matches:
            raise corrupt("match marker count disagrees with header")

        out_len = np.ones(n_tokens, dtype=np.int64)
        if n_matches:
            fields = gather_fields(
                unpack_bits(p[sym_off + sym_nbytes:]),
                np.arange(n_matches, dtype=np.int64) * fw, fw)
            m_len = (fields & ((1 << fmt.length_bits) - 1)) + fmt.min_match
            m_dist = (fields >> fmt.length_bits) + 1
            if int(m_dist.max()) > fmt.window:
                raise corrupt("match distance exceeds window")
            out_len[is_match] = m_len
        ends = np.cumsum(out_len)
        if int(ends[-1]) != output_size:
            raise corrupt("token output does not land on declared size")
        out_start = ends - out_len

        parent = np.arange(output_size, dtype=np.int64)
        values8 = np.zeros(output_size, dtype=np.uint8)
        lit_pos = out_start[~is_match]
        values8[lit_pos] = symbols[~is_match].astype(np.uint8)
        if n_matches:
            flat = (np.repeat(out_start[is_match], m_len)
                    + ragged_arange(m_len))
            parent[flat] = flat - np.repeat(m_dist, m_len)
            if int(parent.min()) < 0:
                raise corrupt("back-reference before chunk start")
        for _ in range(64):
            grand = parent[parent]
            if np.array_equal(grand, parent):
                break
            parent = grand
        else:  # pragma: no cover - 2**64 chain depth is impossible
            raise corrupt("unresolvable reference chain")
        return values8[parent]


register_codec(LzssHuffmanCodec())
