"""Pluggable per-chunk codecs: registry, four coders, and dispatch.

The paper's container records a compressed size per chunk (§III.C),
which makes the codec itself a per-chunk decision.  This package turns
that observation into an interface:

* :mod:`repro.codecs.base` — the :class:`Codec` ABC and registry;
* :mod:`repro.codecs.store` — raw passthrough (id 1);
* :mod:`repro.codecs.lzss` — the paper's token format (id 2);
* :mod:`repro.codecs.lz4s` — byte-aligned literal-run/match format
  tuned for encode throughput (id 3);
* :mod:`repro.codecs.lzss_huffman` — LZSS tokens under a canonical
  Huffman entropy stage, tuned for ratio (id 4);
* :mod:`repro.codecs.dispatch` — the content-aware per-chunk chooser
  (``--codec auto``) and the mixed-codec decode/salvage loops.

Importing the package registers the four built-in codecs.
"""

from repro.codecs.base import (
    Codec,
    codec_names,
    get_codec,
    known_codec_ids,
    register_codec,
)
from repro.codecs.lz4s import LZ4S_CODEC_ID, Lz4sCodec
from repro.codecs.lzss import LZSS_CODEC_ID, LzssCodec
from repro.codecs.lzss_huffman import LZSS_HUFFMAN_CODEC_ID, LzssHuffmanCodec
from repro.codecs.store import STORE_CODEC_ID, StoreCodec
from repro.codecs.dispatch import (
    choose_chunk_codec,
    decode_chunked_multi,
    encode_chunked_auto,
    match_density,
    salvage_decode_chunked_multi,
)

__all__ = [
    "Codec",
    "LZ4S_CODEC_ID",
    "LZSS_CODEC_ID",
    "LZSS_HUFFMAN_CODEC_ID",
    "Lz4sCodec",
    "LzssCodec",
    "LzssHuffmanCodec",
    "STORE_CODEC_ID",
    "StoreCodec",
    "choose_chunk_codec",
    "codec_names",
    "decode_chunked_multi",
    "encode_chunked_auto",
    "get_codec",
    "known_codec_ids",
    "match_density",
    "register_codec",
    "salvage_decode_chunked_multi",
]
