"""Lightweight tracing: nested spans in a ring buffer.

``span("encode.match", chunk=3)`` times a region and records a
:class:`Span` on exit.  Spans nest through a :class:`contextvars`
context variable — the async-safe, thread-local-compatible way to
carry "who is my parent" — and land in a bounded ring buffer
(``collections.deque``), so a long-running gateway traces forever in
O(capacity) memory and an export simply drains or copies the ring.

Cross-thread and cross-process propagation are explicit:

* a thread pool wraps its work items with :func:`attach` around the
  submitting context (:func:`current`), so shard spans parent to the
  caller's span even though contextvars do not cross threads on their
  own — :class:`repro.engine.ParallelEngine` does exactly this;
* a process pool ships the integer ``trace_id`` (frames carry it in
  the protocol-v2 header field) and the worker opens its spans under
  that id; worker rings travel back inside the registry delta
  (:func:`repro.obs.delta`) and :func:`ingest` them in the parent.

Timestamps are ``perf_counter`` seconds — on Linux that is
``CLOCK_MONOTONIC``, shared by every process on the box, so spans from
pool workers line up with the parent's on one chrome-trace timeline.
"""

from __future__ import annotations

import itertools
import os
import threading
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from time import perf_counter

__all__ = [
    "DEFAULT_RING_CAPACITY",
    "Span",
    "attach",
    "clear",
    "current",
    "drain",
    "ingest",
    "new_trace_id",
    "set_capacity",
    "span",
    "spans",
]

DEFAULT_RING_CAPACITY = 8192

#: (trace_id, span_id) of the innermost open span, or None at top level.
_CTX: ContextVar[tuple[int, int] | None] = ContextVar("repro_obs_span",
                                                      default=None)

_RING: deque = deque(maxlen=DEFAULT_RING_CAPACITY)
_RING_LOCK = threading.Lock()
# Ids only need process-lifetime uniqueness; folding the pid into the
# high bits keeps worker-process spans from colliding in a merged ring.
_IDS = itertools.count(1)


def _new_id() -> int:
    return (os.getpid() & 0xFFFFFF) << 40 | next(_IDS)


def new_trace_id() -> int:
    """A fresh id grouping one logical operation's spans end to end."""
    return _new_id()


@dataclass
class Span:
    """One completed timed region.  Picklable — deltas carry these."""

    name: str
    trace_id: int
    span_id: int
    parent_id: int
    start: float          # perf_counter seconds
    duration: float       # seconds
    pid: int
    thread: str
    attrs: dict = field(default_factory=dict)


@contextmanager
def span(name: str, *, trace_id: int | None = None, **attrs):
    """Time a region; record a :class:`Span` when it closes.

    Child spans opened inside (same task/thread context) parent to this
    one automatically.  ``trace_id`` forces the trace grouping — the
    cross-process case where the id arrived over the wire; a forced id
    detaches from any unrelated enclosing span.  No-op (yields
    ``None``) while observability is disabled.
    """
    from repro import obs

    if not obs.enabled():
        yield None
        return
    parent = _CTX.get()
    if trace_id is None:
        tid = parent[0] if parent else _new_id()
        parent_id = parent[1] if parent else 0
    else:
        tid = trace_id
        parent_id = parent[1] if parent and parent[0] == tid else 0
    sid = _new_id()
    token = _CTX.set((tid, sid))
    t0 = perf_counter()
    try:
        yield (tid, sid)
    finally:
        dur = perf_counter() - t0
        _CTX.reset(token)
        record = Span(name=name, trace_id=tid, span_id=sid,
                      parent_id=parent_id, start=t0, duration=dur,
                      pid=os.getpid(),
                      thread=threading.current_thread().name, attrs=attrs)
        with _RING_LOCK:
            _RING.append(record)


def current() -> tuple[int, int] | None:
    """The (trace_id, span_id) context to hand to another thread."""
    return _CTX.get()


@contextmanager
def attach(ctx: tuple[int, int] | None):
    """Run the body under an explicitly captured span context.

    The thread-pool handoff: the submitter captures :func:`current`,
    the worker attaches it, and spans opened inside parent correctly.
    """
    token = _CTX.set(ctx)
    try:
        yield
    finally:
        _CTX.reset(token)


# ------------------------------------------------------------- the ring

def spans() -> list[Span]:
    """A copy of the ring, oldest first (the ring is left intact)."""
    with _RING_LOCK:
        return list(_RING)


def drain() -> list[Span]:
    """Empty the ring and return what it held, oldest first."""
    with _RING_LOCK:
        out = list(_RING)
        _RING.clear()
    return out


def ingest(incoming) -> None:
    """Append spans recorded elsewhere (a worker's drained ring)."""
    if not incoming:
        return
    with _RING_LOCK:
        _RING.extend(incoming)


def clear() -> None:
    with _RING_LOCK:
        _RING.clear()


def set_capacity(n: int) -> None:
    """Resize the ring (keeps the newest spans that still fit)."""
    global _RING
    if n < 1:
        raise ValueError("ring capacity must be positive")
    with _RING_LOCK:
        _RING = deque(_RING, maxlen=n)
