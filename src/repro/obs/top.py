"""``culzss top`` — live terminal dashboard over the metrics sidecar.

Polls ``/metrics.json`` and ``/slo.json`` on a gateway's sidecar port
and renders throughput, queue depths, latency quantiles, degraded-mode
counters, per-codec dispatch tallies, and SLO state.  Rates are first differences between
consecutive polls — the sidecar serves monotonic counters, so the
dashboard owns the windowing.

Two render paths share one layout function:

* **plain** (``--plain``, or any non-tty stdout): each refresh prints
  one block; pipe-friendly and what the tests drive.
* **curses**: full-screen, redrawn in place, ``q`` quits.

Everything here degrades gracefully: an unreachable sidecar renders a
"waiting for sidecar" banner and keeps polling rather than dying —
``top`` outliving a gateway restart is the point of a dashboard.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from time import monotonic, sleep, time as wall_time

from repro.obs.slo import quantile_from_hist

__all__ = ["fetch_json", "render", "run_top"]


def fetch_json(host: str, port: int, path: str,
               timeout: float = 2.0) -> dict | None:
    """One sidecar GET; ``None`` on any transport or parse failure."""
    url = f"http://{host}:{port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return json.loads(resp.read().decode())
    except (urllib.error.URLError, OSError, ValueError, TimeoutError):
        return None


# ------------------------------------------------------------- layout

def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if abs(n) < 1000:
            return f"{n:7.1f} {unit}"
        n /= 1000
    return f"{n:7.1f} TB"


def _rate(cur: dict, prev: dict | None, key: str, dt: float) -> float:
    if not prev or dt <= 0:
        return 0.0
    delta = (cur.get("counters", {}).get(key, 0)
             - prev.get("counters", {}).get(key, 0))
    return max(0.0, delta / dt)


def _counter(snap: dict, key: str) -> int:
    return int(snap.get("counters", {}).get(key, 0))


def _gauge(snap: dict, key: str) -> float | None:
    g = snap.get("gauges", {}).get(key)
    return None if g is None else g.get("last")


def _quantile(snap: dict, hist: str, q: float) -> float | None:
    h = snap.get("histograms", {}).get(hist)
    return None if h is None else quantile_from_hist(h, q)


def _ms(v: float | None) -> str:
    return "     -" if v is None else f"{v * 1e3:6.1f}"


def render(snap: dict | None, slo_report: dict | None, *,
           prev: dict | None = None, dt: float = 0.0,
           width: int = 78) -> str:
    """One dashboard frame as text (shared by plain and curses modes)."""
    bar = "─" * width
    lines = [f"culzss top — {wall_time():.0f}".ljust(width - 12)
             + "q to quit"]
    lines.append(bar)
    if snap is None:
        lines.append("waiting for sidecar (connection failed; retrying)")
        return "\n".join(lines)

    lines.append("throughput (since last poll)")
    for stage in ("ingress", "egress"):
        bin_ = _rate(snap, prev, f"{stage}.bytes_in", dt)
        bout = _rate(snap, prev, f"{stage}.bytes_out", dt)
        frames = _rate(snap, prev,
                       f"{stage}.frames_out" if stage == "ingress"
                       else f"{stage}.frames_in", dt)
        lines.append(f"  {stage:<8} in {_fmt_bytes(bin_)}/s   "
                     f"out {_fmt_bytes(bout)}/s   "
                     f"{frames:7.1f} frames/s")
    lines.append(f"  served   {_counter(snap, 'server.connections'):6d} "
                 f"conns   {_counter(snap, 'server.frames_delivered'):6d} "
                 f"frames   "
                 f"{_counter(snap, 'server.bytes_delivered'):10d} bytes")

    lines.append("queues / latency (stage wait, ms)")
    for stage in ("ingress", "egress"):
        depth = _gauge(snap, f"{stage}.queue_depth")
        hist = f"{stage}.stage_wait_seconds"
        lines.append(
            f"  {stage:<8} depth "
            f"{'-' if depth is None else int(depth):>3}   "
            f"p50 {_ms(_quantile(snap, hist, 0.50))}   "
            f"p99 {_ms(_quantile(snap, hist, 0.99))}")

    lines.append("degraded modes (totals)")
    crash = sum(_counter(snap, f"{s}.worker_crashes")
                for s in ("ingress", "egress"))
    serial = sum(_counter(snap, f"{s}.serial_fallbacks")
                 for s in ("ingress", "egress"))
    shm_fb = sum(_counter(snap, f"{s}.shm_fallbacks")
                 for s in ("ingress", "egress"))
    lines.append(f"  crashes {crash:5d}   serial-fallbacks {serial:5d}   "
                 f"shm-fallbacks {shm_fb:5d}")
    lines.append(f"  conn-errors "
                 f"{_counter(snap, 'server.connection_errors'):5d}   "
                 f"salvage-lost "
                 f"{_counter(snap, 'container.salvage_chunks_lost'):5d}   "
                 f"crc-fails "
                 f"{_counter(snap, 'container.crc_failures'):5d}")

    lines.append("codecs (chunks per codec, auto dispatch)")
    codec_keys = ("store", "lzss", "lz4s", "lzss_huffman")
    if not any(_counter(snap, f"codec.chunks_{k}") for k in codec_keys):
        lines.append("  (no codec dispatch recorded)")
    else:
        for key in codec_keys:
            chunks = _counter(snap, f"codec.chunks_{key}")
            rate = _rate(snap, prev, f"codec.chunks_{key}", dt)
            p50 = _quantile(snap, f"codec.ratio_{key}", 0.50)
            ratio = "    -" if p50 is None else f"{p50:5.2f}"
            lines.append(f"  {key:<13} {chunks:8d} chunks   "
                         f"{rate:7.1f}/s   ratio p50 {ratio}")
        lines.append(f"  store-fallbacks "
                     f"{_counter(snap, 'codec.store_fallbacks'):5d}")

    lines.append("slo")
    if not slo_report:
        lines.append("  (no /slo.json from sidecar)")
    else:
        for obj in slo_report.get("objectives", []):
            state = ("ALERT" if obj.get("alerting")
                     else ("ok" if obj.get("ok") else "BREACH"))
            burns = "  ".join(
                f"{k}:{w['burn'] if w['burn'] is not None else '-'}"
                for k, w in sorted(obj.get("windows", {}).items()))
            lines.append(f"  {obj['name']:<20} {state:<7} "
                         f"bad {obj.get('bad_fraction', 0):<9} "
                         f"burn {burns}")
    return "\n".join(lines)


# ------------------------------------------------------------- driving

def run_top(host: str, port: int, *, interval: float = 2.0,
            iterations: int | None = None, plain: bool = False,
            out=print) -> int:
    """Poll-and-render loop; returns an exit code.

    ``iterations`` bounds the refresh count (tests and one-shot
    inspection); ``None`` runs until interrupted.  Curses is attempted
    only for interactive, unbounded, non-plain runs.
    """
    if plain or iterations is not None:
        return _run_plain(host, port, interval=interval,
                          iterations=iterations, out=out)
    try:
        import curses
    except ImportError:  # pragma: no cover - curses ships with CPython
        return _run_plain(host, port, interval=interval,
                          iterations=None, out=out)
    try:
        return curses.wrapper(
            lambda scr: _run_curses(scr, host, port, interval=interval))
    except KeyboardInterrupt:
        return 0


def _poll(host: str, port: int) -> tuple[dict | None, dict | None]:
    return (fetch_json(host, port, "/metrics.json"),
            fetch_json(host, port, "/slo.json"))


def _run_plain(host: str, port: int, *, interval: float,
               iterations: int | None, out) -> int:
    prev, prev_t = None, None
    n = 0
    try:
        while iterations is None or n < iterations:
            snap, slo_report = _poll(host, port)
            now = monotonic()
            dt = (now - prev_t) if prev_t is not None else 0.0
            out(render(snap, slo_report, prev=prev, dt=dt))
            out("")
            prev, prev_t = snap, now
            n += 1
            if iterations is None or n < iterations:
                sleep(interval)
    except KeyboardInterrupt:
        pass
    return 0


def _run_curses(scr, host: str, port: int, *,
                interval: float) -> int:  # pragma: no cover - needs a tty
    import curses

    curses.curs_set(0)
    scr.timeout(int(interval * 1000))
    prev, prev_t = None, None
    while True:
        snap, slo_report = _poll(host, port)
        now = monotonic()
        dt = (now - prev_t) if prev_t is not None else 0.0
        text = render(snap, slo_report, prev=prev, dt=dt,
                      width=max(20, scr.getmaxyx()[1] - 1))
        scr.erase()
        max_y = scr.getmaxyx()[0]
        for i, line in enumerate(text.splitlines()):
            if i >= max_y - 1:
                break
            try:
                scr.addnstr(i, 0, line, scr.getmaxyx()[1] - 1)
            except curses.error:
                pass
        scr.refresh()
        prev, prev_t = snap, now
        ch = scr.getch()
        if ch in (ord("q"), ord("Q")):
            return 0
