"""Structured logging: JSON lines, trace-correlated, rate-limited.

Every degraded-mode branch in the stack — a pool worker dying, a frame
falling back to the serial path, a shared-memory lease failing over to
pickle, a salvage decode filling lost chunks — emits exactly **one**
structured event through this module, so an operator tailing the log
can answer "what exactly degraded, on which trace?" without reading
counters.  Built on stdlib :mod:`logging` (handlers, levels and
propagation behave the way every Python operator expects) with three
additions:

* **JSON lines** — :class:`JsonFormatter` renders one compact JSON
  object per record: ``ts``, ``level``, ``logger``, ``event``, the
  event's structured fields, and the trace context.  A line is always
  one line (embedded newlines are escaped by ``json.dumps``), so
  ``jq`` and log shippers never see a torn record.
* **Trace correlation** — the formatter injects ``trace_id`` and
  ``span_id`` from the active :mod:`repro.obs.trace` span contextvar
  unless the call site passed an explicit ``trace_id`` (the pipeline
  does, because the frame's id is in hand while the worker that owned
  the span is dead).  Log lines and chrome-trace spans join on the id.
* **Rate limiting** — :func:`warn_limited` suppresses repeats of the
  same event key inside a window, so a crash loop emits one warning
  plus a suppression count instead of a line per frame.

Call sites use :func:`event`::

    from repro.obs import log as obslog

    obslog.event("engine", "worker_crash", shard=3, trace_id=tid)

which logs at WARNING through the ``repro.engine`` logger.  Nothing is
emitted unless a handler is installed: :func:`configure` (the
``culzss serve --log-json`` path, also triggered by ``REPRO_LOG_JSON=1``
at import) attaches a stderr JSON handler to the ``repro`` root;
:func:`capture` scopes an in-memory handler for tests.
"""

from __future__ import annotations

import io
import json
import logging
import os
import threading
from time import monotonic

from repro.obs import trace

__all__ = [
    "JsonFormatter",
    "capture",
    "configure",
    "event",
    "get_logger",
    "reset_rate_limits",
    "warn_limited",
]

#: Root of the logger namespace every repro layer logs under.
ROOT = "repro"

# Library etiquette: without this, stdlib's lastResort handler would
# print bare event names to stderr in unconfigured processes.
logging.getLogger(ROOT).addHandler(logging.NullHandler())

#: LogRecord attributes that are plumbing, not event fields.
_RESERVED = frozenset(vars(logging.makeLogRecord({}))) | {"message"}


class JsonFormatter(logging.Formatter):
    """One JSON object per record, keys in stable order.

    Layout: ``ts`` (unix seconds), ``level``, ``logger``, ``event``
    (the record message), then every ``extra`` field the call site
    attached, then ``trace_id``/``span_id`` — from the ``extra`` when
    given, from the active span contextvar otherwise — and ``pid``.
    """

    def format(self, record: logging.LogRecord) -> str:
        doc: dict = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        for key, value in vars(record).items():
            if key in _RESERVED or key in doc:
                continue
            doc[key] = value
        if "trace_id" not in doc or not doc["trace_id"]:
            ctx = trace.current()
            doc["trace_id"] = ctx[0] if ctx else 0
            if ctx:
                doc.setdefault("span_id", ctx[1])
        doc["pid"] = record.process
        if record.exc_info and record.exc_info[0] is not None:
            doc["exc_type"] = record.exc_info[0].__name__
            doc["exc"] = str(record.exc_info[1])
        return json.dumps(doc, default=str, separators=(", ", ": "))


def get_logger(name: str) -> logging.Logger:
    """The ``repro.<name>`` logger (idempotent; stdlib caches it)."""
    if name == ROOT or name.startswith(ROOT + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT}.{name}")


def event(layer: str, name: str, *, level: int = logging.WARNING,
          **fields) -> None:
    """Emit one structured event through the ``repro.<layer>`` logger.

    ``fields`` become top-level JSON keys; pass ``trace_id=`` explicitly
    when the active span context does not carry the right trace (e.g.
    the frame's worker died — its span died with it, but the frame id
    is still in hand).
    """
    logger = get_logger(layer)
    if logger.isEnabledFor(level):
        logger.log(level, name, extra=fields)


# ---------------------------------------------------------- rate limits

_RATE_LOCK = threading.Lock()
#: key -> (window_start_monotonic, suppressed_since_last_emit)
_RATE_STATE: dict[str, tuple[float, int]] = {}


def warn_limited(layer: str, name: str, *, interval: float = 5.0,
                 **fields) -> bool:
    """:func:`event`, but at most once per ``interval`` seconds per
    ``(layer, name)`` key.

    The first event of a window emits immediately (carrying a
    ``suppressed`` count of earlier drops, when any); repeats inside
    the window are counted and dropped.  Returns whether a line was
    emitted — degraded-mode *counters* must still be bumped by the
    caller either way; only the log line is rate-limited.
    """
    key = f"{layer}.{name}"
    now = monotonic()
    with _RATE_LOCK:
        start, dropped = _RATE_STATE.get(key, (-interval, 0))
        if now - start < interval:
            _RATE_STATE[key] = (start, dropped + 1)
            return False
        _RATE_STATE[key] = (now, 0)
    if dropped:
        fields["suppressed"] = dropped
    event(layer, name, **fields)
    return True


def reset_rate_limits() -> None:
    """Forget every rate-limit window (test isolation)."""
    with _RATE_LOCK:
        _RATE_STATE.clear()


# ----------------------------------------------------------- configure

_configured_handler: logging.Handler | None = None


def configure(stream=None, *, level: int = logging.INFO) -> logging.Handler:
    """Attach one JSON-lines handler to the ``repro`` root logger.

    Idempotent: a second call replaces the previous handler (so tests
    and long-lived processes never stack duplicates).  ``stream``
    defaults to stderr, keeping stdout clean for command output.
    """
    global _configured_handler
    root = logging.getLogger(ROOT)
    if _configured_handler is not None:
        root.removeHandler(_configured_handler)
    handler = logging.StreamHandler(stream)  # None -> stderr
    handler.setFormatter(JsonFormatter())
    root.addHandler(handler)
    root.setLevel(level)
    _configured_handler = handler
    return handler


class capture:
    """Scoped in-memory JSON log capture (the test harness)::

        with obslog.capture() as cap:
            ...
        assert cap.events()[0]["event"] == "worker_crash"
    """

    def __init__(self, level: int = logging.INFO) -> None:
        self._buffer = io.StringIO()
        self._handler = logging.StreamHandler(self._buffer)
        self._handler.setFormatter(JsonFormatter())
        self._level = level
        self._prev_level: int | None = None

    def __enter__(self) -> "capture":
        root = logging.getLogger(ROOT)
        self._prev_level = root.level
        root.addHandler(self._handler)
        root.setLevel(min(self._level, root.level or self._level))
        return self

    def __exit__(self, *exc) -> None:
        root = logging.getLogger(ROOT)
        root.removeHandler(self._handler)
        root.setLevel(self._prev_level)

    @property
    def text(self) -> str:
        return self._buffer.getvalue()

    def lines(self) -> list[str]:
        return [ln for ln in self.text.splitlines() if ln.strip()]

    def events(self) -> list[dict]:
        return [json.loads(ln) for ln in self.lines()]


_TRUTHY = {"1", "true", "on", "yes"}
if os.environ.get("REPRO_LOG_JSON", "").strip().lower() in _TRUTHY:
    configure()
