"""repro.obs — process-wide observability: metrics, spans, exporters.

One global :class:`MetricRegistry` per process plus a ring-buffered
span log (:mod:`repro.obs.trace`), with exporters for Prometheus text,
JSON, and chrome-trace (:mod:`repro.obs.export`).  Instrumented code
uses the module-level helpers::

    from repro import obs

    obs.inc("matcher.probe_calls")
    with obs.stage("encode.match", chunk=i):   # span + *_seconds histogram
        ...

The helpers check :func:`enabled` first, so a disabled build pays one
attribute load and a truth test per call site.  The switch defaults to
on and reads ``REPRO_OBS`` at import (``0``/``false``/``off`` disable);
:func:`enable`/:func:`disable` flip it at runtime for tests and the
overhead guard.

Cross-process flow (service pool workers): the worker finishes a job,
calls :func:`delta` and ships the result — a picklable dict of metric
diffs plus its drained span ring — back with the job result; the
parent calls :func:`merge_delta`.  Same-process executors are safe to
route through the same path: the registry merge recognises its own pid
and no-ops, and the span ring was drained so re-ingesting restores
rather than duplicates.
"""

from __future__ import annotations

import os

from repro.obs import export, log, prof, slo, trace
from repro.obs.export import (
    chrome_trace,
    collapsed_stacks,
    format_ledger,
    format_pretty,
    json_text,
    ledger,
    merge_snapshots,
    prometheus_text,
    speedscope_doc,
    stage_breakdown,
    write_chrome_trace,
    write_collapsed,
    write_speedscope,
)
from repro.obs.registry import Histogram, MetricRegistry
from repro.obs.trace import Span, new_trace_id, span

__all__ = [
    "Histogram",
    "MetricRegistry",
    "Span",
    "chrome_trace",
    "collapsed_stacks",
    "delta",
    "disable",
    "enable",
    "enabled",
    "export",
    "format_ledger",
    "format_pretty",
    "gauge",
    "get_registry",
    "inc",
    "json_text",
    "ledger",
    "log",
    "merge_delta",
    "merge_snapshots",
    "new_trace_id",
    "observe",
    "prof",
    "prometheus_text",
    "reset",
    "slo",
    "span",
    "speedscope_doc",
    "stage",
    "stage_breakdown",
    "trace",
    "write_chrome_trace",
    "write_collapsed",
    "write_speedscope",
]

#: Counter families the whole stack reports into.  Preregistered so an
#: exporter always shows the full schema — a scrape taken before the
#: first crash still carries ``engine.worker_crashes 0``.
COUNTER_KEYS = (
    "codec.chunks_lz4s",
    "codec.chunks_lzss",
    "codec.chunks_lzss_huffman",
    "codec.chunks_store",
    "codec.decode_lz4s_bytes",
    "codec.decode_lzss_bytes",
    "codec.decode_lzss_huffman_bytes",
    "codec.decode_store_bytes",
    "codec.encode_lz4s_bytes",
    "codec.encode_lzss_bytes",
    "codec.encode_lzss_huffman_bytes",
    "codec.encode_store_bytes",
    "codec.huffman_bytes",
    "codec.store_fallbacks",
    "container.crc_checks",
    "container.crc_failures",
    "container.pack_bytes",
    "container.salvage_chunks_lost",
    "container.salvage_chunks_recovered",
    "container.unpack_bytes",
    "decode.stream_bytes",
    "encode.fixup_bytes",
    "encode.match_bytes",
    "encode.pack_bytes",
    "encode.parse_bytes",
    "engine.serial_fallbacks",
    "engine.shard_bytes",
    "engine.shards",
    "engine.worker_crashes",
    "matcher.hash_calls",
    "matcher.hash_rounds",
    "matcher.lag_calls",
    "matcher.lag_compares",
    "matcher.probe_calls",
    "matcher.probe_hits",
    "matcher.saturation_exits",
    "transport.send_bytes",
)

#: Histogram families (seconds unless named otherwise), same rationale.
HISTOGRAM_KEYS = (
    "codec.decode_lz4s_seconds",
    "codec.decode_lzss_huffman_seconds",
    "codec.decode_lzss_seconds",
    "codec.decode_store_seconds",
    "codec.encode_lz4s_seconds",
    "codec.encode_lzss_huffman_seconds",
    "codec.encode_lzss_seconds",
    "codec.encode_store_seconds",
    "codec.huffman_seconds",
    "codec.ratio_lz4s",
    "codec.ratio_lzss",
    "codec.ratio_lzss_huffman",
    "codec.ratio_store",
    "container.pack_seconds",
    "container.unpack_seconds",
    "decode.stream_seconds",
    "encode.fixup_seconds",
    "encode.match_seconds",
    "encode.pack_seconds",
    "encode.parse_seconds",
    "engine.queue_wait_seconds",
    "engine.shard_seconds",
    "transport.send_seconds",
)

_TRUTHY_OFF = {"0", "false", "off", "no"}
_enabled = os.environ.get("REPRO_OBS", "1").strip().lower() not in _TRUTHY_OFF

_registry = MetricRegistry(preregister=COUNTER_KEYS,
                           preregister_histograms=HISTOGRAM_KEYS)


def enabled() -> bool:
    """Whether instrumentation records anything right now."""
    return _enabled


def enable() -> None:
    global _enabled
    _enabled = True


def disable() -> None:
    global _enabled
    _enabled = False


def get_registry() -> MetricRegistry:
    """The process-global registry all module-level helpers write to."""
    return _registry


def reset() -> None:
    """Fresh global registry, empty span ring, empty profile store
    (test isolation)."""
    global _registry
    _registry = MetricRegistry(preregister=COUNTER_KEYS,
                               preregister_histograms=HISTOGRAM_KEYS)
    trace.clear()
    prof.clear()


# ------------------------------------------------- recording helpers

def inc(name: str, n: int = 1) -> None:
    if _enabled:
        _registry.inc(name, n)


def observe(name: str, value: float) -> None:
    if _enabled:
        _registry.observe(name, value)


def gauge(name: str, value: float) -> None:
    if _enabled:
        _registry.gauge(name, value)


class stage:
    """Span + duration histogram in one: ``with obs.stage("encode.match")``.

    Opens a :func:`trace.span` named ``name`` and, on exit, observes the
    elapsed seconds into the ``{name}_seconds`` histogram.  The
    ``bytes=`` keyword is the throughput-ledger dimension: when given,
    exit also adds it to the ``{name}_bytes`` counter, which is what
    makes the stage appear in :func:`ledger` with an MB/s and a
    share-of-wall-time.  A plain class rather than ``@contextmanager``
    so the disabled path creates no generator.
    """

    __slots__ = ("_name", "_attrs", "_span", "_t0", "_bytes")

    def __init__(self, name: str, *, trace_id: int | None = None,
                 bytes: int | None = None, **attrs):
        self._name = name
        self._bytes = None if bytes is None else int(bytes)
        if self._bytes is not None:
            attrs["bytes"] = self._bytes
        self._attrs = attrs
        self._span = (trace.span(name, trace_id=trace_id, **attrs)
                      if _enabled else None)
        self._t0 = 0.0

    def __enter__(self):
        if self._span is not None:
            from time import perf_counter
            self._span.__enter__()
            self._t0 = perf_counter()
        return self

    def __exit__(self, *exc):
        if self._span is not None:
            from time import perf_counter
            _registry.observe(f"{self._name}_seconds",
                              perf_counter() - self._t0)
            if self._bytes is not None:
                _registry.inc(f"{self._name}_bytes", self._bytes)
            self._span.__exit__(*exc)
        return False


# ------------------------------------------------- cross-process flow

def delta() -> dict:
    """Picklable package of everything recorded since the last delta.

    The worker side of the pool handoff: metric diffs from the global
    registry, the drained span ring, and the drained profiler samples
    (``None`` unless a sampler ran — see :mod:`repro.obs.prof`).  Ship
    it with the job result.
    """
    return {"metrics": _registry.delta_snapshot(), "spans": trace.drain(),
            "profile": prof.drain()}


def merge_delta(payload: dict | None) -> None:
    """Fold a worker's :func:`delta` into this process.

    Metric diffs merge through the registry (which drops same-pid
    deltas — an inline executor's writes already landed here); spans
    and profile samples always re-ingest, because :func:`delta` drained
    them from whichever process recorded them.
    """
    if not payload:
        return
    _registry.merge(payload.get("metrics"))
    trace.ingest(payload.get("spans"))
    prof.ingest(payload.get("profile"))
