"""Sampling profiler: a threading-based stack sampler with cross-process merge.

The forensics counterpart to :mod:`repro.obs.trace` — spans say *which
stage* was slow, the profiler says *which code*.  A daemon thread wakes
``hz`` times per second, walks every other thread's frame stack via
``sys._current_frames()``, and accumulates collapsed-stack counts
(``"root;caller;leaf" -> samples``, the Brendan Gregg folded format).
Exporters in :mod:`repro.obs.export` turn those counts into speedscope
documents and ``.collapsed`` text.

Cross-process story mirrors the metric registry: pool workers run their
own sampler (started from the ``REPRO_PROFILE_HZ`` environment variable,
either by the :func:`init_worker` pool initializer or lazily on the
first :func:`drain`), and :func:`drain` emits a picklable payload that
rides home inside ``obs.delta()`` next to the metric delta snapshot.
The parent :func:`ingest`\\ s payloads keyed by pid, so one speedscope
export covers the parent *and* every worker as separate profiles.

Overhead: the sampled threads pay nothing directly — only the sampler
thread walks stacks, briefly holding the GIL.  At the default ~97 Hz a
walk costs tens of microseconds, well under 1% of wall time; the
overhead guard in ``tests/obs/test_prof.py`` enforces a 10% ceiling.
"""

from __future__ import annotations

import os
import sys
import threading
from os.path import basename
from time import perf_counter

__all__ = [
    "DEFAULT_HZ",
    "ENV_HZ",
    "SamplingProfiler",
    "clear",
    "diff_profiles",
    "drain",
    "export",
    "ingest",
    "init_worker",
    "maybe_start_from_env",
    "profiles",
    "running",
    "samples",
    "start",
    "stop",
]

# Deliberately not a round number: a 100 Hz sampler locks step with
# 10 ms timers and periodic work, systematically over- or under-sampling
# them.  97 is prime and close enough to "about 100 samples a second".
DEFAULT_HZ = 97.0

#: Set this in the environment to make worker processes profile
#: themselves from spawn (see :func:`init_worker`).
ENV_HZ = "REPRO_PROFILE_HZ"

_MAX_DEPTH = 64
# Safety valve: unique stacks are bounded in practice (call graphs are
# finite), but a pathological workload could mint unbounded keys.  Past
# this many, new stacks aggregate into one overflow bucket.
_MAX_STACKS = 50_000
_OVERFLOW_KEY = "(stack table full)"


def _frame_label(frame) -> str:
    code = frame.f_code
    return f"{code.co_name} ({basename(code.co_filename)}:{code.co_firstlineno})"


class SamplingProfiler:
    """One sampler thread accumulating collapsed-stack counts.

    Use the module-level :func:`start`/:func:`stop`/:func:`drain` in
    production code — they manage the process-global instance that
    ``obs.delta()`` ships across process boundaries.  The class is
    public for tests and for callers that want an isolated sampler.
    """

    def __init__(self, hz: float = DEFAULT_HZ, *, max_depth: int = _MAX_DEPTH) -> None:
        if hz <= 0:
            raise ValueError(f"hz must be positive, got {hz!r}")
        self.hz = float(hz)
        self.pid = os.getpid()
        self._max_depth = max_depth
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self._wall = 0.0  # seconds covered by _counts since last drain
        self._mark = 0.0  # perf_counter at start/last drain
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ---------------------------------------------------------- lifecycle

    def start(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._mark = perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-prof-sampler", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=2.0)
        self._thread = None
        with self._lock:
            self._wall += perf_counter() - self._mark
            self._mark = perf_counter()

    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    # ----------------------------------------------------------- sampling

    def _run(self) -> None:
        interval = 1.0 / self.hz
        own = threading.get_ident()
        # Event.wait as the pacer: wakes promptly on stop(), never
        # busy-spins, and drifts at most one interval per tick.
        while not self._stop.wait(interval):
            self._sample_once(own)

    def _sample_once(self, own_ident: int) -> None:
        frames = sys._current_frames()
        stacks = []
        for ident, frame in frames.items():
            if ident == own_ident:
                continue
            stack = []
            depth = 0
            while frame is not None and depth < self._max_depth:
                stack.append(_frame_label(frame))
                frame = frame.f_back
                depth += 1
            if stack:
                stack.reverse()  # collapsed format is root-first
                stacks.append(";".join(stack))
        del frames
        if not stacks:
            return
        with self._lock:
            for key in stacks:
                if key not in self._counts and len(self._counts) >= _MAX_STACKS:
                    key = _OVERFLOW_KEY
                self._counts[key] = self._counts.get(key, 0) + 1

    # ------------------------------------------------------------ harvest

    def counts(self) -> dict[str, int]:
        """A copy of the accumulated samples; does not reset anything."""
        with self._lock:
            return dict(self._counts)

    def drain(self) -> dict | None:
        """Samples accumulated since the last drain, as a picklable payload.

        Returns ``None`` when nothing was collected.  The payload is the
        unit that rides inside ``obs.delta()``::

            {"pid": int, "hz": float, "wall_seconds": float,
             "samples": {collapsed_stack: count}}
        """
        with self._lock:
            if not self._counts:
                return None
            counts, self._counts = self._counts, {}
            wall = self._wall
            self._wall = 0.0
            if self._thread is not None:
                now = perf_counter()
                wall += now - self._mark
                self._mark = now
        return {"pid": self.pid, "hz": self.hz,
                "wall_seconds": wall, "samples": counts}


# --------------------------------------------------------------- module API

_LOCK = threading.Lock()
_PROFILER: SamplingProfiler | None = None
# pid -> {"hz", "wall_seconds", "samples"} merged from worker drains.
_INGESTED: dict[int, dict] = {}


def _local(create_hz: float | None = None) -> SamplingProfiler | None:
    """The process-local profiler, discarding any fork-inherited one."""
    global _PROFILER
    prof = _PROFILER
    if prof is not None and prof.pid != os.getpid():
        # Forked child: the sampler thread did not survive the fork and
        # the counts belong to the parent.  Start fresh.
        _PROFILER = prof = None
    if prof is None and create_hz is not None:
        _PROFILER = prof = SamplingProfiler(create_hz)
    return prof


def start(hz: float | None = None) -> SamplingProfiler:
    """Start (or return the already-running) process-global profiler.

    ``hz=None`` takes :data:`ENV_HZ` from the environment, falling back
    to :data:`DEFAULT_HZ`.  Idempotent: a second ``start`` while running
    returns the live instance and ignores ``hz``.
    """
    with _LOCK:
        prof = _local()
        if prof is None:
            if hz is None:
                hz = _env_hz() or DEFAULT_HZ
            prof = _local(create_hz=float(hz))
        assert prof is not None
        prof.start()
        return prof


def stop() -> None:
    """Stop the process-global profiler; accumulated samples are kept."""
    with _LOCK:
        prof = _local()
    if prof is not None:
        prof.stop()


def running() -> bool:
    with _LOCK:
        prof = _local()
    return prof is not None and prof.running


def _env_hz() -> float | None:
    raw = os.environ.get(ENV_HZ, "").strip()
    if not raw:
        return None
    try:
        hz = float(raw)
    except ValueError:
        return None
    return hz if hz > 0 else None


def maybe_start_from_env() -> bool:
    """Start the profiler iff :data:`ENV_HZ` is set; returns running state.

    The lazy half of worker auto-profiling: pools created without the
    :func:`init_worker` initializer still pick the sampler up on their
    first ``obs.delta()``.
    """
    hz = _env_hz()
    if hz is None:
        return running()
    start(hz)
    return True


def init_worker() -> None:
    """``ProcessPoolExecutor(initializer=...)`` hook: profile from spawn."""
    maybe_start_from_env()


def drain() -> dict | None:
    """Drain the local profiler for shipping inside ``obs.delta()``."""
    maybe_start_from_env()
    with _LOCK:
        prof = _local()
    if prof is None:
        return None
    return prof.drain()


def ingest(payload: dict | None) -> None:
    """Fold a :func:`drain` payload (typically a worker's) into this process.

    Payloads merge per pid, so repeated deltas from one worker
    accumulate.  A same-pid payload is *restored* rather than treated as
    foreign: draining and re-ingesting locally (the inline-executor
    path, mirroring span drain/ingest) must round-trip.
    """
    if not payload or not payload.get("samples"):
        return
    pid = int(payload.get("pid", -1))
    with _LOCK:
        slot = _INGESTED.setdefault(
            pid, {"hz": payload.get("hz", DEFAULT_HZ),
                  "wall_seconds": 0.0, "samples": {}})
        slot["hz"] = payload.get("hz", slot["hz"])
        slot["wall_seconds"] += float(payload.get("wall_seconds", 0.0))
        counts = slot["samples"]
        for key, n in payload["samples"].items():
            counts[key] = counts.get(key, 0) + int(n)


def profiles() -> dict[int, dict]:
    """Everything known, keyed by pid: ingested payloads + the live local.

    The live local profiler's counts are *copied*, not drained, so
    reading for display never races the delta channel.
    """
    with _LOCK:
        out = {pid: {"hz": slot["hz"],
                     "wall_seconds": slot["wall_seconds"],
                     "samples": dict(slot["samples"])}
               for pid, slot in _INGESTED.items()}
        prof = _local()
    if prof is not None:
        counts = prof.counts()
        if counts:
            slot = out.setdefault(
                prof.pid, {"hz": prof.hz, "wall_seconds": 0.0, "samples": {}})
            merged = slot["samples"]
            for key, n in counts.items():
                merged[key] = merged.get(key, 0) + n
    return out


def samples() -> dict[str, int]:
    """Collapsed-stack counts flattened across every known pid."""
    flat: dict[str, int] = {}
    for slot in profiles().values():
        for key, n in slot["samples"].items():
            flat[key] = flat.get(key, 0) + n
    return flat


def diff_profiles(before: dict[int, dict], after: dict[int, dict]) -> dict[int, dict]:
    """Per-pid sample deltas between two :func:`profiles` snapshots.

    Used by the sidecar's ``/profile?seconds=N`` window: snapshot, wait,
    snapshot, diff — so an always-on profiler serves windowed requests
    without disturbing its accumulation.
    """
    out: dict[int, dict] = {}
    for pid, slot in after.items():
        base = before.get(pid, {}).get("samples", {})
        diff = {key: n - base.get(key, 0)
                for key, n in slot["samples"].items()
                if n - base.get(key, 0) > 0}
        if diff:
            out[pid] = {"hz": slot["hz"],
                        "wall_seconds": (slot["wall_seconds"]
                                         - before.get(pid, {}).get("wall_seconds", 0.0)),
                        "samples": diff}
    return out


def export(path, *, out=print):
    """Write everything collected so far: speedscope + folded stacks.

    Speedscope JSON at ``path``, the folded-stack text next to it with a
    ``.collapsed`` suffix.  One export covers every pid the profiler
    knows — this process plus any pool workers whose deltas merged in.
    Shared by ``culzss benchgate --profile`` and the ``--profile`` flags
    on ``compress``/``decompress``/``serve``.  Returns the main path.
    """
    from pathlib import Path

    from repro.obs.export import write_collapsed, write_speedscope

    profs = profiles()
    total = sum(sum(p["samples"].values()) for p in profs.values())
    path = Path(path)
    write_speedscope(path, profs)
    collapsed = path.with_suffix(".collapsed")
    write_collapsed(collapsed, profs)
    out(f"profile: {total} samples across {len(profs)} process(es) "
        f"-> {path} and {collapsed}")
    return path


def clear() -> None:
    """Drop every accumulated and ingested sample.

    A running profiler keeps running (only its counts reset); a stopped
    one is discarded entirely, so the next :func:`start` re-reads its hz
    from the argument or environment instead of reviving a stale rate.
    """
    global _PROFILER
    with _LOCK:
        _INGESTED.clear()
        prof = _local()
        if prof is not None and not prof.running:
            _PROFILER = None
            prof = None
    if prof is not None:
        prof.drain()
