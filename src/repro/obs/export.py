"""Exporters: Prometheus text exposition, JSON, chrome-trace.

Three consumers, three formats:

* :func:`prometheus_text` renders a registry snapshot in the
  Prometheus text exposition format (v0.0.4) — sanitized metric names
  under one prefix, counters as counters, gauges as ``_last``/``_max``
  pairs, and the log-bucket histograms as classic cumulative-``le``
  Prometheus histograms.  The gateway's ``/metrics`` sidecar serves
  exactly this.
* :func:`json_text` is the same snapshot as indented JSON — what the
  CLI prints and what ``/metrics.json`` serves.
* :func:`chrome_trace` converts a span list into the Chrome trace
  event format (``chrome://tracing`` / Perfetto "traceEvents" JSON):
  complete (``"ph": "X"``) events keyed by pid/tid, so nesting renders
  from containment and pool-worker spans appear on their own rows.

:func:`merge_snapshots` combines registry snapshots (e.g. the process
global registry plus a gateway's private one) into one export.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

__all__ = [
    "chrome_trace",
    "collapsed_stacks",
    "format_ledger",
    "format_pretty",
    "json_text",
    "ledger",
    "merge_snapshots",
    "prometheus_text",
    "speedscope_doc",
    "stage_breakdown",
    "write_chrome_trace",
    "write_collapsed",
    "write_speedscope",
]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")
_BUCKET_RE = re.compile(r"^le_2\^(-?\d+)$")


def _sanitize(name: str, prefix: str) -> str:
    out = prefix + _NAME_RE.sub("_", name)
    return out if not out[0].isdigit() else "_" + out


def _escape_help(text: str) -> str:
    """v0.0.4 HELP escaping: backslash and line feed.

    Metric names are code-authored today, but HELP text embeds them
    verbatim — one stray newline would otherwise split the line and
    corrupt the whole exposition for every scraper.
    """
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    """v0.0.4 label-value escaping: backslash, double-quote, line feed."""
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def merge_snapshots(*snapshots: dict) -> dict:
    """Combine registry snapshots: counters add, gauges high-water,
    histograms merge bucket-wise."""
    out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for snap in snapshots:
        for name, v in snap.get("counters", {}).items():
            out["counters"][name] = out["counters"].get(name, 0) + v
        for name, g in snap.get("gauges", {}).items():
            cur = out["gauges"].setdefault(name, dict(g))
            cur["last"] = g["last"]
            cur["max"] = max(cur["max"], g["max"])
        for name, h in snap.get("histograms", {}).items():
            cur = out["histograms"].get(name)
            if cur is None:
                out["histograms"][name] = {**h, "buckets": dict(h["buckets"])}
                continue
            cur["count"] += h["count"]
            cur["sum"] += h["sum"]
            for edge, pick in (("min", min), ("max", max)):
                if h[edge] is not None:
                    cur[edge] = (h[edge] if cur[edge] is None
                                 else pick(cur[edge], h[edge]))
            for b, n in h["buckets"].items():
                cur["buckets"][b] = cur["buckets"].get(b, 0) + n
            cur["mean"] = cur["sum"] / cur["count"] if cur["count"] else 0.0
    return out


def prometheus_text(snapshot: dict, prefix: str = "culzss_") -> str:
    """Render one (possibly merged) snapshot as Prometheus exposition.

    Dotted metric names sanitize to underscores (``ingress.frames_out``
    → ``culzss_ingress_frames_out``); the original key is preserved in
    the ``# HELP`` line so a scrape is greppable by either spelling.
    """
    lines: list[str] = []
    for name in sorted(snapshot.get("counters", {})):
        m = _sanitize(name, prefix)
        lines += [f"# HELP {m} counter {_escape_help(name)}",
                  f"# TYPE {m} counter",
                  f"{m} {snapshot['counters'][name]}"]
    for name in sorted(snapshot.get("gauges", {})):
        g = snapshot["gauges"][name]
        m = _sanitize(name, prefix)
        lines += [f"# HELP {m} gauge {_escape_help(name)} "
                  "(last reading / high water)",
                  f"# TYPE {m}_last gauge", f"{m}_last {g['last']}",
                  f"# TYPE {m}_max gauge", f"{m}_max {g['max']}"]
    for name in sorted(snapshot.get("histograms", {})):
        h = snapshot["histograms"][name]
        m = _sanitize(name, prefix)
        lines += [f"# HELP {m} histogram {_escape_help(name)}",
                  f"# TYPE {m} histogram"]
        cum = 0
        for bucket in sorted(h.get("buckets", {}),
                             key=lambda b: int(_BUCKET_RE.match(b).group(1))):
            exp = int(_BUCKET_RE.match(bucket).group(1))
            cum += h["buckets"][bucket]
            le = _escape_label(f"{2.0 ** exp:g}")
            lines.append(f'{m}_bucket{{le="{le}"}} {cum}')
        # _sum/_count (and the +Inf bucket) are emitted even for an
        # empty histogram: scrapers need the series to exist before the
        # first observation or rate() windows start with gaps.
        lines.append(f'{m}_bucket{{le="+Inf"}} {h["count"]}')
        lines.append(f"{m}_sum {h['sum']}")
        lines.append(f"{m}_count {h['count']}")
    return "\n".join(lines) + "\n"


def json_text(snapshot: dict) -> str:
    return json.dumps(snapshot, indent=2, sort_keys=True)


def format_pretty(snapshot: dict) -> str:
    """Aligned human-readable dump (the ``culzss stats`` default)."""
    lines: list[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        width = max(len(k) for k in counters)
        lines += [f"  {k:<{width}}  {counters[k]}" for k in sorted(counters)]
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        width = max(len(k) for k in gauges)
        lines += [f"  {k:<{width}}  last={gauges[k]['last']:g} "
                  f"max={gauges[k]['max']:g}" for k in sorted(gauges)]
    hists = snapshot.get("histograms", {})
    if hists:
        lines.append("histograms:")
        width = max(len(k) for k in hists)
        for k in sorted(hists):
            h = hists[k]
            lines.append(
                f"  {k:<{width}}  n={h['count']} mean={h['mean']:.6g} "
                f"min={h['min'] if h['min'] is not None else '-'} "
                f"max={h['max'] if h['max'] is not None else '-'}")
    return "\n".join(lines) or "(no metrics recorded)"


# ---------------------------------------------------------- chrome trace

def chrome_trace(spans) -> dict:
    """Span records → a ``chrome://tracing`` / Perfetto JSON document.

    Complete events (``ph: "X"``) carry microsecond timestamps straight
    from ``perf_counter``; rows group by pid (process) and the
    recording thread's name, which is what makes parent/child nesting
    visible — a child span's interval sits inside its parent's on the
    same row.  Trace/span/parent ids travel in ``args`` for tooling.
    """
    events = []
    for s in spans:
        events.append({
            "name": s.name,
            "cat": "repro",
            "ph": "X",
            "ts": s.start * 1e6,
            "dur": s.duration * 1e6,
            "pid": s.pid,
            "tid": s.thread,
            "args": {"trace_id": s.trace_id, "span_id": s.span_id,
                     "parent_id": s.parent_id, **s.attrs},
        })
    events.sort(key=lambda e: e["ts"])
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, spans) -> Path:
    """Dump :func:`chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(spans), indent=1))
    return path


# ----------------------------------------------------- profiler exports

def collapsed_stacks(profiles: dict[int, dict]) -> str:
    """``prof.profiles()`` → Brendan Gregg folded text, summed across pids.

    One line per unique stack — ``root;caller;leaf count`` — ready for
    ``flamegraph.pl`` or any folded-stack consumer.  Sorted by count
    descending so the hottest path is the first line.
    """
    flat: dict[str, int] = {}
    for slot in profiles.values():
        for stack, n in slot.get("samples", {}).items():
            flat[stack] = flat.get(stack, 0) + n
    lines = [f"{stack} {n}" for stack, n in
             sorted(flat.items(), key=lambda kv: (-kv[1], kv[0]))]
    return "\n".join(lines) + ("\n" if lines else "")


def speedscope_doc(profiles: dict[int, dict], *, name: str = "culzss") -> dict:
    """``prof.profiles()`` → a speedscope file-format document.

    One *sampled* profile per pid — the parent process and each pool
    worker appear side by side in speedscope's profile picker, sharing
    one frame table.  Weights are seconds (``count / hz``), so the
    flamegraph x-axis reads as wall time.
    """
    frame_index: dict[str, int] = {}
    frames: list[dict] = []

    def _idx(label: str) -> int:
        i = frame_index.get(label)
        if i is None:
            i = frame_index[label] = len(frames)
            frames.append({"name": label})
        return i

    docs = []
    for pid in sorted(profiles):
        slot = profiles[pid]
        hz = float(slot.get("hz") or 1.0)
        samples, weights = [], []
        total = 0.0
        for stack, n in sorted(slot.get("samples", {}).items()):
            samples.append([_idx(label) for label in stack.split(";")])
            w = n / hz
            weights.append(w)
            total += w
        docs.append({
            "type": "sampled",
            "name": f"pid {pid}",
            "unit": "seconds",
            "startValue": 0,
            "endValue": total,
            "samples": samples,
            "weights": weights,
        })
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "name": name,
        "exporter": "culzss-obs",
        "activeProfileIndex": 0,
        "shared": {"frames": frames},
        "profiles": docs,
    }


def write_speedscope(path, profiles: dict[int, dict], *,
                     name: str = "culzss") -> Path:
    """Dump :func:`speedscope_doc` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(speedscope_doc(profiles, name=name)))
    return path


def write_collapsed(path, profiles: dict[int, dict]) -> Path:
    """Dump :func:`collapsed_stacks` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(collapsed_stacks(profiles))
    return path


# ---------------------------------------------------- throughput ledger

def ledger(snapshot: dict) -> list[dict]:
    """Per-stage throughput rows from one (possibly merged) snapshot.

    A stage joins the ledger when it reports the ``bytes=`` dimension —
    i.e. a ``{stage}_bytes`` counter exists alongside a populated
    ``{stage}_seconds`` histogram.  Those stages (match, parse, pack,
    fixup, decode.stream, container, transport, per-codec) are the
    disjoint leaf timings, so ``share`` — this stage's fraction of the
    summed ledger seconds — reads as share-of-wall-time without
    double-counting nested wrapper spans.  Rows sort by seconds
    descending: the first row is where the time went.
    """
    counters = snapshot.get("counters", {})
    hists = snapshot.get("histograms", {})
    rows = []
    for cname in counters:
        if not cname.endswith("_bytes"):
            continue
        stage = cname[: -len("_bytes")]
        h = hists.get(f"{stage}_seconds")
        if not h or not h.get("count"):
            continue
        seconds = float(h["sum"])
        nbytes = int(counters[cname])
        rows.append({
            "stage": stage,
            "bytes": nbytes,
            "seconds": seconds,
            "calls": int(h["count"]),
            "mb_s": (nbytes / seconds / 1e6) if seconds > 0 else 0.0,
        })
    total = sum(r["seconds"] for r in rows)
    for r in rows:
        r["share"] = (r["seconds"] / total) if total > 0 else 0.0
    rows.sort(key=lambda r: (-r["seconds"], r["stage"]))
    return rows


def format_ledger(rows: list[dict]) -> str:
    """Aligned table for :func:`ledger` rows (``culzss stats`` / benchgate)."""
    if not rows:
        return "(no per-stage byte accounting recorded)"
    width = max(len(r["stage"]) for r in rows)
    lines = [f"{'stage':<{width}}  {'share':>6}  {'seconds':>9}  "
             f"{'MB/s':>8}  {'bytes':>12}  {'calls':>7}"]
    for r in rows:
        lines.append(
            f"{r['stage']:<{width}}  {r['share'] * 100:5.1f}%  "
            f"{r['seconds']:9.4f}  {r['mb_s']:8.2f}  "
            f"{r['bytes']:12d}  {r['calls']:7d}")
    return "\n".join(lines)


def stage_breakdown(before: dict, after: dict) -> dict[str, dict]:
    """Ledger-stage deltas between two registry snapshots.

    The benchgate capture primitive: snapshot around one case's
    measurement and keep only what that case spent.  Same inclusion
    rule as :func:`ledger` (stages carrying the ``bytes=`` dimension),
    so shares stay disjoint.  Returns ``{stage: {seconds, bytes,
    calls, share}}`` for stages active in the window.
    """
    b_counters = before.get("counters", {})
    b_hists = before.get("histograms", {})
    out: dict[str, dict] = {}
    for cname, a_total in after.get("counters", {}).items():
        if not cname.endswith("_bytes"):
            continue
        stage = cname[: -len("_bytes")]
        h = after.get("histograms", {}).get(f"{stage}_seconds")
        if not h:
            continue
        hb = b_hists.get(f"{stage}_seconds") or {"count": 0, "sum": 0.0}
        calls = int(h["count"]) - int(hb["count"])
        if calls <= 0:
            continue
        out[stage] = {
            "seconds": float(h["sum"]) - float(hb["sum"]),
            "bytes": int(a_total) - int(b_counters.get(cname, 0)),
            "calls": calls,
        }
    total = sum(v["seconds"] for v in out.values())
    for v in out.values():
        v["share"] = (v["seconds"] / total) if total > 0 else 0.0
    return out
