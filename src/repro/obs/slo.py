"""SLO monitor: declarative objectives, multi-window burn-rate alerts.

An *objective* states what "healthy" means in terms of metrics the
stack already records — no new instrumentation, just judgement over
the :class:`~repro.obs.registry.MetricRegistry` snapshots the gateway
sidecar serves:

* a **latency** objective ("p99 frame stage wait under 250 ms") reads
  a log-bucket histogram.  Internally it is a ratio objective in
  disguise: *p99 ≤ T* holds exactly when at most 1% of observations
  land above *T*, so the monitor counts bucket mass above the
  threshold — which also makes it *windowable* (bucket counts diff
  cleanly between snapshots, quantiles do not).
* a **ratio** objective ("connection errors under 1% of connections",
  "no more than 0.1% of CRC-checked chunks lost to salvage") divides
  one counter family by another.

The monitor keeps a bounded deque of timestamped snapshots.  Each
evaluation computes, per objective and per window, the **burn rate**:
the bad-event fraction inside the window divided by the objective's
error budget.  Burn 1.0 means the budget is being spent exactly as
fast as allowed; 10 means ten times too fast.  An objective *alerts*
when every window with data burns above its threshold — the classic
multi-window rule (short window = still happening now, long window =
not just a blip) from the SRE workbook, scaled down to two windows.

Thresholds over log-bucket histograms inherit the buckets' power-of-2
resolution: a threshold is effectively rounded up to its bucket's
upper edge (:func:`Histogram.bucket_of`).  That is the price of
windowability and is stated in the evaluation output (``threshold``
vs ``effective_threshold``).
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass, field
from time import time as wall_time

from repro.obs.registry import Histogram

__all__ = [
    "DEFAULT_WINDOWS",
    "Objective",
    "SloMonitor",
    "default_objectives",
    "quantile_from_hist",
]

#: (short, long) evaluation windows in seconds.  Short says "is it
#: happening right now", long says "is it sustained".
DEFAULT_WINDOWS = (60.0, 600.0)


def quantile_from_hist(hist: dict, q: float) -> float | None:
    """Estimate the ``q`` quantile from a histogram *snapshot* dict.

    Returns the upper edge ``2^k`` of the first bucket whose cumulative
    count reaches ``q`` of the total — an upper bound with the buckets'
    factor-of-2 resolution.  ``None`` when the histogram is empty.
    """
    count = hist.get("count", 0)
    if not count:
        return None
    need = q * count
    cum = 0
    for name, n in sorted(hist.get("buckets", {}).items(),
                          key=lambda kv: int(kv[0].split("^")[1])):
        cum += n
        if cum >= need:
            return 2.0 ** int(name.split("^")[1])
    return hist.get("max")


def _above_threshold(hist: dict, threshold: float) -> tuple[int, int]:
    """(observations above ``threshold``, total observations).

    "Above" is judged at bucket resolution: the bucket containing the
    threshold counts as *good* (the threshold rounds up to its upper
    edge).
    """
    k_t = Histogram.bucket_of(threshold)
    total = hist.get("count", 0)
    good = sum(n for name, n in hist.get("buckets", {}).items()
               if int(name.split("^")[1]) <= k_t)
    return max(0, total - good), total


@dataclass(frozen=True)
class Objective:
    """One declarative service-level objective.

    ``kind="latency"``: ``histogram`` + ``quantile`` + ``threshold``
    (seconds) — "the ``quantile`` of ``histogram`` stays at or under
    ``threshold``"; the error budget is ``1 - quantile``.

    ``kind="ratio"``: ``bad`` counters / ``total`` counters stay at or
    under ``budget``.
    """

    name: str
    kind: str  # "latency" | "ratio"
    description: str = ""
    # latency objectives
    histogram: str = ""
    quantile: float = 0.99
    threshold: float = 0.0
    # ratio objectives
    bad: tuple[str, ...] = ()
    total: tuple[str, ...] = ()
    budget: float = 0.0
    #: every window must burn above this rate to alert
    alert_burn: float = 2.0

    def __post_init__(self) -> None:
        if self.kind not in ("latency", "ratio"):
            raise ValueError(f"unknown objective kind {self.kind!r}")
        if self.kind == "latency" and not (0.0 < self.quantile < 1.0):
            raise ValueError("quantile must be in (0, 1)")

    @property
    def error_budget(self) -> float:
        """Allowed bad fraction (0..1)."""
        return (1.0 - self.quantile) if self.kind == "latency" \
            else self.budget

    def _bad_total(self, snapshot: dict) -> tuple[float, float]:
        if self.kind == "latency":
            hist = snapshot.get("histograms", {}).get(self.histogram, {})
            return _above_threshold(hist, self.threshold)
        counters = snapshot.get("counters", {})
        return (float(sum(counters.get(k, 0) for k in self.bad)),
                float(sum(counters.get(k, 0) for k in self.total)))


def default_objectives() -> list[Objective]:
    """The gateway's out-of-the-box SLOs (tune per deployment)."""
    return [
        Objective(
            name="frame_p99_seconds", kind="latency",
            histogram="egress.stage_wait_seconds",
            quantile=0.99, threshold=0.25,
            description="p99 egress frame stage wait stays under 250 ms"),
        Objective(
            name="error_rate", kind="ratio",
            bad=("server.connection_errors",),
            total=("server.connections",), budget=0.01,
            description="under 1% of connections end in a transport or "
                        "frame error"),
        Objective(
            name="salvage_rate", kind="ratio",
            bad=("container.salvage_chunks_lost",),
            total=("container.crc_checks",), budget=0.001,
            description="under 0.1% of CRC-checked chunks are lost to "
                        "salvage"),
    ]


@dataclass
class _Sample:
    t: float
    bad_total: dict[str, tuple[float, float]] = field(default_factory=dict)


class SloMonitor:
    """Evaluate objectives over a rolling window of registry snapshots.

    Feed it snapshots with :meth:`observe` (the gateway sidecar does
    this on every scrape, so the sampling cadence *is* the scrape
    cadence); :meth:`evaluate` judges the latest state.  Only the
    per-objective ``(bad, total)`` pairs are retained per sample, so
    memory is O(windows · objectives), not O(windows · metrics).
    """

    def __init__(self, objectives: list[Objective] | None = None, *,
                 windows: tuple[float, ...] = DEFAULT_WINDOWS,
                 max_samples: int = 1024,
                 clock=wall_time) -> None:
        self.objectives = list(default_objectives() if objectives is None
                               else objectives)
        if not all(w > 0 for w in windows):
            raise ValueError("windows must be positive seconds")
        self.windows = tuple(sorted(windows))
        self._clock = clock
        self._samples: deque[_Sample] = deque(maxlen=max_samples)
        # Sidecar scrapes render in worker threads; one lock keeps the
        # sample deque consistent under concurrent observe/evaluate.
        self._lock = threading.Lock()

    # ------------------------------------------------------------ feed

    def observe(self, snapshot: dict, now: float | None = None) -> None:
        """Record one registry snapshot's worth of SLO state."""
        sample = _Sample(t=self._clock() if now is None else now)
        for obj in self.objectives:
            sample.bad_total[obj.name] = obj._bad_total(snapshot)
        with self._lock:
            self._samples.append(sample)

    # ------------------------------------------------------------ judge

    def _window_base(self, now: float, window: float,
                     name: str) -> tuple[float, float, float] | None:
        """(bad, total, age) at the sample closest to ``now - window``.

        Prefers the newest sample at or older than the window edge; a
        monitor younger than the window falls back to its oldest sample
        (the window then covers the whole observed history).  ``None``
        with no samples at all.
        """
        with self._lock:
            base = None
            for s in self._samples:
                if s.t <= now - window:
                    base = s
                else:
                    break
            if base is None:
                if not self._samples:
                    return None
                base = self._samples[0]
        bad, total = base.bad_total.get(name, (0.0, 0.0))
        return bad, total, now - base.t

    def evaluate(self, snapshot: dict,
                 now: float | None = None) -> dict:
        """Judge every objective against ``snapshot``; returns a
        JSON-dumpable report (the ``/slo.json`` document)."""
        now = self._clock() if now is None else now
        out: dict = {"ts": round(now, 3),
                     "windows_seconds": list(self.windows),
                     "objectives": []}
        worst_ok = True
        for obj in self.objectives:
            bad_now, total_now = obj._bad_total(snapshot)
            budget = obj.error_budget
            ratio = (bad_now / total_now) if total_now else 0.0
            ok = ratio <= budget or not total_now
            entry: dict = {
                "name": obj.name,
                "kind": obj.kind,
                "description": obj.description,
                "ok": bool(ok),
                "bad": bad_now,
                "total": total_now,
                "bad_fraction": round(ratio, 6),
                "error_budget": budget,
                "windows": {},
            }
            if obj.kind == "latency":
                hist = snapshot.get("histograms", {}).get(obj.histogram, {})
                entry["value"] = quantile_from_hist(hist, obj.quantile)
                entry["threshold"] = obj.threshold
                entry["effective_threshold"] = \
                    2.0 ** Histogram.bucket_of(obj.threshold)
                entry["quantile"] = obj.quantile
            burns: list[float | None] = []
            for window in self.windows:
                based = self._window_base(now, window, obj.name)
                key = f"{int(window)}s"
                if based is None:
                    entry["windows"][key] = {"burn": None, "bad": 0.0,
                                             "total": 0.0}
                    burns.append(None)
                    continue
                bad0, total0, age = based
                w_bad = max(0.0, bad_now - bad0)
                w_total = max(0.0, total_now - total0)
                frac = (w_bad / w_total) if w_total else 0.0
                burn = (frac / budget) if budget else (
                    math.inf if w_bad else 0.0)
                entry["windows"][key] = {
                    "burn": (round(burn, 3)
                             if math.isfinite(burn) else None),
                    "bad": w_bad, "total": w_total,
                    "covers_seconds": round(min(age, window), 1),
                }
                burns.append(burn)
            entry["alerting"] = bool(burns) and all(
                b is not None and b >= obj.alert_burn for b in burns)
            worst_ok = worst_ok and ok and not entry["alerting"]
            out["objectives"].append(entry)
        out["ok"] = bool(worst_ok)
        return out

    # ----------------------------------------------------------- gauges

    def record_gauges(self, metrics, report: dict | None = None,
                      snapshot: dict | None = None) -> dict:
        """Write the evaluation into ``metrics`` as ``slo.*`` gauges.

        Prometheus export prefixes and sanitizes, so these surface as
        ``culzss_slo_<objective>_ok_last`` etc. in ``/metrics``.
        ``metrics`` is anything with a ``gauge(name, value)`` method
        (:class:`repro.service.metrics.Metrics` or a registry).
        """
        if report is None:
            report = self.evaluate(snapshot or {})
        for entry in report["objectives"]:
            base = f"slo.{entry['name']}"
            metrics.gauge(f"{base}.ok", 1.0 if entry["ok"] else 0.0)
            metrics.gauge(f"{base}.alerting",
                          1.0 if entry["alerting"] else 0.0)
            metrics.gauge(f"{base}.bad_fraction", entry["bad_fraction"])
            if entry.get("value") is not None:
                metrics.gauge(f"{base}.value", entry["value"])
            for key, win in entry["windows"].items():
                if win["burn"] is not None:
                    metrics.gauge(f"{base}.burn_{key}", win["burn"])
        metrics.gauge("slo.ok", 1.0 if report["ok"] else 0.0)
        return report
