"""Process-wide metric registry: counters, gauges, log-bucket histograms.

One :class:`MetricRegistry` holds every metric a process emits.  The
design constraints come from where it sits:

* **Hot-path cheap** — the matcher and encoder call :meth:`inc` and
  :meth:`observe` from inside the compression pipeline, so one call is
  one lock acquisition and a couple of dict operations; instrumented
  code accumulates locally and records once per call, never per loop
  round.
* **Thread-safe** — the parallel engine's worker threads and the
  asyncio pipelines' executor callbacks all write concurrently; a
  plain lock covers every entry point.
* **Process-mergeable** — service pool workers run in separate
  processes with their own registries.  :meth:`delta_snapshot` emits a
  picklable diff of everything recorded since the previous delta, and
  :meth:`merge` folds such a diff (from a worker) into the parent
  registry at pool join, so per-worker counts surface in one place.

:class:`Histogram` is the log-bucket histogram that started life in
``repro.service.metrics`` (PR 1), promoted here so every layer shares
one shape.  Zero handling is now explicit: **every** sample — zero
included — counts toward ``count``/``sum`` and updates ``min``/``max``;
non-positive values land in the underflow bucket ``le_2^-24``.  (The
old docstring promised zeros were "kept out of min only when no other
sample exists", which neither the code nor any caller wanted.)
"""

from __future__ import annotations

import math
import os
import threading
from collections import defaultdict

__all__ = ["Histogram", "MetricRegistry"]


class Histogram:
    """Fixed geometric buckets, ``(2^k, 2^(k+1)]``, plus count/sum/min/max.

    Covers ``2**-24`` (~6e-8, below any wait we time) through ``2**40``
    (a terabyte, above any frame we frame).  Explicit edge semantics:
    every sample updates ``count``, ``sum``, ``min`` and ``max`` — a
    recorded zero *is* the minimum; values at or below the smallest
    edge (zero and negatives included) land in the first bucket.
    """

    _LO, _HI = -24, 40

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._buckets: dict[int, int] = defaultdict(int)

    def record(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self._buckets[self.bucket_of(value)] += 1

    @classmethod
    def bucket_of(cls, value: float) -> int:
        """The bucket exponent ``k`` such that ``value ≤ 2^k`` holds."""
        if value <= 0:
            return cls._LO
        return min(max(math.ceil(math.log2(value)), cls._LO), cls._HI)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "buckets": {f"le_2^{exp}": n
                        for exp, n in sorted(self._buckets.items())},
        }

    def merge_delta(self, delta: dict) -> None:
        """Fold a :meth:`MetricRegistry.delta_snapshot` histogram diff in.

        ``count``/``sum``/``buckets`` are differential (they add);
        ``min``/``max`` are cumulative (idempotent combine), so merging
        the same worker's deltas repeatedly never skews the extremes.
        """
        self.count += delta["count"]
        self.total += delta["sum"]
        for edge in ("min", "max"):
            v = delta.get(edge)
            if v is None:
                continue
            cur = getattr(self, edge)
            pick = min if edge == "min" else max
            setattr(self, edge, v if cur is None else pick(cur, v))
        for exp, n in delta["buckets"].items():
            self._buckets[int(exp)] += n


class MetricRegistry:
    """Counters + gauges + histograms behind one lock and one snapshot.

    ``preregister`` names counters (and ``preregister_histograms``
    histograms) that should exist at zero from the start, so exporters
    surface the full schema even before the first event — the
    Prometheus convention that a counter you might alert on is always
    scrapeable.
    """

    def __init__(self, preregister: tuple[str, ...] = (),
                 preregister_histograms: tuple[str, ...] = ()) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = defaultdict(int)
        self._gauges: dict[str, dict[str, float]] = {}
        self._histograms: dict[str, Histogram] = {}
        # Delta baselines: what the previous delta_snapshot() reported.
        self._base_counters: dict[str, int] = {}
        self._base_hist: dict[str, tuple[int, float, dict[int, int]]] = {}
        for name in preregister:
            self._counters[name] += 0
        for name in preregister_histograms:
            self._histograms.setdefault(name, Histogram())

    # ------------------------------------------------------------ record

    def inc(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] += n

    def count(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str, value: float) -> None:
        """Record an instantaneous reading; keeps last and high-water."""
        with self._lock:
            g = self._gauges.setdefault(name, {"last": value, "max": value})
            g["last"] = value
            g["max"] = max(g["max"], value)

    def gauge_max(self, name: str) -> float:
        with self._lock:
            return self._gauges.get(name, {}).get("max", 0.0)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.record(value)

    # ---------------------------------------------------------- snapshot

    def snapshot(self) -> dict:
        """Everything, as plain dicts — JSON-dumpable as-is."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": {k: dict(v) for k, v in self._gauges.items()},
                "histograms": {k: h.snapshot()
                               for k, h in self._histograms.items()},
            }

    def delta_snapshot(self) -> dict:
        """A picklable diff of everything since the previous delta.

        The worker side of the cross-process merge: call after a pool
        job, ship the result over the executor pipe, and
        :meth:`merge` it in the parent.  Counters and histogram
        count/sum/buckets are differential; gauges and histogram
        min/max ship their current values (merging those is
        idempotent).  ``pid`` lets the parent drop a delta that was
        produced in its own process (nothing to merge — the registry
        already has it).
        """
        with self._lock:
            counters = {}
            for name, v in self._counters.items():
                d = v - self._base_counters.get(name, 0)
                if d:
                    counters[name] = d
                self._base_counters[name] = v
            hists = {}
            for name, h in self._histograms.items():
                bc, bs, bb = self._base_hist.get(name, (0, 0.0, {}))
                buckets = {exp: n - bb.get(exp, 0)
                           for exp, n in h._buckets.items()
                           if n != bb.get(exp, 0)}
                if h.count != bc or buckets:
                    hists[name] = {"count": h.count - bc,
                                   "sum": h.total - bs,
                                   "min": h.min, "max": h.max,
                                   "buckets": buckets}
                self._base_hist[name] = (h.count, h.total,
                                         dict(h._buckets))
            gauges = {k: dict(v) for k, v in self._gauges.items()}
        return {"pid": os.getpid(), "counters": counters,
                "gauges": gauges, "histograms": hists}

    def merge(self, delta: dict | None) -> None:
        """Fold a worker's :meth:`delta_snapshot` into this registry.

        A ``None`` delta, or one stamped with this process's own pid,
        is a no-op — same-process "workers" (inline executors, thread
        pools) already wrote here directly, and merging their delta
        again would double-count.
        """
        if not delta or delta.get("pid") == os.getpid():
            return
        with self._lock:
            for name, n in delta.get("counters", {}).items():
                self._counters[name] += n
            for name, g in delta.get("gauges", {}).items():
                cur = self._gauges.setdefault(
                    name, {"last": g["last"], "max": g["max"]})
                cur["last"] = g["last"]
                cur["max"] = max(cur["max"], g["max"])
            for name, d in delta.get("histograms", {}).items():
                hist = self._histograms.get(name)
                if hist is None:
                    hist = self._histograms[name] = Histogram()
                hist.merge_delta(d)
