"""``culzss`` — the standalone file compressor (the paper's I/O version).

§III: "The other version is the I/O version which is a standalone
compression program.  It follows the same flow except reading from and
writing to the given files."

Usage::

    culzss compress   INPUT OUTPUT [--version {1,2}] [--system SYSTEM]
                      [--workers N] [--codec C] [--probe-threshold T]
    culzss decompress INPUT OUTPUT
    culzss info       INPUT
    culzss bench      [--size-mb N] [--datasets a,b,...]
    culzss report     [--size-mb N] [--output FILE]
    culzss serve      [--host H] [--port P] [--output-dir DIR]
                      [--metrics-port P] ...
    culzss send       [INPUT ...] [--dataset KIND --count N] ...
    culzss stats      [INPUT] [--format {pretty,json,prom}] ...
    culzss trace      INPUT [--output FILE] [--workers N] ...
    culzss benchgate  [--suite {engine,codecs}] [--quick] [--update]
                      [--threshold PCT] [--attribute] [--profile FILE]
    culzss top        --port P [--plain] [--interval S]

``serve``/``send`` run the streaming gateway pair (`repro.service`):
``serve`` is the egress gateway (decompress + deliver), ``send`` the
ingress gateway (compress + ship); both print a metrics snapshot on
exit.  With process fan-out (``--workers``) frames travel through
shared-memory slabs by default; ``--no-shm`` forces the pickle
transport.

``stats``/``trace`` surface the :mod:`repro.obs` observability layer:
``stats`` runs a compress/decompress round trip and prints the metric
registry (matcher probes, encoder stage timings, container CRC events,
engine shard stats) as a table, JSON, or Prometheus text; ``trace``
compresses a file with span capture on and writes a chrome-trace JSON
loadable in ``chrome://tracing`` / Perfetto.  ``serve
--metrics-port P`` additionally exposes a live ``/metrics`` scrape.

``benchgate`` runs the statistical codec benchmarks and fails (exit 1)
on a median regression against the committed ``BENCH_engine.json``
baseline; ``--attribute`` names the stage(s) whose time share grew.
``top`` is a live dashboard (curses, or ``--plain``) over a ``serve
--metrics-port`` sidecar, showing throughput, queue depths, latency
quantiles, degraded-mode counters, per-codec dispatch, and SLO state.

``compress``/``decompress``/``serve``/``benchgate`` all take
``--profile FILE``: a sampling profiler (``repro.obs.prof``) runs for
the duration — in pool workers too — and writes a speedscope JSON plus
folded stacks on exit.

``--system`` selects any of the five evaluated systems (culzss-v1,
culzss-v2, serial, pthread, bzip2); CULZSS/serial outputs are
self-describing containers, so ``decompress`` needs no flags.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from pathlib import Path

__all__ = ["build_parser", "main"]


@contextmanager
def _profiled(path: str | None, hz: float | None = None):
    """Run the wrapped command under the sampling profiler.

    No-op when ``path`` is falsy.  Sets ``REPRO_PROFILE_HZ`` for the
    duration so any pool workers the command spawns sample themselves
    too; their drains ride home inside the obs deltas and the final
    export covers every pid in one speedscope document (plus a
    ``.collapsed`` folded-stack sibling).
    """
    if not path:
        yield
        return
    import os

    from repro.obs import prof

    prior = os.environ.get(prof.ENV_HZ)
    os.environ[prof.ENV_HZ] = str(hz if hz else prof.DEFAULT_HZ)
    prof.start(hz)
    try:
        yield
    finally:
        prof.stop()
        if prior is None:
            os.environ.pop(prof.ENV_HZ, None)
        else:
            os.environ[prof.ENV_HZ] = prior
        prof.export(path)


def _add_profile_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--profile", default=None, metavar="FILE",
                   help="sample this command's stacks and write a "
                        "speedscope JSON to FILE (plus a .collapsed "
                        "folded-stack sibling); pool workers are "
                        "sampled too")
    p.add_argument("--profile-hz", type=float, default=None,
                   help="sampling frequency (default ~97 Hz, or "
                        "REPRO_PROFILE_HZ)")


def _check_probe_threshold(value: float | None) -> str | None:
    """Validate ``--probe-threshold`` up front; returns the error text."""
    from repro.lzss.matcher import resolve_probe_threshold

    try:
        resolve_probe_threshold(value)
    except ValueError as exc:
        return str(exc)
    return None


def _cmd_compress(args: argparse.Namespace) -> int:
    with _profiled(args.profile, args.profile_hz):
        return _run_compress(args)


def _run_compress(args: argparse.Namespace) -> int:
    data = Path(args.input).read_bytes()
    system = args.system or f"culzss-v{args.version}"
    if system not in ("culzss-v1", "culzss-v2") and args.codec != "lzss":
        print(f"--codec applies to the culzss systems, not {system!r}",
              file=sys.stderr)
        return 2
    if (err := _check_probe_threshold(args.probe_threshold)) is not None:
        print(err, file=sys.stderr)
        return 2
    if system in ("culzss-v1", "culzss-v2"):
        from repro.core import CompressionParams, gpu_compress

        version = 1 if system.endswith("1") else 2
        buf = gpu_compress(data, CompressionParams(version=version),
                           workers=args.workers, codec=args.codec,
                           probe_threshold=args.probe_threshold)
        blob = buf.data
        timing = ("" if args.codec != "lzss" else
                  f", modeled GTX-480 time {buf.modeled_seconds:.4f}s")
        print(f"{system}[{args.codec}]: {len(data)} -> {len(blob)} bytes "
              f"(ratio {buf.ratio:.4f}{timing})")
    elif system == "serial":
        from repro.cpu import SerialLzss

        blob = SerialLzss().compress_container(data)
        print(f"serial: {len(data)} -> {len(blob)} bytes")
    elif system == "pthread":
        from repro.container import pack_container
        from repro.cpu import PthreadLzss

        with PthreadLzss(n_threads=args.workers or None) as pthread:
            blob = pack_container(pthread.compress(data))
        print(f"pthread: {len(data)} -> {len(blob)} bytes")
    elif system == "bzip2":
        from repro.bzip2 import compress

        blob = compress(data).blob
        print(f"bzip2: {len(data)} -> {len(blob)} bytes")
    else:
        print(f"unknown system {system!r}", file=sys.stderr)
        return 2
    Path(args.output).write_bytes(blob)
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    with _profiled(args.profile, args.profile_hz):
        return _run_decompress(args)


def _run_decompress(args: argparse.Namespace) -> int:
    from repro.errors import ReproError

    blob = Path(args.input).read_bytes()
    rc = 0
    try:
        if blob[:4] == b"RBZ2":
            from repro.bzip2 import decompress

            out = decompress(blob)
        elif blob[:4] == b"CLZS":
            from repro.container import unpack_container

            info = unpack_container(blob, strict=not args.salvage)
            if info.is_chunked:
                from repro.core import gpu_decompress

                res = gpu_decompress(
                    blob, errors="salvage" if args.salvage else "strict",
                    fill_byte=args.fill_byte)
                out = res.data
                if res.salvage is not None:
                    print(f"salvage: {res.salvage.describe()}")
                    if not res.salvage.complete:
                        rc = 1
            else:
                from repro.lzss import decode

                out = decode(info.payload, info.format, info.original_size)
        else:
            print("unrecognized container magic", file=sys.stderr)
            return 2
    except ReproError as exc:
        print(f"decompress failed: {exc}", file=sys.stderr)
        if not args.salvage:
            print("hint: --salvage recovers intact chunks from a "
                  "damaged container", file=sys.stderr)
        return 2
    Path(args.output).write_bytes(out)
    print(f"{len(blob)} -> {len(out)} bytes")
    return rc


def _cmd_info(args: argparse.Namespace) -> int:
    blob = Path(args.input).read_bytes()
    if blob[:4] == b"RBZ2":
        print("format: bzip2-style container")
        return 0
    from repro.container import unpack_container

    info = unpack_container(blob)
    print(f"format: {info.format.name}")
    print(f"container version: {info.version}")
    print(f"original size: {info.original_size}")
    print(f"payload size: {len(info.payload)}")
    if info.is_chunked:
        print(f"chunks: {len(info.chunk_sizes)} x {info.chunk_size} bytes")
        print(f"chunk table overhead: {info.container_overhead} bytes")
        print("per-chunk CRCs: "
              + ("yes" if info.chunk_crcs is not None else "no"))
    if info.chunk_codecs is not None:
        from repro.codecs import get_codec

        print("per-chunk codecs:")
        for c, cid in enumerate(info.chunk_codecs):
            raw = min(info.chunk_size,
                      info.original_size - c * info.chunk_size)
            ratio = (f"{int(info.chunk_sizes[c]) / raw:.4f}" if raw > 0
                     else "-")
            try:
                name = get_codec(int(cid)).name
            except KeyError:
                name = "?"
            print(f"  chunk {c}: codec {int(cid)} ({name}), "
                  f"{int(info.chunk_sizes[c])} bytes (ratio {ratio})")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import os

    if args.size_mb:
        os.environ["REPRO_BENCH_MB"] = str(args.size_mb)
    from repro.bench import run_all
    from repro.model.report import experiments_markdown

    md = experiments_markdown(run_all())
    if args.output:
        Path(args.output).write_text(md + "\n")
        print(f"wrote {args.output}")
    else:
        print(md)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import os

    if args.size_mb:
        os.environ["REPRO_BENCH_MB"] = str(args.size_mb)
    from repro.bench import (
        format_figure4,
        format_table,
        run_all,
        table1_rows,
        table2_rows,
        table3_rows,
    )

    datasets = args.datasets.split(",") if args.datasets else None
    runs = run_all(datasets=datasets)
    print(format_table(table1_rows(runs),
                       "TABLE I: compression times (128 MB, modeled)"))
    print()
    print(format_table(table2_rows(runs), "TABLE II: compression ratios",
                       percent=True))
    print()
    print(format_table(table3_rows(runs), "TABLE III: decompression times"))
    print()
    print(format_figure4(runs))
    return 0


def _print_metrics(metrics) -> None:
    import json

    print("metrics snapshot:")
    print(json.dumps(metrics.snapshot(), indent=2, sort_keys=True))


def _cmd_serve(args: argparse.Namespace) -> int:
    with _profiled(args.profile, args.profile_hz):
        return _run_serve(args)


def _run_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import GatewayServer, Metrics

    if args.log_json:
        from repro.obs import log as obslog

        obslog.configure()
    metrics = Metrics()
    out_dir = Path(args.output_dir) if args.output_dir else None
    if out_dir:
        out_dir.mkdir(parents=True, exist_ok=True)

    async def deliver(stream_id: int, seq: int, data: bytes) -> None:
        if out_dir:
            # delivery is strictly in sequence order, so appending
            # reassembles each stream into one file
            mode = "wb" if seq == 0 else "ab"
            with open(out_dir / f"stream-{stream_id}.bin", mode) as fh:
                fh.write(data)

    async def run() -> None:
        accept = (args.accept_codecs.split(",") if args.accept_codecs
                  else None)
        server = GatewayServer(args.host, args.port, workers=args.workers,
                               queue_depth=args.queue_depth,
                               timeout=args.timeout, metrics=metrics,
                               use_shm=False if args.no_shm else None,
                               metrics_port=args.metrics_port,
                               accept_codecs=accept,
                               deliver=deliver)
        await server.start()
        print(f"listening on {server.host}:{server.port}", flush=True)
        if server.metrics_port is not None:
            print(f"metrics on http://{server.host}:{server.metrics_port}"
                  f"/metrics", flush=True)
        try:
            if args.max_conns:
                await server.wait_connections(args.max_conns)
            else:
                await asyncio.Event().wait()  # until interrupted
        finally:
            await server.close()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("interrupted; draining")
    _print_metrics(metrics)
    return 0


def _cmd_send(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import GatewayClient, Metrics

    if (err := _check_probe_threshold(args.probe_threshold)) is not None:
        print(err, file=sys.stderr)
        return 2
    if args.inputs:
        buffers = [Path(p).read_bytes() for p in args.inputs]
    else:
        from repro.datasets import generate

        buffers = [generate(args.dataset, args.buffer_size, seed=1000 + i)
                   for i in range(args.count)]
    metrics = Metrics()

    async def run():
        client = GatewayClient(args.host, args.port, version=args.version,
                               workers=args.workers,
                               queue_depth=args.queue_depth,
                               timeout=args.timeout, retries=args.retries,
                               use_shm=False if args.no_shm else None,
                               metrics=metrics, codec=args.codec,
                               probe_threshold=args.probe_threshold)
        async with client:
            if client.codec != args.codec:
                print(f"gateway declined codec {args.codec!r}; "
                      f"using {client.codec!r}")
            return await client.send_stream(buffers, stream_id=args.stream_id)

    from repro.service import FrameError

    try:
        ack = asyncio.run(run())
    except (ConnectionError, OSError, TimeoutError, asyncio.TimeoutError,
            FrameError) as exc:
        print(f"send failed: {exc!r}", file=sys.stderr)
        return 2
    sent = sum(len(b) for b in buffers)
    wire = metrics.count("ingress.bytes_out")
    print(f"sent {len(buffers)} buffers ({sent} bytes) -> {wire} bytes "
          f"on the wire (ratio {wire / sent:.4f})" if sent else
          f"sent {len(buffers)} empty buffers")
    print(f"egress delivered {ack.frames} frames / {ack.bytes} bytes, "
          f"CRC verified")
    if args.metrics:
        _print_metrics(metrics)
    return 0


def _cmd_benchgate(args: argparse.Namespace) -> int:
    from repro.bench.gate import run_gate

    baseline = args.baseline or ("BENCH_codecs.json" if args.suite == "codecs"
                                 else "BENCH_engine.json")
    return run_gate(Path(baseline),
                    mode="quick" if args.quick else "full",
                    update=args.update, threshold_pct=args.threshold,
                    suite=args.suite, attribute=args.attribute,
                    profile=args.profile)


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.top import run_top

    return run_top(args.host, args.port, interval=args.interval,
                   iterations=args.iterations, plain=args.plain)


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro import obs

    if not obs.enabled():
        print("observability is disabled (REPRO_OBS=0); nothing to record",
              file=sys.stderr)
        return 2
    if args.input:
        data = Path(args.input).read_bytes()
    else:
        from repro.datasets import generate

        data = generate(args.dataset, args.size)
    from repro.core import CompressionParams, gpu_compress, gpu_decompress

    buf = gpu_compress(data, CompressionParams(version=args.version),
                       workers=args.workers)
    res = gpu_decompress(buf.data, workers=args.workers)
    if res.data != data:  # pragma: no cover - codec invariant
        print("round trip mismatch", file=sys.stderr)
        return 2
    snap = obs.get_registry().snapshot()
    if args.format == "json":
        print(obs.json_text(snap))
    elif args.format == "prom":
        print(obs.prometheus_text(snap), end="")
    else:
        print(obs.format_pretty(snap))
        print()
        print("per-stage throughput ledger:")
        print(obs.format_ledger(obs.ledger(snap)))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.obs import trace
    from repro.service.pipeline import decode_payload, encode_payload

    if not obs.enabled():
        print("observability is disabled (REPRO_OBS=0); nothing to trace",
              file=sys.stderr)
        return 2
    data = Path(args.input).read_bytes()
    from repro.engine.parallel import MIN_PARALLEL_BYTES

    if args.workers > 1 and len(data) < MIN_PARALLEL_BYTES:
        print(f"note: {len(data)}-byte input is below the "
              f"{MIN_PARALLEL_BYTES}-byte parallel threshold; the trace "
              f"will show the serial path (no engine.shard spans)",
              file=sys.stderr)
    tid = trace.new_trace_id()
    flags, payload = encode_payload(data, args.version,
                                    workers=args.workers, trace_id=tid)
    if not args.no_decode:
        decode_payload(flags, payload, workers=args.workers, trace_id=tid)
    spans = trace.spans()
    out = Path(args.output or args.input + ".trace.json")
    obs.write_chrome_trace(out, spans)
    by_name: dict[str, int] = {}
    for s in spans:
        by_name[s.name] = by_name.get(s.name, 0) + 1
    print(f"wrote {out}: {len(spans)} spans over trace {tid:#x}")
    for name in sorted(by_name):
        print(f"  {by_name[name]:6d}  {name}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="culzss",
        description="CULZSS reproduction: LZSS compression on simulated CUDA")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compress", help="compress a file")
    p.add_argument("input")
    p.add_argument("output")
    p.add_argument("--version", type=int, choices=(1, 2), default=2,
                   help="CULZSS version (the API's version parameter)")
    p.add_argument("--system", choices=("culzss-v1", "culzss-v2", "serial",
                                        "pthread", "bzip2"),
                   help="which evaluated system to use")
    p.add_argument("--workers", type=int, default=None,
                   help="shard the encode across N cores "
                        "(byte-identical output; default: serial)")
    p.add_argument("--codec", default="lzss",
                   choices=("auto", "store", "lzss", "lz4s", "lzss-huffman"),
                   help="per-chunk codec for the culzss systems; 'auto' "
                        "probes each chunk and writes a v3 container")
    p.add_argument("--probe-threshold", type=float, default=None,
                   help="store-fallback entropy threshold in bits/byte "
                        "(default: REPRO_PROBE_THRESHOLD or 7.9)")
    _add_profile_args(p)
    p.set_defaults(func=_cmd_compress)

    p = sub.add_parser("decompress", help="decompress a container file")
    p.add_argument("input")
    p.add_argument("output")
    p.add_argument("--salvage", action="store_true",
                   help="recover what a damaged container still holds: "
                        "bad chunks become fill bytes and are reported "
                        "(exit 1 on partial loss)")
    p.add_argument("--fill-byte", type=int, default=0,
                   help="fill value for unrecoverable chunks (0..255)")
    _add_profile_args(p)
    p.set_defaults(func=_cmd_decompress)

    p = sub.add_parser("info", help="describe a container file")
    p.add_argument("input")
    p.set_defaults(func=_cmd_info)

    p = sub.add_parser("report", help="emit the EXPERIMENTS.md comparison")
    p.add_argument("--size-mb", type=float, default=None)
    p.add_argument("--output", default=None, help="write to a file")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("bench", help="regenerate the paper's tables")
    p.add_argument("--size-mb", type=float, default=None,
                   help="benchmark input size in MiB (default 1)")
    p.add_argument("--datasets", default=None,
                   help="comma-separated dataset subset")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("serve", help="run the egress gateway server")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (0 picks a free one and prints it)")
    p.add_argument("--workers", type=int, default=0,
                   help="decompression fan-out processes (0: in-loop pool)")
    p.add_argument("--queue-depth", type=int, default=8,
                   help="bounded frames in flight per pipeline stage")
    p.add_argument("--timeout", type=float, default=30.0,
                   help="per-frame read/write timeout in seconds")
    p.add_argument("--output-dir", default=None,
                   help="reassemble delivered streams into DIR/stream-N.bin")
    p.add_argument("--max-conns", type=int, default=0,
                   help="exit after N connections (0: serve until ^C)")
    p.add_argument("--no-shm", action="store_true",
                   help="disable the shared-memory frame transport "
                        "(pickle frames through the pool pipe instead)")
    p.add_argument("--metrics-port", type=int, default=None,
                   help="serve Prometheus /metrics (plus /metrics.json and "
                        "/slo.json) on this sidecar port (0 picks a free "
                        "one)")
    p.add_argument("--log-json", action="store_true",
                   help="emit structured JSON log lines (one per degraded "
                        "event, trace-id correlated) on stderr")
    p.add_argument("--accept-codecs", default=None,
                   help="comma-separated codec names answered in the NEG "
                        "handshake (default: everything registered)")
    _add_profile_args(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("send", help="send buffers through an ingress gateway")
    p.add_argument("inputs", nargs="*",
                   help="files to send (default: generated dataset traffic)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True)
    p.add_argument("--version", type=int, choices=(1, 2), default=2,
                   help="CULZSS version (the API's version parameter)")
    p.add_argument("--workers", type=int, default=2,
                   help="compression fan-out processes")
    p.add_argument("--queue-depth", type=int, default=8,
                   help="bounded frames in flight (backpressure bound)")
    p.add_argument("--timeout", type=float, default=30.0)
    p.add_argument("--retries", type=int, default=3,
                   help="transient-failure retries (exponential backoff)")
    p.add_argument("--stream-id", type=int, default=0)
    p.add_argument("--dataset", default="cfiles",
                   help="dataset kind for generated traffic")
    p.add_argument("--count", type=int, default=4,
                   help="generated buffers to send")
    p.add_argument("--buffer-size", type=int, default=65536,
                   help="generated buffer size in bytes")
    p.add_argument("--metrics", action="store_true",
                   help="dump the client metrics snapshot on exit")
    p.add_argument("--no-shm", action="store_true",
                   help="disable the shared-memory frame transport "
                        "(pickle frames through the pool pipe instead)")
    p.add_argument("--codec", default="lzss",
                   choices=("auto", "store", "lzss", "lz4s", "lzss-huffman"),
                   help="container codec, negotiated with the egress "
                        "gateway at connect (falls back to lzss)")
    p.add_argument("--probe-threshold", type=float, default=None,
                   help="raw-passthrough entropy threshold in bits/byte "
                        "(default: REPRO_PROBE_THRESHOLD or 7.9)")
    p.set_defaults(func=_cmd_send)

    p = sub.add_parser("benchgate",
                       help="statistical benchmark regression gate")
    p.add_argument("--suite", choices=("engine", "codecs"), default="engine",
                   help="which benchmark suite to gate")
    p.add_argument("--baseline", default=None,
                   help="trajectory file holding the committed baseline "
                        "(default: BENCH_engine.json or BENCH_codecs.json "
                        "per --suite)")
    p.add_argument("--quick", action="store_true",
                   help="CI-sized workload (compares against the newest "
                        "quick-mode baseline)")
    p.add_argument("--update", action="store_true",
                   help="append a fresh baseline run instead of judging "
                        "(run on a known-good tree)")
    p.add_argument("--threshold", type=float, default=25.0,
                   help="median regression percentage that fails the gate "
                        "(IQR overlap always passes)")
    p.add_argument("--attribute", action="store_true",
                   help="on regression, diff the per-stage time shares "
                        "against the baseline's recorded breakdown and "
                        "name the suspect stage(s)")
    p.add_argument("--profile", default=None, metavar="FILE",
                   help="sample the whole measurement and write a "
                        "speedscope JSON to FILE (plus a .collapsed "
                        "folded-stack sibling)")
    p.set_defaults(func=_cmd_benchgate)

    p = sub.add_parser("top",
                       help="live dashboard over a gateway metrics sidecar")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True,
                   help="the gateway's --metrics-port")
    p.add_argument("--interval", type=float, default=2.0,
                   help="seconds between refreshes")
    p.add_argument("--iterations", type=int, default=None,
                   help="exit after N refreshes (default: run until ^C)")
    p.add_argument("--plain", action="store_true",
                   help="print refresh blocks instead of the curses UI")
    p.set_defaults(func=_cmd_top)

    p = sub.add_parser("stats",
                       help="run a round trip and print the obs registry")
    p.add_argument("input", nargs="?", default=None,
                   help="file to round-trip (default: generated dataset)")
    p.add_argument("--format", choices=("pretty", "json", "prom"),
                   default="pretty", help="output format")
    p.add_argument("--version", type=int, choices=(1, 2), default=2,
                   help="CULZSS version (the API's version parameter)")
    p.add_argument("--workers", type=int, default=None,
                   help="shard the codec across N cores")
    p.add_argument("--dataset", default="cfiles",
                   help="dataset kind when no input file is given")
    p.add_argument("--size", type=int, default=1 << 20,
                   help="generated buffer size in bytes (default 1 MiB)")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("trace",
                       help="compress a file and write a chrome-trace JSON")
    p.add_argument("input", help="file to compress under span capture")
    p.add_argument("--output", default=None,
                   help="trace file path (default: INPUT.trace.json)")
    p.add_argument("--version", type=int, choices=(1, 2), default=2,
                   help="CULZSS version (the API's version parameter)")
    p.add_argument("--workers", type=int, default=2,
                   help="engine shard width (>1 shows engine.shard spans "
                        "for inputs past the parallel threshold)")
    p.add_argument("--no-decode", action="store_true",
                   help="trace the compress half only")
    p.set_defaults(func=_cmd_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
