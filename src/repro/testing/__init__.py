"""Test-support tooling: deterministic fault injection.

Everything in here exists to *break* the system on purpose, in
reproducible ways — see :mod:`repro.testing.faults` and
``docs/robustness.md`` for the cookbook.  Production code must not
import this package.
"""

from repro.testing.faults import (
    DEFAULT_CHAOS_SEEDS,
    CrashingExecutor,
    FlakyWriter,
    InlineExecutor,
    chaos_seed,
    corrupt_chunk_table,
    corrupt_chunks,
    crash_factory,
    crash_worker_job,
    flip_bits,
    tag_crash_buffer,
    truncate,
)

__all__ = [
    "DEFAULT_CHAOS_SEEDS",
    "CrashingExecutor",
    "FlakyWriter",
    "InlineExecutor",
    "chaos_seed",
    "corrupt_chunk_table",
    "corrupt_chunks",
    "crash_factory",
    "crash_worker_job",
    "flip_bits",
    "tag_crash_buffer",
    "truncate",
]
