"""Deterministic fault injectors for the robustness test suites.

Every injector is seeded — the chaos suites must replay bit-for-bit
from a seed, so a CI failure at seed 202 reproduces locally with
``REPRO_CHAOS_SEED=202``.  Three families:

* **Blob corruption** — :func:`flip_bits`, :func:`corrupt_chunks`,
  :func:`corrupt_chunk_table`, :func:`truncate` damage container bytes
  at chosen structural locations (payload of chunk *k*, the size
  table, the tail).
* **Executor faults** — :class:`CrashingExecutor` emulates a worker
  death: the Nth submitted job "kills its worker", failing that future
  and poisoning the pool exactly like ``BrokenProcessPool`` does.
  :func:`crash_factory` plugs it into
  :class:`repro.engine.ParallelEngine`'s ``executor_factory`` so the
  first pool crashes and its replacement behaves.
  :func:`crash_worker_job` is the real-process variant: a picklable
  pipeline job that hard-kills any pool worker it lands in but
  completes in the parent — so the serial fallback succeeds.
* **Transport faults** — :class:`FlakyWriter` wraps an asyncio
  ``StreamWriter`` and garbles or drops every Nth write.

See ``docs/robustness.md`` for the cookbook.
"""

from __future__ import annotations

import os
import random
import time
from concurrent.futures import BrokenExecutor, Executor, Future
from contextlib import contextmanager

from repro.container import unpack_container
from repro.util.validation import require

__all__ = [
    "DEFAULT_CHAOS_SEEDS",
    "CrashingExecutor",
    "FlakyWriter",
    "InlineExecutor",
    "chaos_seed",
    "corrupt_chunk_table",
    "corrupt_chunks",
    "crash_factory",
    "crash_worker_job",
    "flip_bits",
    "slow_call",
    "tag_crash_buffer",
    "truncate",
]

#: The fixed seeds the CI chaos lane runs; any one failing pins the
#: exact corruption pattern for local replay.
DEFAULT_CHAOS_SEEDS = (101, 202, 303)


def chaos_seed(default: int = DEFAULT_CHAOS_SEEDS[0]) -> int:
    """The active chaos seed: ``REPRO_CHAOS_SEED`` env var or a default."""
    return int(os.environ.get("REPRO_CHAOS_SEED", default))


@contextmanager
def slow_call(module, attr: str, seconds: float):
    """Induce a perf regression: every ``module.attr`` call sleeps first.

    The forensics counterpart of the corruption injectors — callers
    that resolve ``attr`` through the module at call time (the bench
    gate's contract) see an artificially slow implementation for the
    duration of the ``with``, which is how the attribution tests plant
    a regression in one known stage.  Restores the original on exit.
    """
    original = getattr(module, attr)

    def slowed(*args, **kwargs):
        time.sleep(seconds)
        return original(*args, **kwargs)

    setattr(module, attr, slowed)
    try:
        yield original
    finally:
        setattr(module, attr, original)


# ------------------------------------------------------ blob corruption

def flip_bits(blob: bytes, n: int = 1, *, seed: int = 0,
              lo: int = 0, hi: int | None = None) -> bytes:
    """Flip ``n`` random bits of ``blob[lo:hi]`` (seeded, with replacement)."""
    buf = bytearray(blob)
    hi = len(buf) if hi is None else hi
    require(0 <= lo < hi <= len(buf), "empty or out-of-range corruption span")
    rng = random.Random(seed)
    for _ in range(n):
        pos = rng.randrange(lo, hi)
        buf[pos] ^= 1 << rng.randrange(8)
    return bytes(buf)


def corrupt_chunks(blob: bytes, indices, *, seed: int = 0,
                   bits_per_chunk: int = 1) -> bytes:
    """Flip bits inside the payload slice of each listed chunk.

    Targets the *compressed* bytes of exactly those chunks — the
    surgical damage the salvage round-trip property needs (chunk ``k``
    corrupt, every other chunk untouched).
    """
    info = unpack_container(blob, strict=False)
    require(info.is_chunked, "container is not chunked")
    base = info.payload_offset
    ranges = info.chunk_ranges()
    out = blob
    rng = random.Random(seed)
    for c in indices:
        lo, hi = int(ranges[c, 0]) + base, int(ranges[c, 1]) + base
        out = flip_bits(out, bits_per_chunk, seed=rng.randrange(1 << 30),
                        lo=lo, hi=hi)
    return out


def corrupt_chunk_table(blob: bytes, *, seed: int = 0, n: int = 1) -> bytes:
    """Flip bits inside the chunk table (between header and payload)."""
    info = unpack_container(blob, strict=False)
    require(info.is_chunked, "container is not chunked")
    from repro.container import HEADER_SIZE

    return flip_bits(blob, n, seed=seed, lo=HEADER_SIZE,
                     hi=info.payload_offset)


def truncate(blob: bytes, n: int) -> bytes:
    """Drop the last ``n`` bytes (a partial write / short read)."""
    require(0 < n <= len(blob), "truncation must remove 1..len bytes")
    return blob[:len(blob) - n]


# ------------------------------------------------------- executor faults

class InlineExecutor(Executor):
    """Runs every job synchronously in ``submit`` — no threads at all.

    Deterministic scheduling for tests; also the well-behaved
    replacement :func:`crash_factory` hands out after the crash.
    """

    def __init__(self) -> None:
        self.calls = 0
        self.shut_down = False

    def submit(self, fn, /, *args, **kwargs) -> Future:
        self.calls += 1
        fut: Future = Future()
        try:
            fut.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # the future carries it, as a pool would
            fut.set_exception(exc)
        return fut

    def shutdown(self, wait: bool = True, *,
                 cancel_futures: bool = False) -> None:
        self.shut_down = True


class CrashingExecutor(Executor):
    """Inline executor whose ``crash_on``-th submit kills its "worker".

    Models ``BrokenProcessPool`` semantics faithfully: the fatal job's
    future fails with :class:`BrokenExecutor`, and every submit after
    the crash raises :class:`BrokenExecutor` synchronously (a broken
    pool accepts no further work).  Earlier submits run inline and
    succeed.
    """

    def __init__(self, crash_on: int = 1) -> None:
        require(crash_on >= 1, "crash_on is 1-based")
        self.crash_on = crash_on
        self.calls = 0
        self.broken = False
        self.shut_down = False

    def submit(self, fn, /, *args, **kwargs) -> Future:
        if self.broken:
            raise BrokenExecutor("pool already broken by injected crash")
        self.calls += 1
        fut: Future = Future()
        if self.calls == self.crash_on:
            self.broken = True
            fut.set_exception(
                BrokenExecutor("injected worker crash "
                               f"(submit #{self.calls})"))
            return fut
        try:
            fut.set_result(fn(*args, **kwargs))
        except BaseException as exc:
            fut.set_exception(exc)
        return fut

    def shutdown(self, wait: bool = True, *,
                 cancel_futures: bool = False) -> None:
        self.shut_down = True


def crash_factory(crash_on: int = 1):
    """An ``executor_factory`` whose first pool crashes, then behaves.

    The shape :class:`repro.engine.ParallelEngine` recovery expects:
    crash → retire the pool → rebuild once → the replacement works.
    The returned factory records every executor it built in its
    ``built`` list attribute for assertions.
    """
    built: list[Executor] = []

    def factory() -> Executor:
        pool = CrashingExecutor(crash_on) if not built else InlineExecutor()
        built.append(pool)
        return pool

    factory.built = built
    return factory


_CRASH_PREFIX = b"crash-unless-pid="


def crash_worker_job(data: bytes, version: int = 2):
    """A picklable ingress job that hard-kills foreign pool workers.

    Buffers prefixed ``crash-unless-pid=<pid>|`` kill the process
    executing the job (``os._exit``) unless its pid is ``<pid>`` — so a
    ``ProcessPoolExecutor`` worker dies for real (a genuine
    ``BrokenProcessPool``), while the parent's serial fallback strips
    the prefix and compresses the remainder normally.  Unprefixed
    buffers compress normally everywhere.
    """
    from repro.service.pipeline import encode_payload

    data = bytes(data)
    if data.startswith(_CRASH_PREFIX):
        head, _, rest = data.partition(b"|")
        pid = int(head[len(_CRASH_PREFIX):])
        if os.getpid() != pid:
            os._exit(1)
        data = rest
    return encode_payload(data, version)


def tag_crash_buffer(data: bytes, survivor_pid: int | None = None) -> bytes:
    """Prefix ``data`` so :func:`crash_worker_job` kills foreign workers."""
    pid = os.getpid() if survivor_pid is None else survivor_pid
    return _CRASH_PREFIX + str(pid).encode() + b"|" + data


# ------------------------------------------------------ transport faults

class FlakyWriter:
    """Wrap an asyncio ``StreamWriter``; garble/drop every Nth write.

    ``garble_every=3`` flips one seeded bit in every third write;
    ``drop_every=4`` swallows every fourth write entirely.  Counts are
    kept on the instance (``writes``, ``garbled``, ``dropped``) so
    tests can assert faults actually fired.  Everything else proxies to
    the wrapped writer.
    """

    def __init__(self, writer, *, seed: int = 0, garble_every: int = 0,
                 drop_every: int = 0) -> None:
        self._writer = writer
        self._rng = random.Random(seed)
        self.garble_every = garble_every
        self.drop_every = drop_every
        self.writes = 0
        self.garbled = 0
        self.dropped = 0

    def write(self, data: bytes) -> None:
        self.writes += 1
        if self.drop_every and self.writes % self.drop_every == 0:
            self.dropped += 1
            return
        if self.garble_every and self.writes % self.garble_every == 0:
            data = flip_bits(bytes(data), 1,
                             seed=self._rng.randrange(1 << 30))
            self.garbled += 1
        self._writer.write(data)

    async def drain(self) -> None:
        await self._writer.drain()

    def __getattr__(self, name):
        return getattr(self._writer, name)
