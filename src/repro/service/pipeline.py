"""Bounded-queue ingress/egress pipelines around the in-memory API.

The paper overlaps CPU and GPU work to keep the device saturated
(§III.D); the service mirrors that shape in asyncio terms.  Ingress is
``read → compress → send`` and egress ``receive → decompress →
deliver``, with a bounded :class:`asyncio.Queue` between the stages so
backpressure propagates to the producer instead of buffering
unboundedly: when the consumer stage falls behind, ``queue.put`` —
and therefore the read loop — blocks.

Compression (the CPU-bound bottleneck) fans out across a
``ProcessPoolExecutor`` of configurable width.  Order is preserved for
free: the submit stage enqueues *futures* in sequence order and the
drain stage awaits them in that same order, so up to ``queue_depth``
frames compress concurrently while frames leave in order.  The egress
side additionally reassembles by sequence number, which makes it
robust to duplicated or reordered frames should transport retries ever
introduce them.

Two transport fast paths keep the pool workers fed:

* **Shared-memory frames** — with fan-out enabled, frame bytes travel
  to and from the workers through recycled
  :class:`~repro.engine.shm.SlabPool` slabs instead of being pickled
  through the executor pipe in both directions; only a slab name and a
  length descriptor cross the pipe.  Anything that prevents the slab
  path (no platform support, oversized frame, exhausted pool, injected
  executor or job) falls back to the pickle transport per frame and is
  counted in ``*.shm_fallbacks``.
* **Incompressibility probe** — ingress runs the cheap entropy probe
  from :mod:`repro.lzss.matcher` on each buffer and ships
  near-incompressible ones as :data:`FLAG_RAW` without occupying a
  pool worker at all (``ingress.probe_raw_frames``).
"""

from __future__ import annotations

import asyncio
from concurrent.futures import BrokenExecutor, Executor, ProcessPoolExecutor
from functools import partial
from time import perf_counter
from typing import AsyncIterator, Awaitable, Callable, Iterable

from repro import obs
from repro.errors import WorkerCrashError
from repro.obs import log as obslog
from repro.obs import trace
from repro.service.metrics import Metrics
from repro.service.protocol import FLAG_RAW, FRAME_HEADER_SIZE, Frame
from repro.util.validation import require_range

#: Failures that mean the pool worker died rather than the job failing:
#: ``BrokenExecutor`` covers ``BrokenProcessPool`` (a worker killed
#: mid-frame poisons the whole pool) and the fault-injection harness
#: raises ``WorkerCrashError``.  Both are survivable per frame.
_CRASH_ERRORS = (BrokenExecutor, WorkerCrashError)

__all__ = [
    "EgressPipeline",
    "IngressPipeline",
    "decode_payload",
    "decode_payload_obs",
    "encode_payload",
    "encode_payload_obs",
]


def encode_payload(data: bytes, version: int = 2, *,
                   workers: int | None = None,
                   trace_id: int = 0, codec: str = "lzss",
                   probe_threshold: float | None = None) -> tuple[int, bytes]:
    """Compress one buffer into ``(flags, payload)``.

    The raw-passthrough guard: if the CULZSS container comes out no
    smaller than the input (random data inverts `highly_compressible`),
    ship the original bytes with :data:`FLAG_RAW` — so a frame never
    expands its buffer by more than :data:`FRAME_HEADER_SIZE` bytes.
    The entropy probe short-circuits obviously incompressible buffers
    to that same raw path before any match search runs;
    ``probe_threshold`` tunes its bits-per-byte cutoff (defaulting to
    the ``REPRO_PROBE_THRESHOLD`` environment override).

    ``workers`` shards the encode across a :class:`repro.engine.
    ParallelEngine`; ``trace_id`` joins the frame span (and everything
    nested under it — engine shards, encoder stages) to an existing
    :mod:`repro.obs` trace, e.g. the id the ingress stamped on the
    frame header.  ``codec`` selects the container codec per
    :func:`repro.core.gpu_compress` (``"auto"`` engages the per-chunk
    dispatcher and a v3 container).
    """
    from repro.core import CompressionParams, gpu_compress
    from repro.lzss.matcher import probe_incompressible

    data = bytes(data)
    with trace.span("gateway.frame", trace_id=trace_id or None,
                    op="encode", size=len(data)):
        if probe_incompressible(data, byte_entropy_bits=probe_threshold):
            obslog.event("codec", "store_fallback", scope="frame",
                         reason="probe", size=len(data),
                         trace_id=trace_id, threshold=probe_threshold)
            return FLAG_RAW, data
        container = gpu_compress(data, CompressionParams(version=version),
                                 workers=workers, codec=codec,
                                 probe_threshold=probe_threshold).data
        if len(container) >= len(data):
            obslog.event("codec", "store_fallback", scope="frame",
                         reason="expanded", size=len(data),
                         container_size=len(container), trace_id=trace_id)
            return FLAG_RAW, data
        return 0, container


def decode_payload(flags: int, payload: bytes, *,
                   workers: int | None = None, trace_id: int = 0) -> bytes:
    """Invert :func:`encode_payload` for one frame payload."""
    with trace.span("gateway.frame", trace_id=trace_id or None,
                    op="decode", size=len(payload)):
        if flags & FLAG_RAW:
            return payload
        from repro.core import gpu_decompress

        return gpu_decompress(payload, workers=workers).data


def encode_payload_obs(data: bytes, version: int = 2,
                       trace_id: int = 0, codec: str = "lzss",
                       probe_threshold: float | None = None,
                       ) -> tuple[int, bytes, dict]:
    """Pool-worker pickle-path job: stock encode + the worker's obs delta."""
    flags, payload = encode_payload(data, version, trace_id=trace_id,
                                    codec=codec,
                                    probe_threshold=probe_threshold)
    return flags, payload, obs.delta()


def decode_payload_obs(flags: int, payload: bytes,
                       trace_id: int = 0) -> tuple[bytes, dict]:
    """Pool-worker pickle-path job: stock decode + the worker's obs delta."""
    return decode_payload(flags, payload, trace_id=trace_id), obs.delta()


async def _aiter(items) -> AsyncIterator:
    """Adapt a sync or async iterable into an async iterator."""
    if hasattr(items, "__aiter__"):
        async for item in items:
            yield item
    else:
        for item in items:
            yield item


async def _run_both(a: Awaitable, b: Awaitable) -> tuple:
    """Gather two stage coroutines; cancel the sibling on failure.

    Plain ``gather`` would leave the surviving stage blocked on a
    bounded queue forever after its peer dies.
    """
    ta, tb = asyncio.ensure_future(a), asyncio.ensure_future(b)
    try:
        return tuple(await asyncio.gather(ta, tb))
    except BaseException:
        ta.cancel()
        tb.cancel()
        await asyncio.gather(ta, tb, return_exceptions=True)
        raise


class _PooledStage:
    """Shared executor + slab-transport plumbing for the two halves."""

    def __init__(self, workers: int, queue_depth: int,
                 metrics: Metrics | None, executor: Executor | None) -> None:
        require_range(queue_depth, 1, 1 << 16, "queue_depth")
        require_range(workers, 0, 256, "workers")
        self.workers = workers
        self.queue_depth = queue_depth
        self.metrics = metrics or Metrics()
        self._executor = executor
        self._owns_executor = executor is None
        self.use_shm = False  # resolved by the subclass constructors
        self._slab_pool = None
        self._shm_failed = False
        self._pool_rebuilt = False
        self._pool_dead = False

    def _pool(self) -> Executor | None:
        """The fan-out executor; ``None`` means the loop's default pool."""
        if (self._executor is None and self._owns_executor and self.workers
                and not self._pool_dead):
            # The initializer starts a sampling profiler in each worker
            # when REPRO_PROFILE_HZ is set (``--profile`` exports cover
            # pool workers too); it is a no-op otherwise.
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=obs.prof.init_worker)
        return self._executor

    def _crashed(self, stage: str, trace_id: int = 0) -> None:
        """A worker died: count it and rebuild the pool (at most once).

        A ``BrokenProcessPool`` poisons every pending future, so the
        crash retires the executor; frames already submitted to it fail
        over to the serial path one by one while new frames go to the
        replacement :meth:`_pool` builds.  A *second* crash marks the
        pool dead instead of churning replacements — every remaining
        frame runs serially.  Injected executors are never rebuilt (the
        caller owns them); their frames just fall back serially.
        """
        self.metrics.inc(f"{stage}.worker_crashes")
        obslog.event("service", "worker_crash", stage=stage,
                     trace_id=trace_id,
                     pool_rebuilt_before=self._pool_rebuilt)
        if not self._owns_executor or self._executor is None:
            return
        broken, self._executor = self._executor, None
        try:
            # No cancel_futures: a broken pool has already failed its
            # pending futures, and cancelling would turn the in-flight
            # ones the drain stage still awaits into CancelledError.
            broken.shutdown(wait=False)
        except Exception:
            pass
        if self._pool_rebuilt:
            self._pool_dead = True
        self._pool_rebuilt = True

    def _slabs(self):
        """The slab pool, or ``None`` when the pickle path applies.

        Created lazily so pipelines that never run pay nothing; a
        platform where shared memory fails is remembered so the
        fallback costs one attempt, not one per frame.
        """
        if not self.use_shm or self._shm_failed:
            return None
        if self._slab_pool is None:
            try:
                from repro.engine.shm import SlabPool

                self._slab_pool = SlabPool(
                    max_slabs=self.queue_depth + 2)
            except Exception:
                self._shm_failed = True
                return None
        return self._slab_pool

    def close(self) -> None:
        if self._owns_executor and self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        if self._slab_pool is not None:
            self._slab_pool.close()
            self._slab_pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class IngressPipeline(_PooledStage):
    """read → compress (process pool) → send, in sequence order.

    ``workers`` is the compression fan-out width (0 = compress on the
    event loop's default thread pool — useful for tests); ``queue_depth``
    bounds frames in flight between the stages, which is both the
    parallelism cap and the backpressure bound.  ``use_shm`` selects the
    shared-memory frame transport; the default (``None``) enables it
    exactly when the pipeline owns a process pool and runs the stock
    codec job.

    ``codec``/``probe_threshold`` parameterize the stock encode job
    (see :func:`encode_payload`); both are plain attributes, so the
    gateway client may still downgrade ``codec`` after negotiation and
    the next :meth:`run` picks the change up.  Custom ``job`` callables
    ignore them.
    """

    def __init__(self, version: int = 2, workers: int = 2,
                 queue_depth: int = 8, metrics: Metrics | None = None,
                 executor: Executor | None = None,
                 job: Callable[[bytes, int], tuple[int, bytes]] | None = None,
                 use_shm: bool | None = None, codec: str = "lzss",
                 probe_threshold: float | None = None) -> None:
        super().__init__(workers, queue_depth, metrics, executor)
        self.version = version
        self.codec = codec
        self.probe_threshold = probe_threshold
        self._job = job or encode_payload
        self._stock_job = job is None
        if use_shm is None:
            use_shm = workers > 0 and executor is None and job is None
        self.use_shm = bool(use_shm) and self._stock_job

    async def run(self, stream_id: int,
                  buffers: Iterable[bytes] | AsyncIterator[bytes],
                  send: Callable[[Frame], Awaitable[None]]) -> int:
        """Push every buffer through compression and ``send``; returns
        the number of data frames emitted."""
        from repro.engine.shm import encode_frame_job, encode_frame_job_obs
        from repro.lzss.matcher import probe_incompressible

        loop = asyncio.get_running_loop()
        self._pool()  # build eagerly so the first frame pays no setup
        jobs: asyncio.Queue = asyncio.Queue(maxsize=self.queue_depth)
        m = self.metrics
        # Stock jobs ship an obs delta (worker metrics + spans) home with
        # each result; custom jobs keep their two-tuple contract.
        traced = self._stock_job and obs.enabled()
        codec, threshold = self.codec, self.probe_threshold
        if self._stock_job and (codec != "lzss" or threshold is not None):
            job = partial(encode_payload, codec=codec,
                          probe_threshold=threshold)
        else:
            job = self._job

        def dispatch(data: bytes, tid: int):
            """Submit one frame to the pool; returns ``(future, lease)``.

            A broken pool at submit time counts a crash, retries once on
            the rebuilt pool, then degrades this frame to the loop's
            default thread pool (``ingress.serial_fallbacks``).
            """
            slabs = self._slabs()
            lease = slabs.acquire(len(data)) if slabs is not None else None
            try:
                if lease is not None:
                    n = lease.write(data)
                    if traced:
                        fut = loop.run_in_executor(
                            self._pool(), encode_frame_job_obs, lease.name,
                            n, self.version, tid, codec, threshold)
                    else:
                        fut = loop.run_in_executor(
                            self._pool(), encode_frame_job, lease.name, n,
                            self.version, codec, threshold)
                    m.inc("ingress.shm_frames")
                    return fut, lease
                if slabs is not None:
                    m.inc("ingress.shm_fallbacks")
                    obslog.warn_limited("service", "shm_fallback",
                                        stage="ingress", trace_id=tid,
                                        size=len(data))
                if traced:
                    return loop.run_in_executor(
                        self._pool(), encode_payload_obs, data,
                        self.version, tid, codec, threshold), None
                return loop.run_in_executor(self._pool(), job, data,
                                            self.version), None
            except _CRASH_ERRORS:
                if lease is not None:
                    lease.release()
                self._crashed("ingress", tid)
            try:
                return loop.run_in_executor(self._pool(), job, data,
                                            self.version), None
            except _CRASH_ERRORS:
                self._crashed("ingress", tid)
                m.inc("ingress.serial_fallbacks")
                obslog.event("service", "serial_fallback", stage="ingress",
                             trace_id=tid, at="submit")
                return loop.run_in_executor(None, job, data,
                                            self.version), None

        async def submit() -> int:
            seq = 0
            async for raw in _aiter(buffers):
                data = bytes(raw)
                lease = None
                tid = trace.new_trace_id() if traced else 0
                if self._stock_job and probe_incompressible(
                        data, byte_entropy_bits=threshold):
                    # Near-random buffer: the codec would only rediscover
                    # FLAG_RAW the expensive way — skip the pool outright.
                    fut = loop.create_future()
                    fut.set_result((FLAG_RAW, data))
                    m.inc("ingress.probe_raw_frames")
                    obslog.event("codec", "store_fallback", scope="frame",
                                 reason="probe", size=len(data),
                                 trace_id=tid, threshold=threshold)
                else:
                    fut, lease = dispatch(data, tid)
                enq = perf_counter()
                await jobs.put((seq, data, enq, fut, lease, tid))
                m.gauge("ingress.queue_depth", jobs.qsize())
                seq += 1
            await jobs.put(None)
            return seq

        async def drain() -> None:
            while (item := await jobs.get()) is not None:
                seq, data, enq, fut, lease, tid = item
                n_in = len(data)
                out = None
                try:
                    try:
                        out = await fut
                    except _CRASH_ERRORS:
                        # The worker died holding this frame; the input
                        # is still in hand, so re-run it serially.
                        if lease is not None:
                            lease.release()
                            lease = None
                        self._crashed("ingress", tid)
                        m.inc("ingress.serial_fallbacks")
                        obslog.event("service", "serial_fallback",
                                     stage="ingress", trace_id=tid,
                                     at="result", seq=seq)
                        out = await loop.run_in_executor(
                            None, job, data, self.version)
                finally:
                    if lease is not None and out is None:
                        lease.release()
                if len(out) == 3:  # obs-carrying job: fold the delta in
                    flags, res, worker_delta = out
                    obs.merge_delta(worker_delta)
                else:
                    flags, res = out
                if lease is not None:
                    # Length descriptor = payload is in the slab; bytes =
                    # the worker degraded this frame to the pickle path.
                    payload = lease.read(res) if isinstance(res, int) else res
                    lease.release()
                else:
                    payload = res
                m.observe("ingress.stage_wait_seconds", perf_counter() - enq)
                frame = Frame(stream_id=stream_id, seq=seq, flags=flags,
                              payload=payload, trace_id=tid)
                m.inc("ingress.frames_out")
                m.inc("ingress.bytes_in", n_in)
                m.inc("ingress.bytes_out", frame.wire_size)
                if flags & FLAG_RAW:
                    m.inc("ingress.raw_frames")
                if n_in:
                    m.observe("ingress.frame_ratio", frame.wire_size / n_in)
                t0 = perf_counter()
                await send(frame)
                sent = perf_counter() - t0
                m.observe("ingress.send_wait_seconds", sent)
                # Throughput-ledger view of the same interval: wire
                # bytes over transport time -> a transport.send MB/s row.
                m.observe("transport.send_seconds", sent)
                m.inc("transport.send_bytes", frame.wire_size)

        n_frames, _ = await _run_both(submit(), drain())
        return n_frames


class EgressPipeline(_PooledStage):
    """receive → decompress → deliver, reassembled in sequence order.

    Decompression is much cheaper than compression, so ``workers``
    defaults to 0 (the loop's default thread pool keeps the event loop
    responsive without process-pool pickling).  Frames are delivered
    strictly by per-stream sequence number: gaps are held, duplicates
    dropped and counted.  The reorder buffer is bounded at
    ``queue_depth`` held frames per stream — a frame arriving while its
    stream's buffer is full is dropped and counted in
    ``egress.reorder_evictions``, so a peer that skips a sequence
    number forever cannot grow the buffer without limit (the transport
    retry resends dropped frames).  ``use_shm`` mirrors
    :class:`IngressPipeline`.
    """

    def __init__(self, workers: int = 0, queue_depth: int = 8,
                 metrics: Metrics | None = None,
                 executor: Executor | None = None,
                 job: Callable[[int, bytes], bytes] | None = None,
                 use_shm: bool | None = None) -> None:
        super().__init__(workers, queue_depth, metrics, executor)
        self._job = job or decode_payload
        self._stock_job = job is None
        if use_shm is None:
            use_shm = workers > 0 and executor is None and job is None
        self.use_shm = bool(use_shm) and self._stock_job

    async def run(self, frames: Iterable[Frame] | AsyncIterator[Frame],
                  deliver: Callable[[int, int, bytes], Awaitable[None]],
                  on_end: Callable[[int, int], Awaitable[None]] | None = None,
                  ) -> int:
        """Deliver every data frame in order; returns frames delivered.

        ``END`` frames flow through the same bounded queue, so by the
        time ``on_end`` fires every earlier frame of the connection has
        been delivered — that is what makes the ACK a delivery receipt
        rather than a reception receipt.
        """
        from repro.engine.shm import decode_frame_job, decode_frame_job_obs

        loop = asyncio.get_running_loop()
        self._pool()  # build eagerly so the first frame pays no setup
        jobs: asyncio.Queue = asyncio.Queue(maxsize=self.queue_depth)
        m = self.metrics
        traced = self._stock_job and obs.enabled()

        def dispatch(frame: Frame):
            """Submit one frame to the pool; returns ``(future, lease)``.

            Mirrors the ingress dispatch: a broken pool at submit time
            counts a crash, retries once on the rebuilt pool, then
            degrades this frame to the loop's default thread pool.
            """
            slabs = self._slabs()
            lease = (slabs.acquire(len(frame.payload))
                     if slabs is not None else None)
            try:
                if lease is not None:
                    n = lease.write(frame.payload)
                    if traced:
                        fut = loop.run_in_executor(
                            self._pool(), decode_frame_job_obs, lease.name,
                            n, frame.flags, frame.trace_id)
                    else:
                        fut = loop.run_in_executor(
                            self._pool(), decode_frame_job, lease.name, n,
                            frame.flags)
                    m.inc("egress.shm_frames")
                    return fut, lease
                if slabs is not None:
                    m.inc("egress.shm_fallbacks")
                    obslog.warn_limited("service", "shm_fallback",
                                        stage="egress",
                                        trace_id=frame.trace_id,
                                        size=len(frame.payload))
                if traced:
                    return loop.run_in_executor(
                        self._pool(), decode_payload_obs, frame.flags,
                        frame.payload, frame.trace_id), None
                return loop.run_in_executor(self._pool(), self._job,
                                            frame.flags, frame.payload), None
            except _CRASH_ERRORS:
                if lease is not None:
                    lease.release()
                self._crashed("egress", frame.trace_id)
            try:
                return loop.run_in_executor(self._pool(), self._job,
                                            frame.flags, frame.payload), None
            except _CRASH_ERRORS:
                self._crashed("egress", frame.trace_id)
                m.inc("egress.serial_fallbacks")
                obslog.event("service", "serial_fallback", stage="egress",
                             trace_id=frame.trace_id, at="submit")
                return loop.run_in_executor(None, self._job, frame.flags,
                                            frame.payload), None

        async def submit() -> None:
            async for frame in _aiter(frames):
                if frame.is_end:
                    await jobs.put((frame, None, None, None))
                    continue
                fut, lease = dispatch(frame)
                await jobs.put((frame, perf_counter(), fut, lease))
                m.gauge("egress.queue_depth", jobs.qsize())
            await jobs.put(None)

        async def drain() -> int:
            next_seq: dict[int, int] = {}
            held: dict[int, dict[int, bytes]] = {}
            delivered = 0
            while (item := await jobs.get()) is not None:
                frame, enq, fut, lease = item
                sid = frame.stream_id
                if frame.is_end:
                    if on_end is not None:
                        await on_end(sid, frame.seq)
                    continue
                res = None
                try:
                    try:
                        res = await fut
                    except _CRASH_ERRORS:
                        # The worker died holding this frame; the frame
                        # bytes are still in hand, so re-run serially.
                        if lease is not None:
                            lease.release()
                            lease = None
                        self._crashed("egress", frame.trace_id)
                        m.inc("egress.serial_fallbacks")
                        obslog.event("service", "serial_fallback",
                                     stage="egress",
                                     trace_id=frame.trace_id,
                                     at="result", seq=frame.seq)
                        res = await loop.run_in_executor(
                            None, self._job, frame.flags, frame.payload)
                finally:
                    if lease is not None and res is None:
                        lease.release()
                if isinstance(res, tuple):  # obs-carrying job: fold delta in
                    res, worker_delta = res
                    obs.merge_delta(worker_delta)
                if lease is not None:
                    data = res if isinstance(res, bytes) else lease.read(res)
                    lease.release()
                else:
                    data = res
                m.observe("egress.stage_wait_seconds", perf_counter() - enq)
                m.inc("egress.frames_in")
                m.inc("egress.bytes_in", frame.wire_size)
                m.inc("egress.bytes_out", len(data))
                want = next_seq.get(sid, 0)
                if frame.seq < want or frame.seq in held.get(sid, ()):
                    m.inc("egress.duplicate_frames")
                    continue
                if frame.seq > want:
                    bucket = held.setdefault(sid, {})
                    if len(bucket) >= self.queue_depth:
                        m.inc("egress.reorder_evictions")
                        continue
                    bucket[frame.seq] = data
                    m.gauge("egress.reorder_depth", len(bucket))
                    continue
                await deliver(sid, want, data)
                delivered += 1
                want += 1
                bucket = held.get(sid, {})
                while want in bucket:
                    await deliver(sid, want, bucket.pop(want))
                    delivered += 1
                    want += 1
                next_seq[sid] = want
            return delivered

        _, delivered = await _run_both(submit(), drain())
        return delivered
