"""Bounded-queue ingress/egress pipelines around the in-memory API.

The paper overlaps CPU and GPU work to keep the device saturated
(§III.D); the service mirrors that shape in asyncio terms.  Ingress is
``read → compress → send`` and egress ``receive → decompress →
deliver``, with a bounded :class:`asyncio.Queue` between the stages so
backpressure propagates to the producer instead of buffering
unboundedly: when the consumer stage falls behind, ``queue.put`` —
and therefore the read loop — blocks.

Compression (the CPU-bound bottleneck) fans out across a
``ProcessPoolExecutor`` of configurable width.  Order is preserved for
free: the submit stage enqueues *futures* in sequence order and the
drain stage awaits them in that same order, so up to ``queue_depth``
frames compress concurrently while frames leave in order.  The egress
side additionally reassembles by sequence number, which makes it
robust to duplicated or reordered frames should transport retries ever
introduce them.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Executor, ProcessPoolExecutor
from time import perf_counter
from typing import AsyncIterator, Awaitable, Callable, Iterable

from repro.service.metrics import Metrics
from repro.service.protocol import FLAG_RAW, FRAME_HEADER_SIZE, Frame
from repro.util.validation import require_range

__all__ = [
    "EgressPipeline",
    "IngressPipeline",
    "decode_payload",
    "encode_payload",
]


def encode_payload(data: bytes, version: int = 2) -> tuple[int, bytes]:
    """Compress one buffer into ``(flags, payload)``.

    The raw-passthrough guard: if the CULZSS container comes out no
    smaller than the input (random data inverts `highly_compressible`),
    ship the original bytes with :data:`FLAG_RAW` — so a frame never
    expands its buffer by more than :data:`FRAME_HEADER_SIZE` bytes.
    """
    from repro.core import CompressionParams, gpu_compress

    data = bytes(data)
    container = gpu_compress(data, CompressionParams(version=version)).data
    if len(container) >= len(data):
        return FLAG_RAW, data
    return 0, container


def decode_payload(flags: int, payload: bytes) -> bytes:
    """Invert :func:`encode_payload` for one frame payload."""
    if flags & FLAG_RAW:
        return payload
    from repro.core import gpu_decompress

    return gpu_decompress(payload).data


async def _aiter(items) -> AsyncIterator:
    """Adapt a sync or async iterable into an async iterator."""
    if hasattr(items, "__aiter__"):
        async for item in items:
            yield item
    else:
        for item in items:
            yield item


async def _run_both(a: Awaitable, b: Awaitable) -> tuple:
    """Gather two stage coroutines; cancel the sibling on failure.

    Plain ``gather`` would leave the surviving stage blocked on a
    bounded queue forever after its peer dies.
    """
    ta, tb = asyncio.ensure_future(a), asyncio.ensure_future(b)
    try:
        return tuple(await asyncio.gather(ta, tb))
    except BaseException:
        ta.cancel()
        tb.cancel()
        await asyncio.gather(ta, tb, return_exceptions=True)
        raise


class _PooledStage:
    """Shared executor plumbing for the two pipeline halves."""

    def __init__(self, workers: int, queue_depth: int,
                 metrics: Metrics | None, executor: Executor | None) -> None:
        require_range(queue_depth, 1, 1 << 16, "queue_depth")
        require_range(workers, 0, 256, "workers")
        self.workers = workers
        self.queue_depth = queue_depth
        self.metrics = metrics or Metrics()
        self._executor = executor
        self._owns_executor = executor is None

    def _pool(self) -> Executor | None:
        """The fan-out executor; ``None`` means the loop's default pool."""
        if self._executor is None and self._owns_executor and self.workers:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def close(self) -> None:
        if self._owns_executor and self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class IngressPipeline(_PooledStage):
    """read → compress (process pool) → send, in sequence order.

    ``workers`` is the compression fan-out width (0 = compress on the
    event loop's default thread pool — useful for tests); ``queue_depth``
    bounds frames in flight between the stages, which is both the
    parallelism cap and the backpressure bound.
    """

    def __init__(self, version: int = 2, workers: int = 2,
                 queue_depth: int = 8, metrics: Metrics | None = None,
                 executor: Executor | None = None,
                 job: Callable[[bytes, int], tuple[int, bytes]] | None = None,
                 ) -> None:
        super().__init__(workers, queue_depth, metrics, executor)
        self.version = version
        self._job = job or encode_payload

    async def run(self, stream_id: int,
                  buffers: Iterable[bytes] | AsyncIterator[bytes],
                  send: Callable[[Frame], Awaitable[None]]) -> int:
        """Push every buffer through compression and ``send``; returns
        the number of data frames emitted."""
        loop = asyncio.get_running_loop()
        pool = self._pool()
        jobs: asyncio.Queue = asyncio.Queue(maxsize=self.queue_depth)
        m = self.metrics

        async def submit() -> int:
            seq = 0
            async for data in _aiter(buffers):
                fut = loop.run_in_executor(pool, self._job, bytes(data),
                                           self.version)
                enq = perf_counter()
                await jobs.put((seq, len(data), enq, fut))
                m.gauge("ingress.queue_depth", jobs.qsize())
                seq += 1
            await jobs.put(None)
            return seq

        async def drain() -> None:
            while (item := await jobs.get()) is not None:
                seq, n_in, enq, fut = item
                flags, payload = await fut
                m.observe("ingress.stage_wait_seconds", perf_counter() - enq)
                frame = Frame(stream_id=stream_id, seq=seq, flags=flags,
                              payload=payload)
                m.inc("ingress.frames_out")
                m.inc("ingress.bytes_in", n_in)
                m.inc("ingress.bytes_out", frame.wire_size)
                if flags & FLAG_RAW:
                    m.inc("ingress.raw_frames")
                if n_in:
                    m.observe("ingress.frame_ratio", frame.wire_size / n_in)
                t0 = perf_counter()
                await send(frame)
                m.observe("ingress.send_wait_seconds", perf_counter() - t0)

        n_frames, _ = await _run_both(submit(), drain())
        return n_frames


class EgressPipeline(_PooledStage):
    """receive → decompress → deliver, reassembled in sequence order.

    Decompression is much cheaper than compression, so ``workers``
    defaults to 0 (the loop's default thread pool keeps the event loop
    responsive without process-pool pickling).  Frames are delivered
    strictly by per-stream sequence number: gaps are held (bounded by
    ``queue_depth``), duplicates dropped and counted.
    """

    def __init__(self, workers: int = 0, queue_depth: int = 8,
                 metrics: Metrics | None = None,
                 executor: Executor | None = None,
                 job: Callable[[int, bytes], bytes] | None = None) -> None:
        super().__init__(workers, queue_depth, metrics, executor)
        self._job = job or decode_payload

    async def run(self, frames: Iterable[Frame] | AsyncIterator[Frame],
                  deliver: Callable[[int, int, bytes], Awaitable[None]],
                  on_end: Callable[[int, int], Awaitable[None]] | None = None,
                  ) -> int:
        """Deliver every data frame in order; returns frames delivered.

        ``END`` frames flow through the same bounded queue, so by the
        time ``on_end`` fires every earlier frame of the connection has
        been delivered — that is what makes the ACK a delivery receipt
        rather than a reception receipt.
        """
        loop = asyncio.get_running_loop()
        pool = self._pool()
        jobs: asyncio.Queue = asyncio.Queue(maxsize=self.queue_depth)
        m = self.metrics

        async def submit() -> None:
            async for frame in _aiter(frames):
                if frame.is_end:
                    await jobs.put((frame, None, None))
                    continue
                fut = loop.run_in_executor(pool, self._job, frame.flags,
                                           frame.payload)
                await jobs.put((frame, perf_counter(), fut))
                m.gauge("egress.queue_depth", jobs.qsize())
            await jobs.put(None)

        async def drain() -> int:
            next_seq: dict[int, int] = {}
            held: dict[int, dict[int, bytes]] = {}
            delivered = 0
            while (item := await jobs.get()) is not None:
                frame, enq, fut = item
                sid = frame.stream_id
                if frame.is_end:
                    if on_end is not None:
                        await on_end(sid, frame.seq)
                    continue
                data = await fut
                m.observe("egress.stage_wait_seconds", perf_counter() - enq)
                m.inc("egress.frames_in")
                m.inc("egress.bytes_in", frame.wire_size)
                m.inc("egress.bytes_out", len(data))
                want = next_seq.get(sid, 0)
                if frame.seq < want or frame.seq in held.get(sid, ()):
                    m.inc("egress.duplicate_frames")
                    continue
                if frame.seq > want:
                    bucket = held.setdefault(sid, {})
                    bucket[frame.seq] = data
                    m.gauge("egress.reorder_depth", len(bucket))
                    continue
                await deliver(sid, want, data)
                delivered += 1
                want += 1
                bucket = held.get(sid, {})
                while want in bucket:
                    await deliver(sid, want, bucket.pop(want))
                    delivered += 1
                    want += 1
                next_seq[sid] = want
            return delivered

        _, delivered = await _run_both(submit(), drain())
        return delivered
