"""TCP gateway endpoints: the §III compress/ship/decompress pair.

:class:`GatewayServer` is the egress gateway — it accepts connections,
runs each through an :class:`~repro.service.pipeline.EgressPipeline`,
hands the reassembled buffers to a ``deliver`` callback, and answers
each stream's ``END`` frame with an ``ACK`` carrying the delivered
frame count, byte count, and a running CRC-32 — a delivery receipt the
ingress side can verify end-to-end.

:class:`GatewayClient` is the ingress gateway — it compresses a buffer
stream through an :class:`~repro.service.pipeline.IngressPipeline`
(process-pool fan-out, bounded queue) and writes frames to the server,
with bounded retry-with-backoff on connection establishment, a
per-operation timeout on every read and write, and ACK verification.

Failure model: :func:`retry_with_backoff` absorbs *transient* failures
(refused/aborted connects, send timeouts under momentary pressure).  A
connection lost mid-stream is not transparently resumed — the server's
per-connection sequence state is gone — so it surfaces to the caller,
who still owns the original buffers and can resend the stream; the
egress reassembly dedupes any frames that made it through twice.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Awaitable, Callable

from repro import obs
from repro.obs import log as obslog
from repro.obs.export import (
    json_text,
    ledger,
    merge_snapshots,
    prometheus_text,
    speedscope_doc,
)
from repro.obs.slo import SloMonitor
from repro.service.metrics import Metrics
from repro.service.pipeline import EgressPipeline, IngressPipeline
from repro.service.protocol import (
    FLAG_ACK,
    FLAG_END,
    FLAG_NEG,
    Frame,
    FrameError,
    pack_ack,
    pack_neg,
    read_frame,
    unpack_ack,
    unpack_neg,
    write_frame,
)
from repro.util.checksum import crc32

__all__ = ["GatewayClient", "GatewayServer", "StreamAck", "retry_with_backoff"]


def _codec_id_set(codecs) -> frozenset[int]:
    """Normalize a mix of codec names and ids into a set of wire ids.

    ``None`` means "everything the registry knows" — resolved at call
    time so late-registered codecs are included.
    """
    from repro.codecs import get_codec, known_codec_ids

    if codecs is None:
        return known_codec_ids()
    return frozenset(get_codec(c).codec_id for c in codecs)

#: Exception types worth retrying: refused/reset connections, socket
#: errors, and operation timeouts (asyncio.TimeoutError is distinct
#: from TimeoutError before 3.11).
TRANSIENT_ERRORS = (ConnectionError, OSError, TimeoutError,
                    asyncio.TimeoutError)

#: Hard cap on one ``/profile?seconds=N`` sampling window.
_PROFILE_MAX_SECONDS = 30.0


def _profile_window(path: str) -> float:
    """Extra render-budget seconds a sidecar request needs: the sampling
    window for ``/profile``, zero for every other path."""
    path, _, query = path.partition("?")
    if path != "/profile":
        return 0.0
    params = dict(p.split("=", 1) for p in query.split("&") if "=" in p)
    try:
        seconds = float(params.get("seconds", 2.0))
    except ValueError:
        seconds = 2.0
    return min(max(seconds, 0.1), _PROFILE_MAX_SECONDS)


async def retry_with_backoff(fn: Callable[[], Awaitable], *,
                             retries: int = 3, base_delay: float = 0.05,
                             max_delay: float = 2.0,
                             transient: tuple = TRANSIENT_ERRORS,
                             metrics: Metrics | None = None,
                             name: str = "op"):
    """Run ``fn`` with up to ``retries`` retries on transient errors.

    Exponential backoff doubles from ``base_delay`` and saturates at
    ``max_delay``; the final failure propagates unchanged.
    """
    delay = base_delay
    for attempt in range(retries + 1):
        try:
            return await fn()
        except transient:
            if metrics is not None:
                metrics.inc(f"retry.{name}")
            obslog.warn_limited("service", "retry", op=name,
                                attempt=attempt, retries=retries)
            if attempt == retries:
                raise
            await asyncio.sleep(delay)
            delay = min(delay * 2, max_delay)


@dataclass(frozen=True)
class StreamAck:
    """The egress gateway's delivery receipt for one stream."""

    frames: int
    bytes: int
    crc: int

    @classmethod
    def from_payload(cls, payload: bytes) -> "StreamAck":
        frames, byte_count, crc = unpack_ack(payload)
        return cls(frames=frames, bytes=byte_count, crc=crc)

    def matches(self, buffers) -> bool:
        """Does this receipt match what we sent, byte for byte?"""
        crc = 0
        total = count = 0
        for data in buffers:
            crc = crc32(bytes(data), crc)
            total += len(data)
            count += 1
        return (self.frames, self.bytes, self.crc) == (count, total, crc)


class _StreamState:
    """Per-stream delivery accounting for the ACK receipt."""

    __slots__ = ("frames", "bytes", "crc")

    def __init__(self) -> None:
        self.frames = 0
        self.bytes = 0
        self.crc = 0

    def account(self, data: bytes) -> None:
        self.frames += 1
        self.bytes += len(data)
        self.crc = crc32(data, self.crc)


class GatewayServer:
    """The egress gateway: accept, decompress, deliver, acknowledge.

    ``deliver`` is an async ``(stream_id, seq, data)`` callback invoked
    strictly in sequence order per stream; ``None`` counts and discards
    (a sink gateway).  ``timeout`` bounds each frame read and each ACK
    write per connection, so a dead peer cannot pin a handler forever.
    ``use_shm`` selects the shared-memory frame transport into the
    decode pool (default: automatic — on whenever ``workers > 0``).

    ``metrics_port`` opens a sidecar HTTP listener on the same host
    serving ``GET /metrics`` (Prometheus text exposition),
    ``GET /metrics.json`` (the same snapshot as JSON),
    ``GET /slo.json`` (the SLO monitor's judgement),
    ``GET /healthz`` (200 + uptime JSON, cheap enough for fleet
    probes), and ``GET /profile?seconds=N`` (sample the process for N
    seconds, answer a speedscope document).  The scrape is
    the union of the gateway's own :class:`Metrics` registry and the
    process-global :mod:`repro.obs` registry, so gateway counters and
    codec-layer counters (matcher probes, encoder stage timings,
    container CRC events, engine shard stats) land in one page.  Pass
    ``0`` to bind an ephemeral port (read it back from
    ``metrics_port`` after :meth:`start`); ``None`` (the default)
    disables the sidecar.

    Every sidecar request is bounded by ``metrics_timeout`` seconds end
    to end, the body renders in a worker thread (a big registry cannot
    stall the event loop mid-scrape), and unknown paths get a plain
    404 — concurrent scrapers see slow responses at worst, never hangs
    or tracebacks.

    ``slo`` injects a preconfigured :class:`repro.obs.slo.SloMonitor`;
    by default the sidecar builds one over
    :func:`repro.obs.slo.default_objectives`.  The monitor samples on
    every scrape (the Prometheus cadence is the sampling cadence) and
    its judgement lands both in ``/slo.json`` and as ``culzss_slo_*``
    gauges in ``/metrics``.

    ``accept_codecs`` is the set of container codecs (names or wire
    ids) this gateway answers for in the ``NEG`` handshake; ``None``
    accepts every codec the registry knows.  The handshake is
    advisory — the decode side always trusts the self-describing
    container and raises on genuinely unknown codec ids — but a client
    that honors its receipt never ships a container this gateway would
    refuse.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 workers: int = 0, queue_depth: int = 8,
                 timeout: float = 30.0, metrics: Metrics | None = None,
                 use_shm: bool | None = None,
                 metrics_port: int | None = None,
                 metrics_timeout: float = 2.0,
                 slo: SloMonitor | None = None,
                 accept_codecs=None,
                 deliver: Callable[[int, int, bytes], Awaitable[None]]
                 | None = None) -> None:
        self.host = host
        self.port = port
        self.workers = workers
        self.accept_codecs = accept_codecs
        self.queue_depth = queue_depth
        self.use_shm = use_shm
        self.timeout = timeout
        self.metrics = metrics or Metrics()
        self.metrics_port = metrics_port
        self.metrics_timeout = metrics_timeout
        self.slo = slo if slo is not None else SloMonitor()
        self._deliver = deliver
        self._server: asyncio.AbstractServer | None = None
        self._metrics_server: asyncio.AbstractServer | None = None
        self._handlers: set[asyncio.Task] = set()
        self._conns_done = asyncio.Event()
        self._conns_seen = 0
        self._started: float | None = None

    async def start(self) -> None:
        self._started = time.monotonic()
        self._server = await asyncio.start_server(self._on_connection,
                                                  self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        if self.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._on_metrics_connection, self.host, self.metrics_port)
            self.metrics_port = \
                self._metrics_server.sockets[0].getsockname()[1]

    def metrics_snapshot(self) -> dict:
        """Gateway metrics merged with the process-global registry."""
        return merge_snapshots(obs.get_registry().snapshot(),
                               self.metrics.snapshot())

    def _record_ledger(self, snapshot: dict) -> None:
        """Refresh ``ledger.*`` gauges from one merged snapshot.

        Every stage reporting the ``bytes=`` dimension gets a pair of
        gauges — ``ledger.{stage}.mb_s`` and ``ledger.{stage}.share`` —
        so Prometheus scrapes carry per-stage throughput without the
        scraper re-deriving it from counters and histogram sums.
        """
        for row in ledger(snapshot):
            self.metrics.gauge(f"ledger.{row['stage']}.mb_s", row["mb_s"])
            self.metrics.gauge(f"ledger.{row['stage']}.share", row["share"])

    def _render_profile(self, query: str) -> tuple[str, str, bytes]:
        """Sample for ``seconds=N`` (default 2) and answer speedscope JSON.

        Runs in the sidecar's worker thread, so the sleep never blocks
        the event loop.  If no profiler is running one is started for
        the window and stopped after; an already-running profiler (e.g.
        ``serve --profile``) is windowed by snapshot diff instead, so
        the request never disturbs its accumulation.  The export covers
        every pid known at the end of the window — pool workers whose
        deltas merged during the window appear next to the parent.
        """
        import json

        from repro.obs import prof

        params = dict(p.split("=", 1) for p in query.split("&")
                      if "=" in p)
        try:
            seconds = float(params.get("seconds", 2.0))
        except ValueError:
            seconds = 2.0
        seconds = min(max(seconds, 0.1), _PROFILE_MAX_SECONDS)
        try:
            hz = float(params.get("hz", 0)) or None
        except ValueError:
            hz = None
        owned = not prof.running()
        if owned:
            prof.start(hz)
        before = prof.profiles()
        time.sleep(seconds)
        after = prof.profiles()
        if owned:
            prof.stop()
        window = prof.diff_profiles(before, after)
        doc = speedscope_doc(window, name=f"culzss gateway ({seconds:g}s)")
        self.metrics.inc("sidecar.profile_requests")
        return ("200 OK", "application/json",
                (json.dumps(doc) + "\n").encode())

    def _render_sidecar(self, path: str) -> tuple[str, str, bytes]:
        """Build one sidecar response; runs in a worker thread.

        Snapshotting and rendering are pure CPU over locked registries,
        so moving them off the event loop keeps frame traffic flowing
        while a (possibly huge) scrape serializes.  SLO sampling rides
        the scrape: every request feeds the monitor one observation and
        refreshes the ``slo.*`` and ``ledger.*`` gauges *before* the
        served snapshot is taken, so the scrape that detects a breach
        also reports it.
        """
        path, _, query = path.partition("?")
        if path == "/healthz":
            import json

            uptime = (time.monotonic() - self._started
                      if self._started is not None else 0.0)
            body = json.dumps({"status": "ok",
                               "uptime_seconds": round(uptime, 3),
                               "connections": self._conns_seen}) + "\n"
            return "200 OK", "application/json", body.encode()
        if path == "/profile":
            return self._render_profile(query)
        if path not in ("/metrics", "/metrics.json", "/slo.json"):
            return ("404 Not Found", "text/plain",
                    b"try /metrics, /metrics.json, /slo.json, /healthz "
                    b"or /profile?seconds=N\n")
        report = self.slo.record_gauges(self.metrics,
                                        snapshot=self.metrics_snapshot())
        self._record_ledger(self.metrics_snapshot())
        if path == "/slo.json":
            import json

            return ("200 OK", "application/json",
                    (json.dumps(report, indent=2) + "\n").encode())
        snap = self.metrics_snapshot()  # re-taken: includes slo gauges
        if path == "/metrics":
            return ("200 OK", "text/plain; version=0.0.4",
                    prometheus_text(snap).encode())
        return "200 OK", "application/json", json_text(snap).encode()

    async def _on_metrics_connection(self, reader: asyncio.StreamReader,
                                     writer: asyncio.StreamWriter) -> None:
        """One-shot HTTP/1.0 exchange: parse the request line, respond.

        Deliberately minimal — no keep-alive, no chunked bodies; it
        exists for ``curl`` and Prometheus scrapers, both of which are
        happy with connection-close semantics.  Reading the request and
        rendering the response are each bounded by ``metrics_timeout``
        seconds (``/profile`` additionally gets its requested sampling
        window on top) and any failure closes the connection without
        touching the listener, so a stuck or malicious scraper costs
        one socket, never the sidecar.
        """

        async def read_request() -> str:
            request = await reader.readline()
            parts = request.decode("latin-1", "replace").split()
            path = parts[1] if len(parts) >= 2 else ""
            # Drain the remaining request headers up to the blank line.
            while True:
                line = await reader.readline()
                if line in (b"", b"\r\n", b"\n"):
                    break
            return path

        async def respond(path: str) -> None:
            loop = asyncio.get_running_loop()
            status, ctype, body = await loop.run_in_executor(
                None, self._render_sidecar, path)
            writer.write(
                f"HTTP/1.0 {status}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n".encode() + body)
            await writer.drain()

        try:
            path = await asyncio.wait_for(read_request(),
                                          self.metrics_timeout)
            # A profile request deliberately blocks for its sampling
            # window; extend the render budget by exactly that much.
            budget = self.metrics_timeout + _profile_window(path)
            await asyncio.wait_for(respond(path), budget)
        except (ConnectionError, OSError, asyncio.TimeoutError,
                TimeoutError):
            pass
        except Exception as exc:  # a render bug must not kill the sidecar
            obslog.event("service", "sidecar_error",
                         exc_type=type(exc).__name__, exc=str(exc))
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # CancelledError lands here when the server closes while
                # an exchange is in flight; the coroutine ends on the
                # next line either way, so swallowing it only silences
                # the event loop's "exception never retrieved" noise.
                pass

    async def __aenter__(self) -> "GatewayServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    def _on_connection(self, reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter) -> None:
        task = asyncio.ensure_future(self._handle(reader, writer))
        self._handlers.add(task)
        task.add_done_callback(self._handler_done)

    def _handler_done(self, task: asyncio.Task) -> None:
        self._handlers.discard(task)
        self._conns_seen += 1
        self._conns_done.set()
        self._conns_done.clear()

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        m = self.metrics
        m.inc("server.connections")
        streams: dict[int, _StreamState] = {}

        async def frames():
            while True:
                frame = await read_frame(reader, timeout=self.timeout)
                if frame is None:
                    return
                if frame.is_neg:
                    # Codec negotiation rides the data connection but
                    # never reaches the egress pipeline: answer with
                    # the intersection and keep reading.
                    offered = unpack_neg(frame.payload)
                    accepted = offered & _codec_id_set(self.accept_codecs)
                    await write_frame(
                        writer,
                        Frame(stream_id=frame.stream_id, seq=frame.seq,
                              flags=FLAG_NEG, payload=pack_neg(accepted)),
                        timeout=self.timeout)
                    m.inc("server.neg_exchanges")
                    obslog.event("service", "codec_negotiation",
                                 offered=sorted(offered),
                                 accepted=sorted(accepted))
                    continue
                yield frame

        async def deliver(stream_id: int, seq: int, data: bytes) -> None:
            streams.setdefault(stream_id, _StreamState()).account(data)
            if self._deliver is not None:
                await self._deliver(stream_id, seq, data)
            m.inc("server.frames_delivered")
            m.inc("server.bytes_delivered", len(data))

        async def on_end(stream_id: int, seq: int) -> None:
            state = streams.get(stream_id, _StreamState())
            ack = Frame(stream_id=stream_id, seq=seq, flags=FLAG_ACK,
                        payload=pack_ack(state.frames, state.bytes,
                                         state.crc))
            await write_frame(writer, ack, timeout=self.timeout)
            m.inc("server.streams_acked")

        egress = EgressPipeline(workers=self.workers,
                                queue_depth=self.queue_depth, metrics=m,
                                use_shm=self.use_shm)
        try:
            with egress:
                await egress.run(frames(), deliver, on_end=on_end)
        except (FrameError, ConnectionError, asyncio.TimeoutError,
                TimeoutError) as exc:
            m.inc("server.connection_errors")
            m.inc(f"server.errors.{type(exc).__name__}")
            obslog.event("service", "connection_error",
                         exc_type=type(exc).__name__, exc=str(exc))
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def close(self, drain: bool = True,
                    drain_timeout: float = 10.0) -> None:
        """Stop accepting; by default let in-flight connections finish.

        Graceful drain waits up to ``drain_timeout`` seconds for active
        handlers before cancelling them.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
        pending = list(self._handlers)
        if pending and drain:
            _, pending = await asyncio.wait(pending, timeout=drain_timeout)
            pending = list(pending)
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    async def wait_connections(self, n: int) -> None:
        """Block until ``n`` connections have completed (for harnesses)."""
        while self._conns_seen < n:
            await self._conns_done.wait()


class GatewayClient:
    """The ingress gateway: compress a buffer stream and ship it.

    ``workers``/``queue_depth`` size the compression fan-out and the
    backpressure bound; ``retries``/``backoff`` govern transient-error
    retry on connect; ``timeout`` bounds each frame write and the ACK
    read; ``use_shm`` selects the shared-memory frame transport into
    the compress pool (default: automatic — on whenever the pipeline
    owns a process pool).

    ``codec`` selects the container codec for outgoing frames (any
    registered name, or ``"auto"`` for the per-chunk dispatcher);
    ``probe_threshold`` tunes the incompressibility probe's
    bits-per-byte cutoff.  A non-default codec triggers a ``NEG``
    handshake on connect: the client offers the codec ids it may emit
    and, if the egress gateway does not accept them all, falls back to
    the classic LZSS pipeline (``client.codec_fallbacks``) rather than
    ship containers the peer would refuse.  The peer's answer is kept
    in ``accepted_codecs``.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 version: int = 2, workers: int = 2, queue_depth: int = 8,
                 timeout: float = 30.0, retries: int = 3,
                 backoff: float = 0.05, metrics: Metrics | None = None,
                 use_shm: bool | None = None, executor=None,
                 codec: str = "lzss",
                 probe_threshold: float | None = None) -> None:
        self.host = host
        self.port = port
        self.version = version
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.codec = codec
        self.accepted_codecs: frozenset[int] | None = None
        self.metrics = metrics or Metrics()
        self._ingress = IngressPipeline(version=version, workers=workers,
                                        queue_depth=queue_depth,
                                        metrics=self.metrics,
                                        use_shm=use_shm,
                                        executor=executor,
                                        codec=codec,
                                        probe_threshold=probe_threshold)
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> None:
        async def _open():
            return await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port), self.timeout)

        self._reader, self._writer = await retry_with_backoff(
            _open, retries=self.retries, base_delay=self.backoff,
            metrics=self.metrics, name="connect")
        self.metrics.inc("client.connects")
        if self.codec != "lzss":
            await self._negotiate()

    async def _negotiate(self) -> None:
        """Offer our codec-id set; downgrade to lzss on a short answer."""
        from repro.codecs import get_codec

        offered = (_codec_id_set(None) if self.codec == "auto"
                   else frozenset({get_codec(self.codec).codec_id}))
        await write_frame(self._writer,
                          Frame(stream_id=0, seq=0, flags=FLAG_NEG,
                                payload=pack_neg(offered)),
                          timeout=self.timeout)
        reply = await read_frame(self._reader, timeout=self.timeout)
        if reply is None or not reply.is_neg:
            raise FrameError(
                "gateway closed during codec negotiation")
        self.accepted_codecs = unpack_neg(reply.payload)
        self.metrics.inc("client.neg_exchanges")
        if not offered <= self.accepted_codecs:
            self.metrics.inc("client.codec_fallbacks")
            obslog.event("service", "codec_fallback",
                         requested=self.codec, offered=sorted(offered),
                         accepted=sorted(self.accepted_codecs))
            self.codec = "lzss"
        self._ingress.codec = self.codec

    async def __aenter__(self) -> "GatewayClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def send_stream(self, buffers, stream_id: int = 0,
                          verify: bool = True) -> StreamAck:
        """Compress and send ``buffers`` as one stream; await the ACK.

        With ``verify`` (and a re-iterable ``buffers``), the ACK is
        checked against the sent bytes and a mismatch raises
        :class:`FrameError` — the end-to-end "data looks the same going
        in as coming out" guarantee, enforced per stream.
        """
        if self._writer is None:
            await self.connect()

        async def send(frame: Frame) -> None:
            await retry_with_backoff(
                lambda: write_frame(self._writer, frame,
                                    timeout=self.timeout),
                retries=self.retries, base_delay=self.backoff,
                transient=(TimeoutError, asyncio.TimeoutError),
                metrics=self.metrics, name="send")

        n_frames = await self._ingress.run(stream_id, buffers, send)
        await write_frame(self._writer,
                          Frame(stream_id=stream_id, seq=n_frames,
                                flags=FLAG_END),
                          timeout=self.timeout)
        ack_frame = await read_frame(self._reader, timeout=self.timeout)
        if ack_frame is None or not ack_frame.is_ack:
            raise FrameError("gateway closed the stream without an ACK")
        ack = StreamAck.from_payload(ack_frame.payload)
        self.metrics.inc("client.streams_acked")
        if verify and hasattr(buffers, "__iter__") \
                and not hasattr(buffers, "__next__"):
            if not ack.matches(buffers):
                raise FrameError(
                    f"delivery receipt mismatch: sent {n_frames} frames, "
                    f"egress delivered {ack.frames} frames/{ack.bytes} bytes")
        return ack

    async def close(self) -> None:
        self._ingress.close()
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
            self._reader = None
