"""Streaming gateway service — the paper's §III scenario as a system.

The in-memory API (`repro.core.api`) compresses one buffer at a time;
this package turns it into a long-running, traffic-serving pipeline:

- :mod:`repro.service.protocol` — a length-prefixed frame protocol
  wrapping the CULZSS container with stream id, sequence number, flags
  (raw passthrough for incompressible frames) and CRCs;
- :mod:`repro.service.pipeline` — bounded-queue ingress/egress stages
  with compression fanned out across a process pool (the CPU-bound
  encoder is the bottleneck, mirroring the paper's CPU/GPU overlap)
  while frame reassembly preserves sequence order;
- :mod:`repro.service.gateway` — an asyncio TCP gateway server and
  client with per-connection timeouts, bounded retry-with-backoff, and
  graceful drain on shutdown;
- :mod:`repro.service.metrics` — frame/byte counters, queue-depth
  gauges, and ratio/latency histograms behind one ``snapshot()`` dict.
"""

from repro.service.gateway import (
    GatewayClient,
    GatewayServer,
    StreamAck,
    retry_with_backoff,
)
from repro.service.metrics import Histogram, Metrics
from repro.service.pipeline import (
    EgressPipeline,
    IngressPipeline,
    decode_payload,
    encode_payload,
)
from repro.service.protocol import (
    FLAG_ACK,
    FLAG_END,
    FLAG_RAW,
    FRAME_HEADER_SIZE,
    Frame,
    FrameError,
    decode_frame,
    encode_frame,
    read_frame,
    write_frame,
)

__all__ = [
    "EgressPipeline",
    "FLAG_ACK",
    "FLAG_END",
    "FLAG_RAW",
    "FRAME_HEADER_SIZE",
    "Frame",
    "FrameError",
    "GatewayClient",
    "GatewayServer",
    "Histogram",
    "IngressPipeline",
    "Metrics",
    "StreamAck",
    "decode_frame",
    "decode_payload",
    "encode_frame",
    "encode_payload",
    "read_frame",
    "retry_with_backoff",
    "write_frame",
]
