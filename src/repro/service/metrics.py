"""Gateway metrics — a thin adapter over :mod:`repro.obs`.

One :class:`Metrics` instance is threaded through the pipeline stages
and the gateway endpoints; everything it knows comes out of one
:meth:`Metrics.snapshot` dict so the CLI (and tests) can print or
assert on it without touching internals.

The recording machinery (counters, high-water gauges, the log-bucket
:class:`Histogram`) moved to :class:`repro.obs.MetricRegistry` so the
whole stack shares one metric shape; this module keeps the historical
surface — every method and every snapshot key is unchanged — as a
veneer over a registry.  By default each ``Metrics()`` owns a private
registry (tests rely on instances being independent); pass an explicit
``registry`` — e.g. ``repro.obs.get_registry()`` — to aggregate into a
shared one instead.  The gateway's Prometheus endpoint exports the
union of its instance registry and the process-global registry, so
gateway keys and codec-layer keys land in one scrape.
"""

from __future__ import annotations

from repro.obs.registry import Histogram, MetricRegistry

__all__ = ["Histogram", "Metrics"]


class Metrics:
    """Counters + gauges + histograms behind one lock and one snapshot.

    The asyncio pipeline is single-threaded, but executor callbacks and
    the benchmark harness are not guaranteed to be; the underlying
    registry locks every entry point at negligible cost.
    """

    def __init__(self, registry: MetricRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricRegistry()

    def inc(self, name: str, n: int = 1) -> None:
        self.registry.inc(name, n)

    def count(self, name: str) -> int:
        return self.registry.count(name)

    def gauge(self, name: str, value: float) -> None:
        """Record an instantaneous reading; keeps last and high-water."""
        self.registry.gauge(name, value)

    def gauge_max(self, name: str) -> float:
        return self.registry.gauge_max(name)

    def observe(self, name: str, value: float) -> None:
        self.registry.observe(name, value)

    def snapshot(self) -> dict:
        """Everything, as plain dicts — JSON-dumpable as-is."""
        return self.registry.snapshot()
