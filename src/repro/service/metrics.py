"""Gateway metrics: counters, high-water gauges, log-bucket histograms.

One :class:`Metrics` instance is threaded through the pipeline stages
and the gateway endpoints; everything it knows comes out of one
:meth:`Metrics.snapshot` dict so the CLI (and tests) can print or
assert on it without touching internals.

Histograms use geometric (power-of-two) buckets, which cover frame
sizes (bytes), stage waits (seconds), and compression ratios with one
scheme and O(1) memory — the classic Prometheus shape, small enough to
snapshot on every connection close.
"""

from __future__ import annotations

import math
import threading
from collections import defaultdict

__all__ = ["Histogram", "Metrics"]


class Histogram:
    """Fixed geometric buckets, ``(2^k, 2^(k+1)]``, plus count/sum/min/max.

    Covers ``2**-24`` (~6e-8, below any wait we time) through ``2**40``
    (a terabyte, above any frame we frame).  Values at or below the
    smallest edge land in the first bucket; zero is counted but kept
    out of ``min`` only when no other sample exists.
    """

    _LO, _HI = -24, 40

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._buckets: dict[int, int] = defaultdict(int)

    def record(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if value <= 0:
            exp = self._LO
        else:
            exp = min(max(math.ceil(math.log2(value)), self._LO), self._HI)
        self._buckets[exp] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "buckets": {f"le_2^{exp}": n
                        for exp, n in sorted(self._buckets.items())},
        }


class Metrics:
    """Counters + gauges + histograms behind one lock and one snapshot.

    The asyncio pipeline is single-threaded, but executor callbacks and
    the benchmark harness are not guaranteed to be; a plain lock keeps
    every entry point safe at negligible cost.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = defaultdict(int)
        self._gauges: dict[str, dict[str, float]] = {}
        self._histograms: dict[str, Histogram] = {}

    def inc(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] += n

    def count(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str, value: float) -> None:
        """Record an instantaneous reading; keeps last and high-water."""
        with self._lock:
            g = self._gauges.setdefault(name, {"last": value, "max": value})
            g["last"] = value
            g["max"] = max(g["max"], value)

    def gauge_max(self, name: str) -> float:
        with self._lock:
            return self._gauges.get(name, {}).get("max", 0.0)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.record(value)

    def snapshot(self) -> dict:
        """Everything, as plain dicts — JSON-dumpable as-is."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": {k: dict(v) for k, v in self._gauges.items()},
                "histograms": {k: h.snapshot()
                               for k, h in self._histograms.items()},
            }
