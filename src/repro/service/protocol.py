"""The gateway frame protocol.

A *frame* is the unit of traffic between gateway pairs: one input
buffer, compressed (or passed through raw), prefixed with a fixed
36-byte header.  All integers little-endian::

    offset  size  field
    0       4     magic  b"CZF1"
    4       1     protocol version (1)
    5       1     flags (bit 0: RAW, bit 1: END, bit 2: ACK)
    6       2     reserved (0)
    8       8     stream id
    16      8     sequence number within the stream
    24      4     payload length
    28      4     CRC-32 of the payload
    32      4     CRC-32 of bytes [0, 32) — header self-check

    36      …     payload

Payload semantics by flags:

- no flags: a CULZSS container (``repro.container`` blob);
- ``RAW``: the original bytes, sent verbatim because the container
  came out no smaller (the incompressible-frame guard — a frame never
  expands its buffer by more than the 36-byte header);
- ``END``: end-of-stream marker; ``seq`` is the total number of data
  frames in the stream, payload empty;
- ``ACK``: egress → ingress delivery receipt; payload is
  :func:`pack_ack` (frames delivered, bytes delivered, running CRC-32
  of the delivered byte stream).

The header carries its own CRC so a desynchronized or corrupted stream
fails loudly at the frame boundary instead of feeding garbage to the
container parser.
"""

from __future__ import annotations

import asyncio
import struct
from dataclasses import dataclass

from repro.errors import FrameError
from repro.util.checksum import crc32

__all__ = [
    "FLAG_ACK",
    "FLAG_END",
    "FLAG_RAW",
    "FRAME_HEADER_SIZE",
    "FRAME_MAGIC",
    "Frame",
    "FrameError",
    "MAX_PAYLOAD",
    "decode_frame",
    "encode_frame",
    "pack_ack",
    "read_frame",
    "unpack_ack",
    "write_frame",
]

FRAME_MAGIC = b"CZF1"
PROTOCOL_VERSION = 1
FRAME_HEADER_SIZE = 36
_HEADER_FMT = "<4sBBHQQII"  # through payload CRC; header CRC appended
_ACK_FMT = "<QQI"

FLAG_RAW = 1
FLAG_END = 2
FLAG_ACK = 4
_KNOWN_FLAGS = FLAG_RAW | FLAG_END | FLAG_ACK

#: Sanity bound: no single frame payload above 1 GiB.  Protects the
#: receiver from allocating on a corrupted (but CRC-valid-header…)
#: length field long before memory pressure becomes an outage.
MAX_PAYLOAD = 1 << 30


# FrameError lives in :mod:`repro.errors` (the shared taxonomy) and is
# re-exported here for compatibility with pre-taxonomy imports.

@dataclass(frozen=True)
class Frame:
    """One protocol frame (header fields + payload bytes)."""

    stream_id: int
    seq: int
    flags: int = 0
    payload: bytes = b""

    @property
    def is_raw(self) -> bool:
        return bool(self.flags & FLAG_RAW)

    @property
    def is_end(self) -> bool:
        return bool(self.flags & FLAG_END)

    @property
    def is_ack(self) -> bool:
        return bool(self.flags & FLAG_ACK)

    @property
    def wire_size(self) -> int:
        return FRAME_HEADER_SIZE + len(self.payload)


def encode_frame(frame: Frame) -> bytes:
    """Serialize a frame: header (with CRCs) + payload."""
    if len(frame.payload) > MAX_PAYLOAD:
        raise FrameError(f"payload of {len(frame.payload)} bytes exceeds "
                         f"the {MAX_PAYLOAD}-byte frame bound")
    head = struct.pack(_HEADER_FMT, FRAME_MAGIC, PROTOCOL_VERSION,
                       frame.flags, 0, frame.stream_id, frame.seq,
                       len(frame.payload), crc32(frame.payload))
    return head + struct.pack("<I", crc32(head)) + frame.payload


def decode_frame(buf: bytes | bytearray | memoryview) -> tuple[Frame, int]:
    """Parse one frame off the front of ``buf``.

    Returns ``(frame, bytes_consumed)``; raises :class:`FrameError` on
    corruption or if ``buf`` holds less than one whole frame.
    """
    buf = memoryview(buf)
    if len(buf) < FRAME_HEADER_SIZE:
        raise FrameError("truncated before frame header")
    (magic, version, flags, _reserved, stream_id, seq, length,
     payload_crc) = struct.unpack_from(_HEADER_FMT, buf)
    (header_crc,) = struct.unpack_from("<I", buf, FRAME_HEADER_SIZE - 4)
    if magic != FRAME_MAGIC:
        raise FrameError("bad frame magic")
    if crc32(bytes(buf[:FRAME_HEADER_SIZE - 4])) != header_crc:
        raise FrameError("frame header checksum mismatch")
    if version != PROTOCOL_VERSION:
        raise FrameError(f"unsupported protocol version {version}")
    if flags & ~_KNOWN_FLAGS:
        raise FrameError(f"unknown frame flags {flags:#x}")
    if length > MAX_PAYLOAD:
        raise FrameError(f"frame length {length} exceeds bound")
    end = FRAME_HEADER_SIZE + length
    if len(buf) < end:
        raise FrameError("truncated inside frame payload")
    payload = bytes(buf[FRAME_HEADER_SIZE:end])
    if crc32(payload) != payload_crc:
        raise FrameError("frame payload checksum mismatch")
    return Frame(stream_id=stream_id, seq=seq, flags=flags,
                 payload=payload), end


def pack_ack(frames: int, byte_count: int, crc: int) -> bytes:
    """ACK payload: frames delivered, bytes delivered, delivery CRC."""
    return struct.pack(_ACK_FMT, frames, byte_count, crc)


def unpack_ack(payload: bytes) -> tuple[int, int, int]:
    if len(payload) != struct.calcsize(_ACK_FMT):
        raise FrameError("malformed ACK payload")
    return struct.unpack(_ACK_FMT, payload)


async def read_frame(reader: asyncio.StreamReader,
                     timeout: float | None = None) -> Frame | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    A connection dropping *inside* a frame raises :class:`FrameError`;
    exceeding ``timeout`` seconds raises :class:`asyncio.TimeoutError`.
    """

    async def _read() -> Frame | None:
        try:
            head = await reader.readexactly(FRAME_HEADER_SIZE)
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise FrameError("connection closed mid-header") from exc
        (_, _, _, _, _, _, length, _) = struct.unpack_from(_HEADER_FMT, head)
        if length > MAX_PAYLOAD:
            raise FrameError(f"frame length {length} exceeds bound")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise FrameError("connection closed mid-payload") from exc
        frame, _ = decode_frame(head + body)
        return frame

    if timeout is None:
        return await _read()
    return await asyncio.wait_for(_read(), timeout)


async def write_frame(writer: asyncio.StreamWriter, frame: Frame,
                      timeout: float | None = None) -> None:
    """Write one frame and drain (which is where backpressure bites)."""
    writer.write(encode_frame(frame))
    if timeout is None:
        await writer.drain()
    else:
        await asyncio.wait_for(writer.drain(), timeout)
