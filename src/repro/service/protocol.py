"""The gateway frame protocol.

A *frame* is the unit of traffic between gateway pairs: one input
buffer, compressed (or passed through raw), prefixed with a fixed
header.  All integers little-endian::

    offset  size  field
    0       4     magic  b"CZF1"
    4       1     protocol version (1 or 2)
    5       1     flags (bit 0: RAW, bit 1: END, bit 2: ACK)
    6       2     reserved (0)
    8       8     stream id
    16      8     sequence number within the stream
    24      4     payload length
    28      4     CRC-32 of the payload
    [32     8     trace id — version 2 only]
    …       4     CRC-32 of all preceding header bytes — self-check

    …       …     payload

Version 1 headers are 36 bytes; version 2 inserts an 8-byte trace id
before the header CRC (44 bytes total).  The trace id threads a
:mod:`repro.obs` trace through the gateway: spans the egress opens for
a frame join the trace the ingress started, across the network.  The
version gate follows the container-v2 pattern: the writer emits a v1
header whenever ``trace_id == 0``, so untraced traffic stays
byte-identical to the historical wire format and old readers only ever
see frames they can parse.

Payload semantics by flags:

- no flags: a CULZSS container (``repro.container`` blob);
- ``RAW``: the original bytes, sent verbatim because the container
  came out no smaller (the incompressible-frame guard — a frame never
  expands its buffer by more than the 36-byte header);
- ``END``: end-of-stream marker; ``seq`` is the total number of data
  frames in the stream, payload empty;
- ``ACK``: egress → ingress delivery receipt; payload is
  :func:`pack_ack` (frames delivered, bytes delivered, running CRC-32
  of the delivered byte stream);
- ``NEG``: codec negotiation.  The ingress opens a stream by offering
  the set of container codec ids it may use (:func:`pack_neg`, one
  byte per id); the egress replies with a NEG frame carrying the
  intersection with what it accepts.  Ids the receiver never echoes
  must not appear in subsequent containers.  Streams that only ever
  use the classic LZSS pipeline skip the exchange entirely, keeping
  historical traffic byte-identical.

The header carries its own CRC so a desynchronized or corrupted stream
fails loudly at the frame boundary instead of feeding garbage to the
container parser.
"""

from __future__ import annotations

import asyncio
import struct
from dataclasses import dataclass

from repro.errors import FrameError
from repro.util.checksum import crc32

__all__ = [
    "FLAG_ACK",
    "FLAG_END",
    "FLAG_NEG",
    "FLAG_RAW",
    "FRAME_HEADER_SIZE",
    "FRAME_HEADER_SIZE_V2",
    "FRAME_MAGIC",
    "PROTOCOL_VERSION",
    "PROTOCOL_VERSION_V2",
    "Frame",
    "FrameError",
    "MAX_PAYLOAD",
    "decode_frame",
    "encode_frame",
    "pack_ack",
    "pack_neg",
    "read_frame",
    "unpack_ack",
    "unpack_neg",
    "write_frame",
]

FRAME_MAGIC = b"CZF1"
PROTOCOL_VERSION = 1
PROTOCOL_VERSION_V2 = 2
FRAME_HEADER_SIZE = 36          # version 1
FRAME_HEADER_SIZE_V2 = 44       # version 2: + 8-byte trace id
_HEADER_FMT = "<4sBBHQQII"  # through payload CRC; header CRC appended
_ACK_FMT = "<QQI"

FLAG_RAW = 1
FLAG_END = 2
FLAG_ACK = 4
FLAG_NEG = 8
_KNOWN_FLAGS = FLAG_RAW | FLAG_END | FLAG_ACK | FLAG_NEG

#: Sanity bound: no single frame payload above 1 GiB.  Protects the
#: receiver from allocating on a corrupted (but CRC-valid-header…)
#: length field long before memory pressure becomes an outage.
MAX_PAYLOAD = 1 << 30


# FrameError lives in :mod:`repro.errors` (the shared taxonomy) and is
# re-exported here for compatibility with pre-taxonomy imports.

@dataclass(frozen=True)
class Frame:
    """One protocol frame (header fields + payload bytes).

    ``trace_id`` (version 2) carries the :mod:`repro.obs` trace this
    frame belongs to; 0 means untraced, and the frame serializes with
    the byte-identical version-1 header.
    """

    stream_id: int
    seq: int
    flags: int = 0
    payload: bytes = b""
    trace_id: int = 0

    @property
    def is_raw(self) -> bool:
        return bool(self.flags & FLAG_RAW)

    @property
    def is_end(self) -> bool:
        return bool(self.flags & FLAG_END)

    @property
    def is_ack(self) -> bool:
        return bool(self.flags & FLAG_ACK)

    @property
    def is_neg(self) -> bool:
        return bool(self.flags & FLAG_NEG)

    @property
    def wire_size(self) -> int:
        header = FRAME_HEADER_SIZE_V2 if self.trace_id else FRAME_HEADER_SIZE
        return header + len(self.payload)


def encode_frame(frame: Frame) -> bytes:
    """Serialize a frame: header (with CRCs) + payload.

    A nonzero ``trace_id`` selects the version-2 header; otherwise the
    bytes are exactly the historical version-1 encoding.
    """
    if len(frame.payload) > MAX_PAYLOAD:
        raise FrameError(f"payload of {len(frame.payload)} bytes exceeds "
                         f"the {MAX_PAYLOAD}-byte frame bound")
    version = PROTOCOL_VERSION_V2 if frame.trace_id else PROTOCOL_VERSION
    head = struct.pack(_HEADER_FMT, FRAME_MAGIC, version,
                       frame.flags, 0, frame.stream_id, frame.seq,
                       len(frame.payload), crc32(frame.payload))
    if frame.trace_id:
        head += struct.pack("<Q", frame.trace_id)
    return head + struct.pack("<I", crc32(head)) + frame.payload


def decode_frame(buf: bytes | bytearray | memoryview) -> tuple[Frame, int]:
    """Parse one frame off the front of ``buf``.

    Returns ``(frame, bytes_consumed)``; raises :class:`FrameError` on
    corruption or if ``buf`` holds less than one whole frame.
    """
    buf = memoryview(buf)
    if len(buf) < FRAME_HEADER_SIZE:
        raise FrameError("truncated before frame header")
    (magic, version, flags, _reserved, stream_id, seq, length,
     payload_crc) = struct.unpack_from(_HEADER_FMT, buf)
    if magic != FRAME_MAGIC:
        raise FrameError("bad frame magic")
    # The version byte places the header CRC (v2 inserts the trace id
    # first), so it is read pre-verification; a corrupted version byte
    # at worst misplaces the CRC check, which then fails.
    if version == PROTOCOL_VERSION:
        header_size, trace_id = FRAME_HEADER_SIZE, 0
    elif version == PROTOCOL_VERSION_V2:
        header_size = FRAME_HEADER_SIZE_V2
        if len(buf) < header_size:
            raise FrameError("truncated before frame header")
        (trace_id,) = struct.unpack_from("<Q", buf, 32)
    else:
        raise FrameError(f"unsupported protocol version {version}")
    (header_crc,) = struct.unpack_from("<I", buf, header_size - 4)
    if crc32(bytes(buf[:header_size - 4])) != header_crc:
        raise FrameError("frame header checksum mismatch")
    if flags & ~_KNOWN_FLAGS:
        raise FrameError(f"unknown frame flags {flags:#x}")
    if length > MAX_PAYLOAD:
        raise FrameError(f"frame length {length} exceeds bound")
    end = header_size + length
    if len(buf) < end:
        raise FrameError("truncated inside frame payload")
    payload = bytes(buf[header_size:end])
    if crc32(payload) != payload_crc:
        raise FrameError("frame payload checksum mismatch")
    return Frame(stream_id=stream_id, seq=seq, flags=flags,
                 payload=payload, trace_id=trace_id), end


def pack_ack(frames: int, byte_count: int, crc: int) -> bytes:
    """ACK payload: frames delivered, bytes delivered, delivery CRC."""
    return struct.pack(_ACK_FMT, frames, byte_count, crc)


def unpack_ack(payload: bytes) -> tuple[int, int, int]:
    if len(payload) != struct.calcsize(_ACK_FMT):
        raise FrameError("malformed ACK payload")
    return struct.unpack(_ACK_FMT, payload)


def pack_neg(codec_ids) -> bytes:
    """NEG payload: sorted, deduplicated codec ids, one byte each."""
    ids = sorted(set(int(i) for i in codec_ids))
    if any(not 1 <= i <= 255 for i in ids):
        raise FrameError(f"codec ids must be in 1..255, got {ids}")
    return bytes(ids)


def unpack_neg(payload: bytes) -> frozenset[int]:
    if len(payload) > 255:
        raise FrameError("malformed NEG payload")
    if 0 in payload:
        raise FrameError("codec id 0 is invalid in NEG payload")
    return frozenset(payload)


async def read_frame(reader: asyncio.StreamReader,
                     timeout: float | None = None) -> Frame | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    A connection dropping *inside* a frame raises :class:`FrameError`;
    exceeding ``timeout`` seconds raises :class:`asyncio.TimeoutError`.
    """

    async def _read() -> Frame | None:
        try:
            head = await reader.readexactly(FRAME_HEADER_SIZE)
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise FrameError("connection closed mid-header") from exc
        (magic, version, _, _, _, _, length, _) = struct.unpack_from(
            _HEADER_FMT, head)
        if magic != FRAME_MAGIC:
            raise FrameError("bad frame magic")
        if version == PROTOCOL_VERSION_V2:
            try:
                head += await reader.readexactly(
                    FRAME_HEADER_SIZE_V2 - FRAME_HEADER_SIZE)
            except asyncio.IncompleteReadError as exc:
                raise FrameError("connection closed mid-header") from exc
        if length > MAX_PAYLOAD:
            raise FrameError(f"frame length {length} exceeds bound")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise FrameError("connection closed mid-payload") from exc
        frame, _ = decode_frame(head + body)
        return frame

    if timeout is None:
        return await _read()
    return await asyncio.wait_for(_read(), timeout)


async def write_frame(writer: asyncio.StreamWriter, frame: Frame,
                      timeout: float | None = None) -> None:
    """Write one frame and drain (which is where backpressure bites)."""
    writer.write(encode_frame(frame))
    if timeout is None:
        await writer.drain()
    else:
        await asyncio.wait_for(writer.drain(), timeout)
