"""Fast vectorized LZSS decoder.

Decoding a flag-prefixed bit stream looks irreducibly sequential —
token boundaries depend on every previous flag, and back-references
copy bytes the decode itself produces.  Both dependencies vectorize:

* **Token scan**: the next-token jump ``p → p + 9`` (literal) or
  ``p → p + pair_bits`` (pair) is known for *every* bit position up
  front, so the token-start chain is the same reachable-set doubling
  used by the greedy parse.
* **Back-references**: every output byte's source is
  ``parent[d] = d - distance`` (pairs) or ``d`` itself (literals) — a
  strictly-decreasing parent forest rooted at literals.  Pointer-
  jumping (``parent ← parent[parent]``) resolves every byte to its
  literal root in O(log n) vector rounds, overlapping runs included.

The scalar loop in :func:`repro.lzss.reference.reference_decode` is the
specification; this module is property-tested against it.

Corruption raises :class:`~repro.errors.CorruptChunkError` carrying
the chunk index, and :func:`salvage_decode_chunked` turns those
failures (plus per-chunk CRC mismatches) into a
:class:`SalvageReport` instead — bad chunks become fill bytes, every
other chunk decodes byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.errors import CorruptChunkError, TruncatedContainerError
from repro.lzss.formats import FLAG_LITERAL, TokenFormat
from repro.lzss.parse import reachable_from
from repro.util.bitio import gather_fields, ragged_arange, unpack_bits
from repro.util.buffers import as_u8
from repro.util.checksum import crc32
from repro.util.validation import require

__all__ = ["SalvageReport", "decode", "decode_chunked",
           "decode_chunked_with_stats", "salvage_decode_chunked"]


@dataclass
class SalvageReport:
    """What salvage decode recovered — and what it could not.

    ``recovered``/``lost`` are chunk indices; ``lost_ranges`` the
    corresponding ``[lo, hi)`` byte ranges of the *uncompressed* output
    that were filled with ``fill_byte`` instead of data.
    ``unknown_codec`` is the subset of ``lost`` that failed because the
    container's codec column named a codec id this library does not
    know (bit rot in the column, or an archive from a newer library).
    """

    n_chunks: int
    recovered: list[int] = field(default_factory=list)
    lost: list[int] = field(default_factory=list)
    lost_ranges: list[tuple[int, int]] = field(default_factory=list)
    fill_byte: int = 0
    unknown_codec: list[int] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """Did every chunk decode (i.e. was salvage a full recovery)?"""
        return not self.lost

    @property
    def lost_bytes(self) -> int:
        return sum(hi - lo for lo, hi in self.lost_ranges)

    def describe(self) -> str:
        if self.complete:
            return f"all {self.n_chunks} chunks recovered"
        text = (f"recovered {len(self.recovered)}/{self.n_chunks} chunks; "
                f"lost chunks {self.lost} ({self.lost_bytes} bytes "
                f"filled with {self.fill_byte:#04x})")
        if self.unknown_codec:
            text += f"; unknown codec id on chunks {self.unknown_codec}"
        return text


def _decode_stream(payload: np.ndarray, fmt: TokenFormat, output_size: int,
                   chunk_index: int = 0) -> tuple[np.ndarray, int]:
    """Decode one continuous bit stream; returns (bytes, token count).

    ``chunk_index`` only labels errors: any corruption raises
    :class:`CorruptChunkError` naming this chunk.
    """
    def corrupt(message: str, token: int | None = None) -> CorruptChunkError:
        return CorruptChunkError(message, chunk_index=chunk_index,
                                 token_position=token)

    if output_size == 0:
        return np.zeros(0, dtype=np.uint8), 0
    bits = unpack_bits(payload)
    nbits = bits.size
    if nbits < fmt.literal_bits:
        raise corrupt("corrupt stream: too short for a single token")

    # --- token scan -----------------------------------------------------
    jump = np.where(bits == FLAG_LITERAL, fmt.literal_bits, fmt.pair_bits)
    jump = np.arange(nbits, dtype=np.int64) + jump
    starts = reachable_from(jump, 0)
    # The chain runs into the zero padding; cut it by output size below.
    flags = bits[starts]
    is_lit = flags == FLAG_LITERAL
    out_len = np.ones(starts.size, dtype=np.int64)

    # Pair lengths require their length field; only read fields that lie
    # fully inside the stream (padding tails can't, and get dropped).
    in_range = starts + np.where(is_lit, fmt.literal_bits, fmt.pair_bits) <= nbits
    starts, flags, is_lit, out_len = (
        starts[in_range], flags[in_range], is_lit[in_range], out_len[in_range])

    pair_idx = np.nonzero(~is_lit)[0]
    if pair_idx.size:
        values = gather_fields(bits, starts[pair_idx] + 1,
                               fmt.offset_bits + fmt.length_bits)
        lengths = (values & ((1 << fmt.length_bits) - 1)) + fmt.min_match
        distances = (values >> fmt.length_bits) + 1
        over = distances > fmt.window
        if bool(over.any()):
            raise corrupt("corrupt stream: distance exceeds window",
                          token=int(pair_idx[np.nonzero(over)[0][0]]))
        out_len[pair_idx] = lengths

    ends = np.cumsum(out_len)
    keep = int(np.searchsorted(ends, output_size, side="left")) + 1
    if not (keep <= starts.size and int(ends[keep - 1]) == output_size):
        raise corrupt(
            "corrupt stream: token output does not land on declared size",
            token=min(keep, starts.size) - 1)
    starts, is_lit, out_len = starts[:keep], is_lit[:keep], out_len[:keep]
    out_start = ends[:keep] - out_len

    # --- reconstruction --------------------------------------------------
    parent = np.arange(output_size, dtype=np.int64)
    values8 = np.zeros(output_size, dtype=np.uint8)

    lit_pos = out_start[is_lit]
    if lit_pos.size:
        lit_bytes = gather_fields(bits, starts[is_lit] + 1, 8)
        values8[lit_pos] = lit_bytes.astype(np.uint8)

    pair_mask = ~is_lit
    if np.any(pair_mask):
        p_start = out_start[pair_mask]
        p_len = out_len[pair_mask]
        values_p = gather_fields(bits, starts[pair_mask] + 1,
                                 fmt.offset_bits + fmt.length_bits)
        p_dist = (values_p >> fmt.length_bits) + 1
        flat = np.repeat(p_start, p_len) + ragged_arange(p_len)
        parent[flat] = flat - np.repeat(p_dist, p_len)
        if int(parent.min()) < 0:
            bad = int(np.nonzero(parent < 0)[0][0])
            raise corrupt("corrupt stream: back-reference before stream "
                          "start",
                          token=int(np.searchsorted(out_start, bad,
                                                    side="right")) - 1)

    # Pointer-jumping to literal roots; depth halves every round.
    for _ in range(64):
        grand = parent[parent]
        if np.array_equal(grand, parent):
            break
        parent = grand
    else:  # pragma: no cover - 2**64 chain depth is impossible
        unresolved = int(np.nonzero(parent != parent[parent])[0][0])
        raise corrupt("corrupt stream: unresolvable reference chain",
                      token=int(np.searchsorted(out_start, unresolved,
                                                side="right")) - 1)

    return values8[parent], keep


def decode(payload, fmt: TokenFormat, output_size: int) -> bytes:
    """Decode one continuous LZSS stream (inverse of ``encode``)."""
    arr = as_u8(payload)
    out, _tokens = _decode_stream(arr, fmt, output_size)
    return out.tobytes()


def decode_chunked_with_stats(
        payload, fmt: TokenFormat, chunk_sizes: np.ndarray,
        chunk_size: int, output_size: int, *,
        chunk_crcs: np.ndarray | None = None,
        first_chunk: int = 0) -> tuple[bytes, np.ndarray]:
    """Like :func:`decode_chunked` but also returns per-chunk token counts.

    The token counts are what the GPU decompression cost model charges
    each chunk thread for.  With ``chunk_crcs`` (the container-v2
    table), every chunk's CRC-32 is verified *before* its decode and a
    mismatch raises :class:`CorruptChunkError` naming the chunk.
    ``first_chunk`` rebases chunk indices in errors when decoding a
    shard of a larger buffer (the parallel engine's case).
    """
    arr = as_u8(payload)
    chunk_sizes = np.asarray(chunk_sizes, dtype=np.int64)
    require(int(chunk_sizes.sum()) == arr.size,
            "chunk size table does not cover the payload")
    n_chunks = chunk_sizes.size
    expected = (output_size + chunk_size - 1) // chunk_size if output_size else 0
    require(n_chunks == expected,
            f"expected {expected} chunks for {output_size} bytes, got {n_chunks}")

    out = np.zeros(output_size, dtype=np.uint8)
    tokens = np.zeros(n_chunks, dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(chunk_sizes)])
    # CRC accounting accumulates locally and flushes in one shot — even
    # when a mismatch aborts the loop mid-way.
    checks = failures = 0
    try:
        with obs.stage("decode.stream", bytes=output_size, chunks=n_chunks):
            for c in range(n_chunks):
                lo = c * chunk_size
                hi = min(lo + chunk_size, output_size)
                piece = arr[offsets[c]:offsets[c + 1]]
                if chunk_crcs is not None:
                    checks += 1
                    if crc32(piece) != int(chunk_crcs[c]):
                        failures += 1
                        raise CorruptChunkError("chunk checksum mismatch",
                                                chunk_index=first_chunk + c,
                                                offset=int(offsets[c]))
                out[lo:hi], tokens[c] = _decode_stream(
                    piece, fmt, hi - lo, chunk_index=first_chunk + c)
    finally:
        if checks:
            obs.inc("container.crc_checks", checks)
        if failures:
            obs.inc("container.crc_failures", failures)
    return out.tobytes(), tokens


def salvage_decode_chunked(
        payload, fmt: TokenFormat, chunk_sizes: np.ndarray,
        chunk_size: int, output_size: int, *,
        chunk_crcs: np.ndarray | None = None, fill_byte: int = 0,
        first_chunk: int = 0) -> tuple[bytes, np.ndarray, SalvageReport]:
    """Best-effort chunked decode: recover every chunk that checks out.

    Chunk streams are mutually independent (§III.C), so one corrupt or
    missing chunk never poisons its neighbours.  A chunk is *lost* when
    its compressed bytes run past the (truncated) payload end, its
    CRC-32 mismatches ``chunk_crcs`` (container v2), or its token
    stream fails to decode (the only detection available for v1); lost
    chunks come back as ``fill_byte`` and are itemized in the returned
    :class:`SalvageReport`.  Recovered chunks are byte-identical to a
    clean decode.  Returns ``(data, per_chunk_tokens, report)`` with
    ``tokens == 0`` for lost chunks.
    """
    require(0 <= fill_byte <= 255, "fill_byte must be one byte")
    arr = as_u8(payload)
    chunk_sizes = np.asarray(chunk_sizes, dtype=np.int64)
    n_chunks = chunk_sizes.size
    expected = (output_size + chunk_size - 1) // chunk_size if output_size else 0
    require(n_chunks == expected,
            f"expected {expected} chunks for {output_size} bytes, got {n_chunks}")

    out = np.full(output_size, fill_byte, dtype=np.uint8)
    tokens = np.zeros(n_chunks, dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(chunk_sizes)])
    report = SalvageReport(n_chunks=n_chunks, fill_byte=fill_byte)
    checks = failures = 0
    with obs.stage("decode.stream", bytes=output_size, chunks=n_chunks,
                   salvage=True):
        for c in range(n_chunks):
            lo = c * chunk_size
            hi = min(lo + chunk_size, output_size)
            p_lo, p_hi = int(offsets[c]), int(offsets[c + 1])
            good = p_hi <= arr.size
            if good and chunk_crcs is not None:
                checks += 1
                good = crc32(arr[p_lo:p_hi]) == int(chunk_crcs[c])
                failures += not good
            if good:
                try:
                    out[lo:hi], tokens[c] = _decode_stream(
                        arr[p_lo:p_hi], fmt, hi - lo,
                        chunk_index=first_chunk + c)
                except (CorruptChunkError, TruncatedContainerError):
                    out[lo:hi] = fill_byte
                    good = False
            if good:
                report.recovered.append(first_chunk + c)
            else:
                report.lost.append(first_chunk + c)
                report.lost_ranges.append((lo, hi))
    if checks:
        obs.inc("container.crc_checks", checks)
    if failures:
        obs.inc("container.crc_failures", failures)
    obs.inc("container.salvage_chunks_recovered", len(report.recovered))
    obs.inc("container.salvage_chunks_lost", len(report.lost))
    return out.tobytes(), tokens, report


def decode_chunked(payload, fmt: TokenFormat, chunk_sizes: np.ndarray,
                   chunk_size: int, output_size: int) -> bytes:
    """Decode independent chunk streams (inverse of ``encode_chunked``).

    ``chunk_sizes`` is the per-chunk compressed byte table the paper's
    decompressor carries (§III.C); ``chunk_size`` the uncompressed
    chunk length (last chunk may be short).  Chunks decode mutually
    independently — the property the GPU decompressor exploits.
    """
    out, _tokens = decode_chunked_with_stats(payload, fmt, chunk_sizes,
                                             chunk_size, output_size)
    return out
