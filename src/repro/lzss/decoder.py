"""Fast vectorized LZSS decoder.

Decoding a flag-prefixed bit stream looks irreducibly sequential —
token boundaries depend on every previous flag, and back-references
copy bytes the decode itself produces.  Both dependencies vectorize:

* **Token scan**: the next-token jump ``p → p + 9`` (literal) or
  ``p → p + pair_bits`` (pair) is known for *every* bit position up
  front, so the token-start chain is the same reachable-set doubling
  used by the greedy parse.
* **Back-references**: every output byte's source is
  ``parent[d] = d - distance`` (pairs) or ``d`` itself (literals) — a
  strictly-decreasing parent forest rooted at literals.  Pointer-
  jumping (``parent ← parent[parent]``) resolves every byte to its
  literal root in O(log n) vector rounds, overlapping runs included.

The scalar loop in :func:`repro.lzss.reference.reference_decode` is the
specification; this module is property-tested against it.
"""

from __future__ import annotations

import numpy as np

from repro.lzss.formats import FLAG_LITERAL, TokenFormat
from repro.lzss.parse import reachable_from
from repro.util.bitio import gather_fields, ragged_arange, unpack_bits
from repro.util.buffers import as_u8
from repro.util.validation import require

__all__ = ["decode", "decode_chunked", "decode_chunked_with_stats"]


def _decode_stream(payload: np.ndarray, fmt: TokenFormat,
                   output_size: int) -> tuple[np.ndarray, int]:
    """Decode one continuous bit stream; returns (bytes, token count)."""
    if output_size == 0:
        return np.zeros(0, dtype=np.uint8), 0
    bits = unpack_bits(payload)
    nbits = bits.size
    require(nbits >= fmt.literal_bits,
            "corrupt stream: too short for a single token")

    # --- token scan -----------------------------------------------------
    jump = np.where(bits == FLAG_LITERAL, fmt.literal_bits, fmt.pair_bits)
    jump = np.arange(nbits, dtype=np.int64) + jump
    starts = reachable_from(jump, 0)
    # The chain runs into the zero padding; cut it by output size below.
    flags = bits[starts]
    is_lit = flags == FLAG_LITERAL
    out_len = np.ones(starts.size, dtype=np.int64)

    # Pair lengths require their length field; only read fields that lie
    # fully inside the stream (padding tails can't, and get dropped).
    in_range = starts + np.where(is_lit, fmt.literal_bits, fmt.pair_bits) <= nbits
    starts, flags, is_lit, out_len = (
        starts[in_range], flags[in_range], is_lit[in_range], out_len[in_range])

    pair_idx = np.nonzero(~is_lit)[0]
    if pair_idx.size:
        values = gather_fields(bits, starts[pair_idx] + 1,
                               fmt.offset_bits + fmt.length_bits)
        lengths = (values & ((1 << fmt.length_bits) - 1)) + fmt.min_match
        distances = (values >> fmt.length_bits) + 1
        require(bool((distances <= fmt.window).all()),
                "corrupt stream: distance exceeds window")
        out_len[pair_idx] = lengths

    ends = np.cumsum(out_len)
    keep = int(np.searchsorted(ends, output_size, side="left")) + 1
    require(keep <= starts.size and int(ends[keep - 1]) == output_size,
            "corrupt stream: token output does not land on declared size")
    starts, is_lit, out_len = starts[:keep], is_lit[:keep], out_len[:keep]
    out_start = ends[:keep] - out_len

    # --- reconstruction --------------------------------------------------
    parent = np.arange(output_size, dtype=np.int64)
    values8 = np.zeros(output_size, dtype=np.uint8)

    lit_pos = out_start[is_lit]
    if lit_pos.size:
        lit_bytes = gather_fields(bits, starts[is_lit] + 1, 8)
        values8[lit_pos] = lit_bytes.astype(np.uint8)

    pair_mask = ~is_lit
    if np.any(pair_mask):
        p_start = out_start[pair_mask]
        p_len = out_len[pair_mask]
        values_p = gather_fields(bits, starts[pair_mask] + 1,
                                 fmt.offset_bits + fmt.length_bits)
        p_dist = (values_p >> fmt.length_bits) + 1
        flat = np.repeat(p_start, p_len) + ragged_arange(p_len)
        parent[flat] = flat - np.repeat(p_dist, p_len)
        require(int(parent.min()) >= 0,
                "corrupt stream: back-reference before stream start")

    # Pointer-jumping to literal roots; depth halves every round.
    for _ in range(64):
        grand = parent[parent]
        if np.array_equal(grand, parent):
            break
        parent = grand
    else:  # pragma: no cover - 2**64 chain depth is impossible
        raise ValueError("corrupt stream: unresolvable reference chain")

    return values8[parent], keep


def decode(payload, fmt: TokenFormat, output_size: int) -> bytes:
    """Decode one continuous LZSS stream (inverse of ``encode``)."""
    arr = as_u8(payload)
    out, _tokens = _decode_stream(arr, fmt, output_size)
    return out.tobytes()


def decode_chunked_with_stats(
        payload, fmt: TokenFormat, chunk_sizes: np.ndarray,
        chunk_size: int, output_size: int) -> tuple[bytes, np.ndarray]:
    """Like :func:`decode_chunked` but also returns per-chunk token counts.

    The token counts are what the GPU decompression cost model charges
    each chunk thread for.
    """
    arr = as_u8(payload)
    chunk_sizes = np.asarray(chunk_sizes, dtype=np.int64)
    require(int(chunk_sizes.sum()) == arr.size,
            "chunk size table does not cover the payload")
    n_chunks = chunk_sizes.size
    expected = (output_size + chunk_size - 1) // chunk_size if output_size else 0
    require(n_chunks == expected,
            f"expected {expected} chunks for {output_size} bytes, got {n_chunks}")

    out = np.zeros(output_size, dtype=np.uint8)
    tokens = np.zeros(n_chunks, dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(chunk_sizes)])
    for c in range(n_chunks):
        lo = c * chunk_size
        hi = min(lo + chunk_size, output_size)
        piece = arr[offsets[c]:offsets[c + 1]]
        out[lo:hi], tokens[c] = _decode_stream(piece, fmt, hi - lo)
    return out.tobytes(), tokens


def decode_chunked(payload, fmt: TokenFormat, chunk_sizes: np.ndarray,
                   chunk_size: int, output_size: int) -> bytes:
    """Decode independent chunk streams (inverse of ``encode_chunked``).

    ``chunk_sizes`` is the per-chunk compressed byte table the paper's
    decompressor carries (§III.C); ``chunk_size`` the uncompressed
    chunk length (last chunk may be short).  Chunks decode mutually
    independently — the property the GPU decompressor exploits.
    """
    out, _tokens = decode_chunked_with_stats(payload, fmt, chunk_sizes,
                                             chunk_size, output_size)
    return out
