"""Pure-Python LZSS reference codec — the executable specification.

This is the algorithm of §II.A as Dipperstein's serial C code executes
it: greedy parse, brute-force longest-match search over the sliding
window, flag bit per token.  It is deliberately written for obviousness,
not speed; the fast vectorized codecs in :mod:`repro.lzss.encoder` /
:mod:`repro.lzss.decoder` are property-tested against it.

Spec details every implementation in this package follows:

* Matches may not start before ``block_start`` (chunk independence) but
  may *overlap* the current position (distance < length), the classic
  LZ77 run encoding.
* Longest match wins; ties broken by the smallest distance.
* A match shorter than ``fmt.min_match`` is emitted as a literal.
"""

from __future__ import annotations

from repro.lzss.formats import FLAG_LITERAL, TokenFormat
from repro.util.bitio import BitReader, BitWriter
from repro.util.buffers import as_bytes

__all__ = [
    "reference_decode",
    "reference_encode",
    "reference_find_match",
    "reference_tokenize",
]

Token = tuple[str, int] | tuple[str, int, int]  # ("lit", byte) | ("pair", dist, len)


def reference_find_match(data: bytes, pos: int, fmt: TokenFormat,
                         block_start: int = 0,
                         block_end: int | None = None) -> tuple[int, int]:
    """Brute-force longest match for ``data[pos:]`` in the window.

    Returns ``(distance, length)``; ``(0, 0)`` when no match of at least
    one byte exists.  Ties on length go to the smallest distance
    (scanning distances outward keeps the first, nearest, winner).
    """
    if block_end is None:
        block_end = len(data)
    best_len = 0
    best_dist = 0
    max_len_here = min(fmt.max_match, block_end - pos)
    lo = max(block_start, pos - fmt.window)
    for cand in range(pos - 1, lo - 1, -1):  # nearest candidates first
        length = 0
        while (length < max_len_here
               and data[cand + length] == data[pos + length]):
            length += 1
        if length > best_len:
            best_len = length
            best_dist = pos - cand
            if best_len == max_len_here:
                break
    return best_dist, best_len


def reference_tokenize(data: bytes, fmt: TokenFormat,
                       block_start: int = 0,
                       block_end: int | None = None) -> list[Token]:
    """Greedy parse of ``data[block_start:block_end]`` into tokens."""
    data = as_bytes(data)
    if block_end is None:
        block_end = len(data)
    tokens: list[Token] = []
    pos = block_start
    while pos < block_end:
        dist, length = reference_find_match(data, pos, fmt, block_start, block_end)
        if length >= fmt.min_match:
            tokens.append(("pair", dist, length))
            pos += length
        else:
            tokens.append(("lit", data[pos]))
            pos += 1
    return tokens


def tokens_to_bits(tokens: list[Token], fmt: TokenFormat,
                   writer: BitWriter | None = None) -> BitWriter:
    """Serialize tokens into a bit stream (shared by encode paths)."""
    w = writer if writer is not None else BitWriter()
    for token in tokens:
        if token[0] == "lit":
            w.write_bit(FLAG_LITERAL)
            w.write_bits(token[1], 8)
        else:
            _, dist, length = token
            value, nbits = fmt.pack_pair(dist, length)
            w.write_bit(1 - FLAG_LITERAL)
            w.write_bits(value, nbits - 1)
    return w


def reference_encode(data: bytes, fmt: TokenFormat) -> bytes:
    """Compress ``data`` into a raw LZSS bit stream (zero-padded bytes)."""
    tokens = reference_tokenize(as_bytes(data), fmt)
    return tokens_to_bits(tokens, fmt).getvalue()


def reference_decode(payload: bytes, fmt: TokenFormat, output_size: int) -> bytes:
    """Decompress a raw LZSS bit stream produced for ``output_size`` bytes.

    Decoding is the straightforward §II.A.2 loop: read a flag; a literal
    appends one byte, a pair copies ``length`` bytes from ``distance``
    back (byte-by-byte, so overlapping runs self-extend).
    """
    reader = BitReader(payload)
    out = bytearray()
    while len(out) < output_size:
        if reader.read_bit() == FLAG_LITERAL:
            out.append(reader.read_bits(8))
        else:
            value = reader.read_bits(fmt.pair_bits - 1)
            dist, length = fmt.unpack_pair(value)
            if dist > len(out):
                raise ValueError(
                    f"corrupt stream: distance {dist} at output offset {len(out)}")
            start = len(out) - dist
            for k in range(length):
                out.append(out[start + k])
    if len(out) != output_size:
        raise ValueError("corrupt stream: output overshoots declared size")
    return bytes(out)
