"""Hash-chain longest-match search for the large (4 KiB) serial window.

The lag method of :mod:`repro.lzss.lagmatch` costs one vector pass per
lag — perfect for the CUDA formats' 128-byte window, hopeless for the
serial format's 4096.  This module finds all-position longest matches
the way zlib does: positions are bucketed by their 3-byte prefix
("gram"); candidates for position ``i`` are the nearest previous
positions with the same gram inside the window; candidate match lengths
are extended *for every pair simultaneously* in at most ``max_match``
vector rounds.

Because any match of length ≥ 3 must share its leading gram, searching
every same-gram predecessor in the window is **exact** for LZSS
purposes (shorter candidates are emitted as literals anyway).  The
``max_chain`` bound makes the search approximate on extremely
repetitive data, exactly like zlib's chain cap; tests use
``max_chain ≥ window`` to check exactness against the brute-force
reference.

Hot-path engineering (the matcher dominates small-frame encode cost):

* **Chunk-local chains** — with ``chunk_size`` given, the gram sort key
  carries the chunk id, so buckets never mix chunks.  Chain slots are
  not wasted on cross-chunk candidates (which the window check would
  discard anyway), and — crucially for :mod:`repro.engine` — the result
  for a chunk depends only on that chunk's bytes, so any chunk-aligned
  sharding of the input produces byte-identical matches.
* **Saturation early exit** — a position whose best match already
  reached its length cap (``max_match`` or a chunk/slice boundary)
  cannot improve; its pairs are dropped before extension, and the chain
  loop stops outright once no position can improve (one vector pass per
  few rounds, a large win on run-heavy data).
* **Scratch arena** — the position ladder and integer temporaries are
  reused from a per-thread arena (:class:`ScratchArena`) instead of
  being reallocated per call; the per-call ``argsort`` and the result
  arrays are the only mandatory allocations left.

The arena is thread-local, so the parallel engine's worker threads each
get their own scratch without locking.

This module also hosts :func:`probe_incompressible` — the cheap entropy
probe the service's ingress uses to route already-compressed or random
buffers straight to raw passthrough *before* any match search runs.
"""

from __future__ import annotations

import os
import threading

import numpy as np

from repro import obs
from repro.util.buffers import as_u8
from repro.util.validation import require_range

__all__ = [
    "ScratchArena",
    "hash_chain_best_matches",
    "probe_incompressible",
    "resolve_probe_threshold",
]

DEFAULT_MAX_CHAIN = 64

#: Arena slots larger than this many int64 elements are not cached —
#: the arena targets the small-frame hot path, not 8 MiB one-shots.
_ARENA_CAP = 1 << 20

#: Probe defaults: order-0 threshold just below the 8 bits/byte of true
#: noise, order-1 threshold guarding against "random block repeated"
#: inputs whose byte histogram is flat but whose digrams are few.
PROBE_SAMPLE_BYTES = 1 << 16
PROBE_MIN_SIZE = 1024
PROBE_BYTE_ENTROPY_BITS = 7.9

#: Environment override for the probe's order-0 entropy threshold —
#: the same knob ``culzss compress --probe-threshold`` exposes.
PROBE_THRESHOLD_ENV = "REPRO_PROBE_THRESHOLD"


def resolve_probe_threshold(override: float | None = None) -> float:
    """The effective store-fallback entropy threshold, in bits/byte.

    Resolution order: explicit ``override`` (a CLI flag or API
    argument), then the ``REPRO_PROBE_THRESHOLD`` environment variable,
    then the built-in default.  Values outside (0, 8] are rejected —
    8 bits/byte would make the probe unsatisfiable, 0 or less would
    declare everything incompressible.
    """
    if override is None:
        raw = os.environ.get(PROBE_THRESHOLD_ENV, "").strip()
        if not raw:
            return PROBE_BYTE_ENTROPY_BITS
        try:
            override = float(raw)
        except ValueError as exc:
            raise ValueError(
                f"{PROBE_THRESHOLD_ENV}={raw!r} is not a number") from exc
    if not 0.0 < override <= 8.0:
        raise ValueError(
            f"probe threshold must be in (0, 8] bits/byte, got {override}")
    return float(override)


class ScratchArena(threading.local):
    """Per-thread reusable integer scratch buffers.

    ``iota(n)`` hands out a shared read-only position ladder;
    ``i64(name, n)`` a named growable int64 buffer.  Callers must treat
    ``iota`` views as immutable and must not hold ``i64`` views across
    calls into other arena users (the matcher is not reentrant within a
    thread, which is the only discipline required).
    """

    def __init__(self) -> None:
        self._bufs: dict[str, np.ndarray] = {}
        self._iota = np.zeros(0, dtype=np.int64)

    def iota(self, n: int) -> np.ndarray:
        if self._iota.size < n:
            grow = max(n, 2 * self._iota.size)
            self._iota = np.arange(grow, dtype=np.int64)
            if grow <= _ARENA_CAP:
                self._iota.setflags(write=False)
            else:  # oversized: hand out once, do not retain
                out, self._iota = self._iota, np.zeros(0, dtype=np.int64)
                out.setflags(write=False)
                return out[:n]
        return self._iota[:n]

    def i64(self, name: str, n: int) -> np.ndarray:
        if n > _ARENA_CAP:
            return np.empty(n, dtype=np.int64)
        buf = self._bufs.get(name)
        if buf is None or buf.size < n:
            buf = np.empty(max(n, 1024), dtype=np.int64)
            self._bufs[name] = buf
        return buf[:n]


_ARENA = ScratchArena()


def _grams3(arr: np.ndarray, arena: ScratchArena) -> np.ndarray:
    """24-bit keys of 3-byte prefixes: one per position ``i ≤ n-3``."""
    n = arr.size
    a = arena.i64("bytes64", n)
    a[:] = arr
    g = arena.i64("grams", n - 2)
    np.left_shift(a[:-2], 16, out=g)
    t = arena.i64("gram_tmp", n - 2)
    np.left_shift(a[1:-1], 8, out=t)
    np.bitwise_or(g, t, out=g)
    np.bitwise_or(g, a[2:], out=g)
    return g


def _pair_match_lengths(arr: np.ndarray, i_pos: np.ndarray, j_pos: np.ndarray,
                        cap: np.ndarray) -> np.ndarray:
    """Match lengths of ``arr[i:]`` vs ``arr[j:]`` for all pairs at once.

    Vector loop over the match depth: every surviving pair compares its
    next byte each round, so the round count is bounded by ``cap.max()``
    (≤ 18 for the serial format), not by the pair count.
    """
    npairs = i_pos.size
    lengths = np.zeros(npairs, dtype=np.int64)
    if npairs == 0:
        return lengths
    active = np.arange(npairs)
    max_cap = int(cap.max(initial=0))
    for _ in range(max_cap):
        # Two-step masking: only pairs below their cap may read the next
        # byte, otherwise arr[i + len] can index past the array end.
        below = lengths[active] < cap[active]
        active = active[below]
        if active.size == 0:
            break
        ia = i_pos[active]
        ja = j_pos[active]
        la = lengths[active]
        cont = arr[ja + la] == arr[ia + la]
        lengths[active[cont]] += 1
        active = active[cont]
        if active.size == 0:
            break
    return lengths


def hash_chain_best_matches(
    data: bytes | np.ndarray,
    window: int,
    max_match: int,
    max_chain: int = DEFAULT_MAX_CHAIN,
    chunk_size: int | None = None,
    slice_size: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Longest match (length ≥ 3 exact up to ``max_chain``) at every position.

    Returns ``(best_len, best_dist)`` int32 arrays of length ``n``.
    Positions with no match of ≥ 3 bytes report length 0.  Ties on
    length keep the smallest distance (chain order is nearest-first).

    ``chunk_size`` confines the *window* (matches never reach into an
    earlier chunk) and makes the chain itself chunk-local, so results
    for a chunk depend only on that chunk's bytes; ``slice_size``
    additionally caps the match *length* at slice boundaries — the
    CULZSS V1 semantics where every thread encodes its own slice but
    searches the whole chunk before it.
    """
    arr = as_u8(data)
    n = arr.size
    require_range(window, 1, 1 << 24, "window")
    require_range(max_match, 3, 1 << 16, "max_match")
    require_range(max_chain, 1, 1 << 24, "max_chain")

    obs.inc("matcher.hash_calls")
    best_len = np.zeros(n, dtype=np.int32)
    best_dist = np.zeros(n, dtype=np.int32)
    if n < 4:  # a 3-byte match needs source and destination to both fit
        return best_len, best_dist

    arena = _ARENA
    pos = arena.iota(n)
    grams = _grams3(arr, arena)
    if chunk_size is None:
        cap_all = arena.i64("cap_all", n)
        np.subtract(np.int64(n), pos, out=cap_all)
        np.minimum(cap_all, max_match, out=cap_all)
    else:
        require_range(chunk_size, 1, 1 << 40, "chunk_size")
        chunk_of = arena.i64("chunk_of", n)
        np.floor_divide(pos, chunk_size, out=chunk_of)
        cap_all = arena.i64("cap_all", n)
        np.add(chunk_of, 1, out=cap_all)  # chunk end = (chunk + 1) * size
        np.multiply(cap_all, chunk_size, out=cap_all)
        np.minimum(cap_all, n, out=cap_all)
        np.subtract(cap_all, pos, out=cap_all)
        np.minimum(cap_all, max_match, out=cap_all)
        # Chunk-local chains: fold the chunk id into the sort key so
        # buckets never span chunks — every chain slot is a candidate
        # the window/chunk filters could actually accept, and shard
        # boundaries at chunk multiples cannot change the result.
        t = arena.i64("gram_tmp", n - 2)
        np.left_shift(chunk_of[:n - 2], 24, out=t)
        np.bitwise_or(grams, t, out=grams)
    if slice_size is not None:
        require_range(slice_size, 1, 1 << 40, "slice_size")
        if chunk_size is not None and chunk_size % slice_size:
            raise ValueError("slice_size must divide chunk_size")
        slice_end = np.minimum((pos // slice_size + 1) * slice_size, n)
        np.minimum(cap_all, slice_end - pos, out=cap_all)

    # Stable argsort ⇒ within each (chunk, gram) bucket positions stay
    # ascending, so the k-th predecessor is the k-th nearest.
    order = np.argsort(grams[:n - 2], kind="stable").astype(np.int64)
    g_sorted = grams[order]

    # A position whose best length reached its cap can never improve.
    # Observability accumulates locally (rounds, saturation) and records
    # once after the loop — never per round.
    viable = cap_all >= 3
    rounds = 0
    saturated = False
    for k in range(1, max_chain + 1):
        if k >= g_sorted.size:
            break
        if k % 8 == 0 and not np.any(viable & (best_len < cap_all)):
            saturated = True
            break  # every viable position is saturated — nothing to gain
        rounds += 1
        same = g_sorted[k:] == g_sorted[:-k]
        if not np.any(same):
            break
        i_pos = order[k:][same]
        j_pos = order[:-k][same]
        dist = i_pos - j_pos
        ok = dist <= window
        # Only pairs that can still improve are worth extending: the
        # position must accept ≥ 3-byte matches and not be saturated.
        ok &= viable[i_pos]
        ok &= best_len[i_pos] < cap_all[i_pos]
        i_pos, j_pos = i_pos[ok], j_pos[ok]
        if i_pos.size == 0:
            continue
        lengths = _pair_match_lengths(arr, i_pos, j_pos, cap_all[i_pos])
        better = lengths > best_len[i_pos]
        if np.any(better):
            upd = i_pos[better]
            best_len[upd] = lengths[better]
            best_dist[upd] = (i_pos - j_pos)[better]

    obs.inc("matcher.hash_rounds", rounds)
    if saturated:
        obs.inc("matcher.saturation_exits")

    # Lengths below 3 are never encoded; normalize them away so all
    # matchers agree on the canonical "no match" representation.
    short = best_len < 3
    best_len[short] = 0
    best_dist[short] = 0
    return best_len, best_dist


def probe_incompressible(
    data,
    *,
    sample_bytes: int = PROBE_SAMPLE_BYTES,
    min_size: int = PROBE_MIN_SIZE,
    byte_entropy_bits: float | None = None,
) -> bool:
    """Cheap pre-flight check: is ``data`` almost certainly incompressible?

    Samples a prefix and measures order-0 (byte) and order-1 (digram)
    empirical entropy.  Only when *both* sit near their sample-size
    ceilings is the buffer declared incompressible — the conservative
    direction: a ``False`` merely means the encoder runs as usual, while
    a ``True`` lets the service ship the bytes raw without any match
    search.  The digram check catches the classic false positive of a
    random block repeated many times (flat byte histogram, few digrams).

    Cost is two ``bincount`` passes over ≤ ``sample_bytes`` bytes —
    orders of magnitude below one matcher chain round.
    """
    obs.inc("matcher.probe_calls")
    byte_entropy_bits = resolve_probe_threshold(byte_entropy_bits)
    arr = as_u8(data)
    if arr.size < max(min_size, 2):
        return False
    sample = arr[:sample_bytes]
    m = sample.size

    counts = np.bincount(sample, minlength=256)
    p = counts[counts > 0] / m
    h1 = float(-(p * np.log2(p)).sum())
    if h1 < byte_entropy_bits:
        return False

    grams = (sample[:-1].astype(np.int32) << 8) | sample[1:]
    counts2 = np.bincount(grams, minlength=1 << 16)
    p2 = counts2[counts2 > 0] / (m - 1)
    h2 = float(-(p2 * np.log2(p2)).sum())
    # A random sample of m-1 digrams cannot show more than log2(m-1)
    # bits; demand it come within ~0.8 bits of that ceiling (or of the
    # true 16-bit ceiling for large samples, where the maximum-likelihood
    # estimator's negative bias eats a fraction of a bit).
    ceiling = min(15.0, float(np.log2(m - 1)) - 0.8)
    hit = h2 >= ceiling
    if hit:
        obs.inc("matcher.probe_hits")
    return hit
