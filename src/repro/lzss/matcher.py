"""Hash-chain longest-match search for the large (4 KiB) serial window.

The lag method of :mod:`repro.lzss.lagmatch` costs one vector pass per
lag — perfect for the CUDA formats' 128-byte window, hopeless for the
serial format's 4096.  This module finds all-position longest matches
the way zlib does: positions are bucketed by their 3-byte prefix
("gram"); candidates for position ``i`` are the nearest previous
positions with the same gram inside the window; candidate match lengths
are extended *for every pair simultaneously* in at most ``max_match``
vector rounds.

Because any match of length ≥ 3 must share its leading gram, searching
every same-gram predecessor in the window is **exact** for LZSS
purposes (shorter candidates are emitted as literals anyway).  The
``max_chain`` bound makes the search approximate on extremely
repetitive data, exactly like zlib's chain cap; tests use
``max_chain ≥ window`` to check exactness against the brute-force
reference.
"""

from __future__ import annotations

import numpy as np

from repro.util.buffers import as_u8
from repro.util.validation import require_range

__all__ = ["hash_chain_best_matches"]

DEFAULT_MAX_CHAIN = 64


def _grams3(arr: np.ndarray) -> np.ndarray:
    """24-bit keys of 3-byte prefixes: one per position ``i ≤ n-3``."""
    a = arr.astype(np.int64, copy=False)
    return (a[:-2] << 16) | (a[1:-1] << 8) | a[2:]


def _pair_match_lengths(arr: np.ndarray, i_pos: np.ndarray, j_pos: np.ndarray,
                        cap: np.ndarray) -> np.ndarray:
    """Match lengths of ``arr[i:]`` vs ``arr[j:]`` for all pairs at once.

    Vector loop over the match depth: every surviving pair compares its
    next byte each round, so the round count is bounded by ``cap.max()``
    (≤ 18 for the serial format), not by the pair count.
    """
    npairs = i_pos.size
    lengths = np.zeros(npairs, dtype=np.int64)
    if npairs == 0:
        return lengths
    active = np.arange(npairs)
    max_cap = int(cap.max(initial=0))
    for _ in range(max_cap):
        # Two-step masking: only pairs below their cap may read the next
        # byte, otherwise arr[i + len] can index past the array end.
        below = lengths[active] < cap[active]
        active = active[below]
        if active.size == 0:
            break
        ia = i_pos[active]
        ja = j_pos[active]
        la = lengths[active]
        cont = arr[ja + la] == arr[ia + la]
        lengths[active[cont]] += 1
        active = active[cont]
        if active.size == 0:
            break
    return lengths


def hash_chain_best_matches(
    data: bytes | np.ndarray,
    window: int,
    max_match: int,
    max_chain: int = DEFAULT_MAX_CHAIN,
    chunk_size: int | None = None,
    slice_size: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Longest match (length ≥ 3 exact up to ``max_chain``) at every position.

    Returns ``(best_len, best_dist)`` int32 arrays of length ``n``.
    Positions with no match of ≥ 3 bytes report length 0.  Ties on
    length keep the smallest distance (chain order is nearest-first).

    ``chunk_size`` confines the *window* (matches never reach into an
    earlier chunk); ``slice_size`` additionally caps the match *length*
    at slice boundaries — the CULZSS V1 semantics where every thread
    encodes its own slice but searches the whole chunk before it.
    """
    arr = as_u8(data)
    n = arr.size
    require_range(window, 1, 1 << 24, "window")
    require_range(max_match, 3, 1 << 16, "max_match")
    require_range(max_chain, 1, 1 << 24, "max_chain")

    best_len = np.zeros(n, dtype=np.int32)
    best_dist = np.zeros(n, dtype=np.int32)
    if n < 4:  # a 3-byte match needs source and destination to both fit
        return best_len, best_dist

    grams = _grams3(arr)
    # Stable argsort ⇒ within each gram bucket positions stay ascending.
    order = np.argsort(grams, kind="stable").astype(np.int64)
    g_sorted = grams[order]

    pos = np.arange(n, dtype=np.int64)
    if chunk_size is None:
        cap_all = np.minimum(np.int64(n) - pos, max_match)
        chunk_of = None
    else:
        require_range(chunk_size, 1, 1 << 40, "chunk_size")
        chunk_end = np.minimum((pos // chunk_size + 1) * chunk_size, n)
        cap_all = np.minimum(chunk_end - pos, max_match)
        chunk_of = pos // chunk_size
    if slice_size is not None:
        require_range(slice_size, 1, 1 << 40, "slice_size")
        if chunk_size is not None and chunk_size % slice_size:
            raise ValueError("slice_size must divide chunk_size")
        slice_end = np.minimum((pos // slice_size + 1) * slice_size, n)
        cap_all = np.minimum(cap_all, slice_end - pos)

    for k in range(1, max_chain + 1):
        if k >= g_sorted.size:
            break
        same = g_sorted[k:] == g_sorted[:-k]
        if not np.any(same):
            break
        i_pos = order[k:][same]
        j_pos = order[:-k][same]
        dist = i_pos - j_pos
        ok = dist <= window
        if chunk_of is not None:
            ok &= chunk_of[i_pos] == chunk_of[j_pos]
        # Only pairs that can still improve are worth extending.
        ok &= cap_all[i_pos] >= 3
        i_pos, j_pos = i_pos[ok], j_pos[ok]
        if i_pos.size == 0:
            continue
        lengths = _pair_match_lengths(arr, i_pos, j_pos, cap_all[i_pos])
        better = lengths > best_len[i_pos]
        if np.any(better):
            upd = i_pos[better]
            best_len[upd] = lengths[better]
            best_dist[upd] = (i_pos - j_pos)[better]

    # Lengths below 3 are never encoded; normalize them away so all
    # matchers agree on the canonical "no match" representation.
    short = best_len < 3
    best_len[short] = 0
    best_dist[short] = 0
    return best_len, best_dist
