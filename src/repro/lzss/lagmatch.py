"""Exact all-position longest-match search — the CULZSS V2 kernel math.

The V2 GPU kernel assigns one thread per input character; every thread
scans the same ``window``-byte history linearly and records the longest
match starting at its character (§III.B.2).  Vectorized on the host this
becomes one pass per *lag*: for lag ``d`` the per-position prefix-match
run lengths between ``data[i:]`` and ``data[i-d:]`` are computed in O(n)
with a suffix-minimum over mismatch indices, and the best over all
``d ∈ [1, window]`` is reduced with ascending-``d`` iteration so ties
keep the smallest distance — exactly the reference matcher's answer.

The same routine also yields the *exact comparison count* the GPU (or a
brute-force CPU loop) performs: candidate ``(i, d)`` costs
``1 + min(runlen, cap)`` byte compares (compare until first mismatch or
cap).  The timing models in :mod:`repro.model` are fed from these
counts, not from guesses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.buffers import as_u8
from repro.util.validation import require, require_range

__all__ = ["LagMatchResult", "lag_best_matches", "lag_run_lengths"]


WARP_SIZE = 32


@dataclass
class LagMatchResult:
    """All-position match arrays plus exact search-work accounting.

    ``best_len[i]`` / ``best_dist[i]`` describe the longest match
    starting at ``i`` (0 / 0 when shorter than one byte).
    ``compare_count`` is the total number of byte comparisons a linear
    window scan performs over all positions and lags — the quantity the
    GPU timing model consumes.  ``per_position_compares`` (optional)
    breaks that down by position; ``warp_compares`` (optional) is the
    exact SIMT-lockstep cost per 32-position warp —
    ``Σ_lags max_over_lanes(compares)`` — i.e. what a warp actually
    pays when its lanes scan each window offset together and wait for
    the slowest lane's byte-compare loop.
    """

    best_len: np.ndarray
    best_dist: np.ndarray
    compare_count: int
    per_position_compares: np.ndarray | None = None
    warp_compares: np.ndarray | None = None


def lag_run_lengths(data: np.ndarray, lag: int, cap: int,
                    _idx: np.ndarray | None = None) -> np.ndarray:
    """Prefix-match run lengths between ``data[k+lag]`` and ``data[k]``.

    Returns ``R`` of length ``n - lag`` where ``R[k]`` is the largest
    ``l ≤ cap`` with ``data[k:k+l] == data[k+lag:k+lag+l]`` …computed as
    the distance from ``k`` to the next mismatch, via a reversed
    ``minimum.accumulate`` (suffix minimum) over mismatch indices.

    ``_idx`` may pass a pre-built ``arange`` of length ≥ ``n − lag`` to
    spare the per-lag allocation on the hot path.
    """
    n = data.size
    require_range(lag, 1, max(n - 1, 1), "lag")
    eq = data[lag:] == data[:-lag]
    m = eq.size
    idx = np.arange(m, dtype=np.int64) if _idx is None else _idx[:m]
    mismatch_at = np.where(eq, np.int64(m), idx)
    # suffix minimum: nearest mismatch index at or after k
    next_mismatch = np.minimum.accumulate(mismatch_at[::-1])[::-1]
    return np.minimum(next_mismatch - idx, cap)


def lag_best_matches(
    data: bytes | np.ndarray,
    window: int,
    max_match: int,
    chunk_size: int | None = None,
    collect_per_position: bool = False,
) -> LagMatchResult:
    """Longest match (and exact compare counts) at every input position.

    Parameters
    ----------
    window:
        Maximum back-reference distance (the V2 search-window size;
        cost is one vector pass per lag so keep it ≤ a few hundred).
    max_match:
        Length cap (the lookahead / length-field limit).
    chunk_size:
        When given, positions are compressed per independent chunk:
        matches neither reach before their chunk start nor extend past
        its end — mirroring the per-block GPU distribution.
    """
    arr = as_u8(data)
    n = arr.size
    require_range(window, 1, 1 << 16, "window")
    require_range(max_match, 1, 1 << 16, "max_match")
    if chunk_size is not None:
        # a chunk larger than the data degenerates to one chunk
        require_range(chunk_size, 1, 1 << 40, "chunk_size")

    best_len = np.zeros(n, dtype=np.int32)
    best_dist = np.zeros(n, dtype=np.int32)
    per_pos = np.zeros(n, dtype=np.int64) if collect_per_position else None
    n_warps = (n + WARP_SIZE - 1) // WARP_SIZE
    warp_acc = (np.zeros(n_warps, dtype=np.int64)
                if collect_per_position else None)
    pad = n_warps * WARP_SIZE - n
    compare_count = 0
    if n == 0:
        return LagMatchResult(best_len, best_dist, 0, per_pos, warp_acc)

    pos = np.arange(n, dtype=np.int64)
    if chunk_size is None:
        room_after = np.int64(n) - pos
        chunk_starts = np.array([0], dtype=np.int64)
    else:
        chunk_end = np.minimum((pos // chunk_size + 1) * chunk_size, n)
        room_after = chunk_end - pos
        chunk_starts = np.arange(0, n, chunk_size, dtype=np.int64)

    len_cap = np.minimum(room_after, max_match).astype(np.int64)
    len_cap1 = len_cap.clip(min=1)  # loop invariant: cost floor per candidate

    # Reused hot-loop buffers: a compare/candidate array per lag would
    # otherwise allocate 2×n int64 per window offset.
    cand_len = np.zeros(n + pad, dtype=np.int64)
    compares = np.empty(n + pad, dtype=np.int64)
    compares[n:] = 0

    for d in range(1, min(window, n - 1) + 1):
        runs = lag_run_lengths(arr, d, max_match, _idx=pos)
        # match at position i uses run starting at k = i - d
        view_len = cand_len[:n]
        view_len[:d] = 0
        np.minimum(runs, len_cap[d:], out=view_len[d:])
        # Window-crosses-chunk-start invalidation: only the first d
        # positions of each chunk are affected — zero those slices
        # instead of masking the whole array.
        for cs in chunk_starts:
            view_len[cs:cs + d] = 0
        # search cost: compare until first mismatch or cap → 1 + length,
        # except a cap-length match costs exactly cap compares.
        view_cmp = compares[:n]
        np.add(view_len, 1, out=view_cmp)
        np.minimum(view_cmp, len_cap1, out=view_cmp)
        view_cmp[:d] = 0
        for cs in chunk_starts:
            view_cmp[cs:cs + d] = 0
        compare_count += int(view_cmp.sum())
        if per_pos is not None:
            per_pos += view_cmp
        if warp_acc is not None:
            warp_acc += compares.reshape(n_warps, WARP_SIZE).max(axis=1)
        better = view_len > best_len  # strict: ties keep smaller d
        if np.any(better):
            best_len[better] = view_len[better]
            best_dist[better] = d

    return LagMatchResult(best_len, best_dist, compare_count, per_pos,
                          warp_acc)


def validate_matches(data: np.ndarray, result: LagMatchResult) -> None:
    """Debug helper: assert every reported match actually matches."""
    arr = as_u8(data)
    idx = np.nonzero(result.best_len)[0]
    for i in idx[: 10_000]:  # bounded; this is a test utility
        d = int(result.best_dist[i])
        length = int(result.best_len[i])
        require(d >= 1, "zero distance with nonzero length")
        src = arr[i - d:i - d + length]
        dst = arr[i:i + length]
        # overlapping self-extension: compare with explicit loop semantics
        ok = True
        for k in range(length):
            if arr[i - d + k] != arr[i + k]:
                ok = False
                break
        require(ok, f"bogus match at {i}: dist={d} len={length}")
        del src, dst
