"""Algorithm parameters fixed by the paper (§II.A, §III.D).

* ``MIN_MATCH = 3`` — "The minimum number of match is depending on the
  encoding of bits and in our case it is three" (§II.A.1): a 2-byte
  match costs as much as two uncoded literals.
* Serial/Pthread use Dipperstein's layout: 4 KiB window, 18-byte
  lookahead (12-bit offset + 4-bit length fields).
* GPU work is distributed in 4 KiB chunks ("Our implementation uses a
  4KB block size ... a reasonable choice for an average size of a
  network packet", §III.D/§V) with 128 threads per block ("128 threads
  per block configuration is giving the best performance").
* CULZSS V1: the block's 4 KiB chunk is divided among its threads
  ("each thread in a block is responsible for its chunk, resulting
  number of threads of chunks per block") — 32-byte parse slices, the
  whole chunk visible as the search window from shared memory.
* CULZSS V2 uses a 128-byte per-thread window — "we get the best
  performance with the window buffer size of 128 bytes" (§III.D) —
  matched to its 16-bit extended-offset token.
"""

from __future__ import annotations

MIN_MATCH = 3

SERIAL_WINDOW = 4096
SERIAL_LOOKAHEAD = 18  # max match length for the 4-bit length field

CUDA_WINDOW = 128  # V2's per-thread search window
CUDA_CHUNK_SIZE = 4096
DEFAULT_THREADS_PER_BLOCK = 128

#: V1 per-thread parse slice: 4 KiB chunk / 128 threads.
V1_SLICE_BYTES = CUDA_CHUNK_SIZE // DEFAULT_THREADS_PER_BLOCK  # 32

#: CULZSS V1 keeps Dipperstein's 4-bit length field (max match 18);
#: V2 spends a full byte on the length ("16 bit encoding space with
#: extended offset", §III.D).  The field could express 258 but the
#: kernel's 64-byte extended lookahead view caps matches at 66.
V1_MAX_MATCH = MIN_MATCH + (1 << 4) - 1  # 18
V2_LOOKAHEAD_EXTENSION = 64
V2_MAX_MATCH = MIN_MATCH + V2_LOOKAHEAD_EXTENSION - 1  # 66
