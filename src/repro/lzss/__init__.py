"""LZSS algorithm substrate: token formats, matchers, encoders, decoders.

Layering (bottom → top):

* :mod:`repro.lzss.formats` — the three token layouts the paper uses
  (serial Dipperstein 12+4, CULZSS V1 8+4, CULZSS V2 8+8).
* :mod:`repro.lzss.reference` — pure-Python executable specification
  (brute-force matcher, scalar bit I/O).  Slow, obviously correct.
* :mod:`repro.lzss.lagmatch` — exact all-position longest-match kernel
  (the math of the CULZSS V2 GPU kernel), vectorized per lag.
* :mod:`repro.lzss.matcher` — hash-chain longest-match for the large
  serial window, vectorized candidate extension.
* :mod:`repro.lzss.parse` — greedy parse: all-position matches → token
  starts, via vectorized jump doubling.
* :mod:`repro.lzss.encoder` / :mod:`repro.lzss.decoder` — fast
  production codecs built on the pieces above.
"""

from repro.lzss.constants import (
    CUDA_CHUNK_SIZE,
    CUDA_WINDOW,
    DEFAULT_THREADS_PER_BLOCK,
    MIN_MATCH,
    SERIAL_LOOKAHEAD,
    SERIAL_WINDOW,
)
from repro.lzss.decoder import (
    SalvageReport,
    decode,
    decode_chunked,
    decode_chunked_with_stats,
    salvage_decode_chunked,
)
from repro.lzss.encoder import EncodeResult, encode, encode_chunked
from repro.lzss.formats import CUDA_V1, CUDA_V2, SERIAL, TokenFormat
from repro.lzss.lagmatch import lag_best_matches
from repro.lzss.matcher import hash_chain_best_matches, probe_incompressible
from repro.lzss.parse import greedy_token_starts
from repro.lzss.reference import (
    reference_decode,
    reference_encode,
    reference_find_match,
    reference_tokenize,
)
from repro.lzss.stats import EncodeStats

__all__ = [
    "CUDA_CHUNK_SIZE",
    "CUDA_V1",
    "CUDA_V2",
    "CUDA_WINDOW",
    "DEFAULT_THREADS_PER_BLOCK",
    "EncodeResult",
    "EncodeStats",
    "MIN_MATCH",
    "SERIAL",
    "SERIAL_LOOKAHEAD",
    "SERIAL_WINDOW",
    "SalvageReport",
    "TokenFormat",
    "decode",
    "decode_chunked",
    "decode_chunked_with_stats",
    "encode",
    "encode_chunked",
    "greedy_token_starts",
    "hash_chain_best_matches",
    "lag_best_matches",
    "probe_incompressible",
    "reference_decode",
    "reference_encode",
    "reference_find_match",
    "reference_tokenize",
    "salvage_decode_chunked",
]
