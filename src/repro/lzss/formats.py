"""LZSS token formats.

A token stream is a sequence of flag-prefixed tokens, MSB-first:

* literal:  ``1`` followed by the 8-bit byte value (9 bits total);
* pair:  ``0`` followed by ``offset_bits`` of (distance − 1) and
  ``length_bits`` of (match length − MIN_MATCH).

Three concrete layouts appear in the paper:

========== ============ ============ ======== =========== ==========
format      offset bits  length bits  window   max match   pair bits
========== ============ ============ ======== =========== ==========
SERIAL      12           4            4096     18          17
CUDA_V1     12           4            4096     18          17
CUDA_V2     8            8            128      258         17
========== ============ ============ ======== =========== ==========

``SERIAL`` is Dipperstein's layout used by the serial and Pthread CPU
implementations.  ``CUDA_V1`` keeps the token unchanged (the paper
ported the serial coder as-is): each CUDA block's 4 KiB chunk lives in
shared memory, every thread parses a 32-byte slice of it, and matches
reference anywhere earlier in the chunk — which is why Table II shows
V1 consistently a *fraction of a point worse* than serial (chunk and
slice boundary truncation only), never better.  ``CUDA_V2``'s 8-bit
length field over a 128-byte window ("extended offset ... 16 bit
encoding space", §III.D) is why V2 *beats* serial on long-run data
(DE map, highly-compressible) while losing on plain text.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lzss.constants import (
    CUDA_WINDOW,
    MIN_MATCH,
    SERIAL_LOOKAHEAD,
    SERIAL_WINDOW,
)
from repro.util.validation import require, require_range

__all__ = ["CUDA_V1", "CUDA_V2", "SERIAL", "TokenFormat"]

FLAG_LITERAL = 1
FLAG_PAIR = 0


@dataclass(frozen=True)
class TokenFormat:
    """Immutable description of one LZSS bit layout.

    Attributes
    ----------
    name:
        Human-readable identifier (appears in container headers).
    offset_bits / length_bits:
        Field widths of the encoded pair.
    window:
        Maximum back-reference distance.  May be smaller than the
        ``2**offset_bits`` the field could express (CUDA formats keep
        the window at 128 inside an 8-bit field).
    min_match:
        Shortest match worth encoding (3 throughout the paper).
    """

    name: str
    offset_bits: int
    length_bits: int
    window: int
    min_match: int = MIN_MATCH
    #: Implementation cap on match length, when smaller than what the
    #: length field could express (CULZSS V2's matcher is bounded by
    #: its per-tile extended lookahead buffer, not by the 8-bit field).
    max_match_cap: int | None = None

    def __post_init__(self) -> None:
        require_range(self.offset_bits, 1, 24, "offset_bits")
        require_range(self.length_bits, 1, 16, "length_bits")
        require_range(self.window, 1, 1 << self.offset_bits, "window")
        require_range(self.min_match, 1, 255, "min_match")
        if self.max_match_cap is not None:
            require_range(self.max_match_cap, self.min_match,
                          self.min_match + (1 << self.length_bits) - 1,
                          "max_match_cap")

    @property
    def max_match(self) -> int:
        """Longest encodable match: field capacity or the buffer cap."""
        capacity = self.min_match + (1 << self.length_bits) - 1
        return capacity if self.max_match_cap is None else self.max_match_cap

    @property
    def literal_bits(self) -> int:
        return 1 + 8

    @property
    def pair_bits(self) -> int:
        return 1 + self.offset_bits + self.length_bits

    def pair_is_profitable(self, length: int) -> bool:
        """True when encoding ``length`` bytes as a pair beats literals."""
        return self.pair_bits < length * self.literal_bits

    # ---- scalar token packing (reference codecs / headers) -------------

    def pack_literal(self, byte: int) -> tuple[int, int]:
        """Return (value, nbits) for a literal token."""
        require_range(byte, 0, 255, "byte")
        return (FLAG_LITERAL << 8) | byte, self.literal_bits

    def pack_pair(self, distance: int, length: int) -> tuple[int, int]:
        """Return (value, nbits) for an encoded pair token."""
        require_range(distance, 1, self.window, "distance")
        require_range(length, self.min_match, self.max_match, "length")
        value = ((distance - 1) << self.length_bits) | (length - self.min_match)
        return value, self.pair_bits

    def unpack_pair(self, value: int) -> tuple[int, int]:
        """Inverse of :meth:`pack_pair` (flag bit not included)."""
        length = (value & ((1 << self.length_bits) - 1)) + self.min_match
        distance = (value >> self.length_bits) + 1
        require(distance <= self.window,
                f"decoded distance {distance} exceeds window {self.window}")
        return distance, length

    # ---- registry -------------------------------------------------------

    def to_id(self) -> int:
        """Stable numeric id for container headers."""
        try:
            return _FORMAT_IDS[self.name]
        except KeyError:
            raise ValueError(f"format {self.name!r} has no registered id") from None

    @staticmethod
    def from_id(fmt_id: int) -> "TokenFormat":
        try:
            return _FORMATS_BY_ID[fmt_id]
        except KeyError:
            raise ValueError(f"unknown format id {fmt_id}") from None


SERIAL = TokenFormat(
    name="serial",
    offset_bits=12,
    length_bits=4,
    window=SERIAL_WINDOW,
)
assert SERIAL.max_match == SERIAL_LOOKAHEAD

CUDA_V1 = TokenFormat(
    name="cuda_v1",
    offset_bits=12,
    length_bits=4,
    window=SERIAL_WINDOW,
)

#: V2's matcher is bounded by its per-tile extended lookahead view —
#: 64 bytes (half the window) past each position — so matches cap at
#: 66 even though the 8-bit length field could express 258.  The cap
#: is what keeps V2's all-position matching affordable on run-heavy
#: data while still tripling the serial coder's 18-byte reach (the
#: Table II wins on DE map and the highly-compressible set).
CUDA_V2 = TokenFormat(
    name="cuda_v2",
    offset_bits=8,
    length_bits=8,
    window=CUDA_WINDOW,
    max_match_cap=66,
)

_FORMAT_IDS = {"serial": 1, "cuda_v1": 2, "cuda_v2": 3}
_FORMATS_BY_ID = {1: SERIAL, 2: CUDA_V1, 3: CUDA_V2}
