"""Encoder run statistics — the raw material of the timing models.

Every fast encode returns an :class:`EncodeStats` describing exactly
what happened: token mix, match-length mass, and (when the lag matcher
ran) the exact byte-comparison count a linear window scan performs.
The analytic cost models in :mod:`repro.model` consume these numbers;
nothing in the timing pipeline is estimated from the compressed bytes
alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["EncodeStats"]


@dataclass
class EncodeStats:
    """What one compression run did, in counts.

    ``compare_count`` is the exact number of byte comparisons an
    all-position linear window scan performs (filled by the lag
    matcher; ``None`` for the hash-chain path, where the model uses
    sampled brute-force counts instead).  ``token_starts`` /
    ``token_lengths`` are optional detail arrays for divergence
    modeling.
    """

    input_size: int
    output_size: int
    n_tokens: int
    n_literals: int
    n_pairs: int
    sum_match_length: int
    total_bits: int
    compare_count: int | None = None
    per_position_compares: np.ndarray | None = field(default=None, repr=False)
    per_warp_compares: np.ndarray | None = field(default=None, repr=False)
    token_starts: np.ndarray | None = field(default=None, repr=False)
    token_lengths: np.ndarray | None = field(default=None, repr=False)

    @property
    def ratio(self) -> float:
        """Compressed/original size — the paper's 'smaller is better'."""
        if self.input_size == 0:
            return 1.0
        return self.output_size / self.input_size

    @property
    def coverage_by_pairs(self) -> float:
        """Fraction of input bytes covered by encoded matches."""
        if self.input_size == 0:
            return 0.0
        return self.sum_match_length / self.input_size

    @property
    def mean_match_length(self) -> float:
        return self.sum_match_length / self.n_pairs if self.n_pairs else 0.0

    def merged_with(self, other: "EncodeStats") -> "EncodeStats":
        """Combine statistics of two independent streams (detail dropped)."""
        cc = (None if self.compare_count is None or other.compare_count is None
              else self.compare_count + other.compare_count)
        return EncodeStats(
            input_size=self.input_size + other.input_size,
            output_size=self.output_size + other.output_size,
            n_tokens=self.n_tokens + other.n_tokens,
            n_literals=self.n_literals + other.n_literals,
            n_pairs=self.n_pairs + other.n_pairs,
            sum_match_length=self.sum_match_length + other.sum_match_length,
            total_bits=self.total_bits + other.total_bits,
            compare_count=cc,
        )
