"""Greedy-parse machinery: turning all-position matches into token starts.

A greedy LZSS parse is the orbit of ``i → i + advance[i]`` from the
stream start, where ``advance[i]`` is the accepted match length (or 1
for a literal).  The orbit is inherently sequential, but on a functional
graph whose edges only move forward it can be *materialized* with
vectorized jump doubling in O(n log n): maintain the set ``R`` of nodes
reachable in < 2^t steps and a 2^t-step jump table ``J``; then
``R ← R ∪ J[R]`` and ``J ← J[J]`` per round.

Two strategies are provided and dispatched automatically:

* :func:`reachable_from` — the doubling method, for one long stream
  (the serial format) or one bit-stream (the decoder's token scan);
* :func:`_chunked_orbit` — lock-step iteration over many independent
  chunks (the CUDA formats): every chunk advances one token per round,
  so total work is exactly the token count, all chunks in parallel.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import require, require_range

__all__ = ["greedy_token_starts", "greedy_token_starts_reference",
           "optimal_token_advance", "reachable_from"]


def reachable_from(jump: np.ndarray, start: int = 0) -> np.ndarray:
    """Sorted orbit of ``start`` under a strictly-forward jump table.

    ``jump[p] > p`` must hold for every ``p``; values ≥ ``len(jump)``
    mean "past the end".  Returns the visited positions (including
    ``start``) in increasing order.
    """
    n = jump.size
    if n == 0 or start >= n:
        return np.zeros(0, dtype=np.int64)
    require_range(start, 0, n - 1, "start")
    # Extend with a self-loop sentinel so doubling saturates cleanly.
    j = np.empty(n + 1, dtype=np.int64)
    j[:n] = np.minimum(jump.astype(np.int64, copy=False), n)
    j[n] = n
    if np.any(j[:n] <= np.arange(n)):
        raise ValueError("jump table must be strictly forward")
    reach = np.zeros(n + 1, dtype=bool)
    reach[start] = True
    steps = 1
    while steps < n + 1:
        idx = np.nonzero(reach)[0]
        reach[j[idx]] = True
        j = j[j]
        steps <<= 1
    return np.nonzero(reach[:n])[0]


def _chunked_orbit(advance: np.ndarray, chunk_size: int) -> np.ndarray:
    """Token starts for independently-parsed fixed-size chunks.

    All chunks step in lock-step; a round appends one token per still-
    active chunk, so the rounds needed equal the largest per-chunk token
    count and total work equals the total token count.
    """
    n = advance.size
    starts = np.arange(0, n, chunk_size, dtype=np.int64)
    ends = np.minimum(starts + chunk_size, n)
    cur = starts.copy()
    collected: list[np.ndarray] = []
    active = cur < ends
    while np.any(active):
        live = cur[active]
        collected.append(live.copy())
        cur[active] = live + advance[live]
        active &= cur < ends
    if not collected:
        return np.zeros(0, dtype=np.int64)
    out = np.concatenate(collected)
    out.sort()
    return out


def greedy_token_starts(advance: np.ndarray,
                        chunk_size: int | None = None) -> np.ndarray:
    """Positions at which greedy-parse tokens begin.

    ``advance[i] ≥ 1`` is how far the parse moves after emitting the
    token at ``i``.  With ``chunk_size`` given, every chunk is parsed
    independently (the CUDA distribution); otherwise the whole array is
    one stream.
    """
    advance = np.asarray(advance, dtype=np.int64)
    if advance.size == 0:
        return np.zeros(0, dtype=np.int64)
    require(int(advance.min()) >= 1, "advance must be >= 1 everywhere")
    if chunk_size is not None:
        # A chunk larger than the stream degenerates to one chunk.
        require_range(chunk_size, 1, 1 << 40, "chunk_size")
        return _chunked_orbit(advance, chunk_size)
    jump = np.arange(advance.size, dtype=np.int64) + advance
    return reachable_from(jump, 0)


def greedy_token_starts_reference(advance: np.ndarray,
                                  chunk_size: int | None = None) -> np.ndarray:
    """Plain-loop specification of :func:`greedy_token_starts`."""
    advance = np.asarray(advance, dtype=np.int64)
    n = advance.size
    cs = chunk_size if chunk_size is not None else max(n, 1)
    out: list[int] = []
    for chunk_start in range(0, n, cs):
        end = min(chunk_start + cs, n)
        pos = chunk_start
        while pos < end:
            out.append(pos)
            pos += int(advance[pos])
    return np.asarray(out, dtype=np.int64)


def optimal_token_advance(best_len: np.ndarray, literal_bits: int,
                          pair_bits: int, min_match: int) -> np.ndarray:
    """Bit-optimal parse: advance[i] minimizing total token bits.

    Shortest path on the parse DAG — edges ``i→i+1`` (literal) and
    ``i→i+l`` for ``min_match ≤ l ≤ best_len[i]`` (a pair of any
    length up to the longest available match).  Backward DP:

        dp[i] = min(literal_bits + dp[i+1],
                    pair_bits + min_{i+min_match ≤ j ≤ i+best_len[i]} dp[j])

    The window minimum is a NumPy ``argmin`` over at most
    ``max_match − 2`` entries, so the loop is O(n·max_match) with a
    C-speed inner step (≈0.3 s per 128 KiB at max match 18 — this is
    the optional quality-over-speed mode).

    Matches already respect chunk/slice boundaries through
    ``best_len``'s caps, and no token can span a boundary, so one
    global DP serves chunked streams too.  Returns the advance array
    to feed :func:`greedy_token_starts`.
    """
    lens = np.asarray(best_len, dtype=np.int64)
    n = lens.size
    advance = np.ones(n, dtype=np.int64)
    if n == 0:
        return advance
    dp = np.zeros(n + 1, dtype=np.int64)
    for i in range(n - 1, -1, -1):
        best = literal_bits + dp[i + 1]
        adv = 1
        max_l = int(lens[i])
        if max_l >= min_match:
            lo, hi = i + min_match, i + max_l
            j_best = lo + int(np.argmin(dp[lo:hi + 1]))
            pair = pair_bits + int(dp[j_best])
            if pair < best:
                best = pair
                adv = j_best - i
        dp[i] = best
        advance[i] = adv
    return advance
