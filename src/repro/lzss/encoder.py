"""Fast vectorized LZSS encoder.

The encode pipeline is four vector stages — no per-byte Python:

1. all-position longest matches (lag method for CUDA windows,
   hash-chain for the serial window);
2. greedy parse → token start positions (jump doubling / lock-step);
3. token field packing → ragged (value, nbits) arrays;
4. one :func:`repro.util.bitio.pack_tokens` scatter into bytes, with
   per-chunk byte alignment injected as zero-width pad entries so the
   chunked container can slice chunks on byte boundaries.

``encode`` produces one continuous stream (the serial format);
``encode_chunked`` produces independently-decodable chunk streams (the
GPU distribution and the Pthread chunking).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.lzss.formats import FLAG_LITERAL, TokenFormat
from repro.lzss.lagmatch import lag_best_matches
from repro.lzss.matcher import DEFAULT_MAX_CHAIN, hash_chain_best_matches
from repro.lzss.parse import greedy_token_starts, optimal_token_advance
from repro.lzss.stats import EncodeStats
from repro.util.bitio import pack_tokens
from repro.util.buffers import as_u8
from repro.util.validation import require_range

__all__ = ["EncodeResult", "best_matches", "encode", "encode_chunked"]

#: Largest window for which the exact per-lag scan is the matcher of
#: choice; beyond this the hash chain wins by a mile.
LAG_WINDOW_LIMIT = 512


@dataclass
class EncodeResult:
    """Compressed payload plus everything the caller may want to know.

    ``chunk_sizes`` is the paper's "list of block compression sizes"
    (§III.C): byte length of each independently-decodable chunk stream,
    present only for chunked encodes.  ``chunk_codecs`` is the per-chunk
    codec-id column (:mod:`repro.codecs`) — ``None`` for the classic
    single-codec lzss path, a uint8 array (container v3) when the
    dispatcher chose codecs per chunk.
    """

    payload: bytes
    format: TokenFormat
    input_size: int
    chunk_sizes: np.ndarray | None
    chunk_size: int | None
    stats: EncodeStats
    chunk_codecs: np.ndarray | None = None


def best_matches(
    arr: np.ndarray,
    fmt: TokenFormat,
    chunk_size: int | None,
    max_chain: int = DEFAULT_MAX_CHAIN,
    collect_detail: bool = False,
    slice_size: int | None = None,
) -> tuple[np.ndarray, np.ndarray, int | None, np.ndarray | None,
           np.ndarray | None]:
    """Dispatch to the right matcher.

    Returns ``(len, dist, compares, per_pos, warp_compares)``: the
    all-position match arrays, then the exact comparison accounting the
    lag matcher collects — total count, per-position breakdown, and the
    per-warp SIMT-lockstep cost.  The last three are ``None`` on the
    hash-chain path (serial window) or when ``collect_detail`` is off.
    """
    if fmt.window <= LAG_WINDOW_LIMIT and slice_size is None:
        res = lag_best_matches(arr, fmt.window, fmt.max_match,
                               chunk_size=chunk_size,
                               collect_per_position=collect_detail)
        obs.inc("matcher.lag_calls")
        if res.compare_count:
            obs.inc("matcher.lag_compares", int(res.compare_count))
        return (res.best_len, res.best_dist, res.compare_count,
                res.per_position_compares, res.warp_compares)
    blen, bdist = hash_chain_best_matches(arr, fmt.window, fmt.max_match,
                                          max_chain=max_chain,
                                          chunk_size=chunk_size,
                                          slice_size=slice_size)
    return blen, bdist, None, None, None


def _tokenize_arrays(arr: np.ndarray, fmt: TokenFormat,
                     chunk_size: int | None,
                     max_chain: int,
                     collect_detail: bool,
                     slice_size: int | None = None,
                     parse: str = "greedy"):
    """Stages 1–3: matches → parse → per-token (value, nbits) arrays.

    With ``slice_size`` the greedy parse restarts at every slice (the
    CULZSS V1 per-thread boundaries); slices always divide chunks, so
    chunk restarts are implied.

    ``parse="lazy"`` applies one-byte lazy evaluation (the classic
    zlib refinement, one of §VII's "improvements to be made on the
    LZSS algorithm"): a match is deferred in favour of a literal when
    the *next* position holds a strictly longer match.  The rule is
    local, so it stays a vectorized advance-array rewrite.

    ``parse="optimal"`` computes the bit-optimal parse by dynamic
    programming (:func:`repro.lzss.parse.optimal_token_advance`) —
    slower, for when ratio matters more than encode speed.
    """
    if parse not in ("greedy", "lazy", "optimal"):
        raise ValueError(f"unknown parse strategy {parse!r}")
    n = arr.size
    with obs.stage("encode.match", bytes=n, parse=parse):
        blen, bdist, compares, per_pos, warp_cmp = best_matches(
            arr, fmt, chunk_size, max_chain, collect_detail, slice_size)
    with obs.stage("encode.parse", bytes=n, parse=parse):
        matchable = blen >= fmt.min_match
        if parse == "lazy" and n > 1:
            longer_next = np.zeros(n, dtype=bool)
            longer_next[:-1] = blen[1:] > blen[:-1]
            matchable &= ~longer_next
        if parse == "optimal":
            advance = optimal_token_advance(blen, fmt.literal_bits,
                                            fmt.pair_bits, fmt.min_match)
            matchable = advance > 1
        else:
            advance = np.where(matchable, blen, 1).astype(np.int64)
        starts = greedy_token_starts(advance, slice_size or chunk_size)

        tok_len = advance[starts] if parse == "optimal" else blen[starts].astype(np.int64)
        tok_dist = bdist[starts].astype(np.int64)
        is_pair = matchable[starts]

        lit_values = (np.int64(FLAG_LITERAL) << 8) | arr[starts].astype(np.int64)
        pair_values = ((tok_dist - 1) << fmt.length_bits) | (tok_len - fmt.min_match)
        values = np.where(is_pair, pair_values, lit_values)
        nbits = np.where(is_pair, fmt.pair_bits, fmt.literal_bits).astype(np.int64)

    n_pairs = int(is_pair.sum())
    stats = EncodeStats(
        input_size=n,
        output_size=0,  # filled after packing
        n_tokens=int(starts.size),
        n_literals=int(starts.size) - n_pairs,
        n_pairs=n_pairs,
        sum_match_length=int(tok_len[is_pair].sum()),
        total_bits=int(nbits.sum()),
        compare_count=compares,
        per_position_compares=per_pos if collect_detail else None,
        per_warp_compares=warp_cmp if collect_detail else None,
        token_starts=starts if collect_detail else None,
        token_lengths=np.where(is_pair, tok_len, 1) if collect_detail else None,
    )
    return values, nbits, starts, stats


def encode(data, fmt: TokenFormat, max_chain: int = DEFAULT_MAX_CHAIN,
           collect_detail: bool = False,
           parse: str = "greedy") -> EncodeResult:
    """Compress ``data`` into one continuous LZSS bit stream."""
    arr = as_u8(data)
    values, nbits, _starts, stats = _tokenize_arrays(
        arr, fmt, None, max_chain, collect_detail, parse=parse)
    with obs.stage("encode.pack", bytes=arr.size, tokens=int(values.size)):
        payload, total_bits = pack_tokens(values, nbits)
    stats.total_bits = total_bits
    stats.output_size = len(payload)
    return EncodeResult(payload=payload, format=fmt, input_size=arr.size,
                        chunk_sizes=None, chunk_size=None, stats=stats)


def encode_chunked(data, fmt: TokenFormat, chunk_size: int,
                   max_chain: int = DEFAULT_MAX_CHAIN,
                   collect_detail: bool = False,
                   slice_size: int | None = None,
                   parse: str = "greedy") -> EncodeResult:
    """Compress ``data`` as independent fixed-size chunks.

    Every chunk's bit stream is padded to a byte boundary so the
    container can address chunks directly; ``chunk_sizes`` reports the
    per-chunk byte lengths in order.
    """
    arr = as_u8(data)
    n = arr.size
    require_range(chunk_size, 1, 1 << 40, "chunk_size")
    values, nbits, starts, stats = _tokenize_arrays(
        arr, fmt, chunk_size, max_chain, collect_detail, slice_size, parse)

    n_chunks = (n + chunk_size - 1) // chunk_size if n else 0
    if n_chunks == 0:
        return EncodeResult(payload=b"", format=fmt, input_size=0,
                            chunk_sizes=np.zeros(0, dtype=np.int64),
                            chunk_size=chunk_size, stats=stats)

    with obs.stage("encode.pack", bytes=n, tokens=int(values.size),
                   chunks=n_chunks):
        chunk_id = starts // chunk_size
        bits_per_chunk = np.bincount(chunk_id, weights=nbits,
                                     minlength=n_chunks).astype(np.int64)
        pad_bits = (-bits_per_chunk) % 8
        # Inject one zero-valued pad entry at each chunk boundary.  Insert
        # positions are cumulative token counts per chunk.
        tokens_per_chunk = np.bincount(chunk_id, minlength=n_chunks)
        boundaries = np.cumsum(tokens_per_chunk)
        values_all = np.insert(values, boundaries, 0)
        nbits_all = np.insert(nbits, boundaries, pad_bits)

        payload, total_bits = pack_tokens(values_all, nbits_all)
    chunk_bytes = (bits_per_chunk + pad_bits) // 8
    assert int(chunk_bytes.sum()) == len(payload)

    stats.total_bits = total_bits
    stats.output_size = len(payload)
    return EncodeResult(payload=payload, format=fmt, input_size=n,
                        chunk_sizes=chunk_bytes, chunk_size=chunk_size,
                        stats=stats)
