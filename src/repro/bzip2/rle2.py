"""Zero-run encoding (RLE2) with RUNA/RUNB symbols.

BZIP2 never emits literal MTF zeroes: a run of ``r`` zeroes becomes the
bijective-base-2 digits of ``r`` over the two symbols RUNA (=1) and
RUNB (=2), least significant first — ``r = Σ (d_k + 1)·2^k``.
Non-zero MTF values ``v`` shift up by one to make room.  The output
alphabet is therefore 0=RUNA, 1=RUNB, 2..256 = MTF value+1, and the
Huffman stage appends 257 as its end-of-block symbol.

Encoded/decoded vectorized: runs are found by boundary diffing, their
digit expansions computed with a short loop over digit positions
(log₂ of the longest run), and scattered into place.
"""

from __future__ import annotations

import numpy as np

from repro.util.bitio import ragged_arange
from repro.util.buffers import as_u8
from repro.util.validation import require

__all__ = ["RUNA", "RUNB", "ALPHABET_SIZE", "rle2_decode", "rle2_encode"]

RUNA = 0
RUNB = 1
#: 0/1 = RUNA/RUNB, 2..256 = byte+1, 257 = EOB (used by the Huffman stage).
ALPHABET_SIZE = 258


def _run_digit_count(lengths: np.ndarray) -> np.ndarray:
    """Number of bijective-base-2 digits of each run length (≥1)."""
    # r needs d digits where 2^d − 1 < r+1 ≤ 2^(d+1) − 1 ⇒ d = ⌊log2(r+1)⌋
    return np.floor(np.log2(lengths.astype(np.float64) + 1.0)).astype(np.int64)


def rle2_encode(data) -> np.ndarray:
    """MTF byte stream → int16 symbol stream (RUNA/RUNB/shifted values)."""
    arr = as_u8(data)
    n = arr.size
    if n == 0:
        return np.zeros(0, dtype=np.int16)
    boundaries = np.nonzero(arr[1:] != arr[:-1])[0] + 1
    starts = np.concatenate([[0], boundaries]).astype(np.int64)
    ends = np.concatenate([boundaries, [n]]).astype(np.int64)
    lengths = ends - starts
    values = arr[starts]

    is_zero_run = values == 0
    out_lens = np.where(is_zero_run, _run_digit_count(lengths), lengths)
    total = int(out_lens.sum())
    out = np.zeros(total, dtype=np.int16)
    out_start = np.concatenate([[0], np.cumsum(out_lens)[:-1]])

    # Non-zero runs: the value+1, repeated.
    nz = ~is_zero_run
    if np.any(nz):
        pos = np.repeat(out_start[nz], out_lens[nz]) + ragged_arange(out_lens[nz])
        out[pos] = np.repeat(values[nz].astype(np.int16) + 1, out_lens[nz])

    # Zero runs: bijective-base-2 digits, LSD first.
    if np.any(is_zero_run):
        r = lengths[is_zero_run].copy()
        zstart = out_start[is_zero_run]
        digit = 0
        active = np.arange(r.size)
        while active.size:
            d = (r[active] - 1) & 1  # 0 → RUNA, 1 → RUNB
            out[zstart[active] + digit] = d.astype(np.int16)  # RUNA=0, RUNB=1
            r[active] = (r[active] - 1 - d) // 2
            active = active[r[active] > 0]
            digit += 1
    return out


def rle2_decode(symbols: np.ndarray) -> bytes:
    """Inverse of :func:`rle2_encode`."""
    syms = np.asarray(symbols, dtype=np.int64)
    if syms.size == 0:
        return b""
    require(bool((syms >= 0).all() and (syms <= 256).all()),
            "RLE2 symbol out of range")
    is_run_digit = syms <= RUNB
    # Group consecutive run digits: each maximal group encodes one run.
    boundaries = np.nonzero(is_run_digit[1:] != is_run_digit[:-1])[0] + 1
    starts = np.concatenate([[0], boundaries]).astype(np.int64)
    ends = np.concatenate([boundaries, [syms.size]]).astype(np.int64)
    glen = ends - starts
    gdigit = is_run_digit[starts]

    out_lens = np.zeros(starts.size, dtype=np.int64)
    # Literal groups copy through (value − 1 each).
    lit = ~gdigit
    out_lens[lit] = glen[lit]
    # Digit groups: r = Σ (d_k + 1) 2^k, LSD first within the group.
    if np.any(gdigit):
        run_groups = np.nonzero(gdigit)[0]
        for gi in run_groups:  # groups are few (one per zero run)
            digits = syms[starts[gi]:ends[gi]]
            weights = np.int64(1) << np.arange(digits.size, dtype=np.int64)
            out_lens[gi] = int(((digits + 1) * weights).sum())

    total = int(out_lens.sum())
    out = np.zeros(total, dtype=np.uint8)
    out_start = np.concatenate([[0], np.cumsum(out_lens)[:-1]])
    if np.any(lit):
        pos = np.repeat(out_start[lit], glen[lit]) + ragged_arange(glen[lit])
        src = np.repeat(starts[lit], glen[lit]) + ragged_arange(glen[lit])
        out[pos] = (syms[src] - 1).astype(np.uint8)
    # Zero runs: output already zero-initialized.
    return out.tobytes()
