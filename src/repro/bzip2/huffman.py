"""Canonical, length-limited Huffman coding for the RLE2 symbol stream.

Code lengths come from the classic two-queue Huffman construction; if
the deepest code exceeds the 20-bit limit (possible on extremely
skewed RUNA-dominated blocks), frequencies are halved-and-rebuilt until
it fits — the standard practical limiter.  Codes are canonicalized
(shorter first, then by symbol), so the container only ships the
length table.

Encoding is one :func:`repro.util.bitio.pack_tokens` scatter.  Decoding
reuses the package's jump-chain trick: a canonical decode table maps
the next ``max_len`` bits at every bit position to (symbol, length),
the per-position jump table follows, and reachable-set doubling yields
all code boundaries at once.

Simplification vs. real bzip2 (documented in DESIGN.md): one table per
block instead of six switching tables selected per 50-symbol group —
worth a few percent of ratio, nothing else.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.lzss.parse import reachable_from
from repro.util.bitio import pack_tokens, unpack_bits
from repro.util.validation import require

__all__ = [
    "HuffmanCode",
    "MAX_CODE_LEN",
    "huffman_code_lengths",
    "huffman_decode",
    "huffman_encode",
]

MAX_CODE_LEN = 20


def huffman_code_lengths(freqs: np.ndarray,
                         max_len: int = MAX_CODE_LEN) -> np.ndarray:
    """Code length per symbol (0 for absent symbols), depth-limited."""
    freqs = np.asarray(freqs, dtype=np.int64)
    require(bool((freqs >= 0).all()), "negative frequency")
    present = np.nonzero(freqs)[0]
    lengths = np.zeros(freqs.size, dtype=np.int64)
    if present.size == 0:
        return lengths
    if present.size == 1:
        lengths[present[0]] = 1
        return lengths

    work = freqs.copy()
    while True:
        # (weight, tiebreak, symbols-under-this-node)
        heap = [(int(work[s]), int(s), [int(s)]) for s in np.nonzero(work)[0]]
        heapq.heapify(heap)
        depth = np.zeros(freqs.size, dtype=np.int64)
        counter = freqs.size  # unique tiebreaks for merged nodes
        while len(heap) > 1:
            w1, _, s1 = heapq.heappop(heap)
            w2, _, s2 = heapq.heappop(heap)
            for s in s1:
                depth[s] += 1
            for s in s2:
                depth[s] += 1
            heapq.heappush(heap, (w1 + w2, counter, s1 + s2))
            counter += 1
        if int(depth.max()) <= max_len:
            lengths[:] = depth
            return lengths
        # Flatten the distribution and retry — the classic limiter.
        work = np.where(work > 0, (work + 1) // 2, 0)


def canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Canonical code values: shorter codes first, ties by symbol."""
    lengths = np.asarray(lengths, dtype=np.int64)
    codes = np.zeros(lengths.size, dtype=np.int64)
    code = 0
    prev_len = 0
    order = np.lexsort((np.arange(lengths.size), lengths))
    for sym in order:
        ln = int(lengths[sym])
        if ln == 0:
            continue
        code <<= (ln - prev_len)
        codes[sym] = code
        code += 1
        prev_len = ln
    return codes


@dataclass
class HuffmanCode:
    """A canonical code: per-symbol lengths and code values."""

    lengths: np.ndarray
    codes: np.ndarray

    @classmethod
    def from_frequencies(cls, freqs: np.ndarray,
                         max_len: int = MAX_CODE_LEN) -> "HuffmanCode":
        lengths = huffman_code_lengths(freqs, max_len)
        return cls(lengths=lengths, codes=canonical_codes(lengths))

    @classmethod
    def from_lengths(cls, lengths: np.ndarray) -> "HuffmanCode":
        lengths = np.asarray(lengths, dtype=np.int64)
        return cls(lengths=lengths, codes=canonical_codes(lengths))

    @property
    def max_len(self) -> int:
        return int(self.lengths.max(initial=0))


def huffman_encode(symbols: np.ndarray, code: HuffmanCode) -> tuple[bytes, int]:
    """Pack a symbol stream; returns (bytes, total bits)."""
    syms = np.asarray(symbols, dtype=np.int64)
    require(bool((code.lengths[syms] > 0).all()),
            "symbol without a code in the table")
    return pack_tokens(code.codes[syms], code.lengths[syms])


def huffman_decode(payload: bytes, nbits: int, code: HuffmanCode,
                   n_symbols: int) -> np.ndarray:
    """Decode exactly ``n_symbols`` symbols from a packed stream.

    Builds the canonical decode LUT (2^max_len entries), reads a
    max_len-bit window at every bit position, jump-chains code
    boundaries, and gathers the symbols — all vectorized.
    """
    if n_symbols == 0:
        return np.zeros(0, dtype=np.int64)
    ml = code.max_len
    require(ml > 0, "empty code table")
    # LUT: prefix → (symbol, length)
    lut_sym = np.zeros(1 << ml, dtype=np.int64)
    lut_len = np.zeros(1 << ml, dtype=np.int64)
    for sym in np.nonzero(code.lengths)[0]:
        ln = int(code.lengths[sym])
        base = int(code.codes[sym]) << (ml - ln)
        span = 1 << (ml - ln)
        lut_sym[base:base + span] = sym
        lut_len[base:base + span] = ln

    bits = unpack_bits(payload, min(nbits, 8 * len(payload)))
    # Pad so every position can read a full ml-bit window.
    padded = np.concatenate([bits, np.zeros(ml, dtype=np.uint8)])
    npos = bits.size
    require(npos >= 1, "empty Huffman stream")
    # Sliding ml-bit windows at every position: ml shifted adds keep
    # this O(ml·n) with O(n) memory (a gather matrix would be n×ml).
    windows = np.zeros(npos, dtype=np.int64)
    for k in range(ml):
        windows += padded[k:k + npos].astype(np.int64) << (ml - 1 - k)
    step = lut_len[windows]
    # Zero-length steps mark prefixes with no code.  Positions off the
    # decode chain (padding tails) may hold them legally; the chain
    # itself must not land on one — validated after the walk.
    jump = np.arange(npos, dtype=np.int64) + np.maximum(step, 1)
    starts = reachable_from(jump, 0)
    require(starts.size >= n_symbols,
            "corrupt Huffman stream: ran out of bits")
    kept = starts[:n_symbols]
    require(bool((step[kept] > 0).all()),
            "corrupt Huffman stream: unknown prefix")
    return lut_sym[windows[kept]]
