"""Burrows-Wheeler transform over cyclic rotations, plus LCP statistics.

Forward: the rotation order is computed with prefix doubling — ranks
of single bytes, then of (rank, rank-at-offset-2^k) pairs, log n
rounds of ``np.lexsort``.  This is the O(n log² n) algorithm; real
bzip2 uses a depth-limited quicksort whose *work* depends on how long
equal prefixes of rotations are, which is why :func:`adjacent_lcp`
also measures the mean adjacent-rotation LCP — the quantity the BZIP2
timing model consumes (§IV's 77.8 s highly-compressible cell is a pure
LCP effect).

Inverse: LF-mapping as a permutation; the n-step sequential walk is
materialized with the doubling identity
``seq[2^k + j] = P^{2^k}(seq[j])`` in O(n log n) vector work.
"""

from __future__ import annotations

import numpy as np

from repro.util.buffers import as_u8
from repro.util.validation import require, require_range

__all__ = ["adjacent_lcp", "bwt_inverse", "bwt_transform", "rotation_order"]


def rotation_order(arr: np.ndarray) -> np.ndarray:
    """Indices of the lexicographically sorted cyclic rotations."""
    n = arr.size
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    rank = np.unique(arr, return_inverse=True)[1].astype(np.int64)
    k = 1
    idx = np.arange(n, dtype=np.int64)
    while k < n:
        second = rank[(idx + k) % n]
        order = np.lexsort((second, rank))
        # Re-rank: a rotation starts a new rank class when its
        # (rank, second) pair differs from its predecessor's.
        r_o, s_o = rank[order], second[order]
        new_class = np.ones(n, dtype=np.int64)
        new_class[0] = 0
        new_class[1:] = (r_o[1:] != r_o[:-1]) | (s_o[1:] != s_o[:-1])
        new_rank = np.cumsum(new_class)
        rank = np.empty(n, dtype=np.int64)
        rank[order] = new_rank
        if rank.max() == n - 1:
            break
        k <<= 1
    # Periodic inputs never reach distinct ranks (equal rotations);
    # break ties by original index so the order is a permutation.
    return np.lexsort((idx, rank)).astype(np.int64)


def bwt_transform(data) -> tuple[bytes, int]:
    """Return (last column, index of the original rotation)."""
    arr = as_u8(data)
    n = arr.size
    if n == 0:
        return b"", 0
    order = rotation_order(arr)
    last = arr[(order - 1) % n]
    primary = int(np.nonzero(order == 0)[0][0])
    return last.tobytes(), primary


def bwt_inverse(last_column, primary: int) -> bytes:
    """Invert the BWT given the last column and the primary index."""
    bwt = as_u8(last_column)
    n = bwt.size
    if n == 0:
        return b""
    require_range(primary, 0, n - 1, "primary")
    # LF mapping: the stable sort of the last column tells each sorted
    # row which row cyclically precedes it.  The classic walk emits
    # S[t] = L[p_{t+1}] with p_{t+1} = T[p_t], p_0 = primary.
    lf = np.argsort(bwt, kind="stable").astype(np.int64)
    # Materialize the n-step orbit of T from T[primary] by doubling:
    # seq[2^k + j] = P^{2^k}(seq[j]).
    seq = np.array([lf[primary]], dtype=np.int64)
    power = lf
    while seq.size < n:
        take = min(seq.size, n - seq.size)
        seq = np.concatenate([seq, power[seq[:take]]])
        power = power[power]
    return bwt[seq].tobytes()


def adjacent_lcp(arr: np.ndarray, order: np.ndarray,
                 cap: int = 256) -> np.ndarray:
    """LCPs of lexicographically adjacent rotations, capped.

    Computed by direct vectorized extension (all adjacent pairs advance
    one byte per round, modular indexing, at most ``cap`` rounds).  The
    cap loses nothing: the timing model saturates at bzip2's sort-depth
    budget long before 256.
    """
    n = arr.size
    if n < 2:
        return np.zeros(0, dtype=np.int64)
    require(order.size == n, "order/array size mismatch")
    i_pos = order[1:]
    j_pos = order[:-1]
    lcp = np.zeros(n - 1, dtype=np.int64)
    active = np.arange(n - 1)
    for depth in range(cap):
        ia = (i_pos[active] + depth) % n
        ja = (j_pos[active] + depth) % n
        cont = arr[ia] == arr[ja]
        lcp[active[cont]] += 1
        active = active[cont]
        if active.size == 0:
            break
    return lcp
