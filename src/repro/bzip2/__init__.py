"""From-scratch BZIP2-style compressor — the paper's baseline program.

The real bzip2 is RLE → Burrows-Wheeler transform → move-to-front →
zero-run encoding → Huffman, block by block.  This package implements
that exact pipeline (with two documented simplifications: one Huffman
table per block instead of six switching tables, and our own container
framing instead of the bzip2 bitstream), so both its *ratio* column
(Table II) and its *cost structure* — in particular the rotation-sort
blow-up on repetitive data that produces the 77.8 s cell of Table I —
are mechanistically real.

Stage modules are individually reversible and property-tested:

* :mod:`repro.bzip2.rle1` — run-length pre-pass (4 + count encoding);
* :mod:`repro.bzip2.bwt` — cyclic-rotation BWT via prefix doubling,
  with the adjacent-rotation LCP statistics the timing model needs;
* :mod:`repro.bzip2.mtf` — move-to-front (vectorized via the
  last-occurrence formulation);
* :mod:`repro.bzip2.rle2` — RUNA/RUNB bijective-base-2 zero runs;
* :mod:`repro.bzip2.huffman` — canonical, length-limited Huffman;
* :mod:`repro.bzip2.pipeline` — block framing, compress/decompress,
  per-block statistics.
"""

from repro.bzip2.bwt import bwt_transform, bwt_inverse
from repro.bzip2.huffman import (
    HuffmanCode,
    huffman_code_lengths,
    huffman_decode,
    huffman_encode,
)
from repro.bzip2.mtf import mtf_decode, mtf_encode, mtf_encode_reference
from repro.bzip2.pipeline import Bzip2BlockStats, Bzip2Result, compress, decompress
from repro.bzip2.rle1 import rle1_decode, rle1_encode
from repro.bzip2.rle2 import rle2_decode, rle2_encode

__all__ = [
    "Bzip2BlockStats",
    "Bzip2Result",
    "HuffmanCode",
    "bwt_inverse",
    "bwt_transform",
    "compress",
    "decompress",
    "huffman_code_lengths",
    "huffman_decode",
    "huffman_encode",
    "mtf_decode",
    "mtf_encode",
    "mtf_encode_reference",
    "rle1_decode",
    "rle1_encode",
    "rle2_decode",
    "rle2_encode",
]
