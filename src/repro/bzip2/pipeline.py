"""The full BZIP2-style pipeline: block framing, stats, round-trip.

Per block (default 900 000 bytes, bzip2's ``-9``):

    RLE1 → BWT → MTF → RLE2 → Huffman (+ EOB symbol)

Container layout (little-endian)::

    magic  b"RBZ2" | version u8 | reserved u8×3 | block_size u32 |
    n_blocks u32 | original_size u64
    per block:
      orig_len u32 | rle1_len u32 | primary u32 | n_symbols u32 |
      payload_bits u32 | payload_bytes u32 | 258×u8 code lengths |
      payload

:class:`Bzip2BlockStats` records what the timing model needs: the
post-RLE1 size actually sorted (why DE-map stays fast) and the mean
adjacent-rotation LCP (why the repeating-pattern dataset explodes).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.bzip2.bwt import adjacent_lcp, bwt_inverse, rotation_order
from repro.bzip2.huffman import HuffmanCode, huffman_decode, huffman_encode
from repro.bzip2.mtf import mtf_decode, mtf_encode
from repro.bzip2.rle1 import rle1_decode, rle1_encode
from repro.bzip2.rle2 import ALPHABET_SIZE, rle2_decode, rle2_encode
from repro.util.buffers import as_u8
from repro.util.validation import require

__all__ = ["Bzip2BlockStats", "Bzip2Result", "compress", "decompress"]

MAGIC = b"RBZ2"
VERSION = 1
DEFAULT_BLOCK_SIZE = 900_000
EOB = ALPHABET_SIZE - 1  # 257

_HEADER = struct.Struct("<4sB3xIIQ")
_BLOCK_HEADER = struct.Struct("<IIIIII")


@dataclass
class Bzip2BlockStats:
    """Per-block facts the BZIP2 timing model consumes."""

    orig_bytes: int
    rle1_bytes: int
    mean_lcp: float
    n_symbols: int
    payload_bytes: int


@dataclass
class Bzip2Result:
    """Compressed blob plus per-block statistics."""

    blob: bytes
    original_size: int
    block_stats: list[Bzip2BlockStats]

    @property
    def ratio(self) -> float:
        if self.original_size == 0:
            return 1.0
        return len(self.blob) / self.original_size


def _compress_block(block: bytes) -> tuple[bytes, Bzip2BlockStats]:
    rle1 = rle1_encode(block)
    arr = as_u8(rle1)
    order = rotation_order(arr)
    n = arr.size
    last = arr[(order - 1) % n] if n else np.zeros(0, dtype=np.uint8)
    primary = int(np.nonzero(order == 0)[0][0]) if n else 0
    lcp = adjacent_lcp(arr, order)
    mean_lcp = float(lcp.mean()) if lcp.size else 0.0

    mtf = mtf_encode(last.tobytes())
    symbols = rle2_encode(mtf)
    symbols = np.concatenate([symbols.astype(np.int64), [EOB]])
    freqs = np.bincount(symbols, minlength=ALPHABET_SIZE)
    code = HuffmanCode.from_frequencies(freqs)
    payload, nbits = huffman_encode(symbols, code)

    head = _BLOCK_HEADER.pack(len(block), len(rle1), primary,
                              symbols.size, nbits, len(payload))
    table = code.lengths.astype(np.uint8).tobytes()
    stats = Bzip2BlockStats(orig_bytes=len(block), rle1_bytes=len(rle1),
                            mean_lcp=mean_lcp, n_symbols=int(symbols.size),
                            payload_bytes=len(payload))
    return head + table + payload, stats


def compress(data, block_size: int = DEFAULT_BLOCK_SIZE) -> Bzip2Result:
    """Compress ``data`` block by block through the full pipeline."""
    raw = as_u8(data).tobytes()
    n = len(raw)
    n_blocks = (n + block_size - 1) // block_size if n else 0
    parts = [_HEADER.pack(MAGIC, VERSION, block_size, n_blocks, n)]
    stats: list[Bzip2BlockStats] = []
    for b in range(n_blocks):
        blob, st = _compress_block(raw[b * block_size:(b + 1) * block_size])
        parts.append(blob)
        stats.append(st)
    return Bzip2Result(blob=b"".join(parts), original_size=n,
                       block_stats=stats)


def _decompress_block(view: memoryview) -> tuple[bytes, int]:
    (orig_len, rle1_len, primary, n_symbols, nbits,
     payload_bytes) = _BLOCK_HEADER.unpack_from(view, 0)
    off = _BLOCK_HEADER.size
    lengths = np.frombuffer(view[off:off + ALPHABET_SIZE],
                            dtype=np.uint8).astype(np.int64)
    off += ALPHABET_SIZE
    payload = bytes(view[off:off + payload_bytes])
    off += payload_bytes

    code = HuffmanCode.from_lengths(lengths)
    symbols = huffman_decode(payload, nbits, code, n_symbols)
    require(int(symbols[-1]) == EOB, "corrupt block: missing EOB")
    mtf = rle2_decode(symbols[:-1])
    last = mtf_decode(mtf)
    require(len(last) == rle1_len, "corrupt block: BWT size mismatch")
    rle1 = bwt_inverse(last, primary)
    out = rle1_decode(rle1)
    require(len(out) == orig_len, "corrupt block: size mismatch")
    return out, off


def decompress(blob: bytes) -> bytes:
    """Full inverse of :func:`compress`."""
    require(len(blob) >= _HEADER.size, "truncated container")
    magic, version, _block_size, n_blocks, orig_size = _HEADER.unpack_from(blob, 0)
    require(magic == MAGIC, "bad magic")
    require(version == VERSION, f"unsupported version {version}")
    view = memoryview(blob)[_HEADER.size:]
    out = []
    for _ in range(n_blocks):
        block, consumed = _decompress_block(view)
        out.append(block)
        view = view[consumed:]
    result = b"".join(out)
    require(len(result) == orig_size, "container size mismatch")
    return result
