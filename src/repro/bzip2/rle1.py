"""BZIP2's initial run-length pre-pass (RLE1).

Runs of 4–259 identical bytes become the byte four times plus a count
byte (run length − 4); longer runs split.  The pass exists to protect
the rotation sort from degenerate single-character runs — which is
precisely why the paper's DE-map dataset (long raster runs) stays fast
under BZIP2 while the repeating-20-byte-pattern dataset (no
single-char runs for RLE1 to collapse) triggers the sort blow-up.

Both directions are vectorized; the decoder reuses the package's
jump-chain trick (the "4 equal bytes ⇒ next byte is a count" grammar
is a forward jump table, resolved with reachable-set doubling).
"""

from __future__ import annotations

import numpy as np

from repro.lzss.parse import reachable_from
from repro.util.bitio import ragged_arange
from repro.util.buffers import as_u8
from repro.util.validation import require

__all__ = ["rle1_decode", "rle1_encode"]

_MIN_RUN = 4
_MAX_RUN = _MIN_RUN + 255  # 259


def _run_starts_lengths(arr: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Maximal-run decomposition: (start indices, lengths)."""
    n = arr.size
    boundaries = np.nonzero(arr[1:] != arr[:-1])[0] + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [n]])
    return starts.astype(np.int64), (ends - starts).astype(np.int64)


def rle1_encode(data) -> bytes:
    """Collapse runs ≥ 4 into ``vvvv + count`` (count = length − 4)."""
    arr = as_u8(data)
    if arr.size == 0:
        return b""
    starts, lengths, = _run_starts_lengths(arr)
    values = arr[starts]

    # Split runs into segments of ≤ 259 input bytes each.
    n_segs = np.where(lengths < _MIN_RUN, 1, -(-lengths // _MAX_RUN))
    seg_value = np.repeat(values, n_segs)
    seg_idx = ragged_arange(n_segs)
    seg_in = np.minimum(np.repeat(lengths, n_segs) - seg_idx * _MAX_RUN,
                        _MAX_RUN)
    is_counted = seg_in >= _MIN_RUN
    # Output layout per segment: min(seg_in, 4) copies of the value,
    # plus a count byte when the segment is counted.
    head = np.minimum(seg_in, _MIN_RUN)
    seg_out = head + is_counted.astype(np.int64)

    total = int(seg_out.sum())
    out = np.zeros(total, dtype=np.uint8)
    out_start = np.concatenate([[0], np.cumsum(seg_out)[:-1]])
    # Value bytes of every segment…
    vpos = np.repeat(out_start, head) + ragged_arange(head)
    out[vpos] = np.repeat(seg_value, head)
    # …then count bytes for the counted ones.
    cpos = (out_start + head)[is_counted]
    out[cpos] = (seg_in[is_counted] - _MIN_RUN).astype(np.uint8)
    return out.tobytes()


def rle1_decode(data) -> bytes:
    """Inverse of :func:`rle1_encode`."""
    arr = as_u8(data)
    n = arr.size
    if n == 0:
        return b""
    # four_eq[p]: positions p..p+3 hold identical bytes.
    four_eq = np.zeros(n, dtype=bool)
    if n >= _MIN_RUN:
        eq = arr[1:] == arr[:-1]
        four_eq[:n - 3] = eq[:-2] & eq[1:-1] & eq[2:]
    jump = np.where(four_eq, _MIN_RUN + 1, 1) + np.arange(n, dtype=np.int64)
    starts = reachable_from(jump, 0)
    is_run = four_eq[starts]
    require(bool((starts[is_run] + _MIN_RUN < n).all()),
            "corrupt RLE1 stream: run header truncated before count byte")

    counts = np.zeros(starts.size, dtype=np.int64)
    counts[is_run] = arr[starts[is_run] + _MIN_RUN]
    out_len = np.where(is_run, _MIN_RUN + counts, 1)
    total = int(out_len.sum())
    out = np.zeros(total, dtype=np.uint8)
    out_start = np.concatenate([[0], np.cumsum(out_len)[:-1]])
    pos = np.repeat(out_start, out_len) + ragged_arange(out_len)
    out[pos] = np.repeat(arr[starts], out_len)
    return out.tobytes()
