"""Move-to-front coding, vectorized via the last-occurrence formulation.

The MTF rank of position ``i`` (symbol ``c``) equals the number of
symbols whose most recent occurrence lies strictly between ``c``'s
previous occurrence and ``i`` — "how many distinct symbols pushed ``c``
back since it was last used".  Seeding every symbol ``s`` with a
virtual occurrence at position ``−1−s`` reproduces the initial
0,1,…,255 table, so one uniform rule covers first occurrences too:

    rank(i) = #{ s ≠ c : lastocc_s(i) > lastocc_c(i) }

With a 256-symbol alphabet that is 256 vectorized ``searchsorted``
columns, processed in position chunks to bound memory.  The plain
list-shuffling loop (:func:`mtf_encode_reference`) is the executable
specification; the decoder uses the loop (decode appears only in
round-trip paths, never in the hot benchmark direction).
"""

from __future__ import annotations

import numpy as np

from repro.util.buffers import as_u8

__all__ = ["mtf_decode", "mtf_encode", "mtf_encode_reference"]

_CHUNK = 1 << 16


def mtf_encode_reference(data) -> bytes:
    """Specification: explicit table shuffling."""
    table = list(range(256))
    out = bytearray()
    for byte in bytes(as_u8(data).tobytes()):
        rank = table.index(byte)
        out.append(rank)
        del table[rank]
        table.insert(0, byte)
    return bytes(out)


def mtf_encode(data) -> bytes:
    """Vectorized MTF; identical output to the reference."""
    arr = as_u8(data)
    n = arr.size
    if n == 0:
        return b""
    positions = np.arange(n, dtype=np.int64)
    # occ[s]: sorted occurrence positions of s, with the virtual seed.
    occ = [np.concatenate([[-1 - s], positions[arr == s]]) for s in range(256)]

    out = np.zeros(n, dtype=np.uint8)
    for lo in range(0, n, _CHUNK):
        hi = min(lo + _CHUNK, n)
        idx = positions[lo:hi]
        m = idx.size
        # lastocc[s, j]: most recent occurrence of s strictly before idx[j].
        lastocc = np.empty((256, m), dtype=np.int64)
        for s in range(256):
            lastocc[s] = occ[s][np.searchsorted(occ[s], idx, side="left") - 1]
        cur = lastocc[arr[lo:hi], np.arange(m)]
        out[lo:hi] = (lastocc > cur[None, :]).sum(axis=0)
    return out.tobytes()


def mtf_decode(data) -> bytes:
    """Inverse MTF (table-shuffling loop)."""
    table = list(range(256))
    out = bytearray()
    for rank in bytes(as_u8(data).tobytes()):
        byte = table.pop(rank)
        out.append(byte)
        table.insert(0, byte)
    return bytes(out)
