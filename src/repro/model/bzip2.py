"""BZIP2 timing model — driven by measured LCP structure.

bzip2's dominant cost is the rotation sort.  Its depth-limited
quicksort compares rotations byte by byte, so each comparison costs on
the order of the rotations' common prefix length; when prefixes get
long, bzip2 burns its "work factor" budget and falls back to a
guaranteed sort.  The model:

    sort_compares(block) = m · log₂(m) · (1 + min(mean_lcp, LCP_CAP))
    cycles = Σ_blocks sort_compares · c_sort  +  n · LINEAR_CYCLES

where ``m`` is the *post-RLE1* block size and ``mean_lcp`` the measured
mean adjacent-rotation LCP — both from the actual pipeline run.  The
cap is the depth budget; it is why the paper's highly-compressible
dataset costs 77.8 s rather than days.  ``c_sort`` is the one fitted
anchor (Table I, C-files / BZIP2); the per-byte linear term covers
RLE/MTF/Huffman and is an unfitted instruction-count estimate.
"""

from __future__ import annotations

from repro.bzip2.pipeline import Bzip2Result
from repro.model.calibration import CPU_CLOCK_HZ, Calibration

__all__ = ["Bzip2Model", "LCP_CAP", "LINEAR_CYCLES_PER_BYTE", "sort_compares"]

#: Sort depth budget before the fallback path (bzip2's work-factor
#: machinery bounds comparison depth at this order of magnitude).
LCP_CAP = 64.0

#: RLE1 + MTF + RLE2 + Huffman per input byte — a few table lookups and
#: branches per stage (unfitted instruction-count estimate).
LINEAR_CYCLES_PER_BYTE = 30.0


def sort_compares(rle1_bytes: int, mean_lcp: float) -> float:
    """Modeled rotation-sort byte comparisons for one block."""
    import math

    m = max(rle1_bytes, 2)
    return m * math.log2(m) * (1.0 + min(mean_lcp, LCP_CAP))


class Bzip2Model:
    """Modeled i7-920 compression time of the BZIP2 pipeline."""

    def __init__(self, calibration: Calibration) -> None:
        self.cal = calibration

    def compress_seconds(self, result: Bzip2Result) -> float:
        sort_cycles = sum(
            sort_compares(b.rle1_bytes, b.mean_lcp) for b in result.block_stats
        ) * self.cal.bzip2_cycles_per_sort_compare
        linear_cycles = result.original_size * LINEAR_CYCLES_PER_BYTE
        return (sort_cycles + linear_cycles) / CPU_CLOCK_HZ
