"""CPU timing models: serial LZSS, Pthread LZSS, serial decompression.

The serial implementation the paper adapts (Dipperstein's) brute-force
scans the window at every coding step, with two crucial behaviours the
model must carry to reproduce Table I's dataset-to-dataset spread:

* **skip** — matched bytes are jumped over, so the scan count is the
  *token* count, not the byte count (why highly-compressible data is
  ~12× cheaper than C files for the serial coder, Table I);
* **full-window scans** — every step compares against each of the
  ``min(position, 4096)`` window candidates until its first mismatch.
  (Dipperstein's FindMatch can break once an 18-byte match appears,
  but the paper's near-identical serial times across C files and the
  dictionary — datasets with very different match-length tails — are
  only consistent with the scan effectively covering the window; the
  early-exit distribution is still measured and reported, just not
  charged.)

Modeled cost per coding step at window ``W``:

    C(W) = W · (1 + (κ − 1) · EXTENSION_COMPARE_WEIGHT)

The dominant per-candidate cost is the loop itself (index update,
bounds check, first-byte compare); extension bytes beyond the first
run in a tight inner loop and are charged at a quarter of a candidate
each.  κ — the mean byte comparisons per candidate (compare until
first mismatch, capped at the 18-byte lookahead) — is *measured on the
data itself* by :func:`sample_match_statistics`: exact lag scans over
a deterministic sample, with lags importance-sampled out to the full
4096-byte window so run-heavy data (long matches at short lags only)
is priced correctly.  Nothing dataset-specific is assumed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lzss.constants import SERIAL_LOOKAHEAD, SERIAL_WINDOW
from repro.lzss.lagmatch import lag_run_lengths
from repro.lzss.stats import EncodeStats
from repro.model.calibration import CPU_CLOCK_HZ, Calibration
from repro.util.buffers import as_u8
from repro.util.validation import require, require_range

__all__ = [
    "MatchSampleStats",
    "PthreadModel",
    "SerialCpuModel",
    "estimate_serial_compares",
    "expected_scan_length",
    "sample_match_statistics",
]

#: Sample budget: four evenly spaced 64 KiB slices pin κ to well under
#: a percent on every dataset we generate.
SAMPLE_BYTES = 256 * 1024

#: Relative cost of an extension-byte compare versus a fresh candidate
#: (loop overhead + first compare); see module docs.
EXTENSION_COMPARE_WEIGHT = 0.25


def effective_candidate_cost(kappa: float) -> float:
    """Cost units per scanned candidate given the measured κ."""
    return 1.0 + (kappa - 1.0) * EXTENSION_COMPARE_WEIGHT


@dataclass(frozen=True)
class MatchSampleStats:
    """Measured per-candidate search statistics of one dataset.

    ``kappa``: mean byte comparisons per window candidate (compare
    until first mismatch or cap), averaged over the whole 4096-byte
    window via importance-sampled lags.  ``p_cap``: probability that a
    candidate matches all the way to the length cap (Dipperstein's
    early-exit trigger — measured for reporting, not charged; see
    module docs).
    """

    kappa: float
    p_cap: float
    sample_bytes: int


def _sampled_lags(window: int) -> list[tuple[int, float]]:
    """(lag, weight) pairs covering [1, window].

    Short lags — where run structure concentrates — are enumerated
    exhaustively; beyond 64 the lags thin out geometrically and each
    sampled lag stands in (weight) for its neighbourhood.
    """
    out = [(d, 1.0) for d in range(1, min(64, window) + 1)]
    d = 64
    step = 8
    while d < window:
        nxt = min(d + step * 8, window)
        for lag in range(d + step, nxt + 1, step):
            out.append((lag, float(step)))
        d = nxt
        step *= 2
    return out


def sample_match_statistics(data, sample_bytes: int = SAMPLE_BYTES,
                            window: int = SERIAL_WINDOW,
                            cap: int = SERIAL_LOOKAHEAD) -> MatchSampleStats:
    """Measure κ (and p_cap) with exact lag scans over a sample."""
    arr = as_u8(data)
    n = arr.size
    if n <= 3:  # nothing to match; degenerate but valid statistics
        return MatchSampleStats(kappa=1.0, p_cap=1e-9, sample_bytes=n)
    if n <= sample_bytes:
        sample = arr
    else:
        k = 4
        piece = sample_bytes // k
        starts = np.linspace(0, n - piece, k).astype(np.int64)
        sample = np.concatenate([arr[s:s + piece] for s in starts])

    m = sample.size
    compares = 0.0
    capped = 0.0
    candidates = 0.0
    for d, weight in _sampled_lags(min(window, m - 1)):
        runs = lag_run_lengths(sample, d, cap)
        compares += weight * float(np.minimum(runs + 1, cap).sum())
        capped += weight * float((runs >= cap).sum())
        candidates += weight * runs.size
    require(candidates > 0, "sample too small")
    return MatchSampleStats(
        kappa=compares / candidates,
        p_cap=max(capped / candidates, 1e-9),
        sample_bytes=m,
    )


def expected_scan_length(window: np.ndarray | float,
                         p_cap: float) -> np.ndarray | float:
    """E[min(W, Geometric(p_cap))]: candidates scanned before early exit."""
    w = np.asarray(window, dtype=np.float64)
    # Stable for tiny p: use expm1/log1p form of (1-(1-p)^W)/p.
    return -np.expm1(w * np.log1p(-min(p_cap, 1 - 1e-12))) / p_cap


def estimate_serial_compares(stats: EncodeStats, sample: MatchSampleStats,
                             window: int = SERIAL_WINDOW,
                             chunk_size: int | None = None) -> float:
    """Brute-force comparison count of a full serial (or V1-thread) run.

    Needs ``collect_detail=True`` encode stats (token start positions).
    Each coding step scans the ``W_i = min(position, window)``
    candidates available at that position (clipped by the stream or
    chunk start) at κ comparisons each.
    """
    require(stats.token_starts is not None,
            "serial model needs collect_detail=True encode stats")
    require_range(sample.kappa, 0.5, 64.0, "kappa")
    starts = stats.token_starts
    offsets = starts if chunk_size is None else starts % chunk_size
    w_i = np.minimum(offsets, window)
    return float(w_i.sum()) * effective_candidate_cost(sample.kappa)


class SerialCpuModel:
    """Modeled i7-920 times of the serial LZSS implementation."""

    def __init__(self, calibration: Calibration) -> None:
        self.cal = calibration

    def compress_seconds(self, stats: EncodeStats,
                         sample: MatchSampleStats) -> float:
        compares = estimate_serial_compares(stats, sample)
        return compares * self.cal.cpu_cycles_per_compare / CPU_CLOCK_HZ

    def decompress_seconds(self, output_bytes: int, n_tokens: int) -> float:
        """§II.A.2's read-decode-write loop: byte copies + token decode."""
        units = output_bytes + 4.0 * n_tokens
        return units * self.cal.cpu_decomp_cycles_per_unit / CPU_CLOCK_HZ


class PthreadModel:
    """Modeled times of the POSIX-threads chunked implementation."""

    def __init__(self, calibration: Calibration) -> None:
        self.cal = calibration

    def compress_seconds(self, serial_seconds: float,
                         compressed_bytes: int) -> float:
        """Serial work ÷ effective parallelism + reassembly memcpy."""
        parallel = serial_seconds / self.cal.pthread_effective_parallelism
        merge = (compressed_bytes * self.cal.concat_cycles_per_byte
                 / CPU_CLOCK_HZ)
        return parallel + merge
