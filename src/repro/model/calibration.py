"""Calibration constants and their provenance.

Two kinds of numbers live here:

**Unfitted microarchitecture constants** — per-operation costs taken
from spec sheets or first-principles instruction counting, never from
the paper's results.  Changing the datasets or the input size never
changes them.

**Fitted anchors** — one constant per platform/code-path, each fitted
to exactly ONE cell of the published tables (always the C-files row,
the first dataset).  They absorb everything we cannot know about the
authors' exact binaries (compiler flags, constant factors).  The fields
of :class:`Calibration` carry the fitted values; :meth:`Calibration.fit`
re-derives them at benchmark time from an actual C-files measurement
bundle so the fit is reproducible and visible, and EXPERIMENTS.md
records which table cells were anchors versus predictions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["Calibration", "GpuOpCosts", "default_calibration"]

# ---------------------------------------------------------------------------
# Unfitted constants
# ---------------------------------------------------------------------------

#: Paper testbed host clock: Intel Core i7 920 @ 2.67 GHz (§IV.A).
CPU_CLOCK_HZ = 2.67e9


@dataclass(frozen=True)
class GpuOpCosts:
    """Per-operation GPU kernel costs (cycles), from instruction counting.

    One inner-loop byte comparison in the matcher is roughly: two
    address computations, a compare, and a predicated branch → ~3
    issued instructions beyond its two shared-memory loads (counted
    separately through the bank-conflict model).
    """

    cycles_per_compare: float = 3.0
    shared_accesses_per_compare: float = 2.0
    #: Encoding/bookkeeping per emitted token (pack fields, write flag).
    cycles_per_token: float = 24.0
    #: Buffer management per input byte (window shift, head pointers).
    cycles_per_byte: float = 1.5
    #: Useful bytes per 128-byte transaction for V1's scattered
    #: per-thread streaming loads (each lane walks its own 4 KiB chunk,
    #: so a warp touches 32 segments; Fermi's L1 recovers some reuse).
    v1_load_bytes_per_transaction: float = 16.0
    #: L1-cached global access cost used when buffers are NOT kept in
    #: shared memory (the §III.D ablation).  Fermi L1 hit ≈ 18 cycles,
    #: partially overlapped → ~9 exposed.
    global_cached_latency_cycles: float = 9.0
    #: Decompression: per-token decode work (read flag+fields, copy
    #: loop setup) and per-output-byte copy cost in a chunk thread.
    decomp_cycles_per_token: float = 316.0
    decomp_cycles_per_byte: float = 2.0
    #: Decompression streams are read/written sequentially per thread;
    #: L1 line reuse roughly doubles the useful bytes per transaction
    #: versus the compress-side scattered loads.
    decomp_load_bytes_per_transaction: float = 32.0


# ---------------------------------------------------------------------------
# Fitted anchors
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Calibration:
    """Fitted constants.  One anchor table cell each; see module docs.

    Defaults are the values obtained by running :meth:`fit` against the
    shipped synthetic C-files dataset at the default benchmark size;
    they let the models run standalone.  The benchmark harness re-fits
    at run time, so the shipped defaults only matter for ad-hoc use.
    """

    #: Host cycles per byte comparison of the serial brute-force search.
    #: Anchor: Table I, C-files / Serial LZSS = 50.58 s.
    cpu_cycles_per_compare: float = 0.71

    #: Effective parallel speedup of 8 pthreads on the 4C/8T i7 920.
    #: Anchor: Table I, C-files / Pthread LZSS = 9.12 s.
    pthread_effective_parallelism: float = 5.554

    #: Host cycles per rotation-sort byte comparison in BZIP2's BWT.
    #: Anchor: Table I, C-files / BZIP2 = 20.97 s.
    bzip2_cycles_per_sort_compare: float = 1.58

    #: Host cycles per (output byte + 4·token) of serial decompression.
    #: Anchor: Table III, C-files / Serial LZSS = 1.79 s.
    cpu_decomp_cycles_per_unit: float = 15.05

    #: Multiplicative kernel-efficiency factors (instruction-mix and
    #: host-side inefficiencies the stats-level model cannot see), one
    #: per kernel since the two are entirely different code.  Anchors:
    #: Table I, C-files / CULZSS V1 = 7.28 s and C-files / CULZSS V2 =
    #: 4.26 s.  All eight remaining CULZSS Table I cells stay
    #: predictions.
    gpu_kernel_efficiency: float = 0.94
    #: ≈40: the stats-level model cannot see the real V2 kernel's
    #: per-tile __syncthreads barriers and naive index arithmetic; the
    #: anchor absorbs them.  Dataset-to-dataset *ratios* are what the
    #: model predicts.
    gpu_v2_kernel_efficiency: float = 40.1

    #: Host cycles per fixup unit (position scan + token emission) of
    #: V2's serial CPU pass; unfitted estimate from instruction
    #: counting — the pass reads two arrays and writes tokens.
    fixup_cycles_per_position: float = 6.0
    fixup_cycles_per_token: float = 14.0

    #: Host cycles per output byte of the V1 bucket-concatenation pass
    #: ("very little overhead", §III.B.3) — a memcpy.
    concat_cycles_per_byte: float = 0.5

    gpu: GpuOpCosts = GpuOpCosts()

    def with_overrides(self, **kwargs) -> "Calibration":
        return replace(self, **kwargs)


def default_calibration() -> Calibration:
    """The shipped calibration (defaults of :class:`Calibration`)."""
    return Calibration()
