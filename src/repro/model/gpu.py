"""GPU timing model wrappers used by the benchmark harness.

The physics lives in :mod:`repro.core.v1` / :mod:`repro.core.v2` /
:mod:`repro.core.decompress`; these wrappers run a compression at
benchmark scale, produce the modeled GTX-480 profile, and scale the
result linearly to the paper's 128 MB inputs (every term in the
pipeline — kernel cycles, PCIe bytes, CPU post-processing — is linear
in the input size; occupancy and per-transaction effects are
size-independent).
"""

from __future__ import annotations

import numpy as np

from repro.bench.paper import PAPER_INPUT_BYTES
from repro.core.decompress import GpuDecompressor
from repro.core.params import CompressionParams
from repro.core.v1 import V1Compressor
from repro.core.v2 import V2Compressor
from repro.gpusim.profiler import GpuProfile
from repro.lzss.encoder import EncodeResult
from repro.model.calibration import Calibration
from repro.util.validation import require

__all__ = ["GpuCompressModel", "GpuDecompressModel", "scale_to_paper"]


def scale_to_paper(seconds: float, measured_bytes: int,
                   paper_bytes: int = PAPER_INPUT_BYTES) -> float:
    """Linear size extrapolation from benchmark scale to 128 MB."""
    require(measured_bytes > 0, "cannot scale an empty measurement")
    return seconds * (paper_bytes / measured_bytes)


class GpuCompressModel:
    """Run V1 or V2 functionally, return its modeled paper-scale time.

    The V1 cost model additionally needs the dataset's measured search
    statistics (κ, p_cap) — pass ``sample`` for version 1.
    """

    def __init__(self, version: int, calibration: Calibration,
                 params: CompressionParams | None = None) -> None:
        self.cal = calibration
        self.params = params or CompressionParams(version=version)
        require(self.params.version == version, "params/version mismatch")
        self.compressor = (V1Compressor(self.params) if version == 1
                           else V2Compressor(self.params))

    def compress(self, data) -> EncodeResult:
        return self.compressor.compress(data)

    def profile(self, result: EncodeResult, sample=None) -> GpuProfile:
        if self.params.version == 1:
            require(sample is not None, "V1 model needs MatchSampleStats")
            return self.compressor.profile(result, self.cal, sample)
        return self.compressor.profile(result, self.cal)

    def paper_seconds(self, result: EncodeResult, sample=None) -> float:
        prof = self.profile(result, sample)
        return scale_to_paper(prof.total_seconds, result.input_size)


class GpuDecompressModel:
    """Modeled paper-scale time of the chunk-parallel decompression."""

    def __init__(self, calibration: Calibration,
                 params: CompressionParams | None = None) -> None:
        self.cal = calibration
        self.params = params or CompressionParams()
        self.decompressor = GpuDecompressor(self.params)

    def paper_seconds(self, result: EncodeResult) -> float:
        """Model from encode-side stats (per-chunk token counts)."""
        stats = result.stats
        require(stats.token_starts is not None,
                "decompress model needs collect_detail=True encode stats")
        cs = self.params.chunk_size
        n_chunks = (result.input_size + cs - 1) // cs
        per_chunk_tokens = np.bincount(stats.token_starts // cs,
                                       minlength=n_chunks)
        prof = self.decompressor.profile(
            per_chunk_tokens, stats.output_size, result.input_size,
            result.chunk_sizes, self.cal)
        return scale_to_paper(prof.total_seconds, result.input_size)
