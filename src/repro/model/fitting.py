"""Anchor fitting: derive the calibrated constants from C-files runs.

Each fitted constant is pinned by exactly one published cell (always
the C-files column — the first dataset) so every other cell of every
table stays a prediction.  The fit is re-run by the benchmark harness
at table-generation time, making the calibration reproducible from the
code alone; the resulting values are also reflected in
:class:`repro.model.calibration.Calibration`'s shipped defaults.

Anchors:

========================== ============================= ================
constant                    anchor cell                   solve
========================== ============================= ================
cpu_cycles_per_compare      Table I  C-files/Serial       direct ratio
pthread_effective_par.      Table I  C-files/Pthread      direct ratio
bzip2_cycles_per_sort_cmp   Table I  C-files/BZIP2        direct ratio
gpu_kernel_efficiency       Table I  C-files/CULZSS V1    2-point linear
gpu_v2_kernel_efficiency    Table I  C-files/CULZSS V2    2-point linear
cpu_decomp_cycles_per_unit  Table III C-files/Serial      direct ratio
gpu.decomp_cycles_per_token Table III C-files/CULZSS      2-point linear
========================== ============================= ================

The two "2-point linear" solves exploit that the modeled total is an
affine function of the constant being fitted (everything else held
fixed): evaluate at two values, interpolate, clamp to a sane floor.
"""

from __future__ import annotations

from dataclasses import replace

from repro.bench.harness import Artifacts
from repro.bench.paper import PAPER_INPUT_BYTES, TABLE1_SECONDS, TABLE3_SECONDS
from repro.model.bzip2 import LINEAR_CYCLES_PER_BYTE, sort_compares
from repro.model.calibration import CPU_CLOCK_HZ, Calibration
from repro.model.cpu import estimate_serial_compares
from repro.model.gpu import GpuCompressModel, GpuDecompressModel
from repro.util.validation import require

__all__ = ["fit_calibration"]

_ANCHOR_DATASET = "cfiles"


def _affine_solve(f, target: float, x1: float, x2: float,
                  floor: float) -> float:
    """Solve f(x) = target for piecewise-affine f.

    Secant iterations: the modeled totals are affine in the constant
    except where a max() (bandwidth floor, overlap) switches branch;
    a few refinements land on the active branch.
    """
    for _ in range(6):
        y1, y2 = f(x1), f(x2)
        require(abs(y2 - y1) > 1e-12, "fit target insensitive to constant")
        x = max(x1 + (target - y1) * (x2 - x1) / (y2 - y1), floor)
        if abs(f(x) - target) <= 1e-4 * max(target, 1e-9):
            return x
        # bracket the refined estimate for the next pass
        x1, x2 = max(x * 0.9, floor), x * 1.1 + 1e-6
    return x


def fit_calibration(arts: Artifacts,
                    base: Calibration | None = None) -> Calibration:
    """Fit all anchors from the C-files artifacts."""
    require(arts.name == _ANCHOR_DATASET,
            f"calibration anchors come from {_ANCHOR_DATASET!r}")
    cal = base or Calibration()
    scale = PAPER_INPUT_BYTES / arts.size
    t1 = TABLE1_SECONDS[_ANCHOR_DATASET]
    t3 = TABLE3_SECONDS[_ANCHOR_DATASET]

    # --- serial compress: cycles per comparison ----------------------
    compares = estimate_serial_compares(arts.serial.stats, arts.sample) * scale
    cpu_cmp = t1["serial"] * CPU_CLOCK_HZ / compares
    cal = replace(cal, cpu_cycles_per_compare=cpu_cmp)

    # --- pthread: effective parallelism ------------------------------
    merge_s = (arts.serial.stats.output_size * scale
               * cal.concat_cycles_per_byte / CPU_CLOCK_HZ)
    par = t1["serial"] / max(t1["pthread"] - merge_s, 1e-9)
    cal = replace(cal, pthread_effective_parallelism=par)

    # --- bzip2: cycles per rotation-sort comparison -------------------
    sort_cmp = sum(sort_compares(b.rle1_bytes, b.mean_lcp)
                   for b in arts.bzip2.block_stats) * scale
    linear_cycles = arts.bzip2.original_size * scale * LINEAR_CYCLES_PER_BYTE
    c_sort = max((t1["bzip2"] * CPU_CLOCK_HZ - linear_cycles) / sort_cmp, 0.1)
    cal = replace(cal, bzip2_cycles_per_sort_compare=c_sort)

    # --- serial decompress: cycles per output unit --------------------
    units = (arts.size + 4.0 * arts.serial.stats.n_tokens) * scale
    cal = replace(cal, cpu_decomp_cycles_per_unit=t3["serial"]
                  * CPU_CLOCK_HZ / units)

    # --- GPU kernel efficiency (V1 anchor; V2 shares the factor) ------
    def v1_total(eff: float) -> float:
        c = replace(cal, gpu_kernel_efficiency=eff)
        return GpuCompressModel(1, c).paper_seconds(arts.v1, arts.sample)

    eff = _affine_solve(v1_total, t1["culzss_v1"], 0.5, 2.0, floor=0.05)
    cal = replace(cal, gpu_kernel_efficiency=eff)

    # --- V2 kernel efficiency (own anchor: different kernel, and the
    # paper's V2 leaves un-overlapped CPU work the profile cannot see)
    def v2_total(eff2: float) -> float:
        c = replace(cal, gpu_v2_kernel_efficiency=eff2)
        return GpuCompressModel(2, c).paper_seconds(arts.v2)

    eff2 = _affine_solve(v2_total, t1["culzss_v2"], 1.0, 4.0, floor=0.05)
    cal = replace(cal, gpu_v2_kernel_efficiency=eff2)

    # --- GPU decompression: per-token decode cycles -------------------
    def decomp_total(tok_cycles: float) -> float:
        c = replace(cal, gpu=replace(cal.gpu,
                                     decomp_cycles_per_token=tok_cycles))
        return GpuDecompressModel(c).paper_seconds(arts.v1)

    tok = _affine_solve(decomp_total, t3["culzss"], 10.0, 40.0, floor=1.0)
    cal = replace(cal, gpu=replace(cal.gpu, decomp_cycles_per_token=tok))
    return cal
