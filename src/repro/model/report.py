"""Paper-vs-reproduction reporting (feeds EXPERIMENTS.md).

Builds, for every cell of Tables I–III and every Figure 4 bar, the
(reproduction, paper, ratio) triple plus whether the cell was a
calibration anchor, and renders the whole thing as Markdown.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import DatasetRun
from repro.bench.paper import (
    PAPER_DATASET_ORDER,
    PAPER_DATASET_TITLES,
    TABLE1_SECONDS,
    TABLE1_SYSTEMS,
    TABLE2_RATIOS,
    TABLE2_SYSTEMS,
    TABLE3_SECONDS,
    TABLE3_SYSTEMS,
)

__all__ = ["CellReport", "experiments_markdown", "table_reports"]

#: (table, dataset, system) triples pinned by the calibration fit.
ANCHOR_CELLS = {
    ("table1", "cfiles", "serial"),
    ("table1", "cfiles", "pthread"),
    ("table1", "cfiles", "bzip2"),
    ("table1", "cfiles", "culzss_v1"),
    ("table1", "cfiles", "culzss_v2"),
    ("table3", "cfiles", "serial"),
    ("table3", "cfiles", "culzss"),
}


@dataclass
class CellReport:
    """One table cell: reproduction vs paper."""

    table: str
    dataset: str
    system: str
    ours: float
    paper: float
    is_anchor: bool

    @property
    def ratio(self) -> float:
        return self.ours / self.paper if self.paper else float("inf")


def table_reports(runs: dict[str, DatasetRun]) -> list[CellReport]:
    """Every cell of Tables I–III as a :class:`CellReport`."""
    out: list[CellReport] = []
    specs = [
        ("table1", TABLE1_SYSTEMS, TABLE1_SECONDS,
         lambda r, s: r.compress_seconds[s]),
        ("table2", TABLE2_SYSTEMS, TABLE2_RATIOS,
         lambda r, s: r.ratios[s]),
        ("table3", TABLE3_SYSTEMS, TABLE3_SECONDS,
         lambda r, s: r.decompress_seconds[s]),
    ]
    for table, systems, paper, getter in specs:
        for name in PAPER_DATASET_ORDER:
            if name not in runs:
                continue
            for system in systems:
                out.append(CellReport(
                    table=table, dataset=name, system=system,
                    ours=getter(runs[name], system),
                    paper=paper[name][system],
                    is_anchor=(table, name, system) in ANCHOR_CELLS))
    return out


def experiments_markdown(runs: dict[str, DatasetRun]) -> str:
    """Render the paper-vs-reproduction comparison as Markdown."""
    cells = table_reports(runs)
    titles = {"table1": "Table I — compression time (s, 128 MB, modeled)",
              "table2": "Table II — compression ratio (measured)",
              "table3": "Table III — decompression time (s, modeled)"}
    lines: list[str] = []
    for table in ("table1", "table2", "table3"):
        subset = [c for c in cells if c.table == table]
        systems = list(dict.fromkeys(c.system for c in subset))
        lines.append(f"### {titles[table]}\n")
        lines.append("| dataset | " + " | ".join(systems) + " |")
        lines.append("|---" * (len(systems) + 1) + "|")
        for name in PAPER_DATASET_ORDER:
            row = [PAPER_DATASET_TITLES[name]]
            for system in systems:
                cell = next((c for c in subset
                             if c.dataset == name and c.system == system), None)
                if cell is None:
                    row.append("—")
                    continue
                mark = " ⚓" if cell.is_anchor else ""
                row.append(f"{cell.ours:.3g} / {cell.paper:.3g}"
                           f" ({cell.ratio:.2f}×){mark}")
            lines.append("| " + " | ".join(row) + " |")
        lines.append("")
    lines.append("Cells are `reproduction / paper (ratio)`; ⚓ marks the "
                 "calibration anchors (fitted to that exact cell), every "
                 "other cell is a prediction.")
    return "\n".join(lines)
