"""Analytic timing models for the paper's testbed.

Our NumPy implementations are functionally real but their wall-clock is
not comparable to 2011 C/CUDA code, so Tables I/III and Figure 4 are
regenerated from *operation counts*: every compression run reports
exactly how many byte comparisons, tokens, bytes and transactions it
executed, and the models here convert those counts into modeled seconds
on the paper's i7 920 + GTX 480.

Calibration discipline (see :mod:`repro.model.calibration`): each
platform/code path gets exactly one anchor cell, always from the
C-files column of the published tables; every other cell of every table
is a prediction.
"""

from repro.model.calibration import Calibration, default_calibration
from repro.model.cpu import (
    MatchSampleStats,
    PthreadModel,
    SerialCpuModel,
    estimate_serial_compares,
    sample_match_statistics,
)
from repro.model.bzip2 import Bzip2Model


def __getattr__(name: str):
    # GpuCompressModel/GpuDecompressModel wrap repro.core, which itself
    # imports repro.model.calibration — resolve lazily to keep the
    # import graph acyclic.
    if name in ("GpuCompressModel", "GpuDecompressModel"):
        from repro.model import gpu

        return getattr(gpu, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Bzip2Model",
    "Calibration",
    "GpuCompressModel",
    "GpuDecompressModel",
    "PthreadModel",
    "SerialCpuModel",
    "default_calibration",
    "MatchSampleStats",
    "estimate_serial_compares",
    "sample_match_statistics",
]
