"""CULZSS reproduction: LZSS lossless data compression on (simulated) CUDA.

Reproduction of *CULZSS: LZSS Lossless Data Compression on CUDA*
(Ozsoy & Swany, IEEE CLUSTER 2011) as a complete Python system: the
two CULZSS GPU pipelines over a Fermi-class execution simulator, the
serial / Pthread CPU baselines, a from-scratch BZIP2-style pipeline,
the five synthetic datasets, and the benchmark harness that regenerates
every table and figure of the paper's evaluation.

Quick start — the paper's in-memory API (Figure 2)::

    from repro import gpu_compress, gpu_decompress, CompressionParams

    blob = gpu_compress(payload, CompressionParams(version=2))
    assert gpu_decompress(blob.data).data == payload

See README.md for the architecture tour and EXPERIMENTS.md for the
paper-vs-reproduction results.
"""

from repro.core import (
    CompressedBuffer,
    CompressionParams,
    CulzssLibrary,
    DecompressResult,
    GpuDecompressor,
    V1Compressor,
    V2Compressor,
    get_library,
    gpu_compress,
    gpu_decompress,
)
from repro.cpu import PthreadLzss, SerialLzss
from repro.errors import (
    ContainerError,
    CorruptChunkError,
    CorruptHeaderError,
    CorruptPayloadError,
    FrameError,
    ReproError,
    TruncatedContainerError,
    WorkerCrashError,
)
from repro.lzss import CUDA_V1, CUDA_V2, SERIAL, SalvageReport, TokenFormat

__version__ = "1.0.0"

__all__ = [
    "CUDA_V1",
    "CUDA_V2",
    "CompressedBuffer",
    "CompressionParams",
    "ContainerError",
    "CorruptChunkError",
    "CorruptHeaderError",
    "CorruptPayloadError",
    "CulzssLibrary",
    "DecompressResult",
    "FrameError",
    "GpuDecompressor",
    "PthreadLzss",
    "ReproError",
    "SERIAL",
    "SalvageReport",
    "SerialLzss",
    "TokenFormat",
    "TruncatedContainerError",
    "V1Compressor",
    "V2Compressor",
    "WorkerCrashError",
    "__version__",
    "get_library",
    "gpu_compress",
    "gpu_decompress",
]
