"""Shared-memory slab pool: zero-copy frame transport for the gateway.

The PR-1 service fans compression out over a ``ProcessPoolExecutor``,
which pickles every input buffer into the worker and pickles every
payload back — two full serialization passes through a pipe per frame.
This module replaces that transport with ``multiprocessing``
shared-memory slabs: the parent memcpys the frame into a slab, the
worker attaches the slab *by name* (once, cached per process), reads
the input in place, and writes the result payload back into the same
slab; only a tiny ``(flags, length)`` descriptor crosses the pipe.

Slabs are recycled through a free list (:class:`SlabPool`) so a steady
stream of frames allocates shared memory only up to the pipeline's
queue depth, and everything is unlinked on close.  Every entry point
degrades gracefully: a platform without usable shared memory, a frame
larger than a slab, or an exhausted pool all fall back to the pickle
path — callers only ever see ``acquire() -> None``.

The worker-side job functions live here (module level, so they pickle
by reference into the pool) and wrap the service's
``encode_payload`` / ``decode_payload``.
"""

from __future__ import annotations

import threading
from multiprocessing import shared_memory

from repro.util.validation import require, require_range

__all__ = [
    "SlabLease",
    "SlabPool",
    "decode_frame_job",
    "decode_frame_job_obs",
    "encode_frame_job",
    "encode_frame_job_obs",
    "shm_available",
]

#: Default slab capacity.  Frames larger than this use the pickle path.
DEFAULT_SLAB_BYTES = 4 << 20


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to a slab by name without resource-tracker registration.

    Before 3.13 an attach registers the segment as if it were owned, so
    every worker's tracker would try to unlink the parent's slabs (and,
    with a fork-shared tracker, clobber the parent's own registration).
    3.13 grew ``track=False`` for exactly this; older versions get the
    standard workaround of patching ``register`` out for the duration
    of the attach (safe here: attaches are serialized by the caller).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        pass
    from multiprocessing import resource_tracker

    orig = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = orig


def shm_available(probe_bytes: int = 64) -> bool:
    """Can this platform create and attach shared-memory segments?"""
    try:
        seg = shared_memory.SharedMemory(create=True, size=probe_bytes)
    except Exception:
        return False
    try:
        seg.close()
        seg.unlink()
    except Exception:
        pass
    return True


class SlabLease:
    """One checked-out slab: write the frame in, read the result out."""

    __slots__ = ("_pool", "_shm", "released")

    def __init__(self, pool: "SlabPool", shm: shared_memory.SharedMemory) -> None:
        self._pool = pool
        self._shm = shm
        self.released = False

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def capacity(self) -> int:
        return self._shm.size

    def write(self, data: bytes | bytearray | memoryview) -> int:
        """memcpy ``data`` into the slab; returns the byte count."""
        n = len(data)
        require(n <= self._shm.size, "frame exceeds slab capacity")
        self._shm.buf[:n] = bytes(data) if isinstance(data, memoryview) else data
        return n

    def read(self, length: int) -> bytes:
        """Copy ``length`` result bytes out of the slab."""
        require_range(length, 0, self._shm.size, "length")
        return bytes(self._shm.buf[:length])

    def release(self) -> None:
        """Return the slab to the pool; idempotent."""
        if not self.released:
            self.released = True
            self._pool._release(self._shm)


class SlabPool:
    """Fixed-size shared-memory slabs behind a recycling free list.

    ``max_slabs`` bounds total shared memory at ``max_slabs *
    slab_bytes``; slabs are created lazily, so a pipeline that never
    runs deep never pays for the bound.
    """

    def __init__(self, slab_bytes: int = DEFAULT_SLAB_BYTES,
                 max_slabs: int = 8) -> None:
        require_range(slab_bytes, 1, 1 << 40, "slab_bytes")
        require_range(max_slabs, 1, 1 << 16, "max_slabs")
        self.slab_bytes = slab_bytes
        self.max_slabs = max_slabs
        self._lock = threading.Lock()
        self._free: list[shared_memory.SharedMemory] = []
        self._all: list[shared_memory.SharedMemory] = []
        self._closed = False
        # Fail fast on platforms without shared memory: allocate the
        # first slab eagerly so the constructor is the failure point
        # and callers can fall back once instead of per frame.
        first = shared_memory.SharedMemory(create=True, size=slab_bytes)
        self._all.append(first)
        self._free.append(first)

    @property
    def slabs_created(self) -> int:
        return len(self._all)

    @property
    def slabs_free(self) -> int:
        return len(self._free)

    def acquire(self, need_bytes: int) -> SlabLease | None:
        """Check out a slab able to hold ``need_bytes``.

        Returns ``None`` — the caller's cue to use the pickle path —
        when the frame is larger than a slab, the pool is exhausted, or
        the pool is closed.
        """
        if need_bytes > self.slab_bytes:
            return None
        with self._lock:
            if self._closed:
                return None
            if self._free:
                return SlabLease(self, self._free.pop())
            if len(self._all) < self.max_slabs:
                try:
                    shm = shared_memory.SharedMemory(create=True,
                                                     size=self.slab_bytes)
                except Exception:
                    return None
                self._all.append(shm)
                return SlabLease(self, shm)
        return None

    def _release(self, shm: shared_memory.SharedMemory) -> None:
        with self._lock:
            if self._closed:
                return
            self._free.append(shm)

    def close(self) -> None:
        """Unlink every slab; leases outstanding at close are dropped."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            slabs, self._all, self._free = self._all, [], []
        for shm in slabs:
            try:
                shm.close()
                shm.unlink()
            except Exception:  # already gone — nothing to leak
                pass

    def __enter__(self) -> "SlabPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ------------------------------------------------------- worker side

#: Slab attachments are cached per process: one ``shm_open`` per slab
#: per worker for the life of the pool, not one per frame.
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}
_ATTACH_LOCK = threading.Lock()


def _attach(name: str) -> shared_memory.SharedMemory:
    with _ATTACH_LOCK:
        shm = _ATTACHED.get(name)
        if shm is None:
            shm = _attach_untracked(name)
            _ATTACHED[name] = shm
        return shm


def encode_frame_job(slab_name: str, length: int,
                     version: int, codec: str = "lzss",
                     probe_threshold: float | None = None,
                     ) -> tuple[int, int | bytes]:
    """Pool-worker job: compress the frame sitting in a slab.

    Reads ``length`` input bytes from the slab, compresses them through
    the service codec, and writes the payload back over the slab (the
    payload never exceeds the input thanks to the raw-passthrough
    guard).  Returns ``(flags, payload_length)``; if the payload
    unexpectedly cannot fit the slab it is returned by value instead —
    ``(flags, payload_bytes)`` — and the transport degrades to pickle
    for that frame only.  ``codec``/``probe_threshold`` parameterize
    the stock encode (see :func:`repro.service.pipeline.encode_payload`).
    """
    from repro.service.pipeline import encode_payload

    shm = _attach(slab_name)
    data = bytes(shm.buf[:length])
    flags, payload = encode_payload(data, version, codec=codec,
                                    probe_threshold=probe_threshold)
    if len(payload) > shm.size:  # pragma: no cover - guarded by raw path
        return flags, payload
    shm.buf[:len(payload)] = payload
    return flags, len(payload)


def decode_frame_job(slab_name: str, length: int,
                     flags: int) -> int | bytes:
    """Pool-worker job: decompress the frame payload sitting in a slab.

    Returns the output length after writing the decoded bytes back into
    the slab, or the decoded bytes by value when they exceed the slab
    (decompression can expand past the slab size).
    """
    from repro.service.pipeline import decode_payload

    shm = _attach(slab_name)
    payload = bytes(shm.buf[:length])
    data = decode_payload(flags, payload)
    if len(data) > shm.size:
        return data
    shm.buf[:len(data)] = data
    return len(data)


# Observability-carrying variants.  The plain jobs above keep their
# historical signatures (tests and custom executors call them
# directly); the pipeline submits these when obs is enabled, so each
# job ships the worker process's metric/span delta home with its
# result and spans join the frame's trace id from the wire.

def encode_frame_job_obs(slab_name: str, length: int, version: int,
                         trace_id: int = 0, codec: str = "lzss",
                         probe_threshold: float | None = None,
                         ) -> tuple[int, int | bytes, dict]:
    """:func:`encode_frame_job` + ``(…, obs delta)`` under ``trace_id``."""
    from repro import obs
    from repro.service.pipeline import encode_payload

    shm = _attach(slab_name)
    data = bytes(shm.buf[:length])
    flags, payload = encode_payload(data, version, trace_id=trace_id,
                                    codec=codec,
                                    probe_threshold=probe_threshold)
    if len(payload) > shm.size:  # pragma: no cover - guarded by raw path
        return flags, payload, obs.delta()
    shm.buf[:len(payload)] = payload
    return flags, len(payload), obs.delta()


def decode_frame_job_obs(slab_name: str, length: int, flags: int,
                         trace_id: int = 0) -> tuple[int | bytes, dict]:
    """:func:`decode_frame_job` + ``(…, obs delta)`` under ``trace_id``."""
    from repro import obs
    from repro.service.pipeline import decode_payload

    shm = _attach(slab_name)
    payload = bytes(shm.buf[:length])
    data = decode_payload(flags, payload, trace_id=trace_id)
    if len(data) > shm.size:
        return data, obs.delta()
    shm.buf[:len(data)] = data
    return len(data), obs.delta()
