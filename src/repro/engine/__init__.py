"""Multicore compression engine: parallel chunk codec + zero-copy transport.

Two independent capabilities, both in service of the ROADMAP's "as fast
as the hardware allows":

* :mod:`repro.engine.parallel` — :class:`ParallelEngine`, a persistent
  thread-pool codec that shards one buffer's chunked encode/decode
  across cores and merges the result **byte-identically** to the serial
  path (the in-memory API's ``workers=`` parameter).
* :mod:`repro.engine.shm` — :class:`SlabPool`, recycling
  shared-memory slabs that carry gateway frames into and out of the
  service's process pool without pickling the payload either direction,
  with a transparent pickle fallback.
"""

from repro.engine.parallel import (
    ParallelEngine,
    get_engine,
    merge_encode_results,
    shard_chunk_runs,
    shutdown_default_engines,
)
from repro.engine.shm import (
    SlabLease,
    SlabPool,
    decode_frame_job,
    encode_frame_job,
    shm_available,
)

__all__ = [
    "ParallelEngine",
    "SlabLease",
    "SlabPool",
    "decode_frame_job",
    "encode_frame_job",
    "get_engine",
    "merge_encode_results",
    "shard_chunk_runs",
    "shm_available",
    "shutdown_default_engines",
]
