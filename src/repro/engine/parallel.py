"""Multicore chunked codec: one buffer, all cores, byte-identical output.

The paper's premise is that LZSS over independent chunks is
embarrassingly parallel — CULZSS gives every chunk (V1) or every
position (V2) a GPU thread.  On the CPU we already exploit that shape
*between* buffers (the service's process-pool fan-out) but a single
``gpu_compress`` call ran its whole match → parse → tokenize → pack
pipeline on one core.  :class:`ParallelEngine` shards the chunk
sequence across a persistent thread pool — NumPy releases the GIL
inside the vector kernels, exactly as :class:`repro.cpu.PthreadLzss`
demonstrates — and merges the per-shard token streams and chunk tables
into an :class:`~repro.lzss.encoder.EncodeResult` that is
**byte-identical** to the serial :func:`~repro.lzss.encoder.encode_chunked`.

Byte-identity holds because every stage is chunk-local: matches never
cross chunk boundaries (the lag matcher zeroes window prefixes, the
hash chain keys its buckets by chunk id), the greedy/lazy/optimal parse
restarts at every chunk, and each chunk's bit stream is padded to a
byte boundary.  Shards are always chunk-aligned runs, so sharding can
only regroup work, never change it — asserted property-style in
``tests/engine/test_parallel.py``.

Decode shards the same way: chunk streams are mutually independent
(§III.C), so each worker decodes a run of chunks into its slice of the
output.
"""

from __future__ import annotations

import atexit
import os
import threading
from collections import defaultdict
from concurrent.futures import BrokenExecutor, Executor, ThreadPoolExecutor
from time import perf_counter

import numpy as np

from repro import obs
from repro.codecs.dispatch import (
    decode_chunked_multi as _decode_multi_serial,
    encode_chunked_auto as _encode_auto_serial,
    salvage_decode_chunked_multi as _salvage_multi_serial,
)
from repro.errors import WorkerCrashError
from repro.obs import log as obslog
from repro.obs import trace
from repro.lzss.decoder import (
    SalvageReport,
    decode_chunked_with_stats as _decode_serial,
    salvage_decode_chunked as _salvage_serial,
)
from repro.lzss.encoder import (
    DEFAULT_MAX_CHAIN,
    EncodeResult,
    encode_chunked as _encode_serial,
)
from repro.lzss.formats import TokenFormat
from repro.lzss.stats import EncodeStats
from repro.util.buffers import as_u8
from repro.util.validation import require, require_range

__all__ = ["ParallelEngine", "get_engine", "merge_encode_results",
           "shard_chunk_runs", "shutdown_default_engines"]

#: Below this many input bytes the fork/join overhead outweighs the
#: parallel win; the engine falls through to the serial codec.
MIN_PARALLEL_BYTES = 1 << 17

#: A shard failing with one of these means the *worker* died, not the
#: work: ``BrokenExecutor`` covers ``BrokenProcessPool``/
#: ``BrokenThreadPool`` (and injected crashes), ``WorkerCrashError``
#: the fault-injection harness.  Anything else propagates unchanged.
_CRASH_ERRORS = (BrokenExecutor, WorkerCrashError)


def _shard_bytes(args) -> int | None:
    """Ledger size of a shard call: the leading buffer argument's bytes.

    Every shard job (encode slice, decode slice) takes its data buffer
    first; anything without one simply stays out of the byte ledger.
    """
    if not args:
        return None
    first = args[0]
    nbytes = getattr(first, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(first, (bytes, bytearray, memoryview)):
        return len(first)
    return None


def shard_chunk_runs(n: int, chunk_size: int, shards: int) -> list[tuple[int, int]]:
    """Split ``[0, n)`` into ≤ ``shards`` chunk-aligned byte runs.

    Every boundary is a multiple of ``chunk_size`` (the invariant that
    makes sharding invisible to the codec); chunk counts per shard
    differ by at most one.
    """
    require_range(chunk_size, 1, 1 << 40, "chunk_size")
    n_chunks = (n + chunk_size - 1) // chunk_size
    shards = max(1, min(shards, n_chunks))
    if n_chunks == 0:
        return [(0, 0)]
    base, extra = divmod(n_chunks, shards)
    bounds: list[tuple[int, int]] = []
    lo_chunk = 0
    for s in range(shards):
        hi_chunk = lo_chunk + base + (1 if s < extra else 0)
        bounds.append((lo_chunk * chunk_size, min(hi_chunk * chunk_size, n)))
        lo_chunk = hi_chunk
    return bounds


def _concat_detail(parts: list[np.ndarray | None],
                   offsets: list[int] | None = None) -> np.ndarray | None:
    """Concatenate optional per-shard detail arrays (None-propagating).

    ``offsets`` rebases position-indexed arrays (token starts) into the
    full-buffer coordinate space.
    """
    if any(p is None for p in parts):
        return None
    if offsets is None:
        return np.concatenate(parts)
    return np.concatenate([p + off for p, off in zip(parts, offsets)])


def merge_encode_results(parts: list[EncodeResult], fmt: TokenFormat,
                         chunk_size: int, input_size: int) -> EncodeResult:
    """Reassemble per-shard chunked encodes into one result.

    The inverse of :func:`shard_chunk_runs`: payloads and chunk tables
    concatenate in shard order, counters sum, and the detail arrays the
    GPU cost models consume (per-position compares, per-warp lockstep
    compares, token starts/lengths) concatenate with position rebasing
    where needed.
    """
    require(len(parts) > 0, "nothing to merge")
    payload = b"".join(p.payload for p in parts)
    chunk_sizes = np.concatenate(
        [np.asarray(p.chunk_sizes, dtype=np.int64) for p in parts])

    offsets = []
    off = 0
    for p in parts:
        offsets.append(off)
        off += p.input_size

    stats_parts = [p.stats for p in parts]
    compare_counts = [s.compare_count for s in stats_parts]
    stats = EncodeStats(
        input_size=input_size,
        output_size=len(payload),
        n_tokens=sum(s.n_tokens for s in stats_parts),
        n_literals=sum(s.n_literals for s in stats_parts),
        n_pairs=sum(s.n_pairs for s in stats_parts),
        sum_match_length=sum(s.sum_match_length for s in stats_parts),
        total_bits=sum(s.total_bits for s in stats_parts),
        compare_count=(None if any(c is None for c in compare_counts)
                       else sum(compare_counts)),
        per_position_compares=_concat_detail(
            [s.per_position_compares for s in stats_parts]),
        per_warp_compares=_concat_detail(
            [s.per_warp_compares for s in stats_parts]),
        token_starts=_concat_detail(
            [s.token_starts for s in stats_parts], offsets),
        token_lengths=_concat_detail(
            [s.token_lengths for s in stats_parts]),
    )
    return EncodeResult(payload=payload, format=fmt, input_size=input_size,
                        chunk_sizes=chunk_sizes, chunk_size=chunk_size,
                        stats=stats,
                        chunk_codecs=_concat_detail(
                            [p.chunk_codecs for p in parts]))


class ParallelEngine:
    """Persistent thread-pool codec over chunk-aligned shards.

    One engine owns one :class:`ThreadPoolExecutor`, created lazily on
    first use and reused for every subsequent call — the pool-churn that
    made per-call parallelism a wash on small buffers is paid once.
    Close explicitly (or use it as a context manager); the process-wide
    engines from :func:`get_engine` are closed atexit.

    Worker death is survivable: a shard whose future fails with a
    broken-pool error is re-run serially in the caller's thread (output
    stays byte-identical — shards are independent) and the pool is
    rebuilt for subsequent calls.  Incidents are counted in
    :attr:`counters` as ``worker_crashes`` and ``serial_fallbacks``.
    ``executor_factory`` exists for exactly that failure path: the
    fault-injection harness substitutes a crash-on-Nth-call executor.
    """

    def __init__(self, workers: int | None = None,
                 min_parallel_bytes: int = MIN_PARALLEL_BYTES,
                 executor_factory=None) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        require_range(workers, 1, 1024, "workers")
        self.workers = workers
        self.min_parallel_bytes = min_parallel_bytes
        self._executor_factory = executor_factory
        self._pool: Executor | None = None
        self._lock = threading.Lock()
        self._closed = False
        self.counters: dict[str, int] = defaultdict(int)

    # ---------------------------------------------------------- plumbing

    def _make_pool(self) -> Executor:
        if self._executor_factory is not None:
            return self._executor_factory()
        return ThreadPoolExecutor(max_workers=self.workers,
                                  thread_name_prefix="repro-engine")

    def _get_pool(self) -> Executor:
        with self._lock:
            require(not self._closed, "engine is closed")
            if self._pool is None:
                self._pool = self._make_pool()
            return self._pool

    def _note_crash(self, broken: Executor) -> None:
        """Record a worker death and retire the broken pool.

        The next :meth:`_get_pool` builds a fresh pool, so one crash
        costs one rebuild — not a rebuild per failed shard: every
        pending future on the same broken pool fails into the serial
        path without touching the replacement.
        """
        self.counters["worker_crashes"] += 1
        obs.inc("engine.worker_crashes")
        obslog.event("engine", "worker_crash", workers=self.workers)
        with self._lock:
            if self._pool is broken:
                self._pool = None
        try:
            broken.shutdown(wait=False)
        except Exception:
            pass

    def _run_shards(self, pool: Executor, calls: list) -> list:
        """Submit ``(fn, args, kwargs)`` per shard; fall back serially.

        Returns per-shard results in order.  A shard lost to a worker
        crash — at submit time or at result time — is recomputed inline
        (``serial_fallbacks``); shards are independent so the merged
        result is unchanged.
        """
        instrumented = obs.enabled()
        if instrumented:
            obs.inc("engine.shards", len(calls))
            # Contextvars do not cross thread-pool boundaries on their
            # own: capture the submitter's span context once and attach
            # it inside every worker, so shard spans parent correctly.
            ctx = trace.current()
            submit_t = perf_counter()

            def _instrument(fn, args, kwargs, idx):
                def run():
                    with trace.attach(ctx):
                        obs.observe("engine.queue_wait_seconds",
                                    perf_counter() - submit_t)
                        with obs.stage("engine.shard", shard=idx,
                                       bytes=_shard_bytes(args)):
                            return fn(*args, **kwargs)
                return run

            submits = [(_instrument(fn, args, kwargs, i), (), {})
                       for i, (fn, args, kwargs) in enumerate(calls)]
        else:
            submits = calls

        futures = []
        for fn, args, kwargs in submits:
            try:
                futures.append(pool.submit(fn, *args, **kwargs))
            except _CRASH_ERRORS:
                futures.append(None)
        results = []
        crashed = False
        for i, ((fn, args, kwargs), fut) in enumerate(zip(calls, futures)):
            res = None
            if fut is not None:
                try:
                    res = fut.result()
                except _CRASH_ERRORS:
                    res = None
            if res is None:
                if not crashed:
                    crashed = True
                    self._note_crash(pool)
                self.counters["serial_fallbacks"] += 1
                obs.inc("engine.serial_fallbacks")
                obslog.event("engine", "serial_fallback", shard=i)
                with obs.stage("engine.shard", shard=i, fallback=True,
                               bytes=_shard_bytes(args)):
                    res = fn(*args, **kwargs)
            results.append(res)
        return results

    def close(self) -> None:
        """Shut the pool down; idempotent."""
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _shards(self, n: int, chunk_size: int) -> list[tuple[int, int]]:
        if (self.workers <= 1 or n < self.min_parallel_bytes
                or n <= chunk_size):
            return [(0, n)]
        return shard_chunk_runs(n, chunk_size, self.workers)

    # ------------------------------------------------------------- codec

    def encode_chunked(self, data, fmt: TokenFormat, chunk_size: int,
                       max_chain: int = DEFAULT_MAX_CHAIN,
                       collect_detail: bool = False,
                       slice_size: int | None = None,
                       parse: str = "greedy") -> EncodeResult:
        """Parallel drop-in for :func:`repro.lzss.encoder.encode_chunked`.

        Output containers are byte-identical to the serial path for any
        worker count.  Per-warp detail collection needs warp-aligned
        shard boundaries, so ``collect_detail`` with a chunk size that
        is not a multiple of 32 falls back to the serial codec.
        """
        arr = as_u8(data)
        n = arr.size
        bounds = self._shards(n, chunk_size)
        if collect_detail and chunk_size % 32:
            bounds = [(0, n)]  # warp rows would straddle shard seams
        if len(bounds) <= 1:
            return _encode_serial(arr, fmt, chunk_size, max_chain=max_chain,
                                  collect_detail=collect_detail,
                                  slice_size=slice_size, parse=parse)
        pool = self._get_pool()
        calls = [(_encode_serial, (arr[lo:hi], fmt, chunk_size),
                  dict(max_chain=max_chain, collect_detail=collect_detail,
                       slice_size=slice_size, parse=parse))
                 for lo, hi in bounds]
        parts = self._run_shards(pool, calls)
        return merge_encode_results(parts, fmt, chunk_size, n)

    def encode_chunked_auto(self, data, fmt: TokenFormat, chunk_size: int, *,
                            codec: str = "auto",
                            max_chain: int = DEFAULT_MAX_CHAIN,
                            probe_threshold: float | None = None
                            ) -> EncodeResult:
        """Parallel drop-in for :func:`repro.codecs.encode_chunked_auto`.

        Codec choices are chunk-local statistics, so sharding cannot
        change them; sharded output is byte-identical to serial.
        """
        arr = as_u8(data)
        n = arr.size
        bounds = self._shards(n, chunk_size)
        if len(bounds) <= 1:
            return _encode_auto_serial(arr, fmt, chunk_size, codec=codec,
                                       max_chain=max_chain,
                                       probe_threshold=probe_threshold)
        pool = self._get_pool()
        calls = [(_encode_auto_serial, (arr[lo:hi], fmt, chunk_size),
                  dict(codec=codec, max_chain=max_chain,
                       probe_threshold=probe_threshold))
                 for lo, hi in bounds]
        parts = self._run_shards(pool, calls)
        return merge_encode_results(parts, fmt, chunk_size, n)

    def decode_chunked_with_stats(self, payload, fmt: TokenFormat,
                                  chunk_sizes: np.ndarray, chunk_size: int,
                                  output_size: int, *,
                                  chunk_crcs: np.ndarray | None = None,
                                  chunk_codecs: np.ndarray | None = None,
                                  ) -> tuple[bytes, np.ndarray]:
        """Parallel drop-in for
        :func:`repro.lzss.decoder.decode_chunked_with_stats` (and, with
        ``chunk_codecs``, :func:`repro.codecs.decode_chunked_multi`)."""
        arr = as_u8(payload)
        chunk_sizes = np.asarray(chunk_sizes, dtype=np.int64)
        bounds = self._shards(output_size, chunk_size)
        if len(bounds) <= 1:
            if chunk_codecs is not None:
                return _decode_multi_serial(arr, fmt, chunk_sizes, chunk_size,
                                            output_size, chunk_codecs,
                                            chunk_crcs=chunk_crcs)
            return _decode_serial(arr, fmt, chunk_sizes, chunk_size,
                                  output_size, chunk_crcs=chunk_crcs)
        require(int(chunk_sizes.sum()) == arr.size,
                "chunk size table does not cover the payload")
        payload_offsets = np.concatenate([[0], np.cumsum(chunk_sizes)])

        def work(lo: int, hi: int) -> tuple[bytes, np.ndarray]:
            c0, c1 = lo // chunk_size, (hi + chunk_size - 1) // chunk_size
            piece = arr[payload_offsets[c0]:payload_offsets[c1]]
            crcs = chunk_crcs[c0:c1] if chunk_crcs is not None else None
            if chunk_codecs is not None:
                return _decode_multi_serial(piece, fmt, chunk_sizes[c0:c1],
                                            chunk_size, hi - lo,
                                            chunk_codecs[c0:c1],
                                            chunk_crcs=crcs, first_chunk=c0)
            return _decode_serial(piece, fmt, chunk_sizes[c0:c1], chunk_size,
                                  hi - lo, chunk_crcs=crcs, first_chunk=c0)

        pool = self._get_pool()
        parts = self._run_shards(pool, [(work, (lo, hi), {})
                                        for lo, hi in bounds])
        out = b"".join(p[0] for p in parts)
        tokens = np.concatenate([p[1] for p in parts])
        return out, tokens

    def salvage_decode_chunked(self, payload, fmt: TokenFormat,
                               chunk_sizes: np.ndarray, chunk_size: int,
                               output_size: int, *,
                               chunk_crcs: np.ndarray | None = None,
                               chunk_codecs: np.ndarray | None = None,
                               fill_byte: int = 0,
                               ) -> tuple[bytes, np.ndarray, SalvageReport]:
        """Parallel drop-in for
        :func:`repro.lzss.decoder.salvage_decode_chunked` (and, with
        ``chunk_codecs``, :func:`repro.codecs.salvage_decode_chunked_multi`).

        Chunks are independent, so salvage shards like a normal decode;
        per-shard reports merge into one (indices and byte ranges are
        rebased into full-buffer coordinates).
        """
        arr = as_u8(payload)
        chunk_sizes = np.asarray(chunk_sizes, dtype=np.int64)
        bounds = self._shards(output_size, chunk_size)
        if len(bounds) <= 1:
            if chunk_codecs is not None:
                return _salvage_multi_serial(arr, fmt, chunk_sizes,
                                             chunk_size, output_size,
                                             chunk_codecs,
                                             chunk_crcs=chunk_crcs,
                                             fill_byte=fill_byte)
            return _salvage_serial(arr, fmt, chunk_sizes, chunk_size,
                                   output_size, chunk_crcs=chunk_crcs,
                                   fill_byte=fill_byte)
        payload_offsets = np.concatenate([[0], np.cumsum(chunk_sizes)])

        def work(lo: int, hi: int):
            c0, c1 = lo // chunk_size, (hi + chunk_size - 1) // chunk_size
            # Slices clamp at the (possibly truncated) payload end; the
            # serial salvage marks the chunks that ran past it as lost.
            piece = arr[min(payload_offsets[c0], arr.size):
                        min(payload_offsets[c1], arr.size)]
            crcs = chunk_crcs[c0:c1] if chunk_crcs is not None else None
            if chunk_codecs is not None:
                return _salvage_multi_serial(piece, fmt, chunk_sizes[c0:c1],
                                             chunk_size, hi - lo,
                                             chunk_codecs[c0:c1],
                                             chunk_crcs=crcs,
                                             fill_byte=fill_byte,
                                             first_chunk=c0)
            return _salvage_serial(piece, fmt, chunk_sizes[c0:c1],
                                   chunk_size, hi - lo, chunk_crcs=crcs,
                                   fill_byte=fill_byte, first_chunk=c0)

        pool = self._get_pool()
        parts = self._run_shards(pool, [(work, (lo, hi), {})
                                        for lo, hi in bounds])
        out = b"".join(p[0] for p in parts)
        tokens = np.concatenate([p[1] for p in parts])
        report = SalvageReport(n_chunks=int(chunk_sizes.size),
                               fill_byte=fill_byte)
        for (lo, _hi), (_o, _t, part) in zip(bounds, parts):
            report.recovered.extend(part.recovered)
            report.lost.extend(part.lost)
            report.unknown_codec.extend(part.unknown_codec)
            report.lost_ranges.extend((lo + a, lo + b)
                                      for a, b in part.lost_ranges)
        return out, tokens, report

    def decode_chunked(self, payload, fmt: TokenFormat,
                       chunk_sizes: np.ndarray, chunk_size: int,
                       output_size: int) -> bytes:
        out, _tokens = self.decode_chunked_with_stats(
            payload, fmt, chunk_sizes, chunk_size, output_size)
        return out


# ------------------------------------------------------- default engines

_DEFAULT_ENGINES: dict[int, ParallelEngine] = {}
_DEFAULT_LOCK = threading.Lock()


def get_engine(workers: int | None = None) -> ParallelEngine:
    """Process-wide shared engine for ``workers`` threads.

    Engines are cached per worker count so repeated ``gpu_compress(...,
    workers=4)`` calls reuse one pool; all cached engines are shut down
    atexit (or explicitly via :func:`shutdown_default_engines`).
    """
    if workers is None:
        workers = os.cpu_count() or 1
    with _DEFAULT_LOCK:
        engine = _DEFAULT_ENGINES.get(workers)
        if engine is None:
            engine = _DEFAULT_ENGINES[workers] = ParallelEngine(workers)
        return engine


def shutdown_default_engines() -> None:
    """Close every engine :func:`get_engine` has handed out."""
    with _DEFAULT_LOCK:
        engines = list(_DEFAULT_ENGINES.values())
        _DEFAULT_ENGINES.clear()
    for engine in engines:
        engine.close()


atexit.register(shutdown_default_engines)
