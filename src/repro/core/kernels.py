"""Shared cost-construction helpers for the CULZSS kernels.

Both kernel cost models reduce exact per-position / per-chunk work
arrays into per-warp lockstep maxima and per-block totals; the
vectorized reductions live here so V1 and V2 stay readable.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.gpusim.memory import expected_random_conflict_degree

__all__ = [
    "per_block_sums",
    "v1_conflict_degree",
    "warp_max_sums",
]


def warp_max_sums(lane_values: np.ndarray, lanes_per_group: int,
                  warp_size: int = 32) -> np.ndarray:
    """Per-group sum of per-warp maxima.

    ``lane_values`` is one value per lane, lanes grouped into
    consecutive groups of ``lanes_per_group`` (a thread block's lanes,
    or a chunk's positions).  Within each group, lanes form warps of
    ``warp_size`` consecutive entries; each warp costs its max; the
    group costs the sum of its warps.  Returns one value per group.

    This is the vectorized form of
    :func:`repro.gpusim.kernel.warp_lockstep_cycles` applied to many
    groups at once.
    """
    vals = np.asarray(lane_values, dtype=np.float64)
    if lanes_per_group % warp_size:
        raise ValueError("lanes_per_group must be a multiple of warp_size")
    pad = (-vals.size) % lanes_per_group
    if pad:
        vals = np.concatenate([vals, np.zeros(pad)])
    n_groups = vals.size // lanes_per_group
    per_warp = vals.reshape(-1, warp_size).max(axis=1)
    warps_per_group = lanes_per_group // warp_size
    return per_warp.reshape(n_groups, warps_per_group).sum(axis=1)


def per_block_sums(values: np.ndarray, items_per_block: int) -> np.ndarray:
    """Sum consecutive runs of ``items_per_block`` entries (zero-padded)."""
    vals = np.asarray(values, dtype=np.float64)
    pad = (-vals.size) % items_per_block
    if pad:
        vals = np.concatenate([vals, np.zeros(pad)])
    return vals.reshape(-1, items_per_block).sum(axis=1)


@lru_cache(maxsize=1)
def v1_conflict_degree() -> float:
    """Average shared-memory conflict degree of V1's drifting threads.

    Cached because the deterministic Monte-Carlo estimate
    (:func:`expected_random_conflict_degree`) costs a few milliseconds
    and the value is a constant of the model (≈3.4 for 32 lanes / 32
    banks).
    """
    return expected_random_conflict_degree()
