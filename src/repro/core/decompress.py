"""Chunk-parallel GPU decompression — shared by both CULZSS versions.

§III.C: "The decompression process is identical in both versions …  To
distribute the work across the GPU cores, we need to identify which
block of compressed data needs to be decompressed into the
corresponding decompressed data block.  To achieve this, we keep a
list of block compression sizes."

Functionally: :func:`repro.lzss.decoder.decode_chunked` driven by the
container's chunk table.  Cost model: one thread per chunk decodes its
token stream serially — decompression "is not computation intensive …
mainly reading from and writing to memory" (§IV.D), so the model is
dominated by per-token decode work, per-byte copies, and the global
traffic of reading the compressed stream and writing the output.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels import per_block_sums, warp_max_sums
from repro.core.params import CompressionParams
from repro.gpusim.kernel import BlockCost, KernelLaunch, launch_kernel
from repro.gpusim.profiler import GpuProfile
from repro.gpusim.timing import transfer_time
from repro.lzss.decoder import decode_chunked
from repro.lzss.formats import TokenFormat
from repro.model.calibration import Calibration
from repro.util.validation import require

__all__ = ["GpuDecompressor"]


class GpuDecompressor:
    """Functional chunked decode plus its GTX-480 cost model."""

    def __init__(self, params: CompressionParams | None = None) -> None:
        self.params = params or CompressionParams()

    def decompress(self, payload, fmt: TokenFormat, chunk_sizes: np.ndarray,
                   chunk_size: int, output_size: int) -> bytes:
        return decode_chunked(payload, fmt, chunk_sizes, chunk_size,
                              output_size)

    # ------------------------------------------------------------------
    # cost model
    # ------------------------------------------------------------------

    def kernel_launch(self, per_chunk_tokens: np.ndarray,
                      per_chunk_out_bytes: np.ndarray,
                      per_chunk_in_bytes: np.ndarray,
                      cal: Calibration) -> KernelLaunch:
        """One thread per chunk, ``threads_per_block`` chunks per block."""
        g = cal.gpu
        p = self.params
        tokens = np.asarray(per_chunk_tokens, dtype=np.float64)
        out_b = np.asarray(per_chunk_out_bytes, dtype=np.float64)
        in_b = np.asarray(per_chunk_in_bytes, dtype=np.float64)
        require(tokens.shape == out_b.shape == in_b.shape,
                "per-chunk arrays must align")

        lane_cycles = (tokens * g.decomp_cycles_per_token
                       + out_b * g.decomp_cycles_per_byte)
        block_compute = warp_max_sums(lane_cycles, p.threads_per_block)
        # Streams are read and output written per-lane (scattered): the
        # same transaction efficiency as V1's per-thread streaming.
        block_bytes = per_block_sums(in_b + out_b, p.threads_per_block)
        txn = block_bytes / g.decomp_load_bytes_per_transaction

        eff = cal.gpu_kernel_efficiency
        blocks = [
            BlockCost(
                compute_cycles=float(block_compute[b]) * eff,
                global_transactions=float(txn[b]),
                global_bytes=float(txn[b]) * 128.0,
            )
            for b in range(block_compute.size)
        ]
        return KernelLaunch(
            name="culzss_decompress",
            threads_per_block=p.threads_per_block,
            shared_mem_per_block=0,
            blocks=blocks,
        )

    def profile(self, per_chunk_tokens: np.ndarray, compressed_size: int,
                output_size: int, chunk_sizes: np.ndarray,
                cal: Calibration) -> GpuProfile:
        """Modeled in-memory decompression: H2D payload, kernel, D2H."""
        p = self.params
        n_chunks = len(chunk_sizes)
        out_bytes = np.full(n_chunks, float(p.chunk_size))
        if n_chunks:
            out_bytes[-1] = output_size - p.chunk_size * (n_chunks - 1)
        prof = GpuProfile()
        prof.add("h2d_payload", transfer_time(p.device, compressed_size))
        timing = launch_kernel(
            p.device,
            self.kernel_launch(per_chunk_tokens, out_bytes,
                               np.asarray(chunk_sizes, dtype=np.float64), cal))
        prof.add("kernel_decode", timing.seconds)
        prof.add("d2h_output", transfer_time(p.device, output_size))
        return prof
