"""Compression parameters — the API's tuning surface.

The paper's API carries "compression parameters [that] only include
CULZSS version selection.  In the future, window size and number of
threads per block can be added" (§III).  This reproduction implements
that future: version, window size, threads per block, chunk size and
the shared-memory placement are all adjustable, which is what the
ablation benchmarks sweep.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.gpusim.spec import FERMI_GTX480, DeviceSpec
from repro.lzss.constants import CUDA_CHUNK_SIZE, CUDA_WINDOW, DEFAULT_THREADS_PER_BLOCK
from repro.lzss.formats import CUDA_V1, CUDA_V2, TokenFormat
from repro.util.validation import require, require_range

__all__ = ["CompressionParams"]


@dataclass(frozen=True)
class CompressionParams:
    """Everything a CULZSS run can be configured with.

    Attributes
    ----------
    version:
        1 = chunk-per-thread (§III.B.1), 2 = position-per-thread
        (§III.B.2).  The paper's guidance (§V): version 1 for highly
        compressible data, version 2 for data ≲50 % compressible.
    window:
        Search-window bytes per thread; the default 128 is the paper's
        measured best and exactly fills 16 KB of shared memory with 128
        threads.  Non-default windows use a parameterized token format
        and are meant for tuning sweeps.
    overlap_cpu_gpu:
        Pipeline the V2 CPU fixup behind the next buffer's kernel
        (§III.B.3 / §V).
    buffers_in_shared:
        Ablation flag for §III.D's "moved the buffers to shared memory
        … allowed us a 30 % speed up".
    """

    version: int = 2
    window: int = CUDA_WINDOW
    chunk_size: int = CUDA_CHUNK_SIZE
    threads_per_block: int = DEFAULT_THREADS_PER_BLOCK
    device: DeviceSpec = FERMI_GTX480
    overlap_cpu_gpu: bool = True
    buffers_in_shared: bool = True
    max_chain: int = 64

    def __post_init__(self) -> None:
        require(self.version in (1, 2), f"version must be 1 or 2, got {self.version}")
        require_range(self.window, 4, 4096, "window")
        require_range(self.chunk_size, 64, 1 << 24, "chunk_size")
        require_range(self.threads_per_block, 1,
                      self.device.max_threads_per_block, "threads_per_block")
        require(self.window <= self.chunk_size,
                "window cannot exceed the chunk size")

    @property
    def token_format(self) -> TokenFormat:
        """The bit layout implied by (version, window).

        V1 always keeps the serial 17-bit token — its search window is
        the whole shared-memory chunk, so ``window`` does not apply to
        it.  V2's window defaults to the paper's 128 bytes; other
        values build a parameterized format for tuning sweeps.
        """
        if self.version == 1:
            return CUDA_V1
        if self.window == CUDA_WINDOW:
            return CUDA_V2
        offset_bits = max(1, math.ceil(math.log2(self.window)))
        return TokenFormat(
            name=f"cuda_v2_w{self.window}",
            offset_bits=offset_bits,
            length_bits=8,
            window=self.window,
        )

    @property
    def is_standard_format(self) -> bool:
        """Standard formats can travel in containers; sweep formats cannot."""
        return self.version == 1 or self.window == CUDA_WINDOW

    @property
    def slice_size(self) -> int:
        """V1's per-thread parse slice: chunk ÷ threads ("each thread in
        a block is responsible for its chunk", §III.B.1)."""
        return max(1, self.chunk_size // self.threads_per_block)

    @property
    def shared_bytes_per_block(self) -> int:
        """Shared memory one block claims for its search buffers.

        V1 keeps the whole 4 KiB chunk resident plus per-thread
        lookahead/bookkeeping state (~48 B each: 18-byte lookahead,
        ring pointers, token staging) — ~10 KB at 128 threads, which is
        why §V reports the buffers stop fitting at 256–512 threads.
        V2's threads cooperate on one extended window + lookahead view
        per 128-position tile, padded by the 32-byte stagger
        (§III.B.2).
        """
        if not self.buffers_in_shared:
            return 0
        if self.version == 1:
            return self.chunk_size + self.threads_per_block * 48
        return self.window + self.threads_per_block + 32

    def with_overrides(self, **kwargs) -> "CompressionParams":
        """Functional update, e.g. ``params.with_overrides(window=256)``."""
        return replace(self, **kwargs)
