"""Heterogeneous CPU+GPU compression — §VII: "a combined CPU and GPU
heterogeneous implementation can give benefits for the execution time.
Since the chip designers are already looking into putting both in a
die … it can be a future proof application."

Splits the input between the GPU (CULZSS) and the host cores (the
Pthread coder), choosing the split so both finish together: with
per-byte rates measured on a probe prefix, the makespan
``max(t_gpu(αn), t_cpu((1−α)n))`` is minimized at
``α* = r_cpu / (r_cpu + r_gpu)`` … expressed in times-per-byte.  Output
is two self-describing containers in a tiny HET1 frame; decompression
routes each part to its decoder.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.container import pack_container, unpack_container
from repro.core.params import CompressionParams
from repro.core.v1 import V1Compressor
from repro.core.v2 import V2Compressor
from repro.cpu.threads import PthreadLzss
from repro.lzss.decoder import decode_chunked
from repro.model.calibration import Calibration, default_calibration
from repro.model.cpu import PthreadModel, SerialCpuModel, sample_match_statistics
from repro.util.buffers import as_bytes
from repro.util.validation import require, require_range

__all__ = ["HeteroPlan", "HeterogeneousCompressor"]

MAGIC = b"HET1"
_HEADER = struct.Struct("<4sQQ")  # magic, gpu blob len, cpu blob len

#: Probe prefix used to measure per-byte rates before planning.
PROBE_BYTES = 128 * 1024


@dataclass
class HeteroPlan:
    """Chosen split and the modeled per-device times at that split."""

    gpu_fraction: float
    gpu_seconds: float
    cpu_seconds: float

    @property
    def makespan(self) -> float:
        return max(self.gpu_seconds, self.cpu_seconds)


class HeterogeneousCompressor:
    """Split compression across the simulated GPU and the host cores."""

    def __init__(self, params: CompressionParams | None = None,
                 calibration: Calibration | None = None,
                 n_threads: int | None = None) -> None:
        self.params = params or CompressionParams()
        self.cal = calibration or default_calibration()
        self.gpu = (V1Compressor(self.params) if self.params.version == 1
                    else V2Compressor(self.params))
        self.cpu = PthreadLzss(n_threads)

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------

    def _gpu_seconds_per_byte(self, probe: bytes) -> float:
        result = self.gpu.compress(probe)
        if self.params.version == 1:
            sample = sample_match_statistics(probe)
            prof = self.gpu.profile(result, self.cal, sample)
        else:
            prof = self.gpu.profile(result, self.cal)
        return prof.total_seconds / len(probe)

    def _cpu_seconds_per_byte(self, probe: bytes) -> float:
        from repro.lzss.encoder import encode
        from repro.lzss.formats import SERIAL

        stats = encode(probe, SERIAL, collect_detail=True).stats
        sample = sample_match_statistics(probe)
        serial_s = SerialCpuModel(self.cal).compress_seconds(stats, sample)
        return (PthreadModel(self.cal).compress_seconds(
            serial_s, stats.output_size) / len(probe))

    def plan(self, data) -> HeteroPlan:
        """Pick the split that lets both devices finish together."""
        data = as_bytes(data)
        n = len(data)
        require(n > 0, "cannot plan for empty input")
        probe = data[: min(PROBE_BYTES, n)]
        r_gpu = self._gpu_seconds_per_byte(probe)
        r_cpu = self._cpu_seconds_per_byte(probe)
        # equal-finish split: α·n·r_gpu = (1−α)·n·r_cpu
        alpha = r_cpu / (r_cpu + r_gpu)
        return HeteroPlan(gpu_fraction=alpha,
                          gpu_seconds=alpha * n * r_gpu,
                          cpu_seconds=(1 - alpha) * n * r_cpu)

    # ------------------------------------------------------------------
    # functional compress / decompress
    # ------------------------------------------------------------------

    def compress(self, data) -> tuple[bytes, HeteroPlan]:
        """Compress; returns the HET1 blob and the plan it used."""
        data = as_bytes(data)
        plan = self.plan(data)
        # Align the split to the GPU chunk size so the chunk table
        # stays uniform.
        cut = int(len(data) * plan.gpu_fraction)
        cut -= cut % self.params.chunk_size
        require_range(cut, 0, len(data), "split point")

        gpu_blob = (pack_container(self.gpu.compress(data[:cut]))
                    if cut else b"")
        cpu_blob = (pack_container(self.cpu.compress(data[cut:]))
                    if cut < len(data) else b"")
        frame = _HEADER.pack(MAGIC, len(gpu_blob), len(cpu_blob))
        return frame + gpu_blob + cpu_blob, plan

    def decompress(self, blob) -> bytes:
        blob = as_bytes(blob)
        require(len(blob) >= _HEADER.size, "truncated HET1 frame")
        magic, gpu_len, cpu_len = _HEADER.unpack_from(blob, 0)
        require(magic == MAGIC, "bad HET1 magic")
        off = _HEADER.size
        require(len(blob) == off + gpu_len + cpu_len,
                "HET1 frame length mismatch")
        out = []
        for part_len in (gpu_len, cpu_len):
            if not part_len:
                continue
            info = unpack_container(blob[off:off + part_len])
            off += part_len
            out.append(decode_chunked(info.payload, info.format,
                                      info.chunk_sizes, info.chunk_size,
                                      info.original_size))
        return b"".join(out)
