"""Streaming pipeline — §VII: "The concurrent execution and streaming
feature of new Fermi GPUs can be used to process those chunks" and
"hidden by overlapping computation with GPU kernel in a pipelining
fashion."

Processes a sequence of buffers through the four CULZSS stages — H2D
copy, kernel, D2H copy, CPU post-processing — with Fermi's copy/compute
overlap: while buffer *k* is in the kernel, buffer *k+1* uploads and
buffer *k−1* downloads/fixes up.  Functionally each buffer is a normal
in-memory compression (self-describing container); the modeled timeline
comes from a small dependency-respecting pipeline scheduler, so the
steady state is dominated by the slowest stage rather than the stage
sum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.container import pack_container
from repro.core.params import CompressionParams
from repro.core.v1 import V1Compressor
from repro.core.v2 import V2Compressor
from repro.model.calibration import Calibration, default_calibration
from repro.model.cpu import sample_match_statistics
from repro.util.buffers import as_bytes
from repro.util.validation import require

__all__ = ["PipelineResult", "StreamingPipeline"]

#: Stage names in pipeline order.  H2D and D2H share the PCIe engines
#: pairwise (Fermi has one copy engine per direction), the kernel has
#: the SMs, the post stage has the host core.
STAGES = ("h2d", "kernel", "d2h", "cpu")


@dataclass
class PipelineResult:
    """Streamed compression output plus the modeled timelines."""

    containers: list[bytes]
    input_bytes: int
    compressed_bytes: int
    sequential_seconds: float
    pipelined_seconds: float
    stage_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def ratio(self) -> float:
        if self.input_bytes == 0:
            return 1.0
        return self.compressed_bytes / self.input_bytes

    @property
    def overlap_speedup(self) -> float:
        if self.pipelined_seconds == 0:
            return 1.0
        return self.sequential_seconds / self.pipelined_seconds


def _schedule(per_buffer: list[dict[str, float]]) -> float:
    """End-to-end seconds of the overlapped pipeline.

    Each stage is a serial resource; stage *s* of buffer *k* starts
    when both stage *s−1* of buffer *k* and stage *s* of buffer *k−1*
    have finished — the classic software-pipeline recurrence.
    """
    done = {s: 0.0 for s in STAGES}
    finish = 0.0
    for stages in per_buffer:
        prev_stage_done = 0.0
        for s in STAGES:
            start = max(prev_stage_done, done[s])
            done[s] = start + stages[s]
            prev_stage_done = done[s]
        finish = prev_stage_done
    return finish


class StreamingPipeline:
    """Compress a stream of buffers with copy/compute/CPU overlap."""

    def __init__(self, params: CompressionParams | None = None,
                 calibration: Calibration | None = None) -> None:
        self.params = params or CompressionParams()
        self.cal = calibration or default_calibration()
        self._compressor = (V1Compressor(self.params)
                            if self.params.version == 1
                            else V2Compressor(self.params))

    def _buffer_stages(self, data: bytes) -> tuple[bytes, dict[str, float]]:
        result = self._compressor.compress(data)
        if self.params.version == 1:
            sample = sample_match_statistics(data)
            prof = self._compressor.profile(result, self.cal, sample)
            names = {"h2d": "h2d_input", "kernel": "kernel_match_encode",
                     "d2h": "d2h_buckets", "cpu": "cpu_concat"}
        else:
            prof = self._compressor.profile(result, self.cal)
            names = {"h2d": "h2d_input", "kernel": "kernel_match",
                     "d2h": "d2h_match_records", "cpu": "cpu_fixup"}
        stages = {stage: prof.phase_seconds(name)
                  for stage, name in names.items()}
        return pack_container(result), stages

    def compress_stream(self, buffers: Iterable[bytes]) -> PipelineResult:
        """Compress every buffer; model sequential vs pipelined time."""
        containers: list[bytes] = []
        per_buffer: list[dict[str, float]] = []
        input_bytes = 0
        for buf in buffers:
            data = as_bytes(buf)
            require(len(data) > 0, "empty buffer in stream")
            blob, stages = self._buffer_stages(data)
            containers.append(blob)
            per_buffer.append(stages)
            input_bytes += len(data)

        sequential = sum(sum(st.values()) for st in per_buffer)
        pipelined = _schedule(per_buffer)
        totals = {s: sum(st[s] for st in per_buffer) for s in STAGES}
        return PipelineResult(
            containers=containers,
            input_bytes=input_bytes,
            compressed_bytes=sum(len(c) for c in containers),
            sequential_seconds=sequential,
            pipelined_seconds=pipelined,
            stage_seconds=totals,
        )
