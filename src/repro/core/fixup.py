"""V2's serial CPU fixup pass — redundant-match elimination.

§III.B.2–3: the V2 kernel records a candidate match for *every* input
position; the serial greedy walk that keeps only the non-overlapping
subset ("the previously described redundant searches needs to be
eliminated from the encoded output … it follows a serial path and
needs to be done on CPU") and generates the flag bits happens on the
host.

Functionally the fixup is exactly the greedy parse of
:mod:`repro.lzss.parse` applied to all-position match arrays; this
module packages it as the paper's named pipeline stage, provides the
plain-loop reference the vectorized version is tested against, and
reports the operation counts (positions scanned, tokens emitted) that
the fixup timing model charges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.lzss.formats import TokenFormat
from repro.lzss.parse import greedy_token_starts
from repro.util.validation import require

__all__ = ["FixupResult", "fixup_matches", "fixup_matches_reference"]


@dataclass
class FixupResult:
    """Kept tokens after redundant-match elimination.

    ``starts`` are the surviving token positions; ``is_pair`` the flag
    array ("the flags for encoding will also be generated through this
    process"); ``lengths``/``distances`` are valid where ``is_pair``.
    ``positions_scanned`` and ``tokens_emitted`` feed the CPU-side
    timing model.
    """

    starts: np.ndarray
    is_pair: np.ndarray
    lengths: np.ndarray
    distances: np.ndarray
    positions_scanned: int
    tokens_emitted: int


def fixup_matches(best_len: np.ndarray, best_dist: np.ndarray,
                  fmt: TokenFormat,
                  chunk_size: int | None = None) -> FixupResult:
    """Eliminate overlapped matches and produce the final token set."""
    best_len = np.asarray(best_len)
    best_dist = np.asarray(best_dist)
    require(best_len.shape == best_dist.shape, "match array shape mismatch")
    with obs.stage("encode.fixup", bytes=int(best_len.size),
                   positions=int(best_len.size)):
        advance = np.where(best_len >= fmt.min_match, best_len, 1).astype(np.int64)
        starts = greedy_token_starts(advance, chunk_size)
        lengths = best_len[starts].astype(np.int64)
        distances = best_dist[starts].astype(np.int64)
        is_pair = lengths >= fmt.min_match
    return FixupResult(
        starts=starts,
        is_pair=is_pair,
        lengths=np.where(is_pair, lengths, 1),
        distances=np.where(is_pair, distances, 0),
        positions_scanned=int(best_len.size),
        tokens_emitted=int(starts.size),
    )


def fixup_matches_reference(best_len: np.ndarray, best_dist: np.ndarray,
                            fmt: TokenFormat,
                            chunk_size: int | None = None) -> FixupResult:
    """The serial walk as the paper's CPU would run it (plain loops)."""
    n = len(best_len)
    cs = chunk_size if chunk_size is not None else max(n, 1)
    starts, is_pair, lengths, distances = [], [], [], []
    for chunk_start in range(0, n, cs):
        end = min(chunk_start + cs, n)
        pos = chunk_start
        while pos < end:
            starts.append(pos)
            if best_len[pos] >= fmt.min_match:
                is_pair.append(True)
                lengths.append(int(best_len[pos]))
                distances.append(int(best_dist[pos]))
                pos += int(best_len[pos])
            else:
                is_pair.append(False)
                lengths.append(1)
                distances.append(0)
                pos += 1
    return FixupResult(
        starts=np.asarray(starts, dtype=np.int64),
        is_pair=np.asarray(is_pair, dtype=bool),
        lengths=np.asarray(lengths, dtype=np.int64),
        distances=np.asarray(distances, dtype=np.int64),
        positions_scanned=n,
        tokens_emitted=len(starts),
    )
