"""The in-memory compression API — the paper's Figure 2 interface.

``Gpu_compress()`` "takes the given buffer pointer and copies it to the
GPU, compresses it into the given memory region, and returns the
calling process a pointer to the compressed data and its length.  The
last parameters for the functions are compression parameters" — here a
:class:`repro.core.params.CompressionParams` whose most important field
is the CULZSS version selector (§V: pick V1 for highly-compressible
data, V2 otherwise).

The returned buffer is a self-describing container (header + chunk
table + payload), so ``gpu_decompress`` needs nothing but the blob —
the shape a network gateway pair needs ("the data looks the same going
in as coming out", §III).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.obs import log as obslog
from repro.codecs import codec_names
from repro.codecs.dispatch import (
    decode_chunked_multi,
    encode_chunked_auto,
    salvage_decode_chunked_multi,
)
from repro.container import pack_container, unpack_container
from repro.core.decompress import GpuDecompressor
from repro.core.library import get_library
from repro.core.params import CompressionParams
from repro.core.v1 import V1Compressor
from repro.core.v2 import V2Compressor
from repro.gpusim.profiler import GpuProfile
from repro.lzss.decoder import (
    SalvageReport,
    decode_chunked_with_stats,
    salvage_decode_chunked,
)
from repro.lzss.encoder import EncodeResult
from repro.model.calibration import Calibration, default_calibration
from repro.model.cpu import sample_match_statistics
from repro.util.buffers import as_bytes
from repro.util.validation import require

__all__ = ["CompressedBuffer", "DecompressResult", "gpu_compress", "gpu_decompress"]


@dataclass
class CompressedBuffer:
    """What ``gpu_compress`` hands back.

    ``data`` is the container blob (the "pointer to the compressed data
    and its length"); ``result`` the raw encode artifacts; ``profile``
    the modeled GTX-480 execution timeline of the run.
    """

    data: bytes
    result: EncodeResult
    profile: GpuProfile

    @property
    def compressed_size(self) -> int:
        return len(self.data)

    @property
    def ratio(self) -> float:
        """Container bytes / input bytes (smaller is better)."""
        if self.result.input_size == 0:
            return 1.0
        return len(self.data) / self.result.input_size

    @property
    def modeled_seconds(self) -> float:
        return self.profile.total_seconds


@dataclass
class DecompressResult:
    """What ``gpu_decompress`` hands back.

    ``salvage`` is populated only by ``errors="salvage"`` decodes: a
    :class:`repro.lzss.decoder.SalvageReport` naming the chunks that
    were recovered and lost.  Strict decodes leave it ``None``.
    """

    data: bytes
    profile: GpuProfile
    salvage: SalvageReport | None = None

    @property
    def modeled_seconds(self) -> float:
        return self.profile.total_seconds


def _engine_for(workers, engine):
    """Resolve the ``workers``/``engine`` pair into an engine (or None).

    ``engine`` wins when given; otherwise ``workers > 1`` borrows the
    process-wide pool for that width (persistent across calls), and
    ``workers in (None, 0, 1)`` means the serial path.
    """
    if engine is not None:
        return engine
    if workers is not None and workers > 1:
        from repro.engine import get_engine

        return get_engine(workers)
    return None


def _compressor_for(params: CompressionParams, engine=None):
    return (V1Compressor(params, engine=engine) if params.version == 1
            else V2Compressor(params, engine=engine))


def gpu_compress(buffer, params: CompressionParams | None = None,
                 calibration: Calibration | None = None, *,
                 workers: int | None = None,
                 engine=None, codec: str = "lzss",
                 probe_threshold: float | None = None) -> CompressedBuffer:
    """In-memory compression on the (simulated) GPU.

    Parameters mirror the paper's ``Gpu_compress(in, out, params)``:
    the buffer may be ``bytes``/``bytearray``/``memoryview``/uint8
    array; ``params`` selects the CULZSS version and tuning knobs.

    ``workers`` (or an explicit :class:`repro.engine.ParallelEngine`
    via ``engine``) shards the encode pipeline across that many cores;
    the container that comes back is byte-identical to the serial path,
    whatever the worker count.

    ``codec`` selects the per-chunk coder: ``"lzss"`` (default) is the
    paper's pipeline with the classic v2 container; any other
    registered codec name — or ``"auto"``, the content-aware per-chunk
    dispatcher — goes through :mod:`repro.codecs` and writes a v3
    container carrying the per-chunk codec column.  ``probe_threshold``
    tunes the dispatcher's store-fallback entropy threshold
    (bits/byte; defaults to ``REPRO_PROBE_THRESHOLD`` or 7.9).
    """
    params = params or get_library().default_params()
    require(params.is_standard_format,
            "containers require the standard 128-byte window; "
            "use V1Compressor/V2Compressor directly for tuning sweeps")
    cal = calibration or default_calibration()
    data = as_bytes(buffer)
    if codec != "lzss":
        require(codec == "auto" or codec in codec_names(),
                f"unknown codec {codec!r} (registered: "
                f"{', '.join(codec_names())}, plus 'auto')")
        eng = _engine_for(workers, engine)
        fmt = params.token_format
        with obs.stage("api.compress", size=len(data),
                       version=params.version, codec=codec):
            if eng is not None:
                result = eng.encode_chunked_auto(
                    data, fmt, params.chunk_size, codec=codec,
                    max_chain=params.max_chain,
                    probe_threshold=probe_threshold)
            else:
                result = encode_chunked_auto(
                    data, fmt, params.chunk_size, codec=codec,
                    max_chain=params.max_chain,
                    probe_threshold=probe_threshold)
        # Mixed-codec pipelines are outside the paper's single-kernel
        # cost model; the profile is deliberately empty.
        return CompressedBuffer(data=pack_container(result), result=result,
                                profile=GpuProfile())
    compressor = _compressor_for(params, _engine_for(workers, engine))
    with obs.stage("api.compress", size=len(data), version=params.version):
        result = compressor.compress(data)
    if result.input_size == 0:
        return CompressedBuffer(data=pack_container(result), result=result,
                                profile=GpuProfile())
    if params.version == 1:
        sample = sample_match_statistics(data)
        profile = compressor.profile(result, cal, sample)
    else:
        profile = compressor.profile(result, cal)
    return CompressedBuffer(data=pack_container(result), result=result,
                            profile=profile)


def gpu_decompress(blob, params: CompressionParams | None = None,
                   calibration: Calibration | None = None, *,
                   workers: int | None = None,
                   engine=None, errors: str = "strict",
                   fill_byte: int = 0) -> DecompressResult:
    """In-memory decompression of a ``gpu_compress`` container.

    ``workers``/``engine`` mirror :func:`gpu_compress`: chunk streams
    are independent, so decode shards across cores with identical
    output.

    ``errors`` selects the corruption policy.  ``"strict"`` (the
    default) raises the first :class:`repro.errors.ContainerError` a
    damaged blob produces.  ``"salvage"`` decodes every chunk it can —
    verifying per-chunk CRCs on version-2 containers before touching
    the token stream — fills the byte ranges of unrecoverable chunks
    with ``fill_byte``, and reports the damage in ``result.salvage``.
    Salvage still needs an intact header and chunk table; damage there
    raises regardless.
    """
    require(errors in ("strict", "salvage"),
            f"errors must be 'strict' or 'salvage', not {errors!r}")
    cal = calibration or default_calibration()
    info = unpack_container(as_bytes(blob), strict=errors == "strict")
    require(info.is_chunked, "CULZSS containers are always chunked")
    params = params or get_library().default_params()
    # The search window is irrelevant on the decode side; clamp it so
    # containers with chunks smaller than the default window validate.
    params = params.with_overrides(
        chunk_size=info.chunk_size,
        window=min(params.window, info.chunk_size))
    engine = _engine_for(workers, engine)
    report = None
    codecs_col = info.chunk_codecs
    with obs.stage("api.decompress", size=info.original_size, errors=errors):
        if errors == "salvage":
            if engine is not None:
                out, per_chunk_tokens, report = engine.salvage_decode_chunked(
                    info.payload, info.format, info.chunk_sizes,
                    info.chunk_size, info.original_size,
                    chunk_crcs=info.chunk_crcs, fill_byte=fill_byte,
                    chunk_codecs=codecs_col)
            elif codecs_col is not None:
                out, per_chunk_tokens, report = salvage_decode_chunked_multi(
                    info.payload, info.format, info.chunk_sizes,
                    info.chunk_size, info.original_size, codecs_col,
                    chunk_crcs=info.chunk_crcs, fill_byte=fill_byte)
            else:
                out, per_chunk_tokens, report = salvage_decode_chunked(
                    info.payload, info.format, info.chunk_sizes,
                    info.chunk_size, info.original_size,
                    chunk_crcs=info.chunk_crcs, fill_byte=fill_byte)
            obslog.event("container", "salvage",
                         recovered=len(report.recovered),
                         lost=len(report.lost),
                         n_chunks=report.n_chunks)
        else:
            if engine is not None:
                out, per_chunk_tokens = engine.decode_chunked_with_stats(
                    info.payload, info.format, info.chunk_sizes,
                    info.chunk_size, info.original_size,
                    chunk_codecs=codecs_col)
            elif codecs_col is not None:
                out, per_chunk_tokens = decode_chunked_multi(
                    info.payload, info.format, info.chunk_sizes,
                    info.chunk_size, info.original_size, codecs_col)
            else:
                out, per_chunk_tokens = decode_chunked_with_stats(
                    info.payload, info.format, info.chunk_sizes,
                    info.chunk_size, info.original_size)
    if info.original_size == 0 or codecs_col is not None:
        # Mixed-codec containers sit outside the lzss-specific GPU cost
        # model: report data (and salvage) with an empty profile.
        return DecompressResult(data=out, profile=GpuProfile(),
                                salvage=report)
    decomp = GpuDecompressor(params)
    profile = decomp.profile(per_chunk_tokens, len(info.payload),
                             info.original_size, info.chunk_sizes, cal)
    return DecompressResult(data=out, profile=profile, salvage=report)
