"""Library initialization and device detection.

§III: "The library gets initialized when loaded, detects GPUs, and
determines capabilities on the system."  In the simulator, "the
system" always exposes the paper's GTX 480; the singleton records the
detected devices and hands out default parameters, mirroring how the
original dynamically-loaded library behaved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.params import CompressionParams
from repro.gpusim.spec import DeviceSpec, detect_devices
from repro.util.validation import require

__all__ = ["CulzssLibrary", "get_library"]


@dataclass
class CulzssLibrary:
    """Process-wide library state: detected devices and defaults."""

    devices: list[DeviceSpec] = field(default_factory=detect_devices)

    @property
    def default_device(self) -> DeviceSpec:
        require(len(self.devices) > 0, "no GPU devices detected")
        return self.devices[0]

    def default_params(self, version: int = 2) -> CompressionParams:
        """Default parameters bound to the detected device."""
        return CompressionParams(version=version, device=self.default_device)

    def capabilities(self) -> dict[str, object]:
        """Summary of what the detected hardware can do."""
        dev = self.default_device
        return {
            "device": dev.name,
            "sm_count": dev.sm_count,
            "cuda_cores": dev.total_cores,
            "shared_mem_per_sm": dev.shared_mem_per_sm,
            "max_threads_per_block": dev.max_threads_per_block,
            "versions": (1, 2),
        }


_LIBRARY: CulzssLibrary | None = None


def get_library() -> CulzssLibrary:
    """The lazily-created library singleton ("initialized when loaded")."""
    global _LIBRARY
    if _LIBRARY is None:
        _LIBRARY = CulzssLibrary()
    return _LIBRARY
