"""CULZSS — the paper's contribution.

Two GPU compression pipelines over the :mod:`repro.lzss` substrate and
the :mod:`repro.gpusim` device model:

* :mod:`repro.core.v1` — coarse-grained: one thread ⇒ one 4 KiB chunk,
  serial LZSS per thread, buffers in shared memory (§III.B.1);
* :mod:`repro.core.v2` — fine-grained: one thread ⇒ one input
  position, all-position matching on the GPU, redundant-match
  elimination (:mod:`repro.core.fixup`) on the CPU (§III.B.2–3);
* :mod:`repro.core.decompress` — chunk-parallel decompression shared
  by both versions (§III.C);
* :mod:`repro.core.api` — the in-memory ``gpu_compress`` /
  ``gpu_decompress`` interface of Figure 2, with the version-selection
  compression parameter.
"""

from repro.core.api import (
    CompressedBuffer,
    DecompressResult,
    gpu_compress,
    gpu_decompress,
)
from repro.core.decompress import GpuDecompressor
from repro.core.fixup import fixup_matches, fixup_matches_reference
from repro.core.hetero import HeteroPlan, HeterogeneousCompressor
from repro.core.library import CulzssLibrary, get_library
from repro.core.params import CompressionParams
from repro.core.pipeline import PipelineResult, StreamingPipeline
from repro.core.v1 import V1Compressor
from repro.core.v2 import V2Compressor

__all__ = [
    "CompressedBuffer",
    "CompressionParams",
    "CulzssLibrary",
    "DecompressResult",
    "GpuDecompressor",
    "HeteroPlan",
    "HeterogeneousCompressor",
    "PipelineResult",
    "StreamingPipeline",
    "V1Compressor",
    "V2Compressor",
    "fixup_matches",
    "fixup_matches_reference",
    "get_library",
    "gpu_compress",
    "gpu_decompress",
]
