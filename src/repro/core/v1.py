"""CULZSS Version 1 — coarse-grained chunk-per-thread compression.

§III.B.1: "the idea is very similar to [the] Pthread implementation …
Each thread in the thread block receives a small portion of the input
data and works on its own to compress that piece."  Concretely: every
CUDA block owns a 4 KiB chunk held in shared memory; each of its 128
threads runs the *serial* coder over its own 32-byte slice of the
chunk, searching backwards through the whole chunk (§III.D: "we moved
the buffers to shared memory … allowed us a 30 % speed up").

Functional output: the serial 17-bit token over chunk-confined windows
with slice-truncated matches — which is exactly why Table II's V1
column tracks the serial column to within a point.

Cost model per block:

* lane (= slice) compares use the same measured search statistics
  (κ per candidate) as the serial CPU model — V1 inherits the serial
  coder's *skip* savings, which is why it wins big on
  highly-compressible data (§V);
* warp lockstep = max over 32 lanes (slices of unequal token counts
  diverge — V1's penalty on heterogeneous text);
* shared traffic at the drifting-thread conflict degree (≈3.4), or
  L1-cached global cost when ``buffers_in_shared`` is off (the §III.D
  ablation);
* scattered per-lane global streaming (16 useful bytes per 128-byte
  transaction) for chunk load and bucket store.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels import per_block_sums, v1_conflict_degree, warp_max_sums
from repro.core.params import CompressionParams
from repro.gpusim.kernel import BlockCost, KernelLaunch, launch_kernel
from repro.gpusim.profiler import GpuProfile
from repro.gpusim.timing import transfer_time
from repro.lzss.encoder import EncodeResult, encode_chunked
from repro.model.calibration import CPU_CLOCK_HZ, Calibration
from repro.model.cpu import MatchSampleStats
from repro.util.buffers import as_u8
from repro.util.validation import require

__all__ = ["V1Compressor"]


class V1Compressor:
    """Functional V1 compression plus its GTX-480 cost model."""

    def __init__(self, params: CompressionParams | None = None,
                 engine=None) -> None:
        params = params or CompressionParams(version=1)
        require(params.version == 1, "V1Compressor needs version=1 params")
        self.params = params
        #: Optional :class:`repro.engine.ParallelEngine` — shards the
        #: encode across cores with byte-identical output.
        self.engine = engine

    def compress(self, data) -> EncodeResult:
        """Compress; always collects the detail arrays the model needs."""
        encode = (self.engine.encode_chunked if self.engine is not None
                  else encode_chunked)
        return encode(as_u8(data), self.params.token_format,
                      self.params.chunk_size,
                      max_chain=self.params.max_chain,
                      collect_detail=True,
                      slice_size=self.params.slice_size)

    # ------------------------------------------------------------------
    # cost model
    # ------------------------------------------------------------------

    def _per_slice_work(self, result: EncodeResult, sample: MatchSampleStats):
        """Exact per-slice (= per-thread) compares/tokens/bytes."""
        stats = result.stats
        require(stats.token_starts is not None,
                "V1 cost model needs collect_detail=True encode stats")
        ss = self.params.slice_size
        cs = self.params.chunk_size
        n = result.input_size
        n_slices = (n + ss - 1) // ss if n else 0
        starts = stats.token_starts
        # Brute-force scan cost at each token start: every candidate up
        # to the chunk boundary (the shared-memory chunk is the whole
        # search buffer), extension compares weighted as in the serial
        # model (same code, same search).
        from repro.model.cpu import effective_candidate_cost

        w_i = np.minimum(starts % cs, self.params.token_format.window)
        scan = w_i.astype(np.float64) * effective_candidate_cost(sample.kappa)
        slice_of = starts // ss
        compares = np.bincount(slice_of, weights=scan, minlength=n_slices)
        tokens = np.bincount(slice_of, minlength=n_slices).astype(np.float64)
        nbytes = np.full(n_slices, float(ss))
        if n_slices:
            nbytes[-1] = n - ss * (n_slices - 1)
        return compares, tokens, nbytes

    def kernel_launch(self, result: EncodeResult, cal: Calibration,
                      sample: MatchSampleStats) -> KernelLaunch:
        """Build the simulated launch from exact per-thread work."""
        p = self.params
        g = cal.gpu
        compares, tokens, nbytes = self._per_slice_work(result, sample)

        lane_cycles = (compares * g.cycles_per_compare
                       + tokens * g.cycles_per_token
                       + nbytes * g.cycles_per_byte)
        shared_per_lane = compares * g.shared_accesses_per_compare

        block_compute = warp_max_sums(lane_cycles, p.threads_per_block)
        # Buffer accesses issue as warp instructions: lanes read in
        # lockstep, so a warp pays for its slowest lane's access count
        # (times the serialization), not the lane sum.
        block_access = warp_max_sums(shared_per_lane, p.threads_per_block)
        if p.buffers_in_shared:
            block_shared = block_access
            block_memory = np.zeros_like(block_access)
        else:
            # Ablation: buffer traffic goes to L1-cached global memory
            # at its higher per-access cost (§III.D's ~30 % effect).
            block_shared = np.zeros_like(block_access)
            block_memory = block_access * g.global_cached_latency_cycles
        block_bytes_in = per_block_sums(nbytes, p.threads_per_block)
        # Compressed buckets are written back in the same scattered
        # per-lane pattern as the loads.
        out_ratio = result.stats.output_size / max(result.input_size, 1)
        block_bytes_out = block_bytes_in * out_ratio
        txn = (block_bytes_in + block_bytes_out) / g.v1_load_bytes_per_transaction

        eff = cal.gpu_kernel_efficiency
        blocks = [
            BlockCost(
                compute_cycles=float(block_compute[b]) * eff,
                shared_accesses=float(block_shared[b]),
                bank_conflict_degree=v1_conflict_degree(),
                global_transactions=float(txn[b]),
                global_bytes=float(txn[b]) * 128.0,
                memory_cycles=float(block_memory[b]),
            )
            for b in range(block_compute.size)
        ]
        return KernelLaunch(
            name="culzss_v1_compress",
            threads_per_block=p.threads_per_block,
            shared_mem_per_block=p.shared_bytes_per_block,
            blocks=blocks,
        )

    def profile(self, result: EncodeResult, cal: Calibration,
                sample: MatchSampleStats) -> GpuProfile:
        """End-to-end modeled time: H2D, kernel, bucket D2H, CPU concat.

        §III.B.3: after the kernel, the GPU holds per-chunk buckets
        ("partial full buckets"); the full bucket area comes back to
        the host, which concatenates only the compressed parts — "a
        very little overhead … so we leave this part serial".
        """
        prof = GpuProfile()
        n = result.input_size
        prof.add("h2d_input", transfer_time(self.params.device, n))
        timing = launch_kernel(self.params.device,
                               self.kernel_launch(result, cal, sample))
        prof.add("kernel_match_encode", timing.seconds)
        prof.add("d2h_buckets", transfer_time(self.params.device, n))
        concat_s = (result.stats.output_size * cal.concat_cycles_per_byte
                    / CPU_CLOCK_HZ)
        prof.add("cpu_concat", concat_s)
        return prof
