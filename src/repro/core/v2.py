"""CULZSS Version 2 — fine-grained position-per-thread matching.

§III.B.2: "the matching computation can be done in parallel for each
character in the uncoded lookahead buffer.  In the matching process
each character is searched by a single thread throughout the window."
Every position of every 4 KiB chunk gets its longest match computed by
a GPU thread against an extended 128-byte window view; the serial
greedy walk that removes the redundant (overlapped) matches runs on
the CPU (:mod:`repro.core.fixup`) and can overlap the next buffer's
kernel (§III.B.3, §V).

Why this version behaves the way Table I shows, in model terms:

* it matches at *all* n positions (no skip), so its kernel work is
  ``Σ_i compares(i)`` versus V1's ``Σ_{token starts} compares(i)`` —
  on highly-compressible data that is ~18× more work, hence V2's loss
  there (§V);
* the work is uniform across lanes (every thread scans the same
  window), so warp divergence is minimal, accesses are staggered
  conflict-free (§III.B.2) and loads are coalesced — hence V2's win on
  ~50 %-compressible text.
"""

from __future__ import annotations

import numpy as np

from repro.core.params import CompressionParams
from repro.gpusim.kernel import BlockCost, KernelLaunch, launch_kernel
from repro.gpusim.profiler import GpuProfile
from repro.gpusim.timing import transfer_time
from repro.lzss.encoder import EncodeResult, encode_chunked
from repro.model.calibration import CPU_CLOCK_HZ, Calibration
from repro.util.buffers import as_u8
from repro.util.validation import require

__all__ = ["V2Compressor"]

#: Bytes of kernel output per input position: one match-length byte and
#: one match-offset byte (len−3 ≤ 255, dist−1 ≤ 127 both fit a byte).
MATCH_RECORD_BYTES = 2


class V2Compressor:
    """Functional V2 compression plus its GTX-480 cost model."""

    def __init__(self, params: CompressionParams | None = None,
                 engine=None) -> None:
        params = params or CompressionParams(version=2)
        require(params.version == 2, "V2Compressor needs version=2 params")
        self.params = params
        #: Optional :class:`repro.engine.ParallelEngine` — shards the
        #: encode across cores with byte-identical output.
        self.engine = engine

    def compress(self, data) -> EncodeResult:
        """Compress; always collects the detail arrays the model needs."""
        encode = (self.engine.encode_chunked if self.engine is not None
                  else encode_chunked)
        return encode(as_u8(data), self.params.token_format,
                      self.params.chunk_size,
                      max_chain=self.params.max_chain,
                      collect_detail=True)

    # ------------------------------------------------------------------
    # cost model
    # ------------------------------------------------------------------

    def kernel_launch(self, result: EncodeResult,
                      cal: Calibration) -> KernelLaunch:
        """One block per chunk; lane work = that position's window scan."""
        p = self.params
        g = cal.gpu
        stats = result.stats
        require(stats.per_warp_compares is not None,
                "V2 cost model needs collect_detail=True encode stats")
        n = result.input_size
        cs = p.chunk_size
        n_chunks = (n + cs - 1) // cs if n else 0

        # Exact SIMT cost: per 32-position warp, the lanes scan each
        # window offset in lockstep and wait for the slowest lane's
        # byte-compare loop — Σ_lags max_over_lanes, collected during
        # the functional match pass.
        warp_cmp = stats.per_warp_compares.astype(np.float64)
        warps_per_chunk = cs // 32
        pad = (-warp_cmp.size) % warps_per_chunk
        if pad:
            warp_cmp = np.concatenate([warp_cmp, np.zeros(pad)])
        chunk_cmp = warp_cmp.reshape(-1, warps_per_chunk).sum(axis=1)
        block_compute = (chunk_cmp * g.cycles_per_compare
                         + cs * g.cycles_per_byte / 32.0)
        # Every lockstep compare touches the shared window + lookahead
        # view; the 32-byte stagger keeps the accesses conflict-free.
        block_shared = chunk_cmp * g.shared_accesses_per_compare

        chunk_bytes = np.full(n_chunks, float(cs))
        if n_chunks:
            chunk_bytes[-1] = n - cs * (n_chunks - 1)
        # Coalesced: sequential 1-byte-per-thread loads — "In a 128
        # thread configuration it makes a block size of 128 bytes ...
        # only one memory transaction" (§III.D).  Fewer threads fill
        # only part of each 128-byte transaction.
        coalesce_eff = min(p.threads_per_block, 128) / 128.0
        txn = chunk_bytes * (1 + MATCH_RECORD_BYTES) / (128.0 * coalesce_eff)
        # The 32-byte-offset stagger (§III.B.2) is conflict-free up to
        # 128 threads; beyond that the offsets wrap around the shared
        # window and collide pairwise.
        conflict = max(1.0, p.threads_per_block / 128.0)

        eff = cal.gpu_v2_kernel_efficiency
        blocks = [
            BlockCost(
                compute_cycles=float(block_compute[b]) * eff,
                shared_accesses=float(block_shared[b]),
                bank_conflict_degree=conflict,
                global_transactions=float(txn[b]),
                global_bytes=float(txn[b]) * 128.0,
            )
            for b in range(n_chunks)
        ]
        return KernelLaunch(
            name="culzss_v2_match",
            threads_per_block=p.threads_per_block,
            shared_mem_per_block=p.shared_bytes_per_block,
            blocks=blocks,
        )

    def fixup_seconds(self, result: EncodeResult, cal: Calibration) -> float:
        """Host time of the serial redundant-match elimination pass."""
        stats = result.stats
        cycles = (result.input_size * cal.fixup_cycles_per_position
                  + stats.n_tokens * cal.fixup_cycles_per_token)
        return cycles / CPU_CLOCK_HZ

    def profile(self, result: EncodeResult, cal: Calibration) -> GpuProfile:
        """End-to-end modeled time: H2D, kernel, match D2H, CPU fixup.

        With ``overlap_cpu_gpu`` the fixup of buffer *k* hides behind
        the kernel of buffer *k+1* (§III.B.3's "opportunity for
        CPU-GPU computation overlap"); only its excess over the kernel
        time is exposed.
        """
        prof = GpuProfile()
        n = result.input_size
        prof.add("h2d_input", transfer_time(self.params.device, n))
        timing = launch_kernel(self.params.device,
                               self.kernel_launch(result, cal))
        prof.add("kernel_match", timing.seconds)
        prof.add("d2h_match_records",
                 transfer_time(self.params.device, n * MATCH_RECORD_BYTES))
        fixup_s = self.fixup_seconds(result, cal)
        if self.params.overlap_cpu_gpu:
            prof.add("cpu_fixup", fixup_s, overlap_with="kernel_match")
        else:
            prof.add("cpu_fixup", fixup_s)
        return prof
