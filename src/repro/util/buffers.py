"""Conversions between the byte-buffer types the public API accepts.

The in-memory API mirrors the paper's ``Gpu_compress(buffer, ...)``
interface: callers hand in whatever buffer they have (``bytes``,
``bytearray``, ``memoryview``, or a ``uint8`` NumPy array) and internally
everything is a contiguous ``np.uint8`` array so the vectorized kernels
can run on it without copies where possible.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_bytes", "as_u8", "concat_u8"]

BufferLike = bytes | bytearray | memoryview | np.ndarray


def as_u8(data: BufferLike) -> np.ndarray:
    """View/convert ``data`` as a contiguous 1-D uint8 array.

    ``bytes`` input is zero-copy (read-only view); NumPy input must be
    1-D uint8 or convertible without reinterpretation surprises.
    """
    if isinstance(data, np.ndarray):
        if data.dtype != np.uint8:
            raise TypeError(f"expected uint8 array, got {data.dtype}")
        if data.ndim != 1:
            raise ValueError(f"expected 1-D array, got shape {data.shape}")
        return np.ascontiguousarray(data)
    if isinstance(data, (bytes, bytearray, memoryview)):
        return np.frombuffer(bytes(data) if isinstance(data, memoryview) else data,
                             dtype=np.uint8)
    raise TypeError(f"unsupported buffer type {type(data).__name__}")


def as_bytes(data: BufferLike) -> bytes:
    """Return ``data`` as immutable ``bytes``."""
    if isinstance(data, bytes):
        return data
    if isinstance(data, (bytearray, memoryview)):
        return bytes(data)
    if isinstance(data, np.ndarray):
        return as_u8(data).tobytes()
    raise TypeError(f"unsupported buffer type {type(data).__name__}")


def concat_u8(parts: list[np.ndarray] | list[bytes]) -> np.ndarray:
    """Concatenate byte buffers into one uint8 array (empty-safe)."""
    arrays = [as_u8(p) for p in parts]
    if not arrays:
        return np.zeros(0, dtype=np.uint8)
    return np.concatenate(arrays)
