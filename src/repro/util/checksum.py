"""Checksums for the container format: CRC-32 (IEEE) and Adler-32.

``crc32_reference`` is a from-scratch table-driven CRC-32 — the
executable specification.  ``crc32`` is the production entry point; it
delegates to :func:`binascii.crc32` (C speed, same polynomial), and the
test suite property-checks the two against each other.  ``adler32`` is
implemented from scratch *vectorized* — Adler's two running sums reduce
to prefix sums, so NumPy computes it in O(n) vector work with chunking
to dodge overflow.
"""

from __future__ import annotations

import binascii

import numpy as np

from repro.util.buffers import as_u8

__all__ = ["adler32", "crc32", "crc32_reference"]

_CRC_POLY = 0xEDB88320  # reflected IEEE 802.3 polynomial


def _build_crc_table() -> list[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ _CRC_POLY if crc & 1 else crc >> 1
        table.append(crc)
    return table


_CRC_TABLE = _build_crc_table()


def crc32_reference(data: bytes | np.ndarray, crc: int = 0) -> int:
    """Table-driven CRC-32, bit-for-bit compatible with zlib's crc32."""
    crc ^= 0xFFFFFFFF
    for byte in bytes(as_u8(data).tobytes()):
        crc = _CRC_TABLE[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def crc32(data: bytes | bytearray | memoryview | np.ndarray, crc: int = 0) -> int:
    """CRC-32 of ``data`` (fast path; identical to :func:`crc32_reference`)."""
    if isinstance(data, np.ndarray):
        data = as_u8(data).tobytes()
    return binascii.crc32(data, crc) & 0xFFFFFFFF


_ADLER_MOD = 65521
# Sum of k uint8 values fits int64 easily; the B accumulator grows as
# O(chunk^2 * 255) so keep chunks small enough for int64: 2**20 is safe
# (2**40 * 255 < 2**63).
_ADLER_CHUNK = 1 << 20


def adler32(data: bytes | bytearray | memoryview | np.ndarray, value: int = 1) -> int:
    """Adler-32 of ``data``, vectorized from scratch.

    ``A = 1 + sum(d_i) mod 65521``; ``B = sum of running A``.  Within a
    chunk of length k starting with state (A, B):
    ``A' = A + S`` and ``B' = B + k*A + W`` where ``S = sum(d)`` and
    ``W = sum((k - i) * d_i)`` — both plain vector reductions.
    """
    arr = as_u8(data).astype(np.int64, copy=False)
    a = value & 0xFFFF
    b = (value >> 16) & 0xFFFF
    for start in range(0, arr.size, _ADLER_CHUNK):
        chunk = arr[start:start + _ADLER_CHUNK]
        k = chunk.size
        s = int(chunk.sum())
        weights = np.arange(k, 0, -1, dtype=np.int64)
        w = int((chunk * weights).sum())
        b = (b + k * a + w) % _ADLER_MOD
        a = (a + s) % _ADLER_MOD
    return ((b << 16) | a) & 0xFFFFFFFF
