"""Shared low-level utilities: bit streams, checksums, buffers, timing.

These are the common substrate under every codec in the package.  They are
deliberately dependency-free (NumPy only) and individually unit-tested.
"""

from repro.util.bitio import (
    BitReader,
    BitWriter,
    gather_fields,
    pack_tokens,
    unpack_bits,
)
from repro.util.buffers import as_bytes, as_u8, concat_u8
from repro.util.checksum import adler32, crc32, crc32_reference
from repro.util.timer import Timer
from repro.util.validation import require, require_range, require_type

__all__ = [
    "BitReader",
    "BitWriter",
    "Timer",
    "adler32",
    "as_bytes",
    "as_u8",
    "concat_u8",
    "crc32",
    "crc32_reference",
    "gather_fields",
    "pack_tokens",
    "require",
    "require_range",
    "require_type",
    "unpack_bits",
]
