"""Tiny argument-checking helpers used across the package.

Centralizing these keeps error messages uniform and the call sites
one-liners; they raise the standard exception types (``ValueError`` /
``TypeError``) so callers never need to import anything special to
handle them.
"""

from __future__ import annotations

from typing import Any

__all__ = ["require", "require_range", "require_type"]


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def require_range(value: int | float, lo: int | float, hi: int | float,
                  name: str = "value") -> None:
    """Raise ``ValueError`` unless ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")


def require_type(value: Any, types: type | tuple[type, ...],
                 name: str = "value") -> None:
    """Raise ``TypeError`` unless ``value`` is an instance of ``types``."""
    if not isinstance(value, types):
        expected = (types.__name__ if isinstance(types, type)
                    else "/".join(t.__name__ for t in types))
        raise TypeError(f"{name} must be {expected}, got {type(value).__name__}")
