"""MSB-first bit stream I/O, scalar and vectorized.

LZSS token streams are bit-granular (a 1-bit flag followed by either a
9-bit literal or an offset/length pair), so every codec in this package
sits on top of this module.

Two API levels are provided:

* :class:`BitWriter` / :class:`BitReader` — scalar, byte-at-a-time
  streams used by the executable-specification (reference) codecs and by
  header serialization.  Simple and obviously correct.
* :func:`pack_tokens` / :func:`unpack_bits` / :func:`gather_fields` —
  vectorized NumPy kernels used by the fast codecs.  ``pack_tokens``
  scatters a ragged sequence of ``(value, nbits)`` items into a packed
  bit array in O(total_bits) vector work; ``gather_fields`` extracts
  fixed-width big-endian fields at arbitrary bit offsets.

Bit order is MSB-first within each byte (the order ``np.packbits`` and
``np.unpackbits`` use), matching Dipperstein's LZSS stream layout.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import require, require_range

__all__ = [
    "BitReader",
    "BitWriter",
    "gather_fields",
    "pack_tokens",
    "ragged_arange",
    "unpack_bits",
]

_MAX_FIELD_BITS = 57  # fits in int64 with room for shifts


class BitWriter:
    """Accumulates bits MSB-first into a growable byte buffer.

    >>> w = BitWriter()
    >>> w.write_bit(1)
    >>> w.write_bits(0b0101, 4)
    >>> w.getvalue()[0] == 0b10101000
    True
    """

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._acc = 0  # partial byte accumulator
        self._nacc = 0  # number of valid bits in _acc (0..7)

    def __len__(self) -> int:
        """Total number of bits written so far."""
        return 8 * len(self._bytes) + self._nacc

    @property
    def bit_length(self) -> int:
        return len(self)

    def write_bit(self, bit: int) -> None:
        self._acc = (self._acc << 1) | (bit & 1)
        self._nacc += 1
        if self._nacc == 8:
            self._bytes.append(self._acc)
            self._acc = 0
            self._nacc = 0

    def write_bits(self, value: int, nbits: int) -> None:
        """Write ``nbits`` bits of ``value``, most significant first."""
        require_range(nbits, 0, _MAX_FIELD_BITS, "nbits")
        require(0 <= value < (1 << nbits) if nbits else value == 0,
                f"value {value} does not fit in {nbits} bits")
        for shift in range(nbits - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_bytes(self, data: bytes) -> None:
        """Write whole bytes (fast path when byte-aligned)."""
        if self._nacc == 0:
            self._bytes.extend(data)
        else:
            for b in data:
                self.write_bits(b, 8)

    def align(self) -> None:
        """Pad with zero bits to the next byte boundary."""
        while self._nacc:
            self.write_bit(0)

    def getvalue(self) -> bytes:
        """Return the stream padded with zero bits to a whole byte."""
        out = bytearray(self._bytes)
        if self._nacc:
            out.append((self._acc << (8 - self._nacc)) & 0xFF)
        return bytes(out)


class BitReader:
    """Reads bits MSB-first from a bytes-like object."""

    def __init__(self, data: bytes | bytearray | memoryview | np.ndarray) -> None:
        if isinstance(data, np.ndarray):
            data = data.astype(np.uint8, copy=False).tobytes()
        self._data = bytes(data)
        self._pos = 0  # bit position

    @property
    def bits_remaining(self) -> int:
        return 8 * len(self._data) - self._pos

    @property
    def bit_position(self) -> int:
        return self._pos

    def read_bit(self) -> int:
        if self._pos >= 8 * len(self._data):
            raise EOFError("bit stream exhausted")
        byte = self._data[self._pos >> 3]
        bit = (byte >> (7 - (self._pos & 7))) & 1
        self._pos += 1
        return bit

    def read_bits(self, nbits: int) -> int:
        require_range(nbits, 0, _MAX_FIELD_BITS, "nbits")
        value = 0
        for _ in range(nbits):
            value = (value << 1) | self.read_bit()
        return value

    def seek_bit(self, bit_position: int) -> None:
        require_range(bit_position, 0, 8 * len(self._data), "bit_position")
        self._pos = bit_position


def ragged_arange(lengths: np.ndarray) -> np.ndarray:
    """``concatenate([arange(n) for n in lengths])`` without the Python loop.

    The standard trick: a global arange minus the repeated cumulative
    starts.  Used to index within ragged (per-token) bit spans.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    if lengths.size == 0:
        return np.zeros(0, dtype=np.int64)
    total = int(lengths.sum())
    starts = np.zeros(lengths.size, dtype=np.int64)
    np.cumsum(lengths[:-1], out=starts[1:])
    return np.arange(total, dtype=np.int64) - np.repeat(starts, lengths)


def pack_tokens(values: np.ndarray, nbits: np.ndarray) -> tuple[bytes, int]:
    """Pack a ragged sequence of big-endian bit fields into bytes.

    ``values[i]`` is written MSB-first in exactly ``nbits[i]`` bits,
    concatenated in order.  Returns ``(packed_bytes, total_bits)``; the
    final byte is zero-padded.

    This is the fast codecs' entire serialization step: one vectorized
    scatter regardless of how many tokens there are.
    """
    values = np.asarray(values, dtype=np.int64)
    nbits = np.asarray(nbits, dtype=np.int64)
    require(values.shape == nbits.shape, "values/nbits shape mismatch")
    if values.size == 0:
        return b"", 0
    if np.any(nbits < 0) or np.any(nbits > _MAX_FIELD_BITS):
        raise ValueError("field widths must be in [0, 57]")
    limit = np.int64(1) << nbits.clip(0, _MAX_FIELD_BITS)
    if np.any(values < 0) or np.any(values >= limit):
        raise ValueError("token value does not fit its declared width")

    total = int(nbits.sum())
    # Within-token bit index, MSB first: bit j of token i is
    # (values[i] >> (nbits[i]-1-j)) & 1.
    j = ragged_arange(nbits)
    vrep = np.repeat(values, nbits)
    shift = np.repeat(nbits, nbits) - 1 - j
    bits = ((vrep >> shift) & 1).astype(np.uint8)
    packed = np.packbits(bits)  # MSB-first, zero-padded
    return packed.tobytes(), total


def unpack_bits(data: bytes | np.ndarray, nbits: int | None = None) -> np.ndarray:
    """Return the stream as a uint8 0/1 array, MSB-first, truncated to nbits."""
    arr = np.frombuffer(bytes(data), dtype=np.uint8) if not isinstance(
        data, np.ndarray) else data.astype(np.uint8, copy=False)
    bits = np.unpackbits(arr)
    if nbits is not None:
        require_range(nbits, 0, bits.size, "nbits")
        bits = bits[:nbits]
    return bits


def gather_fields(bits: np.ndarray, starts: np.ndarray, width: int) -> np.ndarray:
    """Extract fixed-width big-endian fields at the given bit offsets.

    ``bits`` is a 0/1 uint8 array; ``starts`` are bit positions; the
    result is an int64 array of ``len(starts)`` field values.  Reads past
    the end of ``bits`` are an error.
    """
    require_range(width, 0, _MAX_FIELD_BITS, "width")
    starts = np.asarray(starts, dtype=np.int64)
    if starts.size == 0:
        return np.zeros(0, dtype=np.int64)
    if width == 0:
        return np.zeros(starts.size, dtype=np.int64)
    if int(starts.max()) + width > bits.size:
        raise ValueError("field read past end of bit stream")
    idx = starts[:, None] + np.arange(width, dtype=np.int64)[None, :]
    weights = (np.int64(1) << np.arange(width - 1, -1, -1, dtype=np.int64))
    return (bits[idx].astype(np.int64) * weights).sum(axis=1)
