"""The serial CPU LZSS driver — the paper's baseline implementation.

A thin, stateful wrapper over :mod:`repro.lzss` with Dipperstein's
parameters pinned (window 4096, lookahead 18, 17-bit tokens), plus the
container framing so serial streams are self-describing like the GPU
ones.
"""

from __future__ import annotations

from repro.container import pack_container, unpack_container
from repro.lzss.decoder import decode
from repro.lzss.encoder import EncodeResult, encode
from repro.lzss.formats import SERIAL
from repro.util.buffers import as_bytes
from repro.util.validation import require

__all__ = ["SerialLzss"]


class SerialLzss:
    """Serial LZSS compressor/decompressor (Dipperstein parameters)."""

    format = SERIAL

    def __init__(self, max_chain: int = 64, collect_detail: bool = False,
                 parse: str = "greedy"):
        self.max_chain = max_chain
        self.collect_detail = collect_detail
        self.parse = parse

    def compress(self, data) -> EncodeResult:
        """Compress to a raw LZSS bit stream (+stats)."""
        return encode(as_bytes(data), self.format, max_chain=self.max_chain,
                      collect_detail=self.collect_detail, parse=self.parse)

    def compress_container(self, data) -> bytes:
        """Compress to a self-describing container blob."""
        return pack_container(self.compress(data))

    def decompress(self, payload, output_size: int) -> bytes:
        """Decompress a raw stream of known original size."""
        return decode(payload, self.format, output_size)

    def decompress_container(self, blob) -> bytes:
        """Decompress a container blob."""
        info = unpack_container(as_bytes(blob))
        require(info.format.name == self.format.name,
                f"container holds {info.format.name!r} data, not serial")
        require(not info.is_chunked, "serial containers are unchunked")
        return self.decompress(info.payload, info.original_size)
