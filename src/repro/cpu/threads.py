"""Pthread-style chunked LZSS — the paper's threaded CPU baseline.

§III.A: "Each thread is given with some chunk of the file and the
chunks are compressed concurrently.  After each thread compresses the
given data, individual compressed chunks are reassembled to form the
final output."  Here the chunks run on a real thread pool (the
vectorized encoder releases the GIL inside NumPy, so threads genuinely
overlap), and the reassembly is the container's chunk table.

The *timing model* for the 2011 testbed lives in
:class:`repro.model.cpu.PthreadModel`; this class is the functional
system.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.lzss.decoder import decode
from repro.lzss.encoder import EncodeResult, encode
from repro.lzss.formats import SERIAL, TokenFormat
from repro.lzss.stats import EncodeStats
from repro.util.buffers import as_u8
from repro.util.validation import require, require_range

__all__ = ["PthreadLzss"]

#: The paper's testbed runs 8 hardware threads (i7 920, 4C/8T).
DEFAULT_THREADS = 8


class PthreadLzss:
    """Chunk-parallel LZSS over a thread pool (PBZIP2-style).

    The pool is created on first use and reused across calls — thread
    spawn/join is pure overhead on small buffers, and the paper's
    pthread baseline keeps its workers alive for the whole run.  Call
    :meth:`close` (or use the instance as a context manager) to release
    the threads; a closed instance transparently re-opens on next use.
    """

    def __init__(self, n_threads: int | None = None,
                 fmt: TokenFormat = SERIAL, max_chain: int = 64,
                 parse: str = "greedy") -> None:
        if n_threads is None:
            n_threads = min(DEFAULT_THREADS, os.cpu_count() or 1)
        self.n_threads = n_threads
        require_range(self.n_threads, 1, 1024, "n_threads")
        self.format = fmt
        self.max_chain = max_chain
        self.parse = parse
        self._pool: ThreadPoolExecutor | None = None

    def _executor(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.n_threads,
                thread_name_prefix="repro-pthread")
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down; idempotent."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "PthreadLzss":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _chunk_bounds(self, n: int) -> list[tuple[int, int]]:
        """Even split into one chunk per thread (the paper's division)."""
        per = -(-n // self.n_threads)
        return [(lo, min(lo + per, n)) for lo in range(0, n, per)]

    def compress(self, data) -> EncodeResult:
        """Compress chunks concurrently; reassemble into one result."""
        arr = as_u8(data)
        n = arr.size
        if n == 0:
            return encode(b"", self.format)
        bounds = self._chunk_bounds(n)

        def work(piece: np.ndarray) -> EncodeResult:
            return encode(piece, self.format, max_chain=self.max_chain,
                          parse=self.parse)

        pool = self._executor()
        results = list(pool.map(work, (arr[lo:hi] for lo, hi in bounds)))

        payload = b"".join(r.payload for r in results)
        chunk_sizes = np.array([len(r.payload) for r in results],
                               dtype=np.int64)
        stats: EncodeStats = results[0].stats
        for r in results[1:]:
            stats = stats.merged_with(r.stats)
        stats.output_size = len(payload)
        return EncodeResult(payload=payload, format=self.format,
                            input_size=n, chunk_sizes=chunk_sizes,
                            chunk_size=bounds[0][1] - bounds[0][0],
                            stats=stats)

    def decompress(self, result_or_payload, chunk_sizes=None,
                   chunk_size: int | None = None,
                   output_size: int | None = None) -> bytes:
        """Decompress (concurrently) what :meth:`compress` produced."""
        if isinstance(result_or_payload, EncodeResult):
            res = result_or_payload
            payload, chunk_sizes = res.payload, res.chunk_sizes
            chunk_size, output_size = res.chunk_size, res.input_size
        else:
            payload = result_or_payload
            require(chunk_sizes is not None and chunk_size is not None
                    and output_size is not None,
                    "payload decompression needs chunk_sizes/chunk_size/size")
        offsets = np.concatenate([[0], np.cumsum(chunk_sizes)])
        arr = as_u8(payload)

        def work(c: int) -> bytes:
            lo = c * chunk_size
            hi = min(lo + chunk_size, output_size)
            return decode(arr[offsets[c]:offsets[c + 1]], self.format, hi - lo)

        pool = self._executor()
        pieces = list(pool.map(work, range(len(chunk_sizes))))
        return b"".join(pieces)
