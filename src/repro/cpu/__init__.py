"""CPU reference implementations: the serial and Pthread-style coders.

These are the paper's two CPU baselines as *runnable systems* (the
timing models in :mod:`repro.model` price them for the 2011 testbed;
these drivers actually compress bytes on this machine — the Pthread
analogue with a real thread pool).
"""

from repro.cpu.serial import SerialLzss
from repro.cpu.threads import PthreadLzss

__all__ = ["PthreadLzss", "SerialLzss"]
